# The tier-1 resume smoke for dirsim_sweep (docs/sweep.md):
#
#  1. The spec lints clean (dirsim_validate --sweep) and a broken
#     variant is rejected with exit 1.
#  2. A run under --max-cells 2 stops with exit 3 and writes no
#     results.jsonl — only cached cells.
#  3. Resuming the same spec completes: the resumed leg reports
#     runner.cache.hits > 0 and strictly fewer simulated references
#     than an uninterrupted run.
#  4. The resumed artifacts diff clean against the uninterrupted
#     run's (dirsim_report --diff-clean), and the rendered reports
#     are byte-identical.
function(run out_var)
    execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                    OUTPUT_VARIABLE out ERROR_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGN}")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

function(expect_counter jsonl name op value)
    file(READ ${jsonl} contents)
    string(REGEX MATCH "\"${name}\":{\"kind\":\"counter\",\"value\":([0-9]+)}"
           found "${contents}")
    if(NOT found)
        message(FATAL_ERROR "${jsonl} carries no counter ${name}")
    endif()
    if(NOT CMAKE_MATCH_1 ${op} ${value})
        message(FATAL_ERROR
            "${jsonl}: ${name} = ${CMAKE_MATCH_1}, wanted ${op} ${value}")
    endif()
    set(counter_value "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

set(spec "${WORKDIR}/sweep_smoke.spec.json")
set(out_a "${WORKDIR}/sweep_smoke_resumed")
set(out_b "${WORKDIR}/sweep_smoke_scratch")
file(REMOVE_RECURSE ${out_a} ${out_b})
file(WRITE ${spec} "{\n"
    "  \"name\": \"smoke\",\n"
    "  \"schemes\": [\"Dir0B\", \"WTI\"],\n"
    "  \"traces\": [{\"profile\": \"pops\", \"refs\": 20000, \"seed\": 5}],\n"
    "  \"block_bytes\": [16, 32]\n"
    "}\n")

# 1. Lint: the spec is clean; a broken variant exits 1.
run(ignored ${VALIDATOR} --sweep ${spec})
set(bad_spec "${WORKDIR}/sweep_smoke_bad.spec.json")
file(WRITE ${bad_spec} "{\"name\":\"bad\",\"schemes\":[\"Nope\"],"
    "\"traces\":[{\"profile\":\"pops\"}]}\n")
execute_process(COMMAND ${VALIDATOR} --sweep ${bad_spec}
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "validator accepted a broken sweep spec (rc=${rc})")
endif()

# 2. Interrupt: the budget stops the run with exit 3, no results.
execute_process(COMMAND ${SWEEP} run ${spec} --out ${out_a}
                        --max-cells 2
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 3)
    message(FATAL_ERROR
        "budgeted run should exit 3, exited ${rc}")
endif()
if(EXISTS "${out_a}/results.jsonl")
    message(FATAL_ERROR "interrupted run must not write results")
endif()

# 3. Resume: completes from the cache.
run(ignored ${SWEEP} resume ${spec} --out ${out_a})
expect_counter("${out_a}/results.jsonl" "runner.cache.hits"
               GREATER 0)
expect_counter("${out_a}/results.jsonl" "runner.grid.simulated_refs"
               GREATER 0)
set(resumed_refs "${counter_value}")

# The uninterrupted reference run (own cold cache).
run(ignored ${SWEEP} run ${spec} --out ${out_b})
expect_counter("${out_b}/results.jsonl" "runner.grid.simulated_refs"
               GREATER ${resumed_refs})

# 4. Identical results: clean artifact diff, byte-identical reports.
run(ignored ${REPORT} --diff-clean
    "${out_a}/results.jsonl" "${out_b}/results.jsonl")
run(report_a ${SWEEP} report ${out_a})
run(report_b ${SWEEP} report ${out_b})
if(NOT report_a STREQUAL report_b)
    message(FATAL_ERROR
        "resumed and uninterrupted reports are not byte-identical")
endif()
