/**
 * @file
 * Example: the Section 6 design space in one program — sweep the
 * pointer budget i of the Dir_i B / Dir_i NB families on a machine
 * larger than the paper's 4-CPU tracing host, and relate traffic to
 * directory storage cost.
 *
 * Usage: scalability_study [procs] [refs] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "dirsim/dirsim.hh"

int
main(int argc, char **argv)
{
    using namespace dirsim;

    const unsigned procs = argc > 1
        ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10))
        : 16;
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400'000;
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

    WorkloadProfile profile = popsProfile();
    profile.numProcesses = procs;
    profile.numCpus = procs;
    profile.numLocks = std::max(1u, procs / 4);
    profile.sharedWords *= std::max(1u, procs / 4);
    const Trace trace = generateTrace(profile, refs, seed);
    const BusCosts bus = paperPipelinedCosts();

    std::cout << procs << "-processor machine, "
              << TextTable::grouped(trace.size()) << " references\n\n";

    TextTable table({"scheme", "cycles/ref", "vs full map",
                     "dir bits/block", "broadcasts"});
    const double full_map_cost =
        simulateTrace(trace, "DirNNB").cost(bus).total();

    const auto report = [&](const std::string &scheme,
                            DirectoryOrg org, unsigned pointers) {
        const SimResult result = simulateTrace(trace, scheme);
        const double total = result.cost(bus).total();
        StorageParams params;
        params.numCaches = procs;
        params.numPointers = pointers;
        table.addRow({
            scheme,
            TextTable::fixed(total, 4),
            TextTable::pct(100.0 * (total / full_map_cost - 1.0), 1),
            TextTable::fixed(directoryBitsPerBlock(org, params), 0),
            TextTable::grouped(result.ops.broadcastInvals),
        });
    };

    report("DirNNB", DirectoryOrg::FullMap, 1);
    report("Dir0B", DirectoryOrg::TwoBit, 1);
    for (const unsigned i : {1u, 2u, 4u, 8u}) {
        report("Dir" + std::to_string(i) + "B",
               DirectoryOrg::LimitedPtrB, i);
        report("Dir" + std::to_string(i) + "NB",
               DirectoryOrg::LimitedPtr, i);
    }
    table.print(std::cout);

    std::cout << "\nThe paper's conjecture: because most blocks have "
                 "few sharers (Figure 1),\na small pointer budget "
                 "captures almost all of the full map's benefit at\n"
                 "a fraction of its storage.\n";
    return 0;
}
