/**
 * @file
 * Example: the Section 6 design space in one program — sweep the
 * pointer budget i of the Dir_i B / Dir_i NB families on a machine
 * larger than the paper's 4-CPU tracing host, and relate traffic to
 * directory storage cost.
 *
 * The whole sweep is expressed as one SimJob per scheme and executed
 * in a single runJobs() call (sim/job.hh): the trace is decoded once,
 * shared read-only across the jobs, and the jobs run concurrently
 * (DIRSIM_JOBS workers; default: all hardware threads).
 *
 * Usage: scalability_study [procs] [refs] [seed]
 */

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "dirsim/dirsim.hh"

namespace
{

/** Directory organization implementing a scheme's spec. */
dirsim::DirectoryOrg
orgFor(const dirsim::SchemeSpec &spec)
{
    using dirsim::DirectoryOrg;
    using dirsim::SchemeFamily;
    switch (spec.family) {
      case SchemeFamily::DirNNB:
        return DirectoryOrg::FullMap;
      case SchemeFamily::Dir0B:
        return DirectoryOrg::TwoBit;
      case SchemeFamily::DirIB:
        return DirectoryOrg::LimitedPtrB;
      default:
        return DirectoryOrg::LimitedPtr;
    }
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace dirsim;

    const unsigned procs = argc > 1
        ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10))
        : 16;
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400'000;
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

    WorkloadProfile profile = popsProfile();
    profile.numProcesses = procs;
    profile.numCpus = procs;
    profile.numLocks = std::max(1u, procs / 4);
    profile.sharedWords *= std::max(1u, procs / 4);
    const std::vector<Trace> traces = {
        generateTrace(profile, refs, seed)};
    const BusCosts bus = paperPipelinedCosts();

    std::vector<SchemeSpec> schemes = {
        parseScheme("DirNNB"), parseScheme("Dir0B")};
    for (const unsigned i : {1u, 2u, 4u, 8u}) {
        schemes.push_back(
            parseScheme("Dir" + std::to_string(i) + "B"));
        schemes.push_back(
            parseScheme("Dir" + std::to_string(i) + "NB"));
    }

    // One SimJob per scheme over the shared trace; runJobs() builds a
    // single plan (the trace is decoded and checksummed once) and
    // executes the jobs on a worker pool.
    std::vector<SimJob> jobs;
    for (const SchemeSpec &spec : schemes)
        jobs.push_back({TraceRef::of(traces[0]), spec, {}});

    const auto start = std::chrono::steady_clock::now();
    const std::vector<CellOutcome> outcomes =
        runJobs(jobs, JobOptions::fromEnvironment(), /* workers */ 0);
    const double wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    for (std::size_t s = 0; s < outcomes.size(); ++s)
        std::cerr << "  [" << s + 1 << "/" << outcomes.size() << "] "
                  << outcomes[s].result.scheme << " done in "
                  << TextTable::fixed(outcomes[s].wallSeconds, 2)
                  << "s\n";

    std::cout << procs << "-processor machine, "
              << TextTable::grouped(traces[0].size())
              << " references; " << outcomes.size()
              << " jobs ran in "
              << TextTable::fixed(wall_seconds, 2) << "s\n\n";

    TextTable table({"scheme", "cycles/ref", "vs full map",
                     "dir bits/block", "broadcasts"});
    const double full_map_cost = outcomes[0].result.cost(bus).total();

    for (std::size_t s = 0; s < schemes.size(); ++s) {
        const SchemeSpec &spec = schemes[s];
        const SimResult &result = outcomes[s].result;
        const double total = result.cost(bus).total();
        StorageParams params;
        params.numCaches = procs;
        params.numPointers = std::max(1u, spec.pointers);
        table.addRow({
            spec.name(),
            TextTable::fixed(total, 4),
            TextTable::pct(100.0 * (total / full_map_cost - 1.0), 1),
            TextTable::fixed(
                directoryBitsPerBlock(orgFor(spec), params), 0),
            TextTable::grouped(result.ops.broadcastInvals),
        });
    }
    table.print(std::cout);

    std::cout << "\nThe paper's conjecture: because most blocks have "
                 "few sharers (Figure 1),\na small pointer budget "
                 "captures almost all of the full map's benefit at\n"
                 "a fraction of its storage.\n";
    return 0;
} catch (const dirsim::SimulationError &error) {
    std::cerr << "error: " << error.what() << '\n';
    std::cerr << "usage: scalability_study [procs] [refs] [seed]\n";
    return 1;
}
