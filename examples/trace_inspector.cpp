/**
 * @file
 * Example: characterize a trace and show how each coherence scheme
 * behaves on it.
 *
 * Usage: trace_inspector [workload|trace-file] [refs] [seed]
 *   workload    pops | thor | pero (default pops), generated with
 *               refs (default 500000) and seed (default 1); or
 *   trace-file  a path to a trace written by trace_tool (".txt" =
 *               text, else binary) — streamed, never fully loaded
 *
 * Prints the Table 3 style trace characteristics, the Table 4 style
 * event frequencies for every implemented scheme, and the bus-cycle
 * costs on both bus models. File inputs go through the streaming
 * TraceSource API (trace/reader.hh): characterization and every
 * simulation re-stream the file in bounded memory, and the integrity
 * line reports the container format — for binary v2, the trailing
 * FNV-1a checksum is verified as each pass drains the file.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "dirsim/dirsim.hh"

namespace
{

void
printTraceStats(const dirsim::TraceStats &stats)
{
    using dirsim::TextTable;
    TextTable table({"metric", "value"});
    table.addRow({"refs", TextTable::grouped(stats.refs)});
    table.addRow({"instr", TextTable::grouped(stats.instr)});
    table.addRow({"data reads", TextTable::grouped(stats.dataReads)});
    table.addRow({"data writes", TextTable::grouped(stats.dataWrites)});
    table.addRow({"user", TextTable::grouped(stats.user)});
    table.addRow({"system", TextTable::grouped(stats.sys)});
    table.addRow({"processes", TextTable::grouped(stats.numProcesses)});
    table.addRow({"read/write ratio",
                  TextTable::fixed(stats.readWriteRatio(), 2)});
    table.addRow({"spin reads / reads",
                  TextTable::fixed(stats.spinReadFraction(), 3)});
    table.addRow({"system fraction",
                  TextTable::fixed(stats.systemFraction(), 3)});
    table.addRow({"shared data blocks",
                  TextTable::fixed(stats.sharedBlockFraction(), 3)});
    table.print(std::cout);
}

/** What the container format guarantees about input integrity. */
const char *
integrityNote(const std::string &format)
{
    if (format == "binary v2")
        return "trailing FNV-1a checksum verified on every pass";
    if (format == "binary v1")
        return "structural validation only (no checksum; rewrite "
               "with trace_tool for v2)";
    return "per-line validation (text format has no checksum)";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string input = argc > 1 ? argv[1] : "pops";
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

    using namespace dirsim;
    try {
        // A path that opens as a file is streamed; anything else is
        // a workload name for the generator.
        const bool file_mode = std::ifstream(input).good();

        const std::vector<std::string> schemes = allSchemes();
        std::vector<SimResult> results;
        results.reserve(schemes.size());
        TraceStats stats;

        if (file_mode) {
            const auto source = openTraceSource(input);
            std::cout << "=== trace characteristics: "
                      << source->name() << " (" << source->format()
                      << ") ===\n";
            std::cout << "integrity: "
                      << integrityNote(source->format()) << '\n';
            stats = computeTraceStats(*source);
            printTraceStats(stats);

            // One validating scan sizes the coherence domain; each
            // scheme then re-streams the file in bounded memory.
            const SimConfig sim;
            const TraceFileInfo info =
                scanTraceFile(input, sim.sharing);
            for (const auto &scheme : schemes)
                results.push_back(simulateTraceFile(
                    input, scheme, sim, info.caches));
        } else {
            const Trace trace = generateTrace(input, refs, seed);
            std::cout << "=== trace characteristics: " << trace.name()
                      << " ===\n";
            stats = computeTraceStats(trace);
            printTraceStats(stats);
            for (const auto &scheme : schemes)
                results.push_back(simulateTrace(trace, scheme));
        }

        std::cout
            << "\n=== event frequencies (% of all references) ===\n";
        TextTable freq_table([&] {
            std::vector<std::string> header{"event"};
            for (const auto &scheme : schemes)
                header.push_back(scheme);
            return header;
        }());

        for (std::size_t e = 0; e < numEventTypes; ++e) {
            const auto event = static_cast<EventType>(e);
            std::vector<std::string> row{toString(event)};
            for (const auto &result : results)
                row.push_back(TextTable::fixed(
                    result.events.percentOfRefs(event), 3));
            freq_table.addRow(row);
        }
        freq_table.print(std::cout);

        std::cout << "\n=== bus cycles per memory reference ===\n";
        TextTable cost_table(
            {"scheme", "pipelined", "non-pipelined", "txns/ref",
             "fig1<=1"});
        for (const auto &result : results) {
            const auto pipe = result.cost(paperPipelinedCosts());
            const auto nonpipe = result.cost(paperNonPipelinedCosts());
            cost_table.addRow({
                result.scheme,
                TextTable::fixed(pipe.total(), 4),
                TextTable::fixed(nonpipe.total(), 4),
                TextTable::fixed(pipe.transactions, 4),
                TextTable::fixed(
                    result.cleanWriteHolders.fractionAtMost(1), 3),
            });
        }
        cost_table.print(std::cout);

        // Figure 1 view: distribution of the number of other caches
        // holding a previously-clean block when it is written (Dir0B).
        const SimResult &dir0b = results[2];
        std::cout << "\n=== invalidations on writes to clean blocks "
                     "(Dir0B) ===\n";
        TextTable hist_table({"other holders", "fraction"});
        const auto &hist = dir0b.cleanWriteHolders;
        for (std::uint64_t v = 0; v <= hist.maxValue(); ++v)
            hist_table.addRow({std::to_string(v),
                               TextTable::fixed(hist.fraction(v), 4)});
        hist_table.print(std::cout);
    } catch (const SimulationError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
