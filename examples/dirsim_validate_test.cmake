# Smoke test for the dirsim_validate example: freshly generated
# binary and text traces must validate, a malformed text trace must
# be rejected with a clean diagnostic (exit 1, no crash).
function(run)
    execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
    endif()
endfunction()

set(bin "${WORKDIR}/dv_smoke.trace")
set(txt "${WORKDIR}/dv_smoke.txt")
set(bad "${WORKDIR}/dv_smoke_bad.txt")

run(${GENERATOR} generate pops 40000 5 ${bin})
run(${GENERATOR} convert ${bin} ${txt})
run(${VALIDATOR} ${bin} ${txt})

file(WRITE ${bad} "# cpus: banana\n0 1 read 100 -\n")
execute_process(COMMAND ${VALIDATOR} ${bad} RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
    message(FATAL_ERROR
        "validator accepted a malformed trace (rc=${rc}): ${bad}")
endif()
