/**
 * @file
 * Example: a command-line utility for working with trace files —
 * generate, convert between the binary and text formats, filter,
 * characterize, and simulate. External traces in the same
 * (cpu, pid, type, addr) shape can be analysed the same way.
 *
 * Usage:
 *   trace_tool generate <workload> <refs> <seed> <out>
 *   trace_tool convert  <in> <out>
 *   trace_tool filter   (--no-locks|--no-spins|--user-only) <in> <out>
 *   trace_tool stats    <in>
 *   trace_tool simulate <in> <scheme>
 *
 * Files ending in ".txt" use the text format; everything else is the
 * binary format.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "dirsim/dirsim.hh"

namespace
{

using namespace dirsim;

bool
isTextPath(const std::string &path)
{
    return path.size() >= 4
        && path.compare(path.size() - 4, 4, ".txt") == 0;
}

Trace
load(const std::string &path)
{
    return isTextPath(path) ? readTextTraceFile(path)
                            : readBinaryTraceFile(path);
}

void
store(const Trace &trace, const std::string &path)
{
    if (isTextPath(path))
        writeTextTraceFile(trace, path);
    else
        writeBinaryTraceFile(trace, path);
}

int
usage()
{
    std::cerr <<
        "usage:\n"
        "  trace_tool generate <workload> <refs> <seed> <out>\n"
        "  trace_tool convert  <in> <out>\n"
        "  trace_tool filter   (--no-locks|--no-spins|--user-only) "
        "<in> <out>\n"
        "  trace_tool stats    <in>\n"
        "  trace_tool simulate <in> <scheme>\n";
    return 2;
}

void
printStats(const Trace &trace)
{
    const TraceStats stats = computeTraceStats(trace);
    TextTable table({"metric", "value"});
    table.addRow({"name", stats.name});
    table.addRow({"refs", TextTable::grouped(stats.refs)});
    table.addRow({"instr", TextTable::grouped(stats.instr)});
    table.addRow({"data reads", TextTable::grouped(stats.dataReads)});
    table.addRow({"data writes",
                  TextTable::grouped(stats.dataWrites)});
    table.addRow({"system refs", TextTable::grouped(stats.sys)});
    table.addRow({"processes",
                  TextTable::grouped(stats.numProcesses)});
    table.addRow({"cpus", std::to_string(trace.numCpus())});
    table.addRow({"read/write ratio",
                  TextTable::fixed(stats.readWriteRatio(), 2)});
    table.addRow({"spin reads / reads",
                  TextTable::fixed(stats.spinReadFraction(), 3)});
    table.addRow({"shared block fraction",
                  TextTable::fixed(stats.sharedBlockFraction(), 3)});
    table.print(std::cout);

    // For traces produced by the synthetic generator, break the
    // references down by address segment.
    const SegmentProfile profile = profileSegments(trace);
    if (profile.count(SegmentKind::Unknown) != profile.total) {
        std::cout << "\nreferences by segment:\n";
        TextTable segments({"segment", "refs", "fraction"});
        for (int k = 0; k <= static_cast<int>(SegmentKind::Unknown);
             ++k) {
            const auto kind = static_cast<SegmentKind>(k);
            if (profile.count(kind) == 0)
                continue;
            segments.addRow({
                toString(kind),
                TextTable::grouped(profile.count(kind)),
                TextTable::fixed(profile.fraction(kind), 3),
            });
        }
        segments.print(std::cout);
    }
}

void
simulate(const std::string &path, const std::string &scheme)
{
    // Streams the file twice (domain-sizing scan, then simulation)
    // instead of materializing it, so arbitrarily large traces fit.
    const SimResult result = simulateTraceFile(path, scheme);
    const CycleBreakdown pipe = result.cost(paperPipelinedCosts());
    const CycleBreakdown nonpipe =
        result.cost(paperNonPipelinedCosts());
    std::cout << result.scheme << " on '" << result.traceName << "': "
              << TextTable::fixed(pipe.total(), 4)
              << " (pipelined) / "
              << TextTable::fixed(nonpipe.total(), 4)
              << " (non-pipelined) bus cycles per reference\n"
              << "read miss rate "
              << TextTable::pct(
                     result.events.percentOfRefs(EventType::RdMiss))
              << ", transactions/ref "
              << TextTable::fixed(pipe.transactions, 4) << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    try {
        if (command == "generate" && argc == 6) {
            const Trace trace = generateTrace(
                argv[2], std::strtoull(argv[3], nullptr, 10),
                std::strtoull(argv[4], nullptr, 10));
            store(trace, argv[5]);
            std::cout << "wrote " << trace.size() << " references to "
                      << argv[5] << '\n';
            return 0;
        }
        if (command == "convert" && argc == 4) {
            store(load(argv[2]), argv[3]);
            std::cout << "converted " << argv[2] << " -> " << argv[3]
                      << '\n';
            return 0;
        }
        if (command == "filter" && argc == 5) {
            const std::string mode = argv[2];
            const Trace input = load(argv[3]);
            Trace output;
            if (mode == "--no-locks")
                output = excludeLockRefs(input);
            else if (mode == "--no-spins")
                output = excludeSpinReads(input);
            else if (mode == "--user-only")
                output = keepUserOnly(input);
            else
                return usage();
            store(output, argv[4]);
            std::cout << "kept " << output.size() << " of "
                      << input.size() << " references\n";
            return 0;
        }
        if (command == "stats" && argc == 3) {
            printStats(load(argv[2]));
            return 0;
        }
        if (command == "simulate" && argc == 4) {
            simulate(argv[2], argv[3]);
            return 0;
        }
    } catch (const SimulationError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return usage();
}
