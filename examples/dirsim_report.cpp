/**
 * @file
 * Example: `dirsim_report` — re-render the paper tables from a JSONL
 * results file, or diff two runs.
 *
 * Rendering consumes the structured artifacts a run wrote through
 * JsonlSink (obs/sink.hh) and feeds the reconstructed per-scheme
 * results through the very same report.hh table builders the
 * in-process reports use, so the output is bit-identical to what the
 * run itself would have printed — the artifacts lose nothing.
 *
 * Usage:
 *   dirsim_report <results.jsonl>             render the report
 *   dirsim_report --diff <a.jsonl> <b.jsonl>  compare two runs
 *   dirsim_report --diff-clean <a.jsonl> <b.jsonl>
 *                       assert a clean diff (for scripts/CI: same
 *                       comparison, but a one-line verdict instead
 *                       of the report-style table)
 *
 * Diffing compares the deterministic metrics of every cell present
 * in either run (event/op counters, the Figure 1 histogram, derived
 * costs under both bus models) and ignores wall-clock fields, so two
 * runs of the same experiment always diff clean. Exit status: 0 on a
 * rendered report or a clean diff, 1 when the diff found deltas, 2
 * on usage errors.
 */

#include <iostream>
#include <string>
#include <vector>

#include "dirsim/dirsim.hh"

namespace
{

using namespace dirsim;

void
printManifest(const RunManifest &manifest)
{
    std::cout << "run: started " << manifest.startedAt
              << ", finished " << manifest.finishedAt << ", host "
              << (manifest.host.empty() ? "?" : manifest.host)
              << ", jobs " << manifest.jobs << '\n';
    std::cout << "config: block " << manifest.blockBytes
              << " B, sharing by " << manifest.sharing
              << ", warmup " << manifest.warmupRefs << " refs\n";
    for (const TraceProvenance &trace : manifest.traces) {
        std::cout << "trace " << trace.name << ": "
                  << TextTable::grouped(trace.records) << " records, "
                  << trace.caches << " caches, source "
                  << trace.source;
        if (!trace.path.empty())
            std::cout << " (" << trace.path << ")";
        std::cout << '\n';
    }
    for (const auto &[name, value] : manifest.env)
        std::cout << "env " << name << "=" << value << '\n';
    std::cout << '\n';
}

/** One tracer distribution as a value/count/fraction table. */
void
renderOneDistribution(const MetricRegistry &metrics,
                      const std::string &name, const char *title)
{
    const std::string prefix = "trace.dist." + name;
    if (!metrics.has(prefix + ".samples"))
        return;
    const std::uint64_t samples = metrics.counter(prefix + ".samples");
    if (samples == 0)
        return;
    std::cout << '\n' << title << " (" << TextTable::grouped(samples)
              << " samples)\n";
    TextTable table({"value", "count", "fraction"});
    const auto row = [&](const std::string &label,
                         std::uint64_t count) {
        table.addRow({label, TextTable::grouped(count),
                      TextTable::fixed(static_cast<double>(count)
                                           / static_cast<double>(
                                               samples),
                                       4)});
    };
    for (std::size_t v = 0; v < traceDistBuckets; ++v) {
        const std::string key = prefix + "." + std::to_string(v);
        if (metrics.has(key))
            row(std::to_string(v), metrics.counter(key));
    }
    if (metrics.has(prefix + ".overflow"))
        row(">=" + std::to_string(traceDistBuckets),
            metrics.counter(prefix + ".overflow"));
    table.print(std::cout);
}

/** The tracer's trace.dist.* sections, when the run carried them. */
void
renderTraceDistributions(const RunArtifacts &artifacts)
{
    if (!artifacts.hasMetrics)
        return;
    renderOneDistribution(
        artifacts.metrics, "inval_on_clean_write",
        "Figure 1 (tracer): caches invalidated on a write to a "
        "clean block");
    renderOneDistribution(artifacts.metrics, "sharer_set_size",
                          "Tracer: sharer-set size at clean-block "
                          "writes (writer included)");
    renderOneDistribution(artifacts.metrics, "write_run_length",
                          "Tracer: write-run length (consecutive "
                          "writes by one cache before a handoff)");
}

int
render(const std::string &path)
{
    const RunArtifacts artifacts = loadArtifacts(path);
    if (artifacts.hasManifest)
        printManifest(artifacts.manifest);

    const std::vector<SchemeResults> grid =
        toSchemeResults(artifacts.cells);
    fatalIf(grid.empty(), "'", path, "' holds no cell records");

    std::cout << "Table 4: event frequencies (percent of all "
                 "references)\n";
    eventFrequencyTable(grid, true).print(std::cout);

    std::cout << "\nTable 5: bus cycles per reference (pipelined "
                 "bus)\n";
    costBreakdownTable(grid, paperPipelinedCosts()).print(std::cout);

    std::cout << "\nTable 5b: bus cycles per reference "
                 "(non-pipelined bus)\n";
    costBreakdownTable(grid, paperNonPipelinedCosts())
        .print(std::cout);

    std::cout << "\nFigure 2: cycles per reference on both buses "
                 "(averaged)\n";
    busCyclesTable(grid).print(std::cout);

    std::cout << "\nFigure 3: cycles per reference on both buses "
                 "(per trace)\n";
    busCyclesTable(grid, true).print(std::cout);

    // Per-cell execution metadata the text reports never had.
    std::cout << "\nExecution: wall time and phase split per cell\n";
    TextTable timing({"scheme", "trace", "refs", "wall s", "refs/s",
                      "read ms", "warmup ms", "simulate ms",
                      "reduce ms"});
    const auto ms = [](std::uint64_t ns) {
        return TextTable::fixed(static_cast<double>(ns) / 1e6, 2);
    };
    for (const CellRecord &cell : artifacts.cells) {
        timing.addRow(
            {cell.scheme, cell.trace,
             TextTable::grouped(cell.totalRefs),
             TextTable::fixed(cell.wallSeconds, 3),
             TextTable::grouped(static_cast<std::uint64_t>(
                 cell.refsPerSecond())),
             ms(cell.phases.get(Phase::Read)),
             ms(cell.phases.get(Phase::Warmup)),
             ms(cell.phases.get(Phase::Simulate)),
             ms(cell.phases.get(Phase::Reduce))});
    }
    timing.print(std::cout);

    // Runs traced with DIRSIM_TRACE_SAMPLE carry exact protocol
    // distributions in their metrics record (obs/tracer.hh); the
    // invalidation distribution is the paper's Figure 1 re-rendered
    // from the tracer instead of the per-cell histograms.
    renderTraceDistributions(artifacts);
    return 0;
}

/** --diff-clean: the scriptable assertion form. */
int
diffClean(const std::string &path_a, const std::string &path_b)
{
    const RunArtifacts a = loadArtifacts(path_a);
    const RunArtifacts b = loadArtifacts(path_b);
    const std::vector<MetricDelta> deltas = diffArtifacts(a, b);
    if (deltas.empty()) {
        std::cout << "diff clean: " << a.cells.size()
                  << " cell(s)\n";
        return 0;
    }
    std::cerr << "diff NOT clean: " << deltas.size()
              << " delta(s); first: "
              << (deltas[0].cell.empty() ? "<run>" : deltas[0].cell)
              << " " << deltas[0].metric << " " << deltas[0].a
              << " != " << deltas[0].b << '\n';
    return 1;
}

int
diff(const std::string &path_a, const std::string &path_b)
{
    const RunArtifacts a = loadArtifacts(path_a);
    const RunArtifacts b = loadArtifacts(path_b);
    const std::vector<MetricDelta> deltas = diffArtifacts(a, b);
    if (deltas.empty()) {
        std::cout << "no deltas: " << a.cells.size()
                  << " cells match across all deterministic "
                     "metrics\n";
        return 0;
    }
    TextTable table({"cell", "metric", path_a, path_b});
    for (const MetricDelta &delta : deltas)
        table.addRow({delta.cell, delta.metric, delta.a, delta.b});
    table.print(std::cout);
    std::cout << deltas.size() << " delta(s)\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (args.size() == 1 && args[0] != "--diff")
            return render(args[0]);
        if (args.size() == 3 && args[0] == "--diff")
            return diff(args[1], args[2]);
        if (args.size() == 3 && args[0] == "--diff-clean")
            return diffClean(args[1], args[2]);
    } catch (const SimulationError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    }
    std::cerr << "usage: dirsim_report <results.jsonl>\n"
                 "       dirsim_report --diff <a.jsonl> <b.jsonl>\n"
                 "       dirsim_report --diff-clean <a.jsonl> "
                 "<b.jsonl>\n";
    return 2;
}
