# Round-trip smoke test for the trace_tool example: generate ->
# convert -> filter -> stats -> simulate must all succeed.
function(run)
    execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
    endif()
endfunction()

set(bin "${WORKDIR}/tt_smoke.trace")
set(txt "${WORKDIR}/tt_smoke.txt")
set(filtered "${WORKDIR}/tt_smoke_nolocks.trace")

run(${TOOL} generate pops 40000 5 ${bin})
run(${TOOL} convert ${bin} ${txt})
run(${TOOL} stats ${txt})
run(${TOOL} filter --no-locks ${bin} ${filtered})
run(${TOOL} simulate ${filtered} Dir0B)
