#!/usr/bin/env bash
# The dirsim_serve end-to-end smoke (docs/sweep.md):
#
#  1. Start the daemon on an ephemeral port.
#  2. POST a sweep spec through the bundled client, stream its
#     progress events to completion, and GET the artifacts.
#  3. dirsim_report --diff-clean against a local dirsim_sweep run of
#     the same spec: the daemon computes exactly what the CLI does.
#  4. A malformed spec gets a 400 (client exit 1) and a full queue a
#     429 — and the daemon keeps serving after both.
#  5. POST /shutdown stops the daemon cleanly.
#
# Usage: dirsim_serve_test.sh <dirsim_serve> <dirsim_sweep>
#                             <dirsim_report> <workdir>
set -u

SERVE=$1
SWEEP=$2
REPORT=$3
WORKDIR=$4

work="$WORKDIR/serve_e2e"
rm -rf "$work"
mkdir -p "$work"
cd "$work"

fail() {
    echo "FAIL: $*" >&2
    [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null
    exit 1
}

cat > spec.json <<'EOF'
{
  "name": "e2e",
  "schemes": ["Dir0B", "WTI"],
  "traces": [{"profile": "pops", "refs": 20000, "seed": 5}],
  "block_bytes": [16, 32]
}
EOF
echo '{"name":"bad","schemes":["Nope"],"traces":[{"profile":"pops"}]}' \
    > bad.json

# 1. Daemon on an ephemeral port; parse the startup line.
"$SERVE" --port 0 --queue 2 > daemon.log 2>&1 &
daemon_pid=$!
port=""
for _ in $(seq 50); do
    port=$(sed -n 's/^dirsim_serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        daemon.log)
    [ -n "$port" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died at startup"
    sleep 0.1
done
[ -n "$port" ] && [ "$port" -gt 0 ] || fail "no startup line in daemon.log"

# 2. Submit, stream to completion, fetch artifacts.
id=$("$SERVE" submit spec.json --port "$port" 2>/dev/null) \
    || fail "submit rejected a valid spec"
"$SERVE" wait "$id" --port "$port" > events.jsonl 2>/dev/null \
    || fail "run $id did not finish done"
grep -q '"kind":"progress"' events.jsonl \
    || fail "event stream carried no progress events"
grep -q '"state":"done"' events.jsonl \
    || fail "event stream never reached state done"
"$SERVE" get "$id" --port "$port" --out served.jsonl \
    || fail "artifact fetch failed"

# 3. The served artifacts equal a local run of the same spec.
"$SWEEP" run spec.json --out local > /dev/null 2>&1 \
    || fail "local dirsim_sweep run failed"
"$REPORT" --diff-clean served.jsonl local/results.jsonl \
    || fail "served artifacts diverge from the local run"

# 4a. Malformed spec: 400, client exit 1, daemon survives.
"$SERVE" submit bad.json --port "$port" > /dev/null 2> bad.err
rc=$?
[ "$rc" -eq 1 ] || fail "bad spec should fail with 1, got $rc"
grep -q "HTTP 400" bad.err || fail "bad spec did not produce a 400"

# 5. Clean shutdown of the first daemon.
"$SERVE" shutdown --port "$port" > /dev/null \
    || fail "shutdown request failed"
for _ in $(seq 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$daemon_pid" 2>/dev/null && fail "daemon ignored /shutdown"
grep -q "dirsim_serve stopped" daemon.log \
    || fail "daemon did not log a clean stop"
daemon_pid=""

# 6. Full queue: a second daemon with --hold parks the worker, so
# the capacity-2 queue fills deterministically and the third submit
# gets a 429 — without killing the daemon.
"$SERVE" --port 0 --queue 2 --hold > held.log 2>&1 &
daemon_pid=$!
port=""
for _ in $(seq 50); do
    port=$(sed -n 's/^dirsim_serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        held.log)
    [ -n "$port" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || fail "held daemon died"
    sleep 0.1
done
[ -n "$port" ] || fail "no startup line in held.log"
"$SERVE" submit spec.json --port "$port" > /dev/null 2>&1 \
    || fail "first held submit should queue"
"$SERVE" submit spec.json --port "$port" > /dev/null 2>&1 \
    || fail "second held submit should queue"
"$SERVE" submit spec.json --port "$port" > /dev/null 2> q.err
rc=$?
[ "$rc" -eq 1 ] || fail "overflow submit should fail with 1, got $rc"
grep -q "HTTP 429" q.err || fail "full queue did not produce a 429"
# Daemon still answers after the 429 ...
"$SERVE" status --port "$port" > /dev/null \
    || fail "daemon unresponsive after 429"
# ... and still shuts down cleanly with runs parked in its queue.
"$SERVE" shutdown --port "$port" > /dev/null \
    || fail "held daemon shutdown request failed"
for _ in $(seq 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$daemon_pid" 2>/dev/null && fail "held daemon ignored /shutdown"
echo "serve e2e OK (run $id)"
