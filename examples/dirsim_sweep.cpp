/**
 * @file
 * Example: `dirsim_sweep` — run, resume, inspect, and report
 * parameter sweeps described by JSON specs (docs/sweep.md).
 *
 * Usage:
 *   dirsim_sweep run <spec.json> [--out DIR] [--jobs N]
 *                    [--max-cells K] [--force]
 *   dirsim_sweep resume <spec.json> [--out DIR] [--jobs N]
 *   dirsim_sweep plan <spec.json>
 *   dirsim_sweep report <DIR | results.jsonl>
 *
 * `run` executes the sweep with a FileCellCache at <out>/cells, so
 * every finished cell persists immediately; on completion the
 * artifacts land in <out>/results.jsonl. An interrupted run (the
 * --max-cells budget, Ctrl-C before results were written) is resumed
 * by running the same spec against the same --out directory —
 * `resume` is a readability alias for exactly that. Finished cells
 * replay from the cache (`runner.cache.hits`) and only the remainder
 * simulates. --force clears the cache first for a from-scratch run.
 *
 * `--max-cells K` stops dispatching new cells after K cells have
 * been *simulated* (cache hits are free) and exits with status 3 —
 * the deterministic stand-in for an interrupt, used by the tier-1
 * resume smoke test.
 *
 * `report` renders the deterministic tables (event frequencies,
 * cost breakdowns) from a sweep's artifacts — no wall-clock fields,
 * so an interrupted-then-resumed sweep reports byte-identically to
 * an uninterrupted one.
 *
 * Exit status: 0 done, 2 usage errors, 3 interrupted (budget).
 */

#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dirsim/dirsim.hh"

namespace
{

using namespace dirsim;

/** Parsed command line after the subcommand. */
struct SweepCliArgs
{
    std::string spec;
    std::string out;
    unsigned jobs = 1;
    std::uint64_t maxCells = 0;
    bool force = false;
};

int
usage()
{
    std::cerr
        << "usage: dirsim_sweep run <spec.json> [--out DIR] "
           "[--jobs N] [--max-cells K] [--force]\n"
           "       dirsim_sweep resume <spec.json> [--out DIR] "
           "[--jobs N]\n"
           "       dirsim_sweep plan <spec.json>\n"
           "       dirsim_sweep report <DIR | results.jsonl>\n";
    return 2;
}

SweepCliArgs
parseArgs(const std::vector<std::string> &args)
{
    SweepCliArgs parsed;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto next = [&]() -> const std::string & {
            fatalIf(i + 1 >= args.size(), "option ", arg,
                    " needs a value");
            return args[++i];
        };
        if (arg == "--out") {
            parsed.out = next();
        } else if (arg == "--jobs") {
            parsed.jobs = static_cast<unsigned>(
                std::stoul(next()));
        } else if (arg == "--max-cells") {
            parsed.maxCells = std::stoull(next());
        } else if (arg == "--force") {
            parsed.force = true;
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option '", arg, "'");
        } else {
            fatalIf(!parsed.spec.empty(),
                    "unexpected argument '", arg, "'");
            parsed.spec = arg;
        }
    }
    fatalIf(parsed.spec.empty(), "missing <spec.json>");
    return parsed;
}

int
planCommand(const SweepCliArgs &args)
{
    const SweepSpec spec = loadSweepSpec(args.spec);
    const SweepPlan plan = expandSweep(spec);
    std::cout << "sweep " << spec.name << ": "
              << plan.cells.size() << " cells ("
              << plan.traces.size() << " traces x "
              << plan.schemes.size() << " schemes x "
              << spec.blockBytes.size() << " blocks x "
              << spec.geometries.size() << " geometries x "
              << spec.shards.size() << " shard counts), ~"
              << TextTable::grouped(plan.targetCellRefs())
              << " generated refs\n\n";
    TextTable table({"cell", "scheme", "block", "geometry",
                     "shards"});
    for (const SweepCell &cell : plan.cells)
        table.addRow({cell.label, cell.scheme.name(),
                      std::to_string(cell.blockBytes),
                      cell.geometry.label(),
                      std::to_string(cell.shards)});
    table.print(std::cout);
    return 0;
}

int
runCommand(const SweepCliArgs &args)
{
    const SweepSpec spec = loadSweepSpec(args.spec);
    const SweepPlan plan = expandSweep(spec);

    const std::filesystem::path out = args.out.empty()
        ? std::filesystem::path(spec.name + ".sweep")
        : std::filesystem::path(args.out);
    const std::filesystem::path cache_dir = out / "cells";
    if (args.force)
        std::filesystem::remove_all(cache_dir);
    std::filesystem::create_directories(out);

    SweepOptions options;
    options.jobs = args.jobs;
    options.cache =
        std::make_shared<FileCellCache>(cache_dir.string());
    options.maxSimulatedCells = args.maxCells;
    options.onProgress = [&](const GridProgress &progress) {
        std::cerr << "[" << progress.completedCells << "/"
                  << progress.totalCells << "] "
                  << progress.cell.traceName << " "
                  << progress.cell.scheme
                  << (progress.cell.cacheHit ? " (cached)" : "")
                  << '\n';
    };

    const SweepOutcome outcome = runSweep(plan, options);
    if (!outcome.completed) {
        std::cerr << "sweep " << spec.name << " interrupted: "
                  << outcome.records.size() << "/"
                  << plan.cells.size()
                  << " cells finished; finished cells are cached "
                     "under "
                  << cache_dir.string()
                  << "\nresume with: dirsim_sweep resume "
                  << args.spec << " --out " << out.string() << '\n';
        return 3;
    }

    const std::filesystem::path results = out / "results.jsonl";
    JsonlSink sink(results.string());
    writeSweepArtifacts(outcome, sink);
    std::cout << "sweep " << spec.name << ": "
              << outcome.records.size() << " cells ("
              << outcome.cacheHits << " cached, "
              << outcome.cacheMisses << " simulated) -> "
              << results.string() << '\n';
    return 0;
}

int
reportCommand(const std::string &target)
{
    std::filesystem::path path(target);
    if (std::filesystem::is_directory(path))
        path /= "results.jsonl";
    const RunArtifacts artifacts = loadArtifacts(path.string());
    const std::vector<SchemeResults> grid =
        toSchemeResults(artifacts.cells);
    fatalIf(grid.empty(), "'", path.string(),
            "' holds no cell records");

    // Deterministic fields only: two runs of the same finished sweep
    // (interrupted + resumed or not) print byte-identical reports.
    std::cout << "sweep cells: " << artifacts.cells.size() << '\n';
    std::cout << "\nEvent frequencies (percent of all references)\n";
    eventFrequencyTable(grid, true).print(std::cout);
    std::cout << "\nBus cycles per reference (pipelined bus)\n";
    costBreakdownTable(grid, paperPipelinedCosts()).print(std::cout);
    std::cout << "\nBus cycles per reference (non-pipelined bus)\n";
    costBreakdownTable(grid, paperNonPipelinedCosts())
        .print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    const std::string &command = args[0];
    const std::vector<std::string> rest(args.begin() + 1,
                                        args.end());
    try {
        if (command == "plan")
            return planCommand(parseArgs(rest));
        if (command == "run" || command == "resume")
            return runCommand(parseArgs(rest));
        if (command == "report" && rest.size() == 1)
            return reportCommand(rest[0]);
    } catch (const SimulationError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    } catch (const std::exception &error) {
        // Bad numeric flags (std::stoul) and the like: usage, not
        // a crash.
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    }
    return usage();
}
