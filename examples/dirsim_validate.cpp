/**
 * @file
 * Example: `dirsim_validate` — lint trace files before trusting a
 * simulation campaign to them.
 *
 * Streams each file through the validating readers (header sanity,
 * record-count/length consistency, per-record cpu/pid/type/flag
 * legality, binary-v2 checksum) in bounded memory, and prints the
 * Table 3 style TraceStats for every file that passes. Exit status:
 * 0 when every file is valid, 1 when any is rejected, 2 on usage
 * errors.
 *
 * Usage:
 *   dirsim_validate <trace-file> [<trace-file>...]
 *
 * Files ending in ".txt" are text traces; everything else is the
 * binary container (see docs/trace-format.md).
 */

#include <iostream>
#include <memory>
#include <string>

#include "dirsim/dirsim.hh"

namespace
{

using namespace dirsim;

bool
isTextPath(const std::string &path)
{
    return path.size() >= 4
        && path.compare(path.size() - 4, 4, ".txt") == 0;
}

void
printStats(const TraceStats &stats)
{
    TextTable table({"metric", "value"});
    table.addRow({"name", stats.name});
    table.addRow({"cpus", std::to_string(stats.numCpus)});
    table.addRow({"processes", TextTable::grouped(stats.numProcesses)});
    table.addRow({"refs", TextTable::grouped(stats.refs)});
    table.addRow({"instr", TextTable::grouped(stats.instr)});
    table.addRow({"data reads", TextTable::grouped(stats.dataReads)});
    table.addRow({"data writes", TextTable::grouped(stats.dataWrites)});
    table.addRow({"user refs", TextTable::grouped(stats.user)});
    table.addRow({"system refs", TextTable::grouped(stats.sys)});
    table.addRow({"lock spin reads",
                  TextTable::grouped(stats.lockSpinReads)});
    table.addRow({"lock writes", TextTable::grouped(stats.lockWrites)});
    table.addRow({"data blocks", TextTable::grouped(stats.dataBlocks)});
    table.addRow({"shared data blocks",
                  TextTable::grouped(stats.sharedDataBlocks)});
    table.addRow({"read/write ratio",
                  TextTable::fixed(stats.readWriteRatio(), 2)});
    table.addRow({"spin reads / reads",
                  TextTable::fixed(stats.spinReadFraction(), 3)});
    table.addRow({"system fraction",
                  TextTable::fixed(stats.systemFraction(), 3)});
    table.addRow({"shared block fraction",
                  TextTable::fixed(stats.sharedBlockFraction(), 3)});
    table.print(std::cout);
}

/** Validate one file; returns true when it is clean. */
bool
validate(const std::string &path)
{
    try {
        // Concrete readers (not openTraceSource) so the report can
        // name the container version.
        std::unique_ptr<TraceSource> source;
        if (isTextPath(path))
            source = std::make_unique<TextTraceReader>(path);
        else
            source = std::make_unique<BinaryTraceReader>(path);

        // computeTraceStats() drains the source, which runs every
        // record-level check and the v2 checksum verification.
        const TraceStats stats = computeTraceStats(*source);

        std::cout << path << ": OK (" << source->format() << ", "
                  << TextTable::grouped(stats.refs) << " records)\n";
        printStats(stats);
        std::cout << '\n';
        return true;
    } catch (const SimulationError &error) {
        std::cout << path << ": INVALID\n";
        std::cerr << "error: " << error.what() << '\n';
        return false;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: dirsim_validate <trace-file> "
                     "[<trace-file>...]\n";
        return 2;
    }
    bool all_ok = true;
    for (int i = 1; i < argc; ++i)
        all_ok = validate(argv[i]) && all_ok;
    return all_ok ? 0 : 1;
}
