/**
 * @file
 * Example: `dirsim_validate` — lint trace files before trusting a
 * simulation campaign to them.
 *
 * Streams each file through the validating readers (header sanity,
 * record-count/length consistency, per-record cpu/pid/type/flag
 * legality, binary-v2 checksum) in bounded memory, and prints the
 * Table 3 style TraceStats for every file that passes. Exit status:
 * 0 when every file is valid, 1 when any is rejected, 2 on usage
 * errors.
 *
 * Usage:
 *   dirsim_validate <trace-file> [<trace-file>...]
 *   dirsim_validate --manifest <results.jsonl>
 *   dirsim_validate --sweep <spec.json>
 *
 * Files ending in ".txt" are text traces; everything else is the
 * binary container (see docs/trace-format.md).
 *
 * With --manifest, the argument is a JSONL results file (see
 * docs/observability.md): every file-sourced trace recorded in the
 * run manifest is re-checksummed on disk with the trace-format-v2
 * FNV-1a and compared against the manifest — catching traces that
 * were moved, truncated, or regenerated since the run.
 *
 * With --sweep, the argument is a sweep spec (docs/sweep.md) and the
 * exhaustive linter runs: unknown scheme names, empty axes, cache
 * counts past the trace format's u16 cpu ids, impossible geometries,
 * and axis repeats that would expand into duplicate cells are ALL
 * reported (not just the first), mirroring the trace-lint mode's
 * exit codes.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "dirsim/dirsim.hh"

namespace
{

using namespace dirsim;

bool
isTextPath(const std::string &path)
{
    return path.size() >= 4
        && path.compare(path.size() - 4, 4, ".txt") == 0;
}

void
printStats(const TraceStats &stats)
{
    TextTable table({"metric", "value"});
    table.addRow({"name", stats.name});
    table.addRow({"cpus", std::to_string(stats.numCpus)});
    table.addRow({"processes", TextTable::grouped(stats.numProcesses)});
    table.addRow({"refs", TextTable::grouped(stats.refs)});
    table.addRow({"instr", TextTable::grouped(stats.instr)});
    table.addRow({"data reads", TextTable::grouped(stats.dataReads)});
    table.addRow({"data writes", TextTable::grouped(stats.dataWrites)});
    table.addRow({"user refs", TextTable::grouped(stats.user)});
    table.addRow({"system refs", TextTable::grouped(stats.sys)});
    table.addRow({"lock spin reads",
                  TextTable::grouped(stats.lockSpinReads)});
    table.addRow({"lock writes", TextTable::grouped(stats.lockWrites)});
    table.addRow({"data blocks", TextTable::grouped(stats.dataBlocks)});
    table.addRow({"shared data blocks",
                  TextTable::grouped(stats.sharedDataBlocks)});
    table.addRow({"read/write ratio",
                  TextTable::fixed(stats.readWriteRatio(), 2)});
    table.addRow({"spin reads / reads",
                  TextTable::fixed(stats.spinReadFraction(), 3)});
    table.addRow({"system fraction",
                  TextTable::fixed(stats.systemFraction(), 3)});
    table.addRow({"shared block fraction",
                  TextTable::fixed(stats.sharedBlockFraction(), 3)});
    table.print(std::cout);
}

/** Validate one file; returns true when it is clean. */
bool
validate(const std::string &path)
{
    try {
        // Concrete readers (not openTraceSource) so the report can
        // name the container version.
        std::unique_ptr<TraceSource> source;
        if (isTextPath(path))
            source = std::make_unique<TextTraceReader>(path);
        else
            source = std::make_unique<BinaryTraceReader>(path);

        // computeTraceStats() drains the source, which runs every
        // record-level check and the v2 checksum verification.
        const TraceStats stats = computeTraceStats(*source);

        std::cout << path << ": OK (" << source->format() << ", "
                  << TextTable::grouped(stats.refs) << " records)\n";
        printStats(stats);
        std::cout << '\n';
        return true;
    } catch (const SimulationError &error) {
        std::cout << path << ": INVALID\n";
        std::cerr << "error: " << error.what() << '\n';
        return false;
    }
}

/** Cross-check a results manifest's trace checksums against disk. */
bool
checkManifest(const std::string &results_path)
{
    const RunArtifacts artifacts = loadArtifacts(results_path);
    if (!artifacts.hasManifest) {
        std::cerr << "error: '" << results_path
                  << "' holds no run manifest\n";
        return false;
    }
    bool all_ok = true;
    std::size_t checked = 0;
    for (const TraceProvenance &trace : artifacts.manifest.traces) {
        if (trace.source != "file" || !trace.hasChecksum) {
            std::cout << trace.name << ": SKIPPED (source '"
                      << trace.source << "', no file checksum)\n";
            continue;
        }
        ++checked;
        try {
            const std::uint64_t on_disk =
                fileChecksumFnv64(trace.path);
            if (on_disk == trace.checksum) {
                std::cout << trace.name << ": OK (" << trace.path
                          << ")\n";
            } else {
                std::cout << trace.name << ": MISMATCH ("
                          << trace.path
                          << " changed since the run)\n";
                all_ok = false;
            }
        } catch (const SimulationError &) {
            std::cout << trace.name << ": MISSING (" << trace.path
                      << " unreadable)\n";
            all_ok = false;
        }
    }
    std::cout << checked << " trace file(s) checked, "
              << (all_ok ? "all match" : "PROBLEMS FOUND") << '\n';
    return all_ok;
}

/** Lint a sweep spec, reporting every problem found. */
bool
checkSweepSpec(const std::string &spec_path)
{
    std::ifstream in(spec_path, std::ios::binary);
    if (!in) {
        std::cerr << "error: cannot open sweep spec '" << spec_path
                  << "'\n";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();

    const std::vector<SweepDiagnostic> diagnostics =
        lintSweepSpec(text.str());
    if (diagnostics.empty()) {
        const SweepPlan plan =
            expandSweep(parseSweepSpec(text.str()));
        std::cout << spec_path << ": OK (" << plan.cells.size()
                  << " cells: " << plan.traces.size()
                  << " traces x " << plan.schemes.size()
                  << " schemes x "
                  << plan.spec.blockBytes.size() << " blocks x "
                  << plan.spec.geometries.size()
                  << " geometries x " << plan.spec.shards.size()
                  << " shard counts)\n";
        return true;
    }
    std::cout << spec_path << ": INVALID\n";
    for (const SweepDiagnostic &diagnostic : diagnostics)
        std::cerr << "error: " << diagnostic.where << ": "
                  << diagnostic.message << '\n';
    std::cerr << diagnostics.size() << " problem(s) found\n";
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() == 2 && args[0] == "--manifest") {
        try {
            return checkManifest(args[1]) ? 0 : 1;
        } catch (const SimulationError &error) {
            std::cerr << "error: " << error.what() << '\n';
            return 2;
        }
    }
    if (args.size() == 2 && args[0] == "--sweep") {
        try {
            return checkSweepSpec(args[1]) ? 0 : 1;
        } catch (const SimulationError &error) {
            std::cerr << "error: " << error.what() << '\n';
            return 2;
        }
    }
    if (args.empty() || args[0] == "--manifest"
        || args[0] == "--sweep") {
        std::cerr << "usage: dirsim_validate <trace-file> "
                     "[<trace-file>...]\n"
                     "       dirsim_validate --manifest "
                     "<results.jsonl>\n"
                     "       dirsim_validate --sweep "
                     "<spec.json>\n";
        return 2;
    }
    bool all_ok = true;
    for (const std::string &path : args)
        all_ok = validate(path) && all_ok;
    return all_ok ? 0 : 1;
}
