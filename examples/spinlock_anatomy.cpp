/**
 * @file
 * Example: the anatomy of the Section 5.2 spin-lock pathology.
 *
 * Builds a tiny hand-crafted trace of two processes spinning on a
 * test-and-test-and-set lock while a third holds it, and shows why
 * the single-copy Dir1NB scheme melts down while Dir0B barely
 * notices: the spinners' reads ping-pong the lock block between
 * caches under the single-copy rule.
 */

#include <iostream>

#include "dirsim/dirsim.hh"

namespace
{

using namespace dirsim;

TraceRecord
ref(ProcId pid, RefType type, Addr addr, std::uint8_t flags)
{
    TraceRecord record;
    record.cpu = static_cast<CpuId>(pid);
    record.pid = pid;
    record.type = type;
    record.addr = addr;
    record.flags = flags;
    return record;
}

/** Two waiters spin while pid 0 holds; then a handoff to pid 1. */
Trace
spinScenario(int spin_rounds)
{
    constexpr Addr lock = 0x5000'0000;
    constexpr Addr work = 0x4000'0000;
    Trace trace("spin-anatomy", 4);

    // pid 0 takes the free lock.
    trace.append(ref(0, RefType::Read, lock, flagLockSpin));
    trace.append(ref(0, RefType::Write, lock, flagLockWrite));
    // pids 1 and 2 spin alternately while pid 0 works.
    for (int round = 0; round < spin_rounds; ++round) {
        trace.append(ref(1, RefType::Read, lock, flagLockSpin));
        trace.append(ref(2, RefType::Read, lock, flagLockSpin));
        trace.append(ref(0, RefType::Read, work + 16 * (round % 4),
                         flagNone));
    }
    // pid 0 releases; pid 1 wins the handoff.
    trace.append(ref(0, RefType::Write, lock, flagLockWrite));
    trace.append(ref(1, RefType::Read, lock, flagLockSpin));
    trace.append(ref(1, RefType::Write, lock, flagLockWrite));
    return trace;
}

} // namespace

int
main()
{
    const Trace trace = spinScenario(20);
    const BusCosts bus = paperPipelinedCosts();

    std::cout << "trace: 1 lock holder, 2 spinners, "
              << trace.size() << " references\n\n";

    TextTable table({"scheme", "rd-hit", "rd-miss", "inval msgs",
                     "bus cycles", "cycles/ref"});
    for (const char *scheme : {"Dir1NB", "Dir0B", "DirNNB", "Dragon"}) {
        const SimResult result = simulateTrace(trace, scheme);
        const CycleBreakdown cost = result.cost(bus);
        table.addRow({
            scheme,
            std::to_string(result.events.count(EventType::RdHit)),
            std::to_string(result.events.count(EventType::RdMiss)),
            std::to_string(result.ops.invalMsgs
                           + result.ops.broadcastInvals),
            TextTable::fixed(
                cost.total()
                    * static_cast<double>(result.totalRefs), 0),
            TextTable::fixed(cost.total(), 3),
        });
    }
    table.print(std::cout);

    std::cout <<
        "\nWhat happened: under Dir1NB the two spinners steal the "
        "lock block from\neach other on every test, so nearly every "
        "spin read is a miss plus an\ninvalidation. Dir0B lets both "
        "spinners cache the lock word; only the\nrelease/acquire "
        "writes invalidate. This is the paper's explanation for\n"
        "Dir1NB's 6x penalty and its warning for software schemes "
        "that flush\ncritical sections (they behave like Dir1NB).\n\n"
        "Section 5.2's fix in numbers: run the same comparison on "
        "your own traces\nwith trace filters (excludeLockRefs) -- "
        "see bench/repro_sec5_2_spinlocks.\n";
    return 0;
}
