/**
 * @file
 * Example: `dirsim_serve` — the sweep daemon, plus a built-in client
 * for every endpoint so scripts (and the end-to-end tests) need no
 * external HTTP tooling.
 *
 * Daemon:
 *   dirsim_serve [--port P] [--queue N] [--jobs N]
 *                [--discipline fcfs|round-robin] [--hold]
 *                [--journal DIR]
 *
 * Binds 127.0.0.1 (port 0 = ephemeral), prints one
 * "dirsim_serve listening on 127.0.0.1:<port>" line to stdout, and
 * serves until POST /shutdown. Defaults come from the
 * DIRSIM_SERVE_{PORT,QUEUE,JOBS,DISCIPLINE} environment; flags win.
 * DIRSIM_CACHE_DIR wires the shared cell cache, so re-submitted
 * sweeps replay instead of re-simulating. --journal (or
 * DIRSIM_JOURNAL_DIR) enables the persistent run journal: a
 * restarted daemon replays it and lists its predecessors' runs,
 * with in-flight ones marked "interrupted" (docs/journal.md).
 * DIRSIM_LOG_LEVEL / DIRSIM_LOG_FILE control the structured JSONL
 * log (docs/observability.md).
 *
 * Client subcommands (all take --port P):
 *   dirsim_serve submit <spec.json> [--client NAME]   -> prints id
 *   dirsim_serve wait <id>        stream events until the run ends
 *   dirsim_serve get <id> [--out FILE]     fetch results.jsonl
 *   dirsim_serve diff <a> <b>     compare two finished runs
 *   dirsim_serve cancel <id>
 *   dirsim_serve status           GET /status (active run, uptime,
 *                                 queue depth, journal path)
 *   dirsim_serve metrics          GET /metrics (Prometheus text)
 *   dirsim_serve trace <id> [--out FILE]   GET /runs/{id}/trace
 *   dirsim_serve shutdown
 *
 * Exit status: 0 on success (wait: run finished "done"; diff:
 * clean), 1 on failed/cancelled runs, dirty diffs, or HTTP errors,
 * 2 on usage errors.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dirsim/dirsim.hh"

namespace
{

using namespace dirsim;

int
usage()
{
    std::cerr
        << "usage: dirsim_serve [--port P] [--queue N] [--jobs N] "
           "[--discipline fcfs|round-robin] [--hold] "
           "[--journal DIR]\n"
           "       dirsim_serve submit <spec.json> --port P "
           "[--client NAME]\n"
           "       dirsim_serve wait <id> --port P\n"
           "       dirsim_serve get <id> --port P [--out FILE]\n"
           "       dirsim_serve diff <a> <b> --port P\n"
           "       dirsim_serve cancel <id> --port P\n"
           "       dirsim_serve status --port P\n"
           "       dirsim_serve metrics --port P\n"
           "       dirsim_serve trace <id> --port P [--out FILE]\n"
           "       dirsim_serve shutdown --port P\n";
    return 2;
}

/** Flags shared by the client subcommands. */
struct ClientArgs
{
    std::vector<std::string> positional;
    std::uint16_t port = 0;
    std::string client;
    std::string out;
};

ClientArgs
parseClientArgs(const std::vector<std::string> &args)
{
    ClientArgs parsed;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto next = [&]() -> const std::string & {
            fatalIf(i + 1 >= args.size(), "option ", arg,
                    " needs a value");
            return args[++i];
        };
        if (arg == "--port") {
            parsed.port =
                static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "--client") {
            parsed.client = next();
        } else if (arg == "--out") {
            parsed.out = next();
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option '", arg, "'");
        } else {
            parsed.positional.push_back(arg);
        }
    }
    fatalIf(parsed.port == 0,
            "--port is required (the daemon prints its port at "
            "startup)");
    return parsed;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open spec file '", path, "'");
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

/** Print an error body's "error" member when present. */
int
reportHttpError(const HttpClientResponse &response)
{
    std::string message = response.body;
    try {
        const JsonValue json = JsonValue::parse(response.body);
        if (const JsonValue *error = json.find("error"))
            message = error->asString();
    } catch (const SimulationError &) {
        // Not JSON; print the raw body.
    }
    std::cerr << "error: HTTP " << response.status << ": " << message
              << '\n';
    return 1;
}

int
submitCommand(const ClientArgs &args)
{
    fatalIf(args.positional.size() != 1,
            "submit takes exactly one <spec.json>");
    std::vector<std::pair<std::string, std::string>> headers;
    if (!args.client.empty())
        headers.emplace_back("X-Dirsim-Client", args.client);
    const HttpClientResponse response =
        httpRequest(args.port, "POST", "/runs",
                    readFile(args.positional[0]), headers);
    if (response.status != 202)
        return reportHttpError(response);
    const JsonValue json = JsonValue::parse(response.body);
    std::cout << json.at("id").asU64() << '\n';
    std::cerr << "queued run " << json.at("id").asU64() << " ("
              << json.at("name").asString() << ", "
              << json.at("cells").asU64() << " cells)\n";
    return 0;
}

int
waitCommand(const ClientArgs &args)
{
    fatalIf(args.positional.size() != 1,
            "wait takes exactly one <id>");
    std::string final_state;
    const int status = httpStreamLines(
        args.port, "/runs/" + args.positional[0] + "/events",
        [&](const std::string &line) {
            std::cout << line << '\n';
            try {
                const JsonValue json = JsonValue::parse(line);
                if (const JsonValue *kind = json.find("kind");
                    kind && kind->asString() == "state")
                    final_state = json.at("state").asString();
            } catch (const SimulationError &) {
                // Tolerate non-JSON lines; keep streaming.
            }
            return true;
        });
    if (status != 200) {
        std::cerr << "error: HTTP " << status << '\n';
        return 1;
    }
    std::cerr << "run " << args.positional[0] << ": "
              << (final_state.empty() ? "stream ended"
                                      : final_state)
              << '\n';
    return final_state == "done" ? 0 : 1;
}

int
getCommand(const ClientArgs &args)
{
    fatalIf(args.positional.size() != 1,
            "get takes exactly one <id>");
    const HttpClientResponse response =
        httpRequest(args.port, "GET",
                    "/runs/" + args.positional[0] + "/artifacts");
    if (response.status != 200)
        return reportHttpError(response);
    if (args.out.empty()) {
        std::cout << response.body;
        return 0;
    }
    std::ofstream out(args.out, std::ios::binary);
    fatalIf(!out, "cannot write '", args.out, "'");
    out << response.body;
    fatalIf(!out.good(), "write to '", args.out, "' failed");
    return 0;
}

int
diffCommand(const ClientArgs &args)
{
    fatalIf(args.positional.size() != 2,
            "diff takes exactly two run ids");
    const HttpClientResponse response = httpRequest(
        args.port, "GET",
        "/runs/" + args.positional[0] + "/diff/"
            + args.positional[1]);
    if (response.status != 200)
        return reportHttpError(response);
    std::cout << response.body << '\n';
    const JsonValue json = JsonValue::parse(response.body);
    return json.at("clean").asBool() ? 0 : 1;
}

int
cancelCommand(const ClientArgs &args)
{
    fatalIf(args.positional.size() != 1,
            "cancel takes exactly one <id>");
    const HttpClientResponse response = httpRequest(
        args.port, "POST",
        "/runs/" + args.positional[0] + "/cancel");
    if (response.status != 200)
        return reportHttpError(response);
    std::cout << response.body << '\n';
    return 0;
}

int
statusCommand(const ClientArgs &args)
{
    const HttpClientResponse response =
        httpRequest(args.port, "GET", "/status");
    if (response.status != 200)
        return reportHttpError(response);
    std::cout << response.body << '\n';
    return 0;
}

int
metricsCommand(const ClientArgs &args)
{
    const HttpClientResponse response =
        httpRequest(args.port, "GET", "/metrics");
    if (response.status != 200)
        return reportHttpError(response);
    std::cout << response.body;
    return 0;
}

int
traceCommand(const ClientArgs &args)
{
    fatalIf(args.positional.size() != 1,
            "trace takes exactly one <id>");
    const HttpClientResponse response =
        httpRequest(args.port, "GET",
                    "/runs/" + args.positional[0] + "/trace");
    if (response.status != 200)
        return reportHttpError(response);
    if (args.out.empty()) {
        std::cout << response.body;
        return 0;
    }
    std::ofstream out(args.out, std::ios::binary);
    fatalIf(!out, "cannot write '", args.out, "'");
    out << response.body;
    fatalIf(!out.good(), "write to '", args.out, "' failed");
    return 0;
}

int
shutdownCommand(const ClientArgs &args)
{
    const HttpClientResponse response =
        httpRequest(args.port, "POST", "/shutdown");
    if (response.status != 200)
        return reportHttpError(response);
    std::cout << response.body << '\n';
    return 0;
}

int
daemonCommand(const std::vector<std::string> &args)
{
    ServeConfig config = ServeConfig::fromEnvironment();
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto next = [&]() -> const std::string & {
            fatalIf(i + 1 >= args.size(), "option ", arg,
                    " needs a value");
            return args[++i];
        };
        if (arg == "--port") {
            config.port =
                static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "--queue") {
            config.queueCapacity = std::stoull(next());
        } else if (arg == "--jobs") {
            config.jobs =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--discipline") {
            config.discipline = next();
        } else if (arg == "--hold") {
            config.hold = true;
        } else if (arg == "--journal") {
            config.journalDir = next();
        } else {
            fatal("unknown option '", arg, "'");
        }
    }

    SweepServer server(config);
    server.start();
    // The parseable startup line scripts wait for.
    std::cout << "dirsim_serve listening on 127.0.0.1:"
              << server.port() << std::endl;
    server.waitForShutdown();
    server.stop();
    std::cout << "dirsim_serve stopped\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (!args.empty() && !args[0].empty() && args[0][0] != '-') {
            const std::string &command = args[0];
            const std::vector<std::string> rest(args.begin() + 1,
                                                args.end());
            if (command == "submit")
                return submitCommand(parseClientArgs(rest));
            if (command == "wait")
                return waitCommand(parseClientArgs(rest));
            if (command == "get")
                return getCommand(parseClientArgs(rest));
            if (command == "diff")
                return diffCommand(parseClientArgs(rest));
            if (command == "cancel")
                return cancelCommand(parseClientArgs(rest));
            if (command == "status")
                return statusCommand(parseClientArgs(rest));
            if (command == "metrics")
                return metricsCommand(parseClientArgs(rest));
            if (command == "trace")
                return traceCommand(parseClientArgs(rest));
            if (command == "shutdown")
                return shutdownCommand(parseClientArgs(rest));
            return usage();
        }
        return daemonCommand(args);
    } catch (const SimulationError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    } catch (const std::exception &error) {
        // Bad numeric flags (std::stoul) and the like: usage, not
        // a crash.
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    }
}
