# Determinism test for the dirsim_scaling example: two identically
# seeded small-N sweeps, with the coherence invariant checker on, must
# write artifacts that diff clean under dirsim_report --diff for every
# N and render byte-identical curve reports.
function(run)
    execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
    endif()
endfunction()

set(ns "4,6,13")
set(env ${CMAKE_COMMAND} -E env
    DIRSIM_SCALING_NS=${ns} DIRSIM_SCALING_REFS=40000
    DIRSIM_SCALING_SEED=7 DIRSIM_SCALING_CLUSTER=3)
set(dir_a "${WORKDIR}/scaling_a")
set(dir_b "${WORKDIR}/scaling_b")

run(${env} ${SCALING} run ${dir_a} --invariants 1000)
run(${env} ${SCALING} run ${dir_b} --invariants 1000)

foreach(n 4 6 13)
    run(${REPORT} ${dir_a}/scale${n}.jsonl)
    run(${env} ${REPORT} --diff
        ${dir_a}/scale${n}.jsonl ${dir_b}/scale${n}.jsonl)
endforeach()

foreach(tag a b)
    execute_process(COMMAND ${env} ${SCALING} report ${dir_${tag}}
                    RESULT_VARIABLE rc
                    OUTPUT_FILE ${WORKDIR}/scaling_report_${tag}.txt)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "scaling report ${tag} failed (${rc})")
    endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/scaling_report_a.txt
                ${WORKDIR}/scaling_report_b.txt
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "scaling reports differ between two runs")
endif()

# Usage errors must exit 2, never crash.
execute_process(COMMAND ${SCALING} RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 2)
    message(FATAL_ERROR "dirsim_scaling accepted no arguments (rc=${rc})")
endif()
