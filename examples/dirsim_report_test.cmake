# Smoke test for the dirsim_report example: produce a small results
# file through a repro benchmark's --jsonl flag, re-render the paper
# tables from it, check that a self-diff reports zero deltas, and
# cross-check the embedded manifest with dirsim_validate --manifest.
function(run)
    execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
    endif()
endfunction()

set(results "${WORKDIR}/report_smoke.jsonl")

run(${CMAKE_COMMAND} -E env DIRSIM_SUITE_REFS=20000
    ${BENCH} --jsonl ${results})
run(${REPORT} ${results})
run(${REPORT} --diff ${results} ${results})
run(${VALIDATOR} --manifest ${results})

# A missing results file must fail cleanly (exit 2, no crash).
execute_process(COMMAND ${REPORT} ${WORKDIR}/no_such_results.jsonl
                RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 2)
    message(FATAL_ERROR
        "dirsim_report accepted a missing file (rc=${rc})")
endif()
