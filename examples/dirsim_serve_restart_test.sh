#!/usr/bin/env bash
# The dirsim_serve kill-and-restart smoke (docs/journal.md):
#
#  1. Start the daemon with a run journal and a cell cache, submit a
#     multi-cell sweep, and SIGKILL the daemon after the first
#     progress event — no shutdown handshake, mid-sweep, exactly the
#     crash the journal exists for.
#  2. Restart the daemon on the same journal directory: the dead
#     daemon's run must be listed, in state "interrupted".
#  3. Resubmit the same spec: the completed cells replay from the
#     cell cache (runner.cache.hits > 0 on /metrics) and the run
#     finishes "done".
#  4. The recovered artifacts diff clean against an uninterrupted
#     local dirsim_sweep run, and render a byte-identical report.
#
# Usage: dirsim_serve_restart_test.sh <dirsim_serve> <dirsim_sweep>
#                                     <dirsim_report> <workdir>
set -u

SERVE=$1
SWEEP=$2
REPORT=$3
WORKDIR=$4

work="$WORKDIR/serve_restart"
rm -rf "$work"
mkdir -p "$work"
cd "$work"

fail() {
    echo "FAIL: $*" >&2
    [ -n "${daemon_pid:-}" ] && kill -9 "$daemon_pid" 2>/dev/null
    exit 1
}

# Big enough that the kill lands mid-sweep (8 cells, sequential
# under --jobs 1), small enough to stay a smoke test.
cat > spec.json <<'EOF'
{
  "name": "restart",
  "schemes": ["Dir0B", "Dir1B", "Dir4NB", "WTI"],
  "traces": [{"profile": "pops", "refs": 10000000, "seed": 7}],
  "block_bytes": [16, 32]
}
EOF

export DIRSIM_CACHE_DIR="$work/cache"

start_daemon() { # <logfile> -> sets daemon_pid and port
    "$SERVE" --port 0 --jobs 1 --journal "$work/journal" \
        > "$1" 2>&1 &
    daemon_pid=$!
    port=""
    for _ in $(seq 100); do
        port=$(sed -n \
            's/^dirsim_serve listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
            "$1")
        [ -n "$port" ] && break
        kill -0 "$daemon_pid" 2>/dev/null \
            || fail "daemon died at startup ($1)"
        sleep 0.1
    done
    [ -n "$port" ] && [ "$port" -gt 0 ] \
        || fail "no startup line in $1"
}

# 1. Submit, watch the journal (flushed per record), and SIGKILL the
# daemon as soon as the first cell completes.
journal_file="$work/journal/journal.jsonl"
start_daemon daemon1.log
id=$("$SERVE" submit spec.json --port "$port" 2>/dev/null) \
    || fail "submit rejected the spec"
[ "$id" = "1" ] || fail "first run should get id 1, got $id"
# Generous timeout: sanitizer builds run the first cell 10-20x
# slower; on a plain build the kill still lands within ~300 ms.
progressed=""
for _ in $(seq 1200); do
    if grep -q '"kind":"cell"' "$journal_file" 2>/dev/null; then
        progressed=1
        break
    fi
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died unprompted"
    sleep 0.1
done
[ -n "$progressed" ] || fail "no cell record before the timeout"
kill -9 "$daemon_pid" || fail "SIGKILL failed"
wait "$daemon_pid" 2>/dev/null
daemon_pid=""
grep -q '"kind":"finished"' "$journal_file" \
    && fail "run finished before the kill; spec is too small"

# 2. A restarted daemon replays the journal and lists the run as
# interrupted.
start_daemon daemon2.log
"$SERVE" status --port "$port" > status.json \
    || fail "status failed after restart"
grep -q '"runs_interrupted":1' status.json \
    || fail "restart did not surface the interrupted run: $(cat status.json)"

# 3. Resubmitting the same spec resumes from the cell cache.
id2=$("$SERVE" submit spec.json --port "$port" 2>/dev/null) \
    || fail "resubmit rejected the spec"
[ "$id2" = "2" ] || fail "resubmit should get id 2, got $id2"
"$SERVE" wait "$id2" --port "$port" > events2.jsonl 2>/dev/null \
    || fail "resubmitted run did not finish done"
"$SERVE" metrics --port "$port" > metrics.txt \
    || fail "metrics scrape failed"
hits=$(sed -n 's/^dirsim_sweep_runner_cache_hits \([0-9]*\)$/\1/p' \
    metrics.txt)
[ -n "$hits" ] && [ "$hits" -gt 0 ] \
    || fail "resumed run reported no cache hits (got '${hits:-absent}')"

# 4. The recovered artifacts equal an uninterrupted local run, down
# to the rendered report bytes.
"$SERVE" get "$id2" --port "$port" --out served.jsonl \
    || fail "artifact fetch failed"
DIRSIM_CACHE_DIR= "$SWEEP" run spec.json --out local > /dev/null 2>&1 \
    || fail "local control sweep failed"
"$REPORT" --diff-clean served.jsonl local/results.jsonl \
    || fail "recovered artifacts diverge from the control run"
"$REPORT" served.jsonl > served.report || fail "report render failed"
"$REPORT" local/results.jsonl > local.report \
    || fail "control report render failed"
# The manifest header and per-cell timing table are wall-clock by
# design; the paper tables in between must match byte for byte.
tables() { awk '/^Table 4:/{go=1} /^Execution:/{go=0} go' "$1"; }
tables served.report > served.tables
tables local.report > local.tables
[ -s served.tables ] || fail "rendered report carried no tables"
cmp -s served.tables local.tables \
    || fail "rendered report tables are not byte-identical"

"$SERVE" shutdown --port "$port" > /dev/null \
    || fail "shutdown request failed"
for _ in $(seq 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$daemon_pid" 2>/dev/null && fail "daemon ignored /shutdown"
daemon_pid=""
echo "serve restart OK (interrupted run $id resumed as $id2, $hits cached cells)"
