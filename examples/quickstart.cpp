/**
 * @file
 * Quickstart: generate a workload trace, simulate two coherence
 * schemes, and compare their bus traffic — the five-minute tour of
 * the dirsim API.
 */

#include <iostream>

#include "dirsim/dirsim.hh"

int
main()
{
    using namespace dirsim;

    // 1. Generate a synthetic 4-CPU workload trace (a stand-in for
    //    the paper's POPS ATUM trace). Deterministic in the seed.
    const Trace trace = generateTrace("pops", 300'000, /* seed */ 7);
    std::cout << "trace '" << trace.name() << "': " << trace.size()
              << " references from " << trace.countProcesses()
              << " processes on " << trace.numCpus() << " CPUs\n";

    // 2. Run it through a directory scheme and a snoopy scheme.
    //    A SimJob names everything one simulation needs — the trace,
    //    the scheme, the parameters — and runJob() is the one entry
    //    point (sim/job.hh; docs/api.md).
    const SimResult dir0b =
        runJob({TraceRef::of(trace), parseScheme("Dir0B")}).result;
    const SimResult dragon =
        runJob({TraceRef::of(trace), parseScheme("Dragon")}).result;

    // 3. Weight the recorded events by a bus cost model.
    const BusCosts bus = paperPipelinedCosts();
    const CycleBreakdown dir0b_cost = dir0b.cost(bus);
    const CycleBreakdown dragon_cost = dragon.cost(bus);

    std::cout << "Dir0B : " << TextTable::fixed(dir0b_cost.total(), 4)
              << " bus cycles/ref (read miss rate "
              << TextTable::pct(
                     dir0b.events.percentOfRefs(EventType::RdMiss))
              << ")\n";
    std::cout << "Dragon: " << TextTable::fixed(dragon_cost.total(), 4)
              << " bus cycles/ref (write updates "
              << TextTable::pct(
                     dragon.events.percentOfRefs(EventType::WhDistrib))
              << ")\n";

    // 4. The paper's headline observation: writes to previously-clean
    //    blocks almost always have at most one remote copy to
    //    invalidate, so small directories suffice.
    std::cout << "writes to clean blocks with <=1 remote copy: "
              << TextTable::pct(
                     100.0
                     * dir0b.cleanWriteHolders.fractionAtMost(1), 1)
              << '\n';
    return 0;
}
