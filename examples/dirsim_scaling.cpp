/**
 * @file
 * Example: `dirsim_scaling` — the cache-count sweep.
 *
 * `run` simulates the scaling scheme grid (sim/scaling.hh) once per
 * cache count N, with the coherence event tracer attached, and writes
 * one JSONL artifacts file per N. `report` re-reads those artifacts
 * and renders the scalability curves the Section 6 debate is about:
 * bus cycles per reference and invalidation traffic as a function of
 * N per scheme, plus the exact invalidation-size distributions the
 * tracer recorded at each machine size.
 *
 * Usage:
 *   dirsim_scaling run <out_dir> [--invariants <period>]
 *   dirsim_scaling report <out_dir>
 *
 * Both modes sweep the cache counts of ScalingParams::fromEnvironment
 * (DIRSIM_SCALING_NS et al.), so a report must run under the same
 * DIRSIM_SCALING_* environment as the run that produced the
 * artifacts. The report renders only deterministic metrics — two runs
 * of the same sweep produce byte-identical reports (and diff clean
 * under `dirsim_report --diff` per N). Exit status: 0 on success, 2
 * on usage errors.
 */

#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dirsim/dirsim.hh"

namespace
{

using namespace dirsim;

std::string
artifactPath(const std::string &out_dir, unsigned num_caches)
{
    return out_dir + "/scale" + std::to_string(num_caches) + ".jsonl";
}

/** Scheme names of the sweep, in grid order. */
std::vector<std::string>
schemeNames()
{
    std::vector<std::string> names;
    for (const SchemeSpec &spec : scalingSchemes())
        names.push_back(spec.name());
    return names;
}

int
run(const std::string &out_dir, std::uint64_t invariant_period)
{
    const ScalingParams params = ScalingParams::fromEnvironment();
    const std::vector<SchemeSpec> schemes = scalingSchemes();
    std::filesystem::create_directories(out_dir);

    SimConfig sim = SimConfig::fromEnvironment();
    sim.invariantCheckPeriod = invariant_period;

    // The tracer rides along on every run so the artifacts carry the
    // exact trace.dist.* distributions; DIRSIM_TRACE_SAMPLE only
    // thins the event timeline, never the distributions.
    TracerConfig tracer_config = TracerConfig::fromEnvironment();
    if (!tracer_config.enabled())
        tracer_config.samplePeriod = 4096;

    std::cout << "scaling sweep: " << schemes.size()
              << " schemes, N in {";
    for (std::size_t i = 0; i < params.cacheCounts.size(); ++i)
        std::cout << (i ? "," : "") << params.cacheCounts[i];
    std::cout << "}, " << TextTable::grouped(params.refsPerTrace)
              << " refs per trace, seed " << params.seed
              << ", cluster " << params.clusterProcs
              << (invariant_period != 0 ? ", invariants on" : "")
              << '\n';

    for (const unsigned n : params.cacheCounts) {
        const Trace trace = scalingTrace(n, params);

        EventTracer tracer(tracer_config);
        RunnerConfig config = RunnerConfig::fromEnvironment();
        config.makeCellTraceSink =
            [&tracer](const std::string &scheme,
                      const std::string &trace_name) {
                return tracer.session(scheme, trace_name);
            };
        const ExperimentRunner runner(std::move(config));

        const std::string path = artifactPath(out_dir, n);
        JsonlSink sink(path);
        const GridResult grid = runWithArtifacts(
            runner, schemes, {trace}, sim, sink,
            [&tracer](MetricRegistry &metrics) {
                tracer.exportMetrics(metrics);
            });

        std::cout << "N=" << n << ": " << grid.cells.size()
                  << " cells in "
                  << TextTable::fixed(grid.wallSeconds, 2) << "s ("
                  << TextTable::grouped(static_cast<std::uint64_t>(
                         grid.refsPerSecond()))
                  << " refs/s) -> " << path << '\n';
    }
    return 0;
}

/** The artifacts of one machine size, loaded. */
struct SizePoint
{
    unsigned numCaches = 0;
    RunArtifacts artifacts;
};

/** Cell for (scheme, N); every grid cell exists by construction. */
const CellRecord &
cellFor(const SizePoint &point, const std::string &scheme)
{
    for (const CellRecord &cell : point.artifacts.cells)
        if (cell.scheme == scheme)
            return cell;
    fatal("artifacts for N=", point.numCaches, " hold no '", scheme,
          "' cell; re-run `dirsim_scaling run` with the same "
          "DIRSIM_SCALING_* environment");
}

/** One scheme-by-N curve table from a per-cell value. */
template <typename ValueFn>
void
curveTable(const std::vector<SizePoint> &points,
           const std::vector<std::string> &schemes, const char *title,
           ValueFn &&value)
{
    std::cout << '\n' << title << '\n';
    std::vector<std::string> header{"scheme"};
    for (const SizePoint &point : points)
        header.push_back("N=" + std::to_string(point.numCaches));
    TextTable table(std::move(header));
    for (const std::string &scheme : schemes) {
        std::vector<std::string> row{scheme};
        for (const SizePoint &point : points)
            row.push_back(value(cellFor(point, scheme)));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
}

/** One tracer distribution across machine sizes, nonzero rows only. */
void
distributionTable(const std::vector<SizePoint> &points,
                  const std::string &name, const char *title)
{
    std::cout << '\n' << title << '\n';
    const std::string prefix = "trace.dist." + name;
    std::vector<std::string> header{"value"};
    for (const SizePoint &point : points)
        header.push_back("N=" + std::to_string(point.numCaches));
    TextTable table(std::move(header));

    const auto counter = [&](const SizePoint &point,
                             const std::string &key) -> std::uint64_t {
        return point.artifacts.hasMetrics
                    && point.artifacts.metrics.has(key)
            ? point.artifacts.metrics.counter(key)
            : 0;
    };
    const auto fraction = [&](const SizePoint &point,
                              const std::string &key) {
        const std::uint64_t samples =
            counter(point, prefix + ".samples");
        if (samples == 0)
            return std::string("-");
        return TextTable::fixed(
            static_cast<double>(counter(point, key))
                / static_cast<double>(samples),
            4);
    };

    for (std::size_t v = 0; v < traceDistBuckets; ++v) {
        const std::string key = prefix + "." + std::to_string(v);
        bool any = false;
        for (const SizePoint &point : points)
            any = any || counter(point, key) != 0;
        if (!any)
            continue;
        std::vector<std::string> row{std::to_string(v)};
        for (const SizePoint &point : points)
            row.push_back(fraction(point, key));
        table.addRow(std::move(row));
    }
    std::vector<std::string> overflow{
        ">=" + std::to_string(traceDistBuckets)};
    std::vector<std::string> samples{"samples"};
    for (const SizePoint &point : points) {
        overflow.push_back(fraction(point, prefix + ".overflow"));
        samples.push_back(TextTable::grouped(
            counter(point, prefix + ".samples")));
    }
    table.addRow(std::move(overflow));
    table.addRule();
    table.addRow(std::move(samples));
    table.print(std::cout);
}

int
report(const std::string &out_dir)
{
    const ScalingParams params = ScalingParams::fromEnvironment();
    const std::vector<std::string> schemes = schemeNames();

    std::vector<SizePoint> points;
    for (const unsigned n : params.cacheCounts)
        points.push_back({n, loadArtifacts(artifactPath(out_dir, n))});

    std::cout << "scaling curves: " << schemes.size()
              << " schemes across " << points.size()
              << " machine sizes\n";

    curveTable(points, schemes,
               "Bus cycles per reference vs N (pipelined bus)",
               [](const CellRecord &cell) {
                   return TextTable::fixed(
                       cell.cost(paperPipelinedCosts()).total(), 4);
               });
    curveTable(points, schemes,
               "Bus cycles per reference vs N (non-pipelined bus)",
               [](const CellRecord &cell) {
                   return TextTable::fixed(
                       cell.cost(paperNonPipelinedCosts()).total(),
                       4);
               });
    curveTable(points, schemes,
               "Invalidation messages per 1,000 references vs N",
               [](const CellRecord &cell) {
                   return TextTable::fixed(
                       1000.0
                           * static_cast<double>(
                               cell.ops.invalMsgs
                               + cell.ops.broadcastInvals
                               + cell.ops.overflowInvals)
                           / static_cast<double>(cell.totalRefs),
                       3);
               });
    curveTable(points, schemes,
               "Mean caches invalidated per clean-block write vs N",
               [](const CellRecord &cell) {
                   return cell.cleanWriteHolders.samples() == 0
                       ? std::string("-")
                       : TextTable::fixed(
                             cell.cleanWriteHolders.mean(), 4);
               });

    distributionTable(
        points, "inval_on_clean_write",
        "Invalidation distribution vs N (tracer; fraction of "
        "clean-block writes invalidating k caches)");
    distributionTable(
        points, "sharer_set_size",
        "Sharer-set size at clean-block writes vs N (tracer; "
        "writer included)");
    distributionTable(
        points, "write_run_length",
        "Write-run length vs N (tracer; consecutive writes by one "
        "cache before a handoff)");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (args.size() >= 2 && args[0] == "run") {
            std::uint64_t invariants = 0;
            bool ok = true;
            for (std::size_t i = 2; i < args.size(); i += 2) {
                if (args[i] == "--invariants" && i + 1 < args.size())
                    invariants = std::stoull(args[i + 1]);
                else
                    ok = false;
            }
            if (ok)
                return run(args[1], invariants);
        }
        if (args.size() == 2 && args[0] == "report")
            return report(args[1]);
    } catch (const SimulationError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    }
    std::cerr << "usage: dirsim_scaling run <out_dir> "
                 "[--invariants <period>]\n"
                 "       dirsim_scaling report <out_dir>\n";
    return 2;
}
