/**
 * @file
 * Example: replay one trace under one scheme and narrate every
 * protocol event on a single block.
 *
 * Usage: dirsim_explain <scheme> [workload|trace-file] [block|auto]
 *                       [refs] [seed]
 *   scheme      any registry name; '_' and '-' are ignored, so
 *               "dir1_nb" and "Dir1NB" both work
 *   workload    pops | thor | pero (default pops), generated with
 *               refs (default 200000) and seed (default 1); or a
 *               path to a trace file (".txt" = text, else binary)
 *   block       block number to follow (decimal or 0x hex), or
 *               "auto" (default): the hottest lock-write block —
 *               usually the spin lock the workload contends on
 *
 * The replay attaches an EventTracer session with sample period 1
 * and a block filter, so every state transition of the chosen block
 * is captured: the event the protocol classified, the cache state
 * before and after, how many other caches held the block, and the
 * bus operations (costed on the paper's pipelined bus) the
 * transition performed. Cache states are protocol-internal ids; 0
 * is always "not present".
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "dirsim/dirsim.hh"

namespace
{

using namespace dirsim;

/** Registry lookup that also accepts snake_case ("dir1_nb"). */
SchemeSpec
parseSchemeArg(const std::string &arg)
{
    std::string compact;
    for (const char c : arg) {
        if (c != '_' && c != '-')
            compact.push_back(c);
    }
    return parseScheme(compact);
}

/** Load a trace file (by trace_tool's extension convention). */
Trace
loadTrace(const std::string &path)
{
    if (path.size() > 4 && path.ends_with(".txt"))
        return readTextTraceFile(path);
    return readBinaryTraceFile(path);
}

/**
 * The block to follow when none is named: the most lock-written
 * block (the contended spin lock), falling back to the most written
 * block for lock-free traces.
 */
BlockNum
hottestBlock(const Trace &trace, unsigned block_bytes)
{
    std::map<BlockNum, std::uint64_t> lock_writes;
    std::map<BlockNum, std::uint64_t> writes;
    for (const TraceRecord &record : trace) {
        if (!record.isWrite())
            continue;
        const BlockNum block =
            blockNumber(record.addr, block_bytes);
        ++writes[block];
        if (record.isLockRef())
            ++lock_writes[block];
    }
    fatalIf(writes.empty(), "trace '", trace.name(),
            "' has no data writes to follow");
    const auto &pool = lock_writes.empty() ? writes : lock_writes;
    BlockNum best = pool.begin()->first;
    std::uint64_t best_count = 0;
    for (const auto &[block, count] : pool) {
        if (count > best_count) {
            best = block;
            best_count = count;
        }
    }
    return best;
}

/** "rd_miss(1st)" — event key plus a first-reference marker. */
std::string
eventLabel(const ProtocolTraceEvent &event)
{
    std::string label = eventKey(event.type);
    if (event.firstRef)
        label += "(1st)";
    return label;
}

/** "inval:2 wrt_back:1" — the nonzero bus ops of one transition. */
std::string
opsLabel(const OpCounts &ops)
{
    std::string label;
    for (const auto &[name, member] : opFields()) {
        if (ops.*member == 0)
            continue;
        if (!label.empty())
            label += ' ';
        label += name;
        label += ':';
        label += std::to_string(ops.*member);
    }
    return label.empty() ? "-" : label;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: " << argv[0]
                  << " <scheme> [workload|trace-file] [block|auto]"
                     " [refs] [seed]\n";
        return 1;
    }
    const std::string scheme_arg = argv[1];
    const std::string input = argc > 2 ? argv[2] : "pops";
    const std::string block_arg = argc > 3 ? argv[3] : "auto";
    const std::uint64_t refs =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 200'000;
    const std::uint64_t seed =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

    try {
        const SchemeSpec scheme = parseSchemeArg(scheme_arg);
        const Trace trace = std::ifstream(input).good()
            ? loadTrace(input)
            : generateTrace(input, refs, seed);

        SimConfig sim = SimConfig::fromEnvironment();
        const BlockNum block = block_arg == "auto"
            ? hottestBlock(trace, sim.blockBytes)
            : std::strtoull(block_arg.c_str(), nullptr, 0);

        // Sample every reference and keep a deep ring: the point is
        // a complete narrative for one block, not low overhead.
        TracerConfig tracer_config;
        tracer_config.samplePeriod = 1;
        tracer_config.ringCapacity = std::size_t{1} << 16;
        EventTracer tracer(tracer_config);
        auto session =
            tracer.session(scheme.name(), trace.name(), block);
        sim.traceSink = session.get();

        const SimResult result = simulateTrace(trace, scheme, sim);
        session.reset(); // merge the session into the tracer

        std::cout << "=== " << scheme.name() << " on "
                  << trace.name() << ", block " << block << " ===\n";

#ifdef DIRSIM_NO_TRACER
        std::cerr << "error: this binary was built with "
                     "-DDIRSIM_TRACER=OFF; the tracer hook is "
                     "compiled out\n";
        return 1;
#endif

        fatalIf(tracer.timelines().empty(),
                "tracer produced no timeline");
        const CellTimeline &timeline = tracer.timelines().front();
        if (timeline.events.empty()) {
            std::cout << "block " << block
                      << " is never referenced; try 'auto' or "
                         "another block\n";
            return 0;
        }
        if (timeline.dropped > 0)
            std::cout << "(ring overflowed: the first "
                      << timeline.dropped
                      << " events were dropped)\n";

        TextTable table({"ref", "cache", "event", "state", "others",
                         "bus ops", "cycles"});
        for (const ProtocolTraceEvent &event : timeline.events) {
            const CycleBreakdown cost =
                costFromOps(event.ops, 1, paperPipelinedCosts());
            table.addRow({
                TextTable::grouped(event.ref),
                std::to_string(event.cache),
                eventLabel(event),
                std::to_string(
                    static_cast<unsigned>(event.stateBefore))
                    + "->"
                    + std::to_string(
                        static_cast<unsigned>(event.stateAfter)),
                std::to_string(event.othersBefore) + "->"
                    + std::to_string(event.othersAfter),
                opsLabel(event.ops),
                TextTable::fixed(cost.total(), 1),
            });
        }
        table.print(std::cout);

        std::cout << '\n'
                  << timeline.events.size() << " events on block "
                  << block << " out of "
                  << TextTable::grouped(result.totalRefs)
                  << " total references; whole-run cost "
                  << TextTable::fixed(
                         result.cost(paperPipelinedCosts()).total(),
                         4)
                  << " bus cycles/ref (pipelined)\n";
    } catch (const SimulationError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
