/**
 * @file
 * Example: a small CLI to explore any coherence scheme on any
 * workload — a miniature of the paper's whole methodology in one
 * command.
 *
 * The scheme name is parsed into a structured SchemeSpec up front, so
 * typos are rejected with the full list of valid schemes before any
 * trace is generated; DIRSIM_BLOCK_BYTES / DIRSIM_WARMUP_REFS /
 * DIRSIM_SHARING apply via SimConfig::fromEnvironment().
 *
 * Usage: protocol_explorer [scheme] [workload] [refs] [seed]
 *   scheme    Dir1NB | WTI | Dir0B | Dragon | DirNNB | Berkeley |
 *             YenFu | DirCV | Dir<i>B | Dir<i>NB  (default Dir0B)
 *   workload  pops | thor | pero               (default pops)
 *   refs      trace length                     (default 500000)
 *   seed      generator seed                   (default 1)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "dirsim/dirsim.hh"

int
main(int argc, char **argv)
{
    using namespace dirsim;

    const std::string scheme = argc > 1 ? argv[1] : "Dir0B";
    const std::string workload = argc > 2 ? argv[2] : "pops";
    const std::uint64_t refs =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 500'000;
    const std::uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

    try {
        const SchemeSpec spec = parseScheme(scheme);
        const SimConfig config = SimConfig::fromEnvironment();
        const Trace trace = generateTrace(workload, refs, seed);
        // One SimJob through the engine entry point: picks up the
        // decode pipeline and the DIRSIM_SHARDS override
        // (JobOptions::fromEnvironment()) for free.
        const SimResult result =
            runJob({TraceRef::of(trace), spec, config}).result;
        printRunReport(std::cout, result);
    } catch (const SimulationError &error) {
        std::cerr << "error: " << error.what() << '\n';
        std::cerr << "usage: protocol_explorer [scheme] [workload] "
                     "[refs] [seed]\n";
        return 1;
    }
    return 0;
}
