#include "directory/tang.hh"

#include "common/logging.hh"

namespace dirsim
{

TangDirectory::TangDirectory(unsigned num_caches_arg)
    : dupTags(num_caches_arg)
{
    fatalIf(num_caches_arg == 0, "directory needs at least one cache");
}

void
TangDirectory::recordFill(CacheId cache, BlockNum block)
{
    panicIfNot(cache < dupTags.size(), "cache id out of range");
    dupTags[cache][block] = false;
}

void
TangDirectory::recordDirty(CacheId cache, BlockNum block)
{
    panicIfNot(cache < dupTags.size(), "cache id out of range");
    const auto it = dupTags[cache].find(block);
    panicIfNot(it != dupTags[cache].end(),
               "recordDirty for a block the cache does not hold");
    it->second = true;
}

void
TangDirectory::recordClean(CacheId cache, BlockNum block)
{
    panicIfNot(cache < dupTags.size(), "cache id out of range");
    const auto it = dupTags[cache].find(block);
    panicIfNot(it != dupTags[cache].end(),
               "recordClean for a block the cache does not hold");
    it->second = false;
}

void
TangDirectory::recordInvalidate(CacheId cache, BlockNum block)
{
    panicIfNot(cache < dupTags.size(), "cache id out of range");
    dupTags[cache].erase(block);
}

TangDirectory::SearchResult
TangDirectory::search(BlockNum block) const
{
    SearchResult result;
    result.holders = SharerSet(numCaches());
    for (CacheId cache = 0; cache < dupTags.size(); ++cache) {
        const auto it = dupTags[cache].find(block);
        if (it == dupTags[cache].end())
            continue;
        result.holders.add(cache);
        if (it->second) {
            panicIfNot(result.dirtyOwner == invalidCacheId,
                       "two caches hold block ", block, " dirty");
            result.dirtyOwner = cache;
        }
    }
    return result;
}

} // namespace dirsim
