#include "directory/tang.hh"

#include "common/logging.hh"

namespace dirsim
{

TangDirectory::TangDirectory(unsigned num_caches_arg)
    : dupTags(num_caches_arg)
{
    fatalIf(num_caches_arg == 0, "directory needs at least one cache");
}

void
TangDirectory::recordFill(CacheId cache, BlockNum block)
{
    panicIfNot(cache < dupTags.size(), "cache id out of range");
    if (denseMode) {
        panicIfNot(block < denseTags[cache].size(),
                   "TangDirectory: block ", block,
                   " outside the dense arena of ",
                   denseTags[cache].size(), " blocks");
        denseTags[cache][block] = tagClean;
        return;
    }
    dupTags[cache][block] = false;
}

void
TangDirectory::recordDirty(CacheId cache, BlockNum block)
{
    panicIfNot(cache < dupTags.size(), "cache id out of range");
    if (denseMode) {
        panicIfNot(block < denseTags[cache].size()
                       && denseTags[cache][block] != tagAbsent,
                   "recordDirty for a block the cache does not hold");
        denseTags[cache][block] = tagDirty;
        return;
    }
    const auto it = dupTags[cache].find(block);
    panicIfNot(it != dupTags[cache].end(),
               "recordDirty for a block the cache does not hold");
    it->second = true;
}

void
TangDirectory::recordClean(CacheId cache, BlockNum block)
{
    panicIfNot(cache < dupTags.size(), "cache id out of range");
    if (denseMode) {
        panicIfNot(block < denseTags[cache].size()
                       && denseTags[cache][block] != tagAbsent,
                   "recordClean for a block the cache does not hold");
        denseTags[cache][block] = tagClean;
        return;
    }
    const auto it = dupTags[cache].find(block);
    panicIfNot(it != dupTags[cache].end(),
               "recordClean for a block the cache does not hold");
    it->second = false;
}

void
TangDirectory::recordInvalidate(CacheId cache, BlockNum block)
{
    panicIfNot(cache < dupTags.size(), "cache id out of range");
    if (denseMode) {
        if (block < denseTags[cache].size())
            denseTags[cache][block] = tagAbsent;
        return;
    }
    dupTags[cache].erase(block);
}

TangDirectory::SearchResult
TangDirectory::search(BlockNum block) const
{
    SearchResult result;
    result.holders = SharerSet(numCaches());
    if (denseMode) {
        for (CacheId cache = 0; cache < denseTags.size(); ++cache) {
            const std::uint8_t slot =
                block < denseTags[cache].size()
                    ? denseTags[cache][block]
                    : tagAbsent;
            if (slot == tagAbsent)
                continue;
            result.holders.add(cache);
            if (slot == tagDirty) {
                panicIfNot(result.dirtyOwner == invalidCacheId,
                           "two caches hold block ", block, " dirty");
                result.dirtyOwner = cache;
            }
        }
        return result;
    }
    for (CacheId cache = 0; cache < dupTags.size(); ++cache) {
        const auto it = dupTags[cache].find(block);
        if (it == dupTags[cache].end())
            continue;
        result.holders.add(cache);
        if (it->second) {
            panicIfNot(result.dirtyOwner == invalidCacheId,
                       "two caches hold block ", block, " dirty");
            result.dirtyOwner = cache;
        }
    }
    return result;
}

void
TangDirectory::reserveDense(std::uint64_t block_count)
{
    for (const auto &tags : dupTags)
        panicIfNot(tags.empty(),
                   "TangDirectory::reserveDense on a touched directory");
    panicIfNot(!denseMode,
               "TangDirectory::reserveDense called twice");
    denseTags.assign(dupTags.size(),
                     std::vector<std::uint8_t>(block_count, tagAbsent));
    denseMode = true;
}

} // namespace dirsim
