/**
 * @file
 * Archibald & Baer two-bit directory (Dir_0 B): each main-memory
 * block carries one of four states and no cache pointers, so every
 * invalidation or write-back request is a broadcast.
 */

#ifndef DIRSIM_DIRECTORY_TWO_BIT_HH
#define DIRSIM_DIRECTORY_TWO_BIT_HH

#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace dirsim
{

/** The four Archibald & Baer block states (2 bits in hardware). */
enum class TwoBitState : std::uint8_t
{
    NotCached = 0,  ///< block in no cache
    CleanOne = 1,   ///< clean in exactly one cache
    CleanMany = 2,  ///< clean in an unknown number of caches
    DirtyOne = 3,   ///< dirty in exactly one cache
};

/** Human-readable state name. */
const char *toString(TwoBitState state);

/**
 * Sparse two-bit directory; absent blocks are NotCached.
 *
 * The CleanOne state is the scheme's optimization: a write hit by the
 * sole holder needs no invalidation broadcast.
 */
class TwoBitDirectory
{
  public:
    TwoBitDirectory() = default;

    /** Current state of @p block. */
    TwoBitState state(BlockNum block) const;

    /** Overwrite the state of @p block. */
    void setState(BlockNum block, TwoBitState state);

    /**
     * Record a (non-first) cache obtaining a clean copy:
     * NotCached -> CleanOne -> CleanMany; DirtyOne is illegal here
     * (the protocol must flush first) and panics.
     */
    void addCleanCopy(BlockNum block);

    /** Record a cache obtaining the sole dirty copy. */
    void makeDirty(BlockNum block);

    /** Record invalidation of all copies. */
    void makeUncached(BlockNum block);

    std::size_t trackedBlocks() const
    {
        return denseMode ? dense.size() : states.size();
    }

    /**
     * Switch to a flat state array indexed by block in
     * [0, @p block_count) (see FullMapDirectory::reserveDense); every
     * state() probe becomes one load. Must precede any state change.
     */
    void reserveDense(std::uint64_t block_count);

    /** True once reserveDense() switched to the arena. */
    bool denseStorage() const { return denseMode; }

  private:
    std::unordered_map<BlockNum, TwoBitState> states;
    std::vector<TwoBitState> dense;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_TWO_BIT_HH
