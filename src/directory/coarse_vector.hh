/**
 * @file
 * The Section 6 "limited broadcast" superset code: a word of
 * d = ceil(log2 n) digits, each 0, 1, or BOTH. A digit fixed to 0/1
 * constrains that bit of the cache index; BOTH leaves it free, so the
 * word always denotes a superset of the caches holding the block and
 * costs 2*log2(n) bits.
 */

#ifndef DIRSIM_DIRECTORY_COARSE_VECTOR_HH
#define DIRSIM_DIRECTORY_COARSE_VECTOR_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "directory/sharer_set.hh"

namespace dirsim
{

/**
 * Ternary-digit superset code over cache indices.
 *
 * Invariants (property-tested):
 *  - decode() is always a superset of the exact sharer set encoded;
 *  - a code holding a single cache decodes exactly to that cache;
 *  - with k digits marked BOTH the superset has exactly 2^k members
 *    (clipped to the domain when n is not a power of two).
 */
class CoarseVector
{
  public:
    /** @param num_caches_arg domain size n (>= 1) */
    explicit CoarseVector(unsigned num_caches_arg);

    /** True when no cache has been encoded since the last clear. */
    bool empty() const { return !hasMember; }

    /** Fold cache @p cache into the code. */
    void add(CacheId cache);

    /** Reset to the empty code. */
    void clear();

    /** Number of digits d = ceil(log2 n) (1 when n == 1). */
    unsigned digits() const { return numDigits; }

    /** Number of digits currently BOTH. */
    unsigned bothDigits() const;

    /** The denoted superset of caches (clipped to the domain). */
    SharerSet decode() const;

    /** Size of the denoted superset. */
    unsigned supersetSize() const { return decode().count(); }

    /** Render like "1 0 * 1" with '*' for BOTH (for diagnostics). */
    std::string toString() const;

    /** Hardware cost of the code in bits (2 per digit). */
    unsigned storageBits() const { return 2 * numDigits; }

  private:
    enum class Digit : std::uint8_t { Zero, One, Both };

    unsigned numCaches;
    unsigned numDigits;
    bool hasMember = false;
    std::vector<Digit> code;
};

/**
 * A directory whose entries keep a dirty bit plus a CoarseVector, for
 * the Section 6 limited-broadcast evaluation.
 *
 * reserveDense() pre-materializes one entry per densified block index
 * (see FullMapDirectory::reserveDense), turning entry access into an
 * array load for decode-once simulation streams.
 */
class CoarseVectorDirectory
{
  public:
    struct Entry
    {
        explicit Entry(unsigned num_caches) : sharers(num_caches) {}
        bool dirty = false;
        CoarseVector sharers;
    };

    explicit CoarseVectorDirectory(unsigned num_caches_arg);

    Entry &entry(BlockNum block);
    const Entry *find(BlockNum block) const;
    unsigned numCaches() const { return caches; }

    /** Switch to dense entry storage; see FullMapDirectory. */
    void reserveDense(std::uint64_t block_count);

    /** True once reserveDense() switched to the arena. */
    bool denseStorage() const { return denseMode; }

  private:
    unsigned caches;
    std::unordered_map<BlockNum, Entry> entries;
    std::vector<Entry> dense;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_COARSE_VECTOR_HH
