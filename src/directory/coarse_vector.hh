/**
 * @file
 * The Section 6 "limited broadcast" superset code: a word of
 * d = ceil(log2 n) digits, each 0, 1, or BOTH. A digit fixed to 0/1
 * constrains that bit of the cache index; BOTH leaves it free, so the
 * word always denotes a superset of the caches holding the block and
 * costs 2*log2(n) bits.
 */

#ifndef DIRSIM_DIRECTORY_COARSE_VECTOR_HH
#define DIRSIM_DIRECTORY_COARSE_VECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "directory/sharer_set.hh"

namespace dirsim
{

/**
 * Superset code over cache indices, in one of two representations:
 *
 *  - Ternary (region_size == 0, the default): the Section 6 word of
 *    d = ceil(log2 n) digits described in the file comment.
 *
 *  - Region vector (region_size == K >= 1): one presence bit per
 *    K-cache region, the coarse-vector organization of the
 *    limited-pointer literature (e.g. SGI Origin). Region r covers
 *    caches [r*K, min((r+1)*K, n)); when K does not divide n the
 *    last region is narrower — regionWidth() is the clipped width,
 *    and every fan-out count uses it, never a blanket r*K.
 *
 * Digits are packed two bits each into words held inline (up to 128
 * digits — every configuration the scaling suite runs, including
 * region mode at N=1024 with K=12), falling back to a heap word array
 * sized once at construction. A dense arena of directory entries is
 * therefore a single flat allocation, and probing the code via
 * forEachMember()/supersetSize() never materializes a SharerSet.
 *
 * Invariants (property-tested):
 *  - decode() is always a superset of the exact sharer set encoded;
 *  - ternary: a code holding a single cache decodes exactly to that
 *    cache, and with k digits marked BOTH the superset has exactly
 *    2^k members (clipped to the domain when n is not a power of 2);
 *  - region: the superset is exactly the union of the flagged
 *    regions clipped to the domain, and supersetSize() equals the
 *    sum of their clipped widths.
 */
class CoarseVector
{
  public:
    /**
     * @param num_caches_arg domain size n (>= 1)
     * @param region_size_arg 0 for the ternary code, else the region
     *        granularity K (need not divide n)
     */
    explicit CoarseVector(unsigned num_caches_arg,
                          unsigned region_size_arg = 0);

    /** True when no cache has been encoded since the last clear. */
    bool empty() const { return !hasMember; }

    /** Fold cache @p cache into the code. */
    void add(CacheId cache);

    /** Reset to the empty code. */
    void clear();

    /** Region granularity K, or 0 for the ternary code. */
    unsigned regionSize() const { return regionGranularity; }

    /**
     * Ternary: number of digits d = ceil(log2 n) (1 when n == 1).
     * Region: number of regions ceil(n / K).
     */
    unsigned digits() const { return numDigits; }

    /** Number of digits currently BOTH (0 in region mode). */
    unsigned bothDigits() const;

    /** Region mode: number of regions ceil(n / K). */
    unsigned regionCount() const;

    /** Region mode: clipped width of region @p region —
     *  min(K, n - region*K), i.e. the last region is narrower when K
     *  does not divide n. */
    unsigned regionWidth(unsigned region) const;

    /** Region mode: number of regions currently flagged. */
    unsigned flaggedRegions() const;

    /**
     * Visit the denoted superset in ascending cache order without
     * materializing it — the alloc-free decode used by the
     * invalidation fan-out. Region mode walks the flagged regions'
     * clipped ranges; ternary mode matches each index against the
     * mask/value the non-BOTH digits pin down.
     */
    template <typename Fn>
    void forEachMember(Fn &&fn) const
    {
        if (!hasMember)
            return;
        if (regionGranularity != 0) {
            for (unsigned r = 0; r < numDigits; ++r) {
                if (digitAt(r) != Digit::One)
                    continue;
                const CacheId begin = r * regionGranularity;
                const CacheId end = begin + regionWidth(r);
                for (CacheId cache = begin; cache < end; ++cache)
                    fn(cache);
            }
            return;
        }
        unsigned mask = 0;
        unsigned val = 0;
        fixedBits(mask, val);
        for (CacheId cache = 0; cache < numCaches; ++cache) {
            if ((cache & mask) == val)
                fn(cache);
        }
    }

    /** The denoted superset of caches (clipped to the domain). */
    SharerSet decode() const;

    /**
     * Size of the denoted superset — the invalidation fan-out when
     * the code is probed. Region mode sums the flagged regions'
     * clipped widths (O(regions)); ternary mode counts the matching
     * indices. Neither allocates.
     */
    unsigned supersetSize() const;

    /** Render like "1 0 * 1" with '*' for BOTH (for diagnostics). */
    std::string toString() const;

    /** Hardware cost of the code in bits: 2 per ternary digit, or 1
     *  per region bit. */
    unsigned storageBits() const
    {
        return regionGranularity == 0 ? 2 * numDigits : numDigits;
    }

  private:
    enum class Digit : std::uint8_t { Zero, One, Both };

    /** Two bits per digit. */
    static constexpr unsigned digitsPerWord = 32;
    /** Inline code words: 128 digits before the heap fallback. */
    static constexpr unsigned inlineWords = 4;

    const std::uint64_t *codeWords() const
    {
        return heapCode.empty() ? inlineCode.data() : heapCode.data();
    }
    std::uint64_t *codeWords()
    {
        return heapCode.empty() ? inlineCode.data() : heapCode.data();
    }

    Digit digitAt(unsigned digit) const
    {
        const std::uint64_t word = codeWords()[digit / digitsPerWord];
        return static_cast<Digit>(
            (word >> (2 * (digit % digitsPerWord))) & 3);
    }

    void setDigit(unsigned digit, Digit value)
    {
        std::uint64_t &word = codeWords()[digit / digitsPerWord];
        const unsigned shift = 2 * (digit % digitsPerWord);
        word = (word & ~(std::uint64_t{3} << shift))
               | (static_cast<std::uint64_t>(value) << shift);
    }

    /** Ternary: the index mask/value the non-BOTH digits pin down. */
    void fixedBits(unsigned &mask, unsigned &val) const;

    unsigned numCaches;
    /** Region granularity K; 0 selects the ternary code. */
    unsigned regionGranularity;
    /** Ternary digits, or region presence bits (Zero/One). */
    unsigned numDigits;
    bool hasMember = false;
    /** Packed digits, 2 bits each (Zero = 0, so clear() zero-fills). */
    std::array<std::uint64_t, inlineWords> inlineCode{};
    /** Heap fallback when the code needs more than 128 digits. */
    std::vector<std::uint64_t> heapCode;
};

/**
 * A directory whose entries keep a dirty bit plus a CoarseVector, for
 * the Section 6 limited-broadcast evaluation.
 *
 * reserveDense() pre-materializes one entry per densified block index
 * (see FullMapDirectory::reserveDense), turning entry access into an
 * array load for decode-once simulation streams.
 */
class CoarseVectorDirectory
{
  public:
    struct Entry
    {
        explicit Entry(unsigned num_caches, unsigned region_size = 0)
            : sharers(num_caches, region_size)
        {}
        bool dirty = false;
        CoarseVector sharers;
    };

    /**
     * @param num_caches_arg caches in the domain
     * @param region_size_arg 0 for ternary entries, else the region
     *        granularity K (see CoarseVector)
     */
    explicit CoarseVectorDirectory(unsigned num_caches_arg,
                                   unsigned region_size_arg = 0);

    Entry &entry(BlockNum block);
    const Entry *find(BlockNum block) const;
    unsigned numCaches() const { return caches; }

    /** Region granularity of the entries (0 = ternary). */
    unsigned regionSize() const { return regionGranularity; }

    /** Switch to dense entry storage; see FullMapDirectory. */
    void reserveDense(std::uint64_t block_count);

    /** True once reserveDense() switched to the arena. */
    bool denseStorage() const { return denseMode; }

  private:
    unsigned caches;
    unsigned regionGranularity;
    std::unordered_map<BlockNum, Entry> entries;
    std::vector<Entry> dense;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_COARSE_VECTOR_HH
