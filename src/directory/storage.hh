/**
 * @file
 * Directory storage-overhead calculators for the Section 6
 * scalability discussion: bits of directory state per main-memory
 * block for each organization as a function of the number of caches.
 */

#ifndef DIRSIM_DIRECTORY_STORAGE_HH
#define DIRSIM_DIRECTORY_STORAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dirsim
{

/** The directory organizations whose storage cost we can quote. */
enum class DirectoryOrg
{
    TangDuplicate,  ///< duplicate tag stores (cost depends on cache size)
    FullMap,        ///< Censier & Feautrier: n present bits + dirty
    TwoBit,         ///< Archibald & Baer: 2 bits
    LimitedPtr,     ///< Dir_i: i pointers of log2(n) bits + dirty
    LimitedPtrB,    ///< Dir_i B: Dir_i plus a broadcast bit
    CoarseVector,   ///< Section 6 ternary code: 2*log2(n) bits + dirty
    RegionVector,   ///< DirCVr<K>: ceil(n/K) region bits + dirty
};

/** Name of an organization, e.g. "full-map". */
const char *toString(DirectoryOrg org);

/** Parameters the storage formulas depend on. */
struct StorageParams
{
    unsigned numCaches = 4;       ///< n
    unsigned numPointers = 1;     ///< i, for the limited schemes
    /** RegionVector only: region granularity K (need not divide n). */
    unsigned regionSize = 16;
    /** Tang only: blocks per cache (duplicate tag count per cache). */
    std::uint64_t blocksPerCache = 4096;
    /** Tang only: tag width mirrored per block. */
    unsigned tagBits = 16;
    /** Main-memory blocks (to express Tang cost per memory block). */
    std::uint64_t memoryBlocks = 1u << 20;
};

/**
 * Directory bits per main-memory block for @p org.
 *
 * For pointer-based schemes this is exact; for TangDuplicate the
 * duplicate-tag storage (which scales with cache size, not memory
 * size) is amortized over memoryBlocks.
 */
double directoryBitsPerBlock(DirectoryOrg org,
                             const StorageParams &params);

/** One row of the storage-overhead table. */
struct StorageRow
{
    DirectoryOrg org;
    unsigned numCaches;
    unsigned numPointers;
    double bitsPerBlock;
};

/**
 * Build the storage table for a sweep of cache counts.
 *
 * @param cache_counts n values to tabulate
 * @param pointer_budgets i values for the limited schemes
 */
std::vector<StorageRow> storageTable(
    const std::vector<unsigned> &cache_counts,
    const std::vector<unsigned> &pointer_budgets);

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_STORAGE_HH
