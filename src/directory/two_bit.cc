#include "directory/two_bit.hh"

#include "common/logging.hh"

namespace dirsim
{

const char *
toString(TwoBitState state)
{
    switch (state) {
      case TwoBitState::NotCached:
        return "not-cached";
      case TwoBitState::CleanOne:
        return "clean-one";
      case TwoBitState::CleanMany:
        return "clean-many";
      case TwoBitState::DirtyOne:
        return "dirty-one";
    }
    panic("unknown TwoBitState ", static_cast<int>(state));
}

TwoBitState
TwoBitDirectory::state(BlockNum block) const
{
    if (denseMode) {
        return block < dense.size() ? dense[block]
                                    : TwoBitState::NotCached;
    }
    const auto it = states.find(block);
    return it == states.end() ? TwoBitState::NotCached : it->second;
}

void
TwoBitDirectory::setState(BlockNum block, TwoBitState state_arg)
{
    if (denseMode) {
        panicIfNot(block < dense.size(),
                   "TwoBitDirectory: block ", block,
                   " outside the dense arena of ", dense.size(),
                   " blocks");
        dense[block] = state_arg;
        return;
    }
    if (state_arg == TwoBitState::NotCached)
        states.erase(block);
    else
        states[block] = state_arg;
}

void
TwoBitDirectory::reserveDense(std::uint64_t block_count)
{
    panicIfNot(states.empty() && !denseMode,
               "TwoBitDirectory::reserveDense on a touched directory");
    dense.assign(block_count, TwoBitState::NotCached);
    denseMode = true;
}

void
TwoBitDirectory::addCleanCopy(BlockNum block)
{
    switch (state(block)) {
      case TwoBitState::NotCached:
        setState(block, TwoBitState::CleanOne);
        break;
      case TwoBitState::CleanOne:
      case TwoBitState::CleanMany:
        setState(block, TwoBitState::CleanMany);
        break;
      case TwoBitState::DirtyOne:
        panic("addCleanCopy on a dirty block; flush it first");
    }
}

void
TwoBitDirectory::makeDirty(BlockNum block)
{
    setState(block, TwoBitState::DirtyOne);
}

void
TwoBitDirectory::makeUncached(BlockNum block)
{
    setState(block, TwoBitState::NotCached);
}

} // namespace dirsim
