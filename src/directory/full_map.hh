/**
 * @file
 * Censier & Feautrier full-map directory: one present bit per cache
 * plus a dirty bit per main-memory block (Dir_n in the paper's
 * taxonomy). Directly indexable by the block address.
 */

#ifndef DIRSIM_DIRECTORY_FULL_MAP_HH
#define DIRSIM_DIRECTORY_FULL_MAP_HH

#include <unordered_map>
#include <vector>

#include "directory/sharer_set.hh"

namespace dirsim
{

/** One sparse full-map entry: dirty bit + present-bit vector. */
struct FullMapEntry
{
    explicit FullMapEntry(unsigned num_caches)
        : sharers(num_caches)
    {}

    bool dirty = false;
    SharerSet sharers;

    /**
     * The invariant Censier & Feautrier state: a dirty block exists in
     * at most one cache.
     */
    bool valid() const { return !dirty || sharers.count() <= 1; }
};

/**
 * Sparse full-map directory over all of main memory.
 *
 * Entries are created on first touch; absence of an entry means
 * "block not cached anywhere", so untouched memory costs nothing at
 * simulation time (the storage calculators in directory/storage.hh
 * account for the real per-block hardware cost).
 *
 * reserveDense() switches to dense storage for decode-once streams
 * whose block keys are densified indices in [0, block_count)
 * (sim/decoded.hh): the present bits of every block then live in one
 * SharerStore arena (hybrid inline/spill sharer sets, a single
 * allocation) beside a flat dirty-bit array. Dense mode has no
 * per-block FullMapEntry objects, so protocols address the directory
 * through the block-keyed accessors below, which work in both modes;
 * entry()/find() remain for the sparse map (and panic once dense).
 */
class FullMapDirectory
{
  public:
    /** @param num_caches_arg number of caches in the system */
    explicit FullMapDirectory(unsigned num_caches_arg);

    /** Sparse mode: entry for @p block, created clean on first use. */
    FullMapEntry &entry(BlockNum block);

    /** Sparse mode: lookup without creation; nullptr if untouched. */
    const FullMapEntry *find(BlockNum block) const;

    /** Record @p cache's present bit for @p block. */
    void addSharer(BlockNum block, CacheId cache);

    /** Clear @p cache's present bit for @p block. */
    void removeSharer(BlockNum block, CacheId cache);

    /** True iff @p cache's present bit is set for @p block. */
    bool isSharer(BlockNum block, CacheId cache) const;

    /** Number of present bits set for @p block. */
    unsigned sharerCount(BlockNum block) const;

    /** The dirty bit of @p block (clear when untouched). */
    bool dirty(BlockNum block) const;

    void setDirty(BlockNum block, bool dirty_arg);

    /** True when the directory has state for @p block. */
    bool tracked(BlockNum block) const;

    /** Append @p block's sharers to @p out in ascending order. */
    void appendSharers(BlockNum block, CacheIdList &out) const;

    /** @p block's present bits materialized (invariant checks). */
    SharerSet sharerSnapshot(BlockNum block) const;

    unsigned numCaches() const { return caches; }

    /** Number of blocks with directory state materialized. */
    std::size_t trackedBlocks() const
    {
        return denseMode ? denseSharers.blockCount() : entries.size();
    }

    /** Drop empty (uncached, clean) entries to bound memory. */
    void compact();

    /**
     * Switch to dense storage: pre-materialize clean/uncached state
     * for every block in [0, @p block_count). Must be called before
     * any entry is touched.
     */
    void reserveDense(std::uint64_t block_count);

    /** True once reserveDense() switched to the arena. */
    bool denseStorage() const { return denseMode; }

  private:
    FullMapEntry &sparseEntry(BlockNum block);

    unsigned caches;
    std::unordered_map<BlockNum, FullMapEntry> entries;
    /** Dense present bits: the hybrid inline/spill arena. */
    SharerStore denseSharers;
    /** Dense dirty bits, indexed by block. */
    std::vector<std::uint8_t> denseDirty;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_FULL_MAP_HH
