/**
 * @file
 * Censier & Feautrier full-map directory: one present bit per cache
 * plus a dirty bit per main-memory block (Dir_n in the paper's
 * taxonomy). Directly indexable by the block address.
 */

#ifndef DIRSIM_DIRECTORY_FULL_MAP_HH
#define DIRSIM_DIRECTORY_FULL_MAP_HH

#include <unordered_map>
#include <vector>

#include "directory/sharer_set.hh"

namespace dirsim
{

/** One full-map entry: dirty bit + present-bit vector. */
struct FullMapEntry
{
    explicit FullMapEntry(unsigned num_caches)
        : sharers(num_caches)
    {}

    bool dirty = false;
    SharerSet sharers;

    /**
     * The invariant Censier & Feautrier state: a dirty block exists in
     * at most one cache.
     */
    bool valid() const { return !dirty || sharers.count() <= 1; }
};

/**
 * Sparse full-map directory over all of main memory.
 *
 * Entries are created on first touch; absence of an entry means
 * "block not cached anywhere", so untouched memory costs nothing at
 * simulation time (the storage calculators in directory/storage.hh
 * account for the real per-block hardware cost).
 *
 * reserveDense() switches to a dense arena indexed directly by block
 * number, for decode-once simulation streams whose block keys are
 * densified indices in [0, block_count) (sim/decoded.hh): entry
 * access then costs one array load instead of a hash probe.
 */
class FullMapDirectory
{
  public:
    /** @param num_caches_arg number of caches in the system */
    explicit FullMapDirectory(unsigned num_caches_arg);

    /** Entry for @p block, created clean/uncached on first use. */
    FullMapEntry &entry(BlockNum block);

    /** Entry lookup without creation; nullptr when never touched. */
    const FullMapEntry *find(BlockNum block) const;

    unsigned numCaches() const { return caches; }

    /** Number of blocks with directory state materialized. */
    std::size_t trackedBlocks() const
    {
        return denseMode ? dense.size() : entries.size();
    }

    /** Drop empty (uncached, clean) entries to bound memory. */
    void compact();

    /**
     * Switch to dense storage: pre-materialize one clean/uncached
     * entry per block in [0, @p block_count). Must be called before
     * any entry is touched.
     */
    void reserveDense(std::uint64_t block_count);

    /** True once reserveDense() switched to the arena. */
    bool denseStorage() const { return denseMode; }

  private:
    unsigned caches;
    std::unordered_map<BlockNum, FullMapEntry> entries;
    std::vector<FullMapEntry> dense;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_FULL_MAP_HH
