/**
 * @file
 * Sharer tracking for directory entries and the engine's holder
 * oracle, in two forms:
 *
 *  - SharerSet: a self-contained dynamic bit vector over the cache
 *    domain, used by the sparse (hash-map) engine paths, invariant
 *    checks, and tests.
 *
 *  - SharerStore: the dense-arena form used after reserveBlocks().
 *    One flat word vector holds the sharer sets of *every* block, so
 *    a protocol instance makes a single allocation instead of one
 *    heap bit-vector per block. Per block the store keeps a hybrid
 *    entry: up to a handful of sharer ids packed inline in two
 *    machine words (the common case — the paper's own data shows
 *    sharer sets are almost always tiny), spilling to a wide bit
 *    vector drawn from a shared overflow arena only when a block
 *    accumulates more sharers than the inline form can hold.
 */

#ifndef DIRSIM_DIRECTORY_SHARER_SET_HH
#define DIRSIM_DIRECTORY_SHARER_SET_HH

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace dirsim
{

/** Bit-vector set of cache ids in [0, numCaches). */
class SharerSet
{
  public:
    SharerSet() = default;

    /** @param num_caches_arg domain size; ids must stay below it */
    explicit SharerSet(unsigned num_caches_arg);

    unsigned numCaches() const { return domain; }

    /** Insert @p cache; panics if out of domain. */
    void add(CacheId cache);

    /** Remove @p cache if present; panics if out of domain. */
    void remove(CacheId cache);

    /** True iff @p cache is a member; panics if out of domain. */
    bool contains(CacheId cache) const;

    /** Number of caches in the set. */
    unsigned count() const;

    bool empty() const;

    /** True iff the set is exactly {cache}; panics if out of domain. */
    bool isOnly(CacheId cache) const;

    /**
     * Number of members excluding @p cache. Unlike contains(),
     * @p cache need not lie in the domain (callers pass
     * invalidCacheId to mean "exclude nobody").
     */
    unsigned countExcluding(CacheId cache) const;

    /** Lowest-numbered member; panics when empty. */
    CacheId first() const;

    /**
     * Highest-numbered member other than @p excluded, or
     * invalidCacheId when no such member exists. This is the member a
     * full ascending visit would report last, which is what the
     * engine's dense classifyOthers fast path needs to match the
     * sparse survey bit-for-bit. @p excluded need not lie in the
     * domain.
     */
    CacheId lastExcluding(CacheId excluded) const;

    /** Remove every member. */
    void clear();

    /** Visit members in ascending order. */
    void forEach(const std::function<void(CacheId)> &fn) const;

    /** Members in ascending order (convenience for tests). */
    std::vector<CacheId> toVector() const;

    /** True iff this is a superset of @p other (same domain). */
    bool isSupersetOf(const SharerSet &other) const;

    /** Add every member of @p other (same domain). */
    void unionWith(const SharerSet &other);

    /** True iff this and @p other share a member (same domain). */
    bool intersects(const SharerSet &other) const;

    bool operator==(const SharerSet &other) const = default;

  private:
    unsigned domain = 0;
    std::vector<std::uint64_t> words;
};

/** Non-owning view of a contiguous cache-id sequence. */
struct CacheIdSpan
{
    const CacheId *ptr = nullptr;
    std::uint32_t len = 0;

    const CacheId *begin() const { return ptr; }
    const CacheId *end() const { return ptr + len; }
    std::uint32_t size() const { return len; }
    bool empty() const { return len == 0; }
    CacheId front() const { return ptr[0]; }
    CacheId operator[](std::uint32_t i) const { return ptr[i]; }
};

/**
 * A small list of cache ids with inline storage, used to snapshot
 * holder sets before invalidation loops (the loop mutates the set it
 * was derived from, so it must iterate a copy — previously a heap
 * SharerSet or std::vector per invalidation).
 */
class CacheIdList
{
  public:
    void push(CacheId id)
    {
        if (n < inlineCap) {
            inlineIds[n++] = id;
            return;
        }
        if (spill.empty())
            spill.assign(inlineIds.begin(), inlineIds.end());
        spill.push_back(id);
        ++n;
    }

    std::uint32_t size() const { return n; }
    bool empty() const { return n == 0; }
    CacheId front() const { return *begin(); }

    const CacheId *begin() const
    {
        return n <= inlineCap ? inlineIds.data() : spill.data();
    }
    const CacheId *end() const { return begin() + n; }

    void clear()
    {
        n = 0;
        spill.clear();
    }

  private:
    static constexpr std::uint32_t inlineCap = 16;
    std::array<CacheId, inlineCap> inlineIds;
    std::vector<CacheId> spill;
    std::uint32_t n = 0;
};

/**
 * The per-block sharer sets of a whole dense arena, block-addressed.
 *
 * Storage is one flat word vector, sized once in reset():
 *
 *  - Word mode (domain <= 64): one word per block, a plain bitmask —
 *    the small-N paper grid keeps single-word codegen.
 *
 *  - Hybrid mode (64 < domain <= 65535): two words per block. While
 *    a block has at most 7 sharers their 16-bit ids are stored
 *    inline, sorted ascending (slots 0..2 in the low word, 3..6 in
 *    the high word, member count in low-word bits 56..58). The 8th
 *    add spills the block to a wide bit-vector slice claimed from a
 *    shared overflow arena that grows on demand; a spilled low word
 *    sets bit 63 and carries the member count (bits 0..31) and the
 *    slice index (bits 32..55). Slices are recycled through a free
 *    list when a block shrinks back to 7 sharers or clears, so
 *    overflow storage stays bounded by the peak number of
 *    simultaneously-wide sets, not by block count.
 *
 * count() is O(1) in every state, and iteration order is ascending
 * in all representations — bit-for-bit identical to SharerSet's
 * forEach, which the engine's event accounting depends on.
 */
class SharerStore
{
  public:
    SharerStore() = default;

    /** Size for @p block_count blocks over @p domain_arg caches. */
    void reset(unsigned domain_arg, std::uint64_t block_count);

    unsigned numCaches() const { return domain; }
    std::uint64_t blockCount() const { return blocks; }

    /** Insert; panics when @p cache or @p block is out of range. */
    void add(std::uint64_t block, CacheId cache)
    {
        checkRange(block, cache, "add");
        if (wordMode()) {
            words[block] |= std::uint64_t{1} << cache;
            return;
        }
        std::uint64_t &lo = words[2 * block];
        if (lo & spillFlag) {
            std::uint64_t &bits = spillWord(spillSlice(lo), cache);
            const std::uint64_t mask = std::uint64_t{1} << (cache % 64);
            if (!(bits & mask)) {
                bits |= mask;
                ++lo; // spilled count lives in the low bits
            }
            return;
        }
        addInline(block, cache);
    }

    /** Remove if present; panics when out of range. */
    void remove(std::uint64_t block, CacheId cache)
    {
        checkRange(block, cache, "remove");
        if (wordMode()) {
            words[block] &= ~(std::uint64_t{1} << cache);
            return;
        }
        std::uint64_t &lo = words[2 * block];
        if (lo & spillFlag) {
            std::uint64_t &bits = spillWord(spillSlice(lo), cache);
            const std::uint64_t mask = std::uint64_t{1} << (cache % 64);
            if (bits & mask) {
                bits &= ~mask;
                --lo;
                if (spillCount(lo) <= inlineSlots)
                    repackInline(block);
            }
            return;
        }
        removeInline(block, cache);
    }

    /** True iff @p cache holds @p block; panics when out of range. */
    bool contains(std::uint64_t block, CacheId cache) const
    {
        checkRange(block, cache, "contains");
        if (wordMode())
            return (words[block] >> cache) & 1;
        const std::uint64_t lo = words[2 * block];
        if (lo & spillFlag) {
            return (spillWord(spillSlice(lo), cache)
                    >> (cache % 64)) & 1;
        }
        const unsigned n = inlineCount(lo);
        for (unsigned slot = 0; slot < n; ++slot) {
            const CacheId id = inlineId(block, slot);
            if (id == cache)
                return true;
            if (id > cache)
                return false; // slots are sorted ascending
        }
        return false;
    }

    /** Number of sharers of @p block — O(1) in every state. */
    unsigned count(std::uint64_t block) const
    {
        if (wordMode()) {
            return static_cast<unsigned>(
                std::popcount(words[block]));
        }
        const std::uint64_t lo = words[2 * block];
        return lo & spillFlag ? spillCount(lo) : inlineCount(lo);
    }

    bool empty(std::uint64_t block) const { return count(block) == 0; }

    /**
     * Members excluding @p cache; like SharerSet::countExcluding,
     * @p cache may be out of domain ("exclude nobody").
     */
    unsigned countExcluding(std::uint64_t block, CacheId cache) const
    {
        const unsigned total = count(block);
        if (cache >= domain)
            return total;
        return total - (contains(block, cache) ? 1 : 0);
    }

    /** Lowest-numbered sharer; panics when the block has none. */
    CacheId first(std::uint64_t block) const;

    /**
     * Highest-numbered sharer other than @p excluded, or
     * invalidCacheId; matches SharerSet::lastExcluding (@p excluded
     * may be out of domain).
     */
    CacheId lastExcluding(std::uint64_t block, CacheId excluded) const;

    /** Remove every sharer of @p block. */
    void clear(std::uint64_t block);

    /** Visit the sharers of @p block in ascending order. */
    template <typename Fn>
    void forEach(std::uint64_t block, Fn &&fn) const
    {
        if (wordMode()) {
            visitWord(words[block], 0, fn);
            return;
        }
        const std::uint64_t lo = words[2 * block];
        if (lo & spillFlag) {
            const std::uint64_t base =
                static_cast<std::uint64_t>(spillSlice(lo)) * spillWords;
            for (std::uint32_t w = 0; w < spillWords; ++w)
                visitWord(spill[base + w], w * 64u, fn);
            return;
        }
        const unsigned n = inlineCount(lo);
        for (unsigned slot = 0; slot < n; ++slot)
            fn(inlineId(block, slot));
    }

    /** Append the sharers of @p block to @p out, ascending. */
    void appendTo(std::uint64_t block, CacheIdList &out) const
    {
        forEach(block, [&out](CacheId cache) { out.push(cache); });
    }

    /** Materialize the sharers of @p block as a SharerSet. */
    SharerSet snapshot(std::uint64_t block) const;

    /** Blocks currently spilled to the overflow arena (telemetry). */
    std::uint64_t spilledBlocks() const
    {
        if (spillWords == 0)
            return 0;
        return spill.size() / spillWords - freeSlices.size();
    }

  private:
    /** Inline sharer ids per hybrid entry (sorted, 16-bit each). */
    static constexpr unsigned inlineSlots = 7;
    /** Inline id slots stored in the low word (bits 0..47). */
    static constexpr unsigned loSlots = 3;
    /** Hybrid low-word bit 63 flags a spilled entry. */
    static constexpr std::uint64_t spillFlag = std::uint64_t{1} << 63;
    /** Inline member count: low-word bits 56..58. */
    static constexpr unsigned inlineCountShift = 56;
    static constexpr std::uint64_t inlineCountMask =
        std::uint64_t{0x7} << inlineCountShift;
    /** Spilled member count: low-word bits 0..31. */
    static constexpr std::uint64_t spillCountMask = 0xffffffffu;
    /** Spilled slice index: low-word bits 32..55. */
    static constexpr unsigned sliceShift = 32;
    static constexpr std::uint64_t sliceMask = std::uint64_t{0xffffff}
                                               << sliceShift;

    bool wordMode() const { return domain <= 64; }

    void checkRange(std::uint64_t block, CacheId cache,
                    const char *op) const
    {
        if (block >= blocks || cache >= domain)
            rangePanic(block, cache, op);
    }
    [[noreturn]] void rangePanic(std::uint64_t block, CacheId cache,
                                 const char *op) const;

    static unsigned inlineCount(std::uint64_t lo)
    {
        return static_cast<unsigned>(
            (lo & inlineCountMask) >> inlineCountShift);
    }
    static unsigned spillCount(std::uint64_t lo)
    {
        return static_cast<unsigned>(lo & spillCountMask);
    }
    static std::uint32_t spillSlice(std::uint64_t lo)
    {
        return static_cast<std::uint32_t>((lo & sliceMask)
                                          >> sliceShift);
    }

    /** Inline slot @p slot of @p block: slots 0..2 sit in the low
     *  word at bits 0/16/32, slots 3..6 in the high word. */
    CacheId inlineId(std::uint64_t block, unsigned slot) const
    {
        const std::uint64_t word =
            slot < loSlots ? words[2 * block] : words[2 * block + 1];
        const unsigned shift =
            16 * (slot < loSlots ? slot : slot - loSlots);
        return static_cast<CacheId>((word >> shift) & 0xffff);
    }

    std::uint64_t &spillWord(std::uint32_t slice, CacheId cache)
    {
        return spill[static_cast<std::uint64_t>(slice) * spillWords
                     + cache / 64];
    }
    const std::uint64_t &spillWord(std::uint32_t slice,
                                   CacheId cache) const
    {
        return spill[static_cast<std::uint64_t>(slice) * spillWords
                     + cache / 64];
    }

    template <typename Fn>
    static void visitWord(std::uint64_t word, unsigned base, Fn &&fn)
    {
        while (word != 0) {
            const unsigned bit =
                static_cast<unsigned>(std::countr_zero(word));
            fn(static_cast<CacheId>(base + bit));
            word &= word - 1;
        }
    }

    void addInline(std::uint64_t block, CacheId cache);
    void removeInline(std::uint64_t block, CacheId cache);
    void storeInline(std::uint64_t block,
                     const std::array<CacheId, inlineSlots> &ids,
                     unsigned n);
    unsigned loadInline(std::uint64_t block,
                        std::array<CacheId, inlineSlots> &ids) const;
    void spillEntry(std::uint64_t block,
                    const std::array<CacheId, inlineSlots> &ids,
                    CacheId extra);
    void repackInline(std::uint64_t block);
    std::uint32_t claimSlice();

    unsigned domain = 0;
    std::uint64_t blocks = 0;
    /** Bits per spilled slice, in 64-bit words: ceil(domain / 64). */
    std::uint32_t spillWords = 0;
    /** Word mode: 1 word per block. Hybrid: 2 words per block. */
    std::vector<std::uint64_t> words;
    /** Overflow arena: slices of spillWords words, grown on demand. */
    std::vector<std::uint64_t> spill;
    /** Recycled slice indices (freed by repack/clear). */
    std::vector<std::uint32_t> freeSlices;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_SHARER_SET_HH
