/**
 * @file
 * A set of caches holding a block, as tracked by directory entries.
 *
 * Implemented as a dynamic bit vector so it scales past 64 caches
 * (the scalability experiments sweep cache counts).
 */

#ifndef DIRSIM_DIRECTORY_SHARER_SET_HH
#define DIRSIM_DIRECTORY_SHARER_SET_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace dirsim
{

/** Bit-vector set of cache ids in [0, numCaches). */
class SharerSet
{
  public:
    SharerSet() = default;

    /** @param num_caches_arg domain size; ids must stay below it */
    explicit SharerSet(unsigned num_caches_arg);

    unsigned numCaches() const { return domain; }

    /** Insert @p cache; panics if out of domain. */
    void add(CacheId cache);

    /** Remove @p cache if present. */
    void remove(CacheId cache);

    bool contains(CacheId cache) const;

    /** Number of caches in the set. */
    unsigned count() const;

    bool empty() const { return count() == 0; }

    /** True iff the set is exactly {cache}. */
    bool isOnly(CacheId cache) const;

    /** Number of members excluding @p cache. */
    unsigned countExcluding(CacheId cache) const;

    /** Lowest-numbered member; panics when empty. */
    CacheId first() const;

    /**
     * Highest-numbered member other than @p excluded, or
     * invalidCacheId when no such member exists. This is the member a
     * full ascending visit would report last, which is what the
     * engine's dense classifyOthers fast path needs to match the
     * sparse survey bit-for-bit.
     */
    CacheId lastExcluding(CacheId excluded) const;

    /** Remove every member. */
    void clear();

    /** Visit members in ascending order. */
    void forEach(const std::function<void(CacheId)> &fn) const;

    /** Members in ascending order (convenience for tests). */
    std::vector<CacheId> toVector() const;

    /** True iff this is a superset of @p other (same domain). */
    bool isSupersetOf(const SharerSet &other) const;

    /** Add every member of @p other (same domain). */
    void unionWith(const SharerSet &other);

    /** True iff this and @p other share a member (same domain). */
    bool intersects(const SharerSet &other) const;

    bool operator==(const SharerSet &other) const = default;

  private:
    unsigned domain = 0;
    std::vector<std::uint64_t> words;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_SHARER_SET_HH
