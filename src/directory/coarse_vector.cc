#include "directory/coarse_vector.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace dirsim
{

namespace
{

/** Digit count: ternary needs ceil(log2 n), regions ceil(n / K). */
unsigned
digitCount(unsigned num_caches, unsigned region_size)
{
    if (region_size == 0)
        return std::max(1u, ceilLog2(std::max(1u, num_caches)));
    return (num_caches + region_size - 1) / region_size;
}

} // namespace

CoarseVector::CoarseVector(unsigned num_caches_arg,
                           unsigned region_size_arg)
    : numCaches(num_caches_arg), regionGranularity(region_size_arg),
      numDigits(digitCount(num_caches_arg, region_size_arg))
{
    fatalIf(numCaches == 0, "CoarseVector over an empty domain");
    const unsigned words =
        (numDigits + digitsPerWord - 1) / digitsPerWord;
    if (words > inlineWords)
        heapCode.assign(words, 0);
}

void
CoarseVector::add(CacheId cache)
{
    panicIfNot(cache < numCaches,
               "CoarseVector::add: cache ", cache, " out of domain ",
               numCaches);
    if (regionGranularity != 0) {
        setDigit(cache / regionGranularity, Digit::One);
        hasMember = true;
        return;
    }
    if (!hasMember) {
        for (unsigned d = 0; d < numDigits; ++d)
            setDigit(d, ((cache >> d) & 1) ? Digit::One : Digit::Zero);
        hasMember = true;
        return;
    }
    for (unsigned d = 0; d < numDigits; ++d) {
        const Digit bit = ((cache >> d) & 1) ? Digit::One : Digit::Zero;
        const Digit cur = digitAt(d);
        if (cur != Digit::Both && cur != bit)
            setDigit(d, Digit::Both);
    }
}

void
CoarseVector::clear()
{
    hasMember = false;
    // Digit::Zero packs to 0, so the code word array just zero-fills.
    if (heapCode.empty())
        inlineCode.fill(0);
    else
        std::fill(heapCode.begin(), heapCode.end(), 0);
}

unsigned
CoarseVector::bothDigits() const
{
    unsigned n = 0;
    for (unsigned d = 0; d < numDigits; ++d)
        n += digitAt(d) == Digit::Both ? 1 : 0;
    return n;
}

unsigned
CoarseVector::regionCount() const
{
    panicIfNot(regionGranularity != 0,
               "regionCount() on a ternary CoarseVector");
    return numDigits;
}

unsigned
CoarseVector::regionWidth(unsigned region) const
{
    panicIfNot(regionGranularity != 0,
               "regionWidth() on a ternary CoarseVector");
    panicIfNot(region < numDigits, "CoarseVector: region ", region,
               " out of range ", numDigits);
    // The last region is clipped when K does not divide n.
    const unsigned begin = region * regionGranularity;
    return std::min(regionGranularity, numCaches - begin);
}

unsigned
CoarseVector::flaggedRegions() const
{
    panicIfNot(regionGranularity != 0,
               "flaggedRegions() on a ternary CoarseVector");
    unsigned n = 0;
    for (unsigned r = 0; r < numDigits; ++r)
        n += digitAt(r) == Digit::One ? 1 : 0;
    return n;
}

void
CoarseVector::fixedBits(unsigned &mask, unsigned &val) const
{
    mask = 0;
    val = 0;
    for (unsigned d = 0; d < numDigits; ++d) {
        const Digit dig = digitAt(d);
        if (dig == Digit::Both)
            continue;
        mask |= 1u << d;
        if (dig == Digit::One)
            val |= 1u << d;
    }
}

SharerSet
CoarseVector::decode() const
{
    SharerSet result(numCaches);
    forEachMember([&](CacheId cache) { result.add(cache); });
    return result;
}

unsigned
CoarseVector::supersetSize() const
{
    if (!hasMember)
        return 0;
    if (regionGranularity != 0) {
        // Sum of clipped widths: counting regionGranularity for the
        // last region would overstate the fan-out when K does not
        // divide n.
        unsigned size = 0;
        for (unsigned r = 0; r < numDigits; ++r)
            if (digitAt(r) == Digit::One)
                size += regionWidth(r);
        return size;
    }
    unsigned mask = 0;
    unsigned val = 0;
    fixedBits(mask, val);
    unsigned size = 0;
    for (CacheId cache = 0; cache < numCaches; ++cache)
        size += (cache & mask) == val ? 1 : 0;
    return size;
}

std::string
CoarseVector::toString() const
{
    std::string out;
    if (regionGranularity != 0) {
        // Region bits, region 0 first: "1.0.1" (flagged/unflagged).
        for (unsigned r = 0; r < numDigits; ++r) {
            if (r != 0)
                out += '.';
            out += digitAt(r) == Digit::One ? '1' : '0';
        }
        return hasMember ? out : std::string("(empty)");
    }
    // Most-significant digit first, matching the paper's description
    // of the word as an index.
    for (unsigned d = numDigits; d-- > 0;) {
        switch (digitAt(d)) {
          case Digit::Zero:
            out += '0';
            break;
          case Digit::One:
            out += '1';
            break;
          case Digit::Both:
            out += '*';
            break;
        }
        if (d != 0)
            out += ' ';
    }
    return hasMember ? out : std::string("(empty)");
}

CoarseVectorDirectory::CoarseVectorDirectory(unsigned num_caches_arg,
                                             unsigned region_size_arg)
    : caches(num_caches_arg), regionGranularity(region_size_arg)
{
    fatalIf(caches == 0, "directory needs at least one cache");
}

CoarseVectorDirectory::Entry &
CoarseVectorDirectory::entry(BlockNum block)
{
    if (denseMode) {
        panicIfNot(block < dense.size(),
                   "CoarseVectorDirectory: block ", block,
                   " outside the dense arena of ", dense.size(),
                   " blocks");
        return dense[block];
    }
    const auto it = entries.find(block);
    if (it != entries.end())
        return it->second;
    return entries.emplace(block, Entry(caches, regionGranularity))
        .first->second;
}

const CoarseVectorDirectory::Entry *
CoarseVectorDirectory::find(BlockNum block) const
{
    if (denseMode)
        return block < dense.size() ? &dense[block] : nullptr;
    const auto it = entries.find(block);
    return it == entries.end() ? nullptr : &it->second;
}

void
CoarseVectorDirectory::reserveDense(std::uint64_t block_count)
{
    panicIfNot(entries.empty() && !denseMode,
               "CoarseVectorDirectory::reserveDense on a touched "
               "directory");
    dense.assign(block_count, Entry(caches, regionGranularity));
    denseMode = true;
}

} // namespace dirsim
