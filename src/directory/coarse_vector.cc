#include "directory/coarse_vector.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace dirsim
{

CoarseVector::CoarseVector(unsigned num_caches_arg)
    : numCaches(num_caches_arg),
      numDigits(std::max(1u, ceilLog2(std::max(1u, num_caches_arg)))),
      code(numDigits, Digit::Zero)
{
    fatalIf(numCaches == 0, "CoarseVector over an empty domain");
}

void
CoarseVector::add(CacheId cache)
{
    panicIfNot(cache < numCaches,
               "CoarseVector::add: cache ", cache, " out of domain ",
               numCaches);
    if (!hasMember) {
        for (unsigned d = 0; d < numDigits; ++d)
            code[d] = ((cache >> d) & 1) ? Digit::One : Digit::Zero;
        hasMember = true;
        return;
    }
    for (unsigned d = 0; d < numDigits; ++d) {
        const Digit bit = ((cache >> d) & 1) ? Digit::One : Digit::Zero;
        if (code[d] != Digit::Both && code[d] != bit)
            code[d] = Digit::Both;
    }
}

void
CoarseVector::clear()
{
    hasMember = false;
    std::fill(code.begin(), code.end(), Digit::Zero);
}

unsigned
CoarseVector::bothDigits() const
{
    unsigned n = 0;
    for (const Digit d : code)
        n += d == Digit::Both ? 1 : 0;
    return n;
}

SharerSet
CoarseVector::decode() const
{
    SharerSet result(numCaches);
    if (!hasMember)
        return result;
    for (CacheId cache = 0; cache < numCaches; ++cache) {
        bool match = true;
        for (unsigned d = 0; d < numDigits && match; ++d) {
            if (code[d] == Digit::Both)
                continue;
            const Digit bit =
                ((cache >> d) & 1) ? Digit::One : Digit::Zero;
            match = code[d] == bit;
        }
        if (match)
            result.add(cache);
    }
    return result;
}

std::string
CoarseVector::toString() const
{
    std::string out;
    // Most-significant digit first, matching the paper's description
    // of the word as an index.
    for (unsigned d = numDigits; d-- > 0;) {
        switch (code[d]) {
          case Digit::Zero:
            out += '0';
            break;
          case Digit::One:
            out += '1';
            break;
          case Digit::Both:
            out += '*';
            break;
        }
        if (d != 0)
            out += ' ';
    }
    return hasMember ? out : std::string("(empty)");
}

CoarseVectorDirectory::CoarseVectorDirectory(unsigned num_caches_arg)
    : caches(num_caches_arg)
{
    fatalIf(caches == 0, "directory needs at least one cache");
}

CoarseVectorDirectory::Entry &
CoarseVectorDirectory::entry(BlockNum block)
{
    if (denseMode) {
        panicIfNot(block < dense.size(),
                   "CoarseVectorDirectory: block ", block,
                   " outside the dense arena of ", dense.size(),
                   " blocks");
        return dense[block];
    }
    const auto it = entries.find(block);
    if (it != entries.end())
        return it->second;
    return entries.emplace(block, Entry(caches)).first->second;
}

const CoarseVectorDirectory::Entry *
CoarseVectorDirectory::find(BlockNum block) const
{
    if (denseMode)
        return block < dense.size() ? &dense[block] : nullptr;
    const auto it = entries.find(block);
    return it == entries.end() ? nullptr : &it->second;
}

void
CoarseVectorDirectory::reserveDense(std::uint64_t block_count)
{
    panicIfNot(entries.empty() && !denseMode,
               "CoarseVectorDirectory::reserveDense on a touched "
               "directory");
    dense.assign(block_count, Entry(caches));
    denseMode = true;
}

} // namespace dirsim
