#include "directory/full_map.hh"

#include "common/logging.hh"

namespace dirsim
{

FullMapDirectory::FullMapDirectory(unsigned num_caches_arg)
    : caches(num_caches_arg)
{
    fatalIf(caches == 0, "directory needs at least one cache");
}

FullMapEntry &
FullMapDirectory::entry(BlockNum block)
{
    if (denseMode) {
        panicIfNot(block < dense.size(),
                   "FullMapDirectory: block ", block,
                   " outside the dense arena of ", dense.size(),
                   " blocks");
        return dense[block];
    }
    const auto it = entries.find(block);
    if (it != entries.end())
        return it->second;
    return entries.emplace(block, FullMapEntry(caches)).first->second;
}

const FullMapEntry *
FullMapDirectory::find(BlockNum block) const
{
    if (denseMode)
        return block < dense.size() ? &dense[block] : nullptr;
    const auto it = entries.find(block);
    return it == entries.end() ? nullptr : &it->second;
}

void
FullMapDirectory::compact()
{
    if (denseMode)
        return; // the arena is the memory bound
    for (auto it = entries.begin(); it != entries.end();) {
        if (!it->second.dirty && it->second.sharers.empty())
            it = entries.erase(it);
        else
            ++it;
    }
}

void
FullMapDirectory::reserveDense(std::uint64_t block_count)
{
    panicIfNot(entries.empty() && !denseMode,
               "FullMapDirectory::reserveDense on a touched directory");
    dense.assign(block_count, FullMapEntry(caches));
    denseMode = true;
}

} // namespace dirsim
