#include "directory/full_map.hh"

#include "common/logging.hh"

namespace dirsim
{

FullMapDirectory::FullMapDirectory(unsigned num_caches_arg)
    : caches(num_caches_arg)
{
    fatalIf(caches == 0, "directory needs at least one cache");
}

FullMapEntry &
FullMapDirectory::entry(BlockNum block)
{
    panicIfNot(!denseMode,
               "FullMapDirectory::entry: dense mode has no per-block "
               "entry objects; use the block-keyed accessors");
    return sparseEntry(block);
}

FullMapEntry &
FullMapDirectory::sparseEntry(BlockNum block)
{
    const auto it = entries.find(block);
    if (it != entries.end())
        return it->second;
    return entries.emplace(block, FullMapEntry(caches)).first->second;
}

const FullMapEntry *
FullMapDirectory::find(BlockNum block) const
{
    panicIfNot(!denseMode,
               "FullMapDirectory::find: dense mode has no per-block "
               "entry objects; use the block-keyed accessors");
    const auto it = entries.find(block);
    return it == entries.end() ? nullptr : &it->second;
}

void
FullMapDirectory::addSharer(BlockNum block, CacheId cache)
{
    if (denseMode) {
        denseSharers.add(block, cache);
        return;
    }
    sparseEntry(block).sharers.add(cache);
}

void
FullMapDirectory::removeSharer(BlockNum block, CacheId cache)
{
    if (denseMode) {
        denseSharers.remove(block, cache);
        return;
    }
    sparseEntry(block).sharers.remove(cache);
}

bool
FullMapDirectory::isSharer(BlockNum block, CacheId cache) const
{
    if (denseMode)
        return denseSharers.contains(block, cache);
    const auto it = entries.find(block);
    return it != entries.end() && it->second.sharers.contains(cache);
}

unsigned
FullMapDirectory::sharerCount(BlockNum block) const
{
    if (denseMode)
        return denseSharers.count(block);
    const auto it = entries.find(block);
    return it == entries.end() ? 0 : it->second.sharers.count();
}

bool
FullMapDirectory::dirty(BlockNum block) const
{
    if (denseMode) {
        panicIfNot(block < denseDirty.size(),
                   "FullMapDirectory: block ", block,
                   " outside the dense arena of ", denseDirty.size(),
                   " blocks");
        return denseDirty[block] != 0;
    }
    const auto it = entries.find(block);
    return it != entries.end() && it->second.dirty;
}

void
FullMapDirectory::setDirty(BlockNum block, bool dirty_arg)
{
    if (denseMode) {
        panicIfNot(block < denseDirty.size(),
                   "FullMapDirectory: block ", block,
                   " outside the dense arena of ", denseDirty.size(),
                   " blocks");
        denseDirty[block] = dirty_arg ? 1 : 0;
        return;
    }
    sparseEntry(block).dirty = dirty_arg;
}

bool
FullMapDirectory::tracked(BlockNum block) const
{
    if (denseMode)
        return block < denseSharers.blockCount();
    return entries.find(block) != entries.end();
}

void
FullMapDirectory::appendSharers(BlockNum block, CacheIdList &out) const
{
    if (denseMode) {
        denseSharers.appendTo(block, out);
        return;
    }
    const auto it = entries.find(block);
    if (it != entries.end()) {
        it->second.sharers.forEach(
            [&out](CacheId cache) { out.push(cache); });
    }
}

SharerSet
FullMapDirectory::sharerSnapshot(BlockNum block) const
{
    if (denseMode)
        return denseSharers.snapshot(block);
    const auto it = entries.find(block);
    return it == entries.end() ? SharerSet(caches) : it->second.sharers;
}

void
FullMapDirectory::compact()
{
    if (denseMode)
        return; // the arena is the memory bound
    for (auto it = entries.begin(); it != entries.end();) {
        if (!it->second.dirty && it->second.sharers.empty())
            it = entries.erase(it);
        else
            ++it;
    }
}

void
FullMapDirectory::reserveDense(std::uint64_t block_count)
{
    panicIfNot(entries.empty() && !denseMode,
               "FullMapDirectory::reserveDense on a touched directory");
    denseSharers.reset(caches, block_count);
    denseDirty.assign(block_count, 0);
    denseMode = true;
}

} // namespace dirsim
