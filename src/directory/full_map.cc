#include "directory/full_map.hh"

#include "common/logging.hh"

namespace dirsim
{

FullMapDirectory::FullMapDirectory(unsigned num_caches_arg)
    : caches(num_caches_arg)
{
    fatalIf(caches == 0, "directory needs at least one cache");
}

FullMapEntry &
FullMapDirectory::entry(BlockNum block)
{
    const auto it = entries.find(block);
    if (it != entries.end())
        return it->second;
    return entries.emplace(block, FullMapEntry(caches)).first->second;
}

const FullMapEntry *
FullMapDirectory::find(BlockNum block) const
{
    const auto it = entries.find(block);
    return it == entries.end() ? nullptr : &it->second;
}

void
FullMapDirectory::compact()
{
    for (auto it = entries.begin(); it != entries.end();) {
        if (!it->second.dirty && it->second.sharers.empty())
            it = entries.erase(it);
        else
            ++it;
    }
}

} // namespace dirsim
