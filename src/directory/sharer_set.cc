#include "directory/sharer_set.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace dirsim
{

SharerSet::SharerSet(unsigned num_caches_arg)
    : domain(num_caches_arg), words((num_caches_arg + 63) / 64, 0)
{
}

void
SharerSet::add(CacheId cache)
{
    panicIfNot(cache < domain,
               "SharerSet::add: cache ", cache, " out of domain ", domain);
    words[cache / 64] |= std::uint64_t{1} << (cache % 64);
}

void
SharerSet::remove(CacheId cache)
{
    panicIfNot(cache < domain,
               "SharerSet::remove: cache ", cache, " out of domain ",
               domain);
    words[cache / 64] &= ~(std::uint64_t{1} << (cache % 64));
}

bool
SharerSet::contains(CacheId cache) const
{
    panicIfNot(cache < domain,
               "SharerSet::contains: cache ", cache, " out of domain ",
               domain);
    return (words[cache / 64] >> (cache % 64)) & 1;
}

unsigned
SharerSet::count() const
{
    unsigned total = 0;
    for (std::uint64_t word : words)
        total += static_cast<unsigned>(std::popcount(word));
    return total;
}

bool
SharerSet::empty() const
{
    for (std::uint64_t word : words) {
        if (word != 0)
            return false;
    }
    return true;
}

bool
SharerSet::isOnly(CacheId cache) const
{
    panicIfNot(cache < domain,
               "SharerSet::isOnly: cache ", cache, " out of domain ",
               domain);
    // Single pass: every word must be zero except cache's home word,
    // which must be exactly cache's bit.
    const std::size_t home = cache / 64;
    for (std::size_t w = 0; w < words.size(); ++w) {
        const std::uint64_t expect =
            w == home ? std::uint64_t{1} << (cache % 64) : 0;
        if (words[w] != expect)
            return false;
    }
    return true;
}

unsigned
SharerSet::countExcluding(CacheId cache) const
{
    // Single pass: popcount every word with cache's bit (if any)
    // masked out of its home word. An out-of-domain cache excludes
    // nobody (callers pass invalidCacheId for "no keeper").
    const std::size_t home =
        cache < domain ? cache / 64 : words.size();
    unsigned total = 0;
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t word = words[w];
        if (w == home)
            word &= ~(std::uint64_t{1} << (cache % 64));
        total += static_cast<unsigned>(std::popcount(word));
    }
    return total;
}

CacheId
SharerSet::first() const
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        if (words[w] != 0) {
            return static_cast<CacheId>(
                w * 64
                + static_cast<unsigned>(std::countr_zero(words[w])));
        }
    }
    panic("SharerSet::first on an empty set");
}

CacheId
SharerSet::lastExcluding(CacheId excluded) const
{
    for (std::size_t w = words.size(); w-- > 0;) {
        std::uint64_t word = words[w];
        if (excluded / 64 == w)
            word &= ~(std::uint64_t{1} << (excluded % 64));
        if (word != 0) {
            return static_cast<CacheId>(
                w * 64 + 63
                - static_cast<unsigned>(std::countl_zero(word)));
        }
    }
    return invalidCacheId;
}

void
SharerSet::clear()
{
    for (auto &word : words)
        word = 0;
}

void
SharerSet::forEach(const std::function<void(CacheId)> &fn) const
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t word = words[w];
        while (word != 0) {
            const unsigned bit =
                static_cast<unsigned>(std::countr_zero(word));
            fn(static_cast<CacheId>(w * 64 + bit));
            word &= word - 1;
        }
    }
}

std::vector<CacheId>
SharerSet::toVector() const
{
    std::vector<CacheId> out;
    out.reserve(count());
    forEach([&out](CacheId cache) { out.push_back(cache); });
    return out;
}

bool
SharerSet::isSupersetOf(const SharerSet &other) const
{
    panicIfNot(domain == other.domain,
               "SharerSet::isSupersetOf across different domains");
    for (std::size_t w = 0; w < words.size(); ++w) {
        if ((other.words[w] & ~words[w]) != 0)
            return false;
    }
    return true;
}

void
SharerSet::unionWith(const SharerSet &other)
{
    panicIfNot(domain == other.domain,
               "SharerSet::unionWith across different domains");
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] |= other.words[w];
}

bool
SharerSet::intersects(const SharerSet &other) const
{
    panicIfNot(domain == other.domain,
               "SharerSet::intersects across different domains");
    for (std::size_t w = 0; w < words.size(); ++w) {
        if ((words[w] & other.words[w]) != 0)
            return true;
    }
    return false;
}

void
SharerStore::reset(unsigned domain_arg, std::uint64_t block_count)
{
    panicIfNot(domain_arg <= 0xffff,
               "SharerStore: domain ", domain_arg,
               " exceeds the 16-bit inline id limit");
    domain = domain_arg;
    blocks = block_count;
    spillWords = domain > 64 ? (domain + 63) / 64 : 0;
    words.assign(wordMode() ? blocks : 2 * blocks, 0);
    spill.clear();
    freeSlices.clear();
}

CacheId
SharerStore::first(std::uint64_t block) const
{
    if (wordMode()) {
        const std::uint64_t word = words[block];
        panicIfNot(word != 0, "SharerStore::first on empty block ",
                   block);
        return static_cast<CacheId>(std::countr_zero(word));
    }
    const std::uint64_t lo = words[2 * block];
    if (lo & spillFlag) {
        const std::uint64_t base =
            static_cast<std::uint64_t>(spillSlice(lo)) * spillWords;
        for (std::uint32_t w = 0; w < spillWords; ++w) {
            if (spill[base + w] != 0) {
                return static_cast<CacheId>(
                    w * 64
                    + static_cast<unsigned>(
                        std::countr_zero(spill[base + w])));
            }
        }
        panic("SharerStore::first: spilled block ", block,
              " has an empty slice");
    }
    panicIfNot(inlineCount(lo) > 0,
               "SharerStore::first on empty block ", block);
    return inlineId(block, 0);
}

CacheId
SharerStore::lastExcluding(std::uint64_t block, CacheId excluded) const
{
    if (wordMode()) {
        std::uint64_t word = words[block];
        if (excluded < domain)
            word &= ~(std::uint64_t{1} << excluded);
        if (word == 0)
            return invalidCacheId;
        return static_cast<CacheId>(
            63 - static_cast<unsigned>(std::countl_zero(word)));
    }
    const std::uint64_t lo = words[2 * block];
    if (lo & spillFlag) {
        const std::uint64_t base =
            static_cast<std::uint64_t>(spillSlice(lo)) * spillWords;
        for (std::uint32_t w = spillWords; w-- > 0;) {
            std::uint64_t word = spill[base + w];
            if (excluded < domain && excluded / 64 == w)
                word &= ~(std::uint64_t{1} << (excluded % 64));
            if (word != 0) {
                return static_cast<CacheId>(
                    w * 64 + 63
                    - static_cast<unsigned>(std::countl_zero(word)));
            }
        }
        return invalidCacheId;
    }
    const unsigned n = inlineCount(lo);
    for (unsigned slot = n; slot-- > 0;) {
        const CacheId id = inlineId(block, slot);
        if (id != excluded)
            return id;
    }
    return invalidCacheId;
}

void
SharerStore::clear(std::uint64_t block)
{
    if (wordMode()) {
        words[block] = 0;
        return;
    }
    const std::uint64_t lo = words[2 * block];
    if (lo & spillFlag)
        freeSlices.push_back(spillSlice(lo));
    words[2 * block] = 0;
    words[2 * block + 1] = 0;
}

SharerSet
SharerStore::snapshot(std::uint64_t block) const
{
    SharerSet out(domain);
    forEach(block, [&out](CacheId cache) { out.add(cache); });
    return out;
}

void
SharerStore::rangePanic(std::uint64_t block, CacheId cache,
                        const char *op) const
{
    panic("SharerStore::", op, ": block ", block, " / cache ", cache,
          " outside ", blocks, " blocks over domain ", domain);
}

void
SharerStore::addInline(std::uint64_t block, CacheId cache)
{
    std::array<CacheId, inlineSlots> ids;
    const unsigned n = loadInline(block, ids);
    unsigned pos = 0;
    while (pos < n && ids[pos] < cache)
        ++pos;
    if (pos < n && ids[pos] == cache)
        return;
    if (n == inlineSlots) {
        spillEntry(block, ids, cache);
        return;
    }
    for (unsigned i = n; i > pos; --i)
        ids[i] = ids[i - 1];
    ids[pos] = cache;
    storeInline(block, ids, n + 1);
}

void
SharerStore::removeInline(std::uint64_t block, CacheId cache)
{
    std::array<CacheId, inlineSlots> ids;
    const unsigned n = loadInline(block, ids);
    unsigned pos = 0;
    while (pos < n && ids[pos] < cache)
        ++pos;
    if (pos == n || ids[pos] != cache)
        return;
    for (unsigned i = pos + 1; i < n; ++i)
        ids[i - 1] = ids[i];
    storeInline(block, ids, n - 1);
}

void
SharerStore::storeInline(std::uint64_t block,
                         const std::array<CacheId, inlineSlots> &ids,
                         unsigned n)
{
    std::uint64_t lo = static_cast<std::uint64_t>(n)
                       << inlineCountShift;
    std::uint64_t hi = 0;
    for (unsigned slot = 0; slot < n; ++slot) {
        const std::uint64_t id = ids[slot] & 0xffffu;
        if (slot < loSlots)
            lo |= id << (16 * slot);
        else
            hi |= id << (16 * (slot - loSlots));
    }
    words[2 * block] = lo;
    words[2 * block + 1] = hi;
}

unsigned
SharerStore::loadInline(std::uint64_t block,
                        std::array<CacheId, inlineSlots> &ids) const
{
    const unsigned n = inlineCount(words[2 * block]);
    for (unsigned slot = 0; slot < n; ++slot)
        ids[slot] = inlineId(block, slot);
    return n;
}

void
SharerStore::spillEntry(std::uint64_t block,
                        const std::array<CacheId, inlineSlots> &ids,
                        CacheId extra)
{
    const std::uint32_t slice = claimSlice();
    for (const CacheId id : ids)
        spillWord(slice, id) |= std::uint64_t{1} << (id % 64);
    spillWord(slice, extra) |= std::uint64_t{1} << (extra % 64);
    words[2 * block] = spillFlag
                       | (static_cast<std::uint64_t>(slice)
                          << sliceShift)
                       | (inlineSlots + 1);
    words[2 * block + 1] = 0;
}

void
SharerStore::repackInline(std::uint64_t block)
{
    const std::uint64_t lo = words[2 * block];
    const std::uint32_t slice = spillSlice(lo);
    const std::uint64_t base =
        static_cast<std::uint64_t>(slice) * spillWords;
    std::array<CacheId, inlineSlots> ids;
    unsigned n = 0;
    for (std::uint32_t w = 0; w < spillWords; ++w) {
        visitWord(spill[base + w], w * 64u,
                  [&ids, &n](CacheId id) { ids[n++] = id; });
    }
    panicIfNot(n == spillCount(lo),
               "SharerStore::repackInline: slice holds ", n,
               " members but the entry counted ", spillCount(lo));
    freeSlices.push_back(slice);
    storeInline(block, ids, n);
}

std::uint32_t
SharerStore::claimSlice()
{
    if (!freeSlices.empty()) {
        const std::uint32_t slice = freeSlices.back();
        freeSlices.pop_back();
        std::fill_n(spill.begin()
                        + static_cast<std::int64_t>(
                            static_cast<std::uint64_t>(slice)
                            * spillWords),
                    spillWords, 0);
        return slice;
    }
    const std::uint32_t slice =
        static_cast<std::uint32_t>(spill.size() / spillWords);
    panicIfNot(slice < (1u << 24),
               "SharerStore: overflow arena exceeds the 24-bit slice "
               "index space");
    spill.resize(spill.size() + spillWords, 0);
    return slice;
}

} // namespace dirsim
