#include "directory/sharer_set.hh"

#include <bit>

#include "common/logging.hh"

namespace dirsim
{

SharerSet::SharerSet(unsigned num_caches_arg)
    : domain(num_caches_arg), words((num_caches_arg + 63) / 64, 0)
{
}

void
SharerSet::add(CacheId cache)
{
    panicIfNot(cache < domain,
               "SharerSet::add: cache ", cache, " out of domain ", domain);
    words[cache / 64] |= std::uint64_t{1} << (cache % 64);
}

void
SharerSet::remove(CacheId cache)
{
    if (cache >= domain)
        return;
    words[cache / 64] &= ~(std::uint64_t{1} << (cache % 64));
}

bool
SharerSet::contains(CacheId cache) const
{
    if (cache >= domain)
        return false;
    return (words[cache / 64] >> (cache % 64)) & 1;
}

unsigned
SharerSet::count() const
{
    unsigned total = 0;
    for (std::uint64_t word : words)
        total += static_cast<unsigned>(std::popcount(word));
    return total;
}

bool
SharerSet::isOnly(CacheId cache) const
{
    return count() == 1 && contains(cache);
}

unsigned
SharerSet::countExcluding(CacheId cache) const
{
    return count() - (contains(cache) ? 1 : 0);
}

CacheId
SharerSet::first() const
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        if (words[w] != 0) {
            return static_cast<CacheId>(
                w * 64
                + static_cast<unsigned>(std::countr_zero(words[w])));
        }
    }
    panic("SharerSet::first on an empty set");
}

CacheId
SharerSet::lastExcluding(CacheId excluded) const
{
    for (std::size_t w = words.size(); w-- > 0;) {
        std::uint64_t word = words[w];
        if (excluded / 64 == w)
            word &= ~(std::uint64_t{1} << (excluded % 64));
        if (word != 0) {
            return static_cast<CacheId>(
                w * 64 + 63
                - static_cast<unsigned>(std::countl_zero(word)));
        }
    }
    return invalidCacheId;
}

void
SharerSet::clear()
{
    for (auto &word : words)
        word = 0;
}

void
SharerSet::forEach(const std::function<void(CacheId)> &fn) const
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t word = words[w];
        while (word != 0) {
            const unsigned bit =
                static_cast<unsigned>(std::countr_zero(word));
            fn(static_cast<CacheId>(w * 64 + bit));
            word &= word - 1;
        }
    }
}

std::vector<CacheId>
SharerSet::toVector() const
{
    std::vector<CacheId> out;
    out.reserve(count());
    forEach([&out](CacheId cache) { out.push_back(cache); });
    return out;
}

bool
SharerSet::isSupersetOf(const SharerSet &other) const
{
    panicIfNot(domain == other.domain,
               "SharerSet::isSupersetOf across different domains");
    for (std::size_t w = 0; w < words.size(); ++w) {
        if ((other.words[w] & ~words[w]) != 0)
            return false;
    }
    return true;
}

void
SharerSet::unionWith(const SharerSet &other)
{
    panicIfNot(domain == other.domain,
               "SharerSet::unionWith across different domains");
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] |= other.words[w];
}

bool
SharerSet::intersects(const SharerSet &other) const
{
    panicIfNot(domain == other.domain,
               "SharerSet::intersects across different domains");
    for (std::size_t w = 0; w < words.size(); ++w) {
        if ((words[w] & other.words[w]) != 0)
            return true;
    }
    return false;
}

} // namespace dirsim
