#include "directory/limited.hh"

#include "common/logging.hh"

namespace dirsim
{

LimitedEntry::LimitedEntry(unsigned num_pointers_arg,
                           bool allow_broadcast_arg)
    : numPointers(num_pointers_arg), allowBroadcast(allow_broadcast_arg)
{
    fatalIf(numPointers == 0,
            "Dir_0 entries keep no pointers; Dir_0 NB cannot grant "
            "exclusive access (see the paper) and Dir_0 B is the "
            "two-bit directory (directory/two_bit.hh)");
    if (numPointers > inlineCap)
        heapPtrs.resize(numPointers);
}

LimitedAddOutcome
LimitedEntry::addSharer(CacheId cache, CacheId *victim)
{
    if (broadcast)
        return LimitedAddOutcome::AlreadyBroadcast;
    if (pointsTo(cache))
        return LimitedAddOutcome::Recorded;
    if (used < numPointers) {
        data()[used++] = cache;
        return LimitedAddOutcome::Recorded;
    }
    if (allowBroadcast) {
        broadcast = true;
        used = 0;
        return LimitedAddOutcome::BroadcastSet;
    }
    panicIfNot(victim != nullptr,
               "Dir_i NB overflow requires a victim out-parameter");
    *victim = data()[0];
    return LimitedAddOutcome::EvictionRequired;
}

void
LimitedEntry::removeSharer(CacheId cache)
{
    CacheId *ptrs = data();
    for (std::uint32_t i = 0; i < used; ++i) {
        if (ptrs[i] != cache)
            continue;
        // Close the gap, preserving FIFO order.
        for (std::uint32_t j = i + 1; j < used; ++j)
            ptrs[j - 1] = ptrs[j];
        --used;
        return;
    }
}

void
LimitedEntry::reset()
{
    used = 0;
    broadcast = false;
    dirty = false;
}

bool
LimitedEntry::pointsTo(CacheId cache) const
{
    const CacheId *ptrs = data();
    for (std::uint32_t i = 0; i < used; ++i) {
        if (ptrs[i] == cache)
            return true;
    }
    return false;
}

LimitedDirectory::LimitedDirectory(unsigned num_pointers_arg,
                                   bool allow_broadcast_arg)
    : numPointers(num_pointers_arg), allowBroadcast(allow_broadcast_arg)
{
    fatalIf(numPointers == 0, "LimitedDirectory needs i >= 1");
}

LimitedEntry &
LimitedDirectory::entry(BlockNum block)
{
    if (denseMode) {
        panicIfNot(block < dense.size(),
                   "LimitedDirectory: block ", block,
                   " outside the dense arena of ", dense.size(),
                   " blocks");
        return dense[block];
    }
    const auto it = entries.find(block);
    if (it != entries.end())
        return it->second;
    return entries
        .emplace(block, LimitedEntry(numPointers, allowBroadcast))
        .first->second;
}

const LimitedEntry *
LimitedDirectory::find(BlockNum block) const
{
    if (denseMode)
        return block < dense.size() ? &dense[block] : nullptr;
    const auto it = entries.find(block);
    return it == entries.end() ? nullptr : &it->second;
}

void
LimitedDirectory::reserveDense(std::uint64_t block_count)
{
    panicIfNot(entries.empty() && !denseMode,
               "LimitedDirectory::reserveDense on a touched directory");
    dense.assign(block_count,
                 LimitedEntry(numPointers, allowBroadcast));
    denseMode = true;
}

} // namespace dirsim
