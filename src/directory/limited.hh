/**
 * @file
 * Limited-pointer directory entries: the Dir_i B and Dir_i NB points
 * of the paper's taxonomy. Each entry keeps at most @c i cache
 * pointers plus a dirty bit, and (for the B variants) a broadcast bit
 * that is set when the pointer array overflows.
 */

#ifndef DIRSIM_DIRECTORY_LIMITED_HH
#define DIRSIM_DIRECTORY_LIMITED_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "directory/sharer_set.hh"

namespace dirsim
{

/** What happened when a sharer was recorded in a limited entry. */
enum class LimitedAddOutcome
{
    /** Pointer stored (or already present). */
    Recorded,
    /** Pointer array was full; the broadcast bit is now set. */
    BroadcastSet,
    /** Entry was already in broadcast mode. */
    AlreadyBroadcast,
    /**
     * No-broadcast entry was full: the caller must invalidate the
     * returned victim's copy before the new sharer can be recorded.
     */
    EvictionRequired,
};

/**
 * A Dir_i directory entry.
 *
 * Pointer order is FIFO: on Dir_i NB overflow the oldest pointer is
 * offered as the eviction victim, a deterministic stand-in for the
 * arbitrary choice the paper leaves open.
 *
 * Pointers are stored inline (no heap) for budgets up to 8 — every
 * Dir_i the paper evaluates — so a dense arena of entries is a single
 * flat allocation; larger budgets fall back to a heap array sized
 * once at construction.
 */
class LimitedEntry
{
  public:
    /**
     * @param num_pointers_arg i, the pointer budget (>= 1)
     * @param allow_broadcast_arg true for Dir_i B, false for Dir_i NB
     */
    LimitedEntry(unsigned num_pointers_arg, bool allow_broadcast_arg);

    bool dirty = false;

    /**
     * Record that @p cache now holds the block.
     *
     * For EvictionRequired the entry is NOT modified; the caller must
     * invalidate @p victim everywhere, call removeSharer(victim), and
     * retry (which is then guaranteed to record).
     *
     * @param cache the new sharer
     * @param victim out-parameter set on EvictionRequired
     */
    LimitedAddOutcome addSharer(CacheId cache, CacheId *victim = nullptr);

    /** Remove @p cache's pointer if present (no-op in broadcast mode). */
    void removeSharer(CacheId cache);

    /** Forget everything (after a full or directed invalidation). */
    void reset();

    /** True when only a broadcast can reach all copies. */
    bool broadcastRequired() const { return broadcast; }

    /** True if @p cache is known (by pointer) to hold the block. */
    bool pointsTo(CacheId cache) const;

    /** Exact pointer count (meaningless when broadcastRequired()). */
    unsigned pointerCount() const { return used; }

    /** Pointers in FIFO order (oldest first). */
    CacheIdSpan pointerList() const { return {data(), used}; }

    unsigned capacity() const { return numPointers; }
    bool broadcastAllowed() const { return allowBroadcast; }

  private:
    static constexpr unsigned inlineCap = 8;

    const CacheId *data() const
    {
        return numPointers <= inlineCap ? inlinePtrs.data()
                                        : heapPtrs.data();
    }
    CacheId *data()
    {
        return numPointers <= inlineCap ? inlinePtrs.data()
                                        : heapPtrs.data();
    }

    unsigned numPointers;
    bool allowBroadcast;
    bool broadcast = false;
    std::uint32_t used = 0;
    /** FIFO, oldest first; valid prefix of length @c used. */
    std::array<CacheId, inlineCap> inlinePtrs;
    /** Overflow storage when the budget exceeds inlineCap. */
    std::vector<CacheId> heapPtrs;
};

/**
 * Sparse map of LimitedEntry by block, mirroring FullMapDirectory.
 *
 * reserveDense() pre-materializes one entry per densified block index
 * (see FullMapDirectory::reserveDense), turning entry access into an
 * array load for decode-once simulation streams.
 */
class LimitedDirectory
{
  public:
    /**
     * @param num_pointers_arg i (pointer budget per entry)
     * @param allow_broadcast_arg Dir_i B when true, Dir_i NB when false
     */
    LimitedDirectory(unsigned num_pointers_arg, bool allow_broadcast_arg);

    LimitedEntry &entry(BlockNum block);
    const LimitedEntry *find(BlockNum block) const;
    std::size_t trackedBlocks() const
    {
        return denseMode ? dense.size() : entries.size();
    }

    unsigned pointerBudget() const { return numPointers; }
    bool broadcastAllowed() const { return allowBroadcast; }

    /** Switch to dense entry storage; see FullMapDirectory. */
    void reserveDense(std::uint64_t block_count);

    /** True once reserveDense() switched to the arena. */
    bool denseStorage() const { return denseMode; }

  private:
    unsigned numPointers;
    bool allowBroadcast;
    std::unordered_map<BlockNum, LimitedEntry> entries;
    std::vector<LimitedEntry> dense;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_LIMITED_HH
