/**
 * @file
 * Limited-pointer directory entries: the Dir_i B and Dir_i NB points
 * of the paper's taxonomy. Each entry keeps at most @c i cache
 * pointers plus a dirty bit, and (for the B variants) a broadcast bit
 * that is set when the pointer array overflows.
 */

#ifndef DIRSIM_DIRECTORY_LIMITED_HH
#define DIRSIM_DIRECTORY_LIMITED_HH

#include <unordered_map>
#include <vector>

#include "directory/sharer_set.hh"

namespace dirsim
{

/** What happened when a sharer was recorded in a limited entry. */
enum class LimitedAddOutcome
{
    /** Pointer stored (or already present). */
    Recorded,
    /** Pointer array was full; the broadcast bit is now set. */
    BroadcastSet,
    /** Entry was already in broadcast mode. */
    AlreadyBroadcast,
    /**
     * No-broadcast entry was full: the caller must invalidate the
     * returned victim's copy before the new sharer can be recorded.
     */
    EvictionRequired,
};

/**
 * A Dir_i directory entry.
 *
 * Pointer order is FIFO: on Dir_i NB overflow the oldest pointer is
 * offered as the eviction victim, a deterministic stand-in for the
 * arbitrary choice the paper leaves open.
 */
class LimitedEntry
{
  public:
    /**
     * @param num_pointers_arg i, the pointer budget (>= 1)
     * @param allow_broadcast_arg true for Dir_i B, false for Dir_i NB
     */
    LimitedEntry(unsigned num_pointers_arg, bool allow_broadcast_arg);

    bool dirty = false;

    /**
     * Record that @p cache now holds the block.
     *
     * For EvictionRequired the entry is NOT modified; the caller must
     * invalidate @p victim everywhere, call removeSharer(victim), and
     * retry (which is then guaranteed to record).
     *
     * @param cache the new sharer
     * @param victim out-parameter set on EvictionRequired
     */
    LimitedAddOutcome addSharer(CacheId cache, CacheId *victim = nullptr);

    /** Remove @p cache's pointer if present (no-op in broadcast mode). */
    void removeSharer(CacheId cache);

    /** Forget everything (after a full or directed invalidation). */
    void reset();

    /** True when only a broadcast can reach all copies. */
    bool broadcastRequired() const { return broadcast; }

    /** True if @p cache is known (by pointer) to hold the block. */
    bool pointsTo(CacheId cache) const;

    /** Exact pointer count (meaningless when broadcastRequired()). */
    unsigned pointerCount() const
    {
        return static_cast<unsigned>(pointers.size());
    }

    /** Pointers in FIFO order (oldest first). */
    const std::vector<CacheId> &pointerList() const { return pointers; }

    unsigned capacity() const { return numPointers; }
    bool broadcastAllowed() const { return allowBroadcast; }

  private:
    unsigned numPointers;
    bool allowBroadcast;
    bool broadcast = false;
    std::vector<CacheId> pointers; // FIFO, oldest first
};

/**
 * Sparse map of LimitedEntry by block, mirroring FullMapDirectory.
 *
 * reserveDense() pre-materializes one entry per densified block index
 * (see FullMapDirectory::reserveDense), turning entry access into an
 * array load for decode-once simulation streams.
 */
class LimitedDirectory
{
  public:
    /**
     * @param num_pointers_arg i (pointer budget per entry)
     * @param allow_broadcast_arg Dir_i B when true, Dir_i NB when false
     */
    LimitedDirectory(unsigned num_pointers_arg, bool allow_broadcast_arg);

    LimitedEntry &entry(BlockNum block);
    const LimitedEntry *find(BlockNum block) const;
    std::size_t trackedBlocks() const
    {
        return denseMode ? dense.size() : entries.size();
    }

    unsigned pointerBudget() const { return numPointers; }
    bool broadcastAllowed() const { return allowBroadcast; }

    /** Switch to dense entry storage; see FullMapDirectory. */
    void reserveDense(std::uint64_t block_count);

    /** True once reserveDense() switched to the arena. */
    bool denseStorage() const { return denseMode; }

  private:
    unsigned numPointers;
    bool allowBroadcast;
    std::unordered_map<BlockNum, LimitedEntry> entries;
    std::vector<LimitedEntry> dense;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_LIMITED_HH
