#include "directory/storage.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace dirsim
{

const char *
toString(DirectoryOrg org)
{
    switch (org) {
      case DirectoryOrg::TangDuplicate:
        return "tang-duplicate";
      case DirectoryOrg::FullMap:
        return "full-map";
      case DirectoryOrg::TwoBit:
        return "two-bit";
      case DirectoryOrg::LimitedPtr:
        return "limited-ptr";
      case DirectoryOrg::LimitedPtrB:
        return "limited-ptr+b";
      case DirectoryOrg::CoarseVector:
        return "coarse-vector";
      case DirectoryOrg::RegionVector:
        return "region-vector";
    }
    panic("unknown DirectoryOrg ", static_cast<int>(org));
}

double
directoryBitsPerBlock(DirectoryOrg org, const StorageParams &params)
{
    fatalIf(params.numCaches == 0, "storage formula needs n >= 1");
    const unsigned ptr_bits =
        std::max(1u, ceilLog2(std::max(1u, params.numCaches)));

    switch (org) {
      case DirectoryOrg::TangDuplicate: {
        fatalIf(params.memoryBlocks == 0,
                "Tang amortization needs memoryBlocks > 0");
        // Each cache's tag store is duplicated: (tag + dirty) bits per
        // cached block, n caches, amortized over main memory.
        const double total =
            static_cast<double>(params.numCaches)
            * static_cast<double>(params.blocksPerCache)
            * static_cast<double>(params.tagBits + 1);
        return total / static_cast<double>(params.memoryBlocks);
      }
      case DirectoryOrg::FullMap:
        // n present bits + 1 dirty bit.
        return static_cast<double>(params.numCaches) + 1.0;
      case DirectoryOrg::TwoBit:
        return 2.0;
      case DirectoryOrg::LimitedPtr:
        // i pointers of ceil(log2 n) bits, a valid count of
        // ceil(log2(i+1)) bits, and a dirty bit.
        return static_cast<double>(params.numPointers) * ptr_bits
            + ceilLog2(params.numPointers + 1) + 1.0;
      case DirectoryOrg::LimitedPtrB:
        return directoryBitsPerBlock(DirectoryOrg::LimitedPtr, params)
            + 1.0;
      case DirectoryOrg::CoarseVector:
        // 2 bits per ternary digit (paper: 2*log2 n) + dirty bit.
        return 2.0 * ptr_bits + 1.0;
      case DirectoryOrg::RegionVector:
        // One presence bit per K-cache region (last region clipped,
        // but it still needs its own bit) + dirty bit.
        fatalIf(params.regionSize == 0,
                "region-vector storage needs a region size >= 1");
        return static_cast<double>((params.numCaches
                                    + params.regionSize - 1)
                                   / params.regionSize)
            + 1.0;
    }
    panic("unknown DirectoryOrg ", static_cast<int>(org));
}

std::vector<StorageRow>
storageTable(const std::vector<unsigned> &cache_counts,
             const std::vector<unsigned> &pointer_budgets)
{
    std::vector<StorageRow> rows;
    for (const unsigned n : cache_counts) {
        StorageParams params;
        params.numCaches = n;
        for (const DirectoryOrg org :
             {DirectoryOrg::FullMap, DirectoryOrg::TwoBit,
              DirectoryOrg::CoarseVector}) {
            rows.push_back(
                {org, n, 0, directoryBitsPerBlock(org, params)});
        }
        for (const unsigned i : pointer_budgets) {
            params.numPointers = i;
            for (const DirectoryOrg org :
                 {DirectoryOrg::LimitedPtr, DirectoryOrg::LimitedPtrB}) {
                rows.push_back(
                    {org, n, i, directoryBitsPerBlock(org, params)});
            }
        }
    }
    return rows;
}

} // namespace dirsim
