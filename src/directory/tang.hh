/**
 * @file
 * Tang's directory organization: the central directory holds a
 * duplicate of every cache's tag store (tag + dirty bit per cached
 * block). Finding the holders of a block means searching each
 * duplicate directory; the information content is the same as the
 * Censier & Feautrier full map (tested for equivalence), only the
 * organization and lookup cost differ.
 */

#ifndef DIRSIM_DIRECTORY_TANG_HH
#define DIRSIM_DIRECTORY_TANG_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "directory/sharer_set.hh"

namespace dirsim
{

/**
 * Duplicate-tag central directory.
 *
 * reserveDense() switches each duplicate tag store from a hash map to
 * a flat per-block presence/dirty array (for densified block indices,
 * sim/decoded.hh), so a search touches one byte per cache instead of
 * performing one hash probe per cache.
 */
class TangDirectory
{
  public:
    /** Result of searching all duplicate tag stores for a block. */
    struct SearchResult
    {
        SharerSet holders;
        /** Cache holding the block dirty, or invalidCacheId. */
        CacheId dirtyOwner = invalidCacheId;

        bool dirty() const { return dirtyOwner != invalidCacheId; }
    };

    /** @param num_caches_arg number of caches whose tags to mirror */
    explicit TangDirectory(unsigned num_caches_arg);

    /** Mirror cache @p cache filling @p block (clean). */
    void recordFill(CacheId cache, BlockNum block);

    /** Mirror cache @p cache's copy of @p block turning dirty. */
    void recordDirty(CacheId cache, BlockNum block);

    /** Mirror cache @p cache's copy of @p block turning clean. */
    void recordClean(CacheId cache, BlockNum block);

    /** Mirror invalidation/eviction of @p block from cache @p cache. */
    void recordInvalidate(CacheId cache, BlockNum block);

    /** Search every duplicate directory for @p block. */
    SearchResult search(BlockNum block) const;

    /**
     * Number of duplicate directories a search touches (all of them;
     * this is the organization's lookup-cost drawback vs. the
     * directly-indexed full map).
     */
    unsigned searchCost() const
    {
        return static_cast<unsigned>(dupTags.size());
    }

    unsigned numCaches() const
    {
        return static_cast<unsigned>(dupTags.size());
    }

    /** Switch to dense per-cache tag arrays; must precede records. */
    void reserveDense(std::uint64_t block_count);

    /** True once reserveDense() switched to the arrays. */
    bool denseStorage() const { return denseMode; }

  private:
    /** Dense tag-slot encoding: absent / present-clean / present-dirty. */
    enum : std::uint8_t { tagAbsent = 0, tagClean = 1, tagDirty = 2 };

    /** Per-cache duplicate tags: block -> dirty flag. */
    std::vector<std::unordered_map<BlockNum, bool>> dupTags;
    /** Dense backend: per-cache tag slot per block index. */
    std::vector<std::vector<std::uint8_t>> denseTags;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_TANG_HH
