/**
 * @file
 * Tang's directory organization: the central directory holds a
 * duplicate of every cache's tag store (tag + dirty bit per cached
 * block). Finding the holders of a block means searching each
 * duplicate directory; the information content is the same as the
 * Censier & Feautrier full map (tested for equivalence), only the
 * organization and lookup cost differ.
 */

#ifndef DIRSIM_DIRECTORY_TANG_HH
#define DIRSIM_DIRECTORY_TANG_HH

#include <unordered_map>
#include <vector>

#include "directory/sharer_set.hh"

namespace dirsim
{

/** Duplicate-tag central directory. */
class TangDirectory
{
  public:
    /** Result of searching all duplicate tag stores for a block. */
    struct SearchResult
    {
        SharerSet holders;
        /** Cache holding the block dirty, or invalidCacheId. */
        CacheId dirtyOwner = invalidCacheId;

        bool dirty() const { return dirtyOwner != invalidCacheId; }
    };

    /** @param num_caches_arg number of caches whose tags to mirror */
    explicit TangDirectory(unsigned num_caches_arg);

    /** Mirror cache @p cache filling @p block (clean). */
    void recordFill(CacheId cache, BlockNum block);

    /** Mirror cache @p cache's copy of @p block turning dirty. */
    void recordDirty(CacheId cache, BlockNum block);

    /** Mirror cache @p cache's copy of @p block turning clean. */
    void recordClean(CacheId cache, BlockNum block);

    /** Mirror invalidation/eviction of @p block from cache @p cache. */
    void recordInvalidate(CacheId cache, BlockNum block);

    /** Search every duplicate directory for @p block. */
    SearchResult search(BlockNum block) const;

    /**
     * Number of duplicate directories a search touches (all of them;
     * this is the organization's lookup-cost drawback vs. the
     * directly-indexed full map).
     */
    unsigned searchCost() const
    {
        return static_cast<unsigned>(dupTags.size());
    }

    unsigned numCaches() const
    {
        return static_cast<unsigned>(dupTags.size());
    }

  private:
    /** Per-cache duplicate tags: block -> dirty flag. */
    std::vector<std::unordered_map<BlockNum, bool>> dupTags;
};

} // namespace dirsim

#endif // DIRSIM_DIRECTORY_TANG_HH
