#include "tracegen/address_space.hh"

#include "common/bitops.hh"

namespace dirsim
{

AddressSpace::AddressSpace(unsigned block_bytes_arg)
    : blockSize(block_bytes_arg)
{
    checkBlockSize(blockSize);
}

Addr
AddressSpace::code(ProcId pid, std::uint64_t pos) const
{
    // Wrap within the per-process code segment.
    const std::uint64_t offset =
        (pos * busWordBytes) % codeStride;
    return codeBase + static_cast<Addr>(pid) * codeStride + offset;
}

Addr
AddressSpace::privateData(ProcId pid, std::uint64_t index) const
{
    const std::uint64_t offset =
        (index * busWordBytes) % privateStride;
    return privateBase + static_cast<Addr>(pid) * privateStride + offset;
}

Addr
AddressSpace::shared(std::uint64_t index) const
{
    return sharedBase + index * busWordBytes;
}

Addr
AddressSpace::lock(unsigned lock_id) const
{
    return lockBase + static_cast<Addr>(lock_id) * blockSize;
}

Addr
AddressSpace::mailbox(unsigned lock_id, unsigned index) const
{
    return mailboxBase + static_cast<Addr>(lock_id) * mailboxStride
        + static_cast<Addr>(index) * blockSize;
}

Addr
AddressSpace::kernelCode(std::uint64_t pos) const
{
    const std::uint64_t offset =
        (pos * busWordBytes) % (kernelDataBase - kernelCodeBase);
    return kernelCodeBase + offset;
}

Addr
AddressSpace::kernelData(std::uint64_t index) const
{
    return kernelDataBase + index * busWordBytes;
}

Addr
AddressSpace::kernelProcData(ProcId pid, std::uint64_t index) const
{
    const std::uint64_t offset =
        (index * busWordBytes) % kernelProcStride;
    return kernelProcBase + static_cast<Addr>(pid) * kernelProcStride
        + offset;
}

} // namespace dirsim
