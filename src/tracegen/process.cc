#include "tracegen/process.hh"

#include "common/logging.hh"

namespace dirsim
{

namespace
{

/** Words of hot kernel data (scheduler structures) every burst hits. */
constexpr std::uint64_t kernelHotWords = 64;

/** Mean instructions between taken jumps in the code walkers. */
constexpr unsigned jumpEvery = 64;

} // namespace

WorldState::WorldState(const WorkloadProfile &profile_arg)
    : profile(profile_arg), space(),
      locks(static_cast<std::size_t>(profile_arg.numLocks)
            * profile_arg.numClusters()),
      privateSampler(profile_arg.privateWords, profile_arg.privateZipf),
      sharedSampler(profile_arg.sharedWords, profile_arg.sharedZipf)
{
    profile.check();
}

SyntheticProcess::SyntheticProcess(unsigned index_arg, ProcId pid_arg,
                                   WorldState &world_arg, Rng rng_arg)
    : index(index_arg), processId(pid_arg), world(world_arg),
      rng(rng_arg), cluster(world_arg.clusterOf(index_arg)),
      sharedWordBase(static_cast<std::uint64_t>(cluster)
                     * world_arg.profile.sharedWords),
      lockIndexBase(cluster * world_arg.profile.numLocks)
{
    enterPhase(Phase::Local, world.profile.localWorkRefs);
    // Desynchronize the initial phase positions across processes.
    remaining = 1 + static_cast<unsigned>(
        rng.below(world.profile.localWorkRefs + 1));
}

unsigned
SyntheticProcess::phaseLength(unsigned mean_refs)
{
    if (mean_refs <= 1)
        return 1;
    return 1 + static_cast<unsigned>(
        rng.geometric(1.0 / static_cast<double>(mean_refs)));
}

void
SyntheticProcess::enterPhase(Phase new_phase, unsigned mean_refs)
{
    phase = new_phase;
    remaining = phaseLength(mean_refs);
}

void
SyntheticProcess::emitRecord(Trace &out, CpuId cpu, RefType type,
                             Addr addr, std::uint8_t flags)
{
    TraceRecord record;
    record.addr = addr;
    record.pid = processId;
    record.cpu = cpu;
    record.type = type;
    record.flags = flags;
    out.append(record);
}

Addr
SyntheticProcess::nextInstr(bool kernel)
{
    std::uint64_t &pos = kernel ? kernelCodePos : codePos;
    if (rng.below(jumpEvery) == 0)
        pos = rng.below(1u << 16); // jump within the working loop set
    else
        ++pos;
    return kernel ? world.space.kernelCode(pos)
                  : world.space.code(processId, pos);
}

Addr
SyntheticProcess::dataAddr(Phase for_phase, bool is_write)
{
    switch (for_phase) {
      case Phase::Local:
        // Writes come in bursts to the same word (store locality), so
        // most writes rewrite an already-dirty block as in the
        // paper's traces (wh-blk-drty dominates wh-blk-cln 24:1).
        if (is_write) {
            if (!rng.chance(0.3))
                return world.space.privateData(processId,
                                               lastPrivateWrite);
            lastPrivateWrite = world.privateSampler(rng);
            return world.space.privateData(processId,
                                           lastPrivateWrite);
        }
        return world.space.privateData(processId,
                                       world.privateSampler(rng));
      case Phase::Browse:
        // Browse writes go to a uniformly random (usually cold) word
        // so that widely-read hot blocks are rarely invalidated. Each
        // sharing cluster browses its own slice of the pool; with one
        // cluster the slice base is zero (the original behaviour).
        if (is_write)
            return world.space.shared(
                sharedWordBase + rng.below(world.profile.sharedWords));
        return world.space.shared(
            sharedWordBase + world.sharedSampler(rng));
      case Phase::Critical: {
        // Writes (and half the reads) target the lock's work region,
        // which migrates between successive holders; the other reads
        // browse the global shared pool.
        const unsigned region = world.profile.lockRegionBlocks;
        if (is_write || rng.chance(0.85)) {
            const unsigned slot = world.profile.mailboxBlocks
                + static_cast<unsigned>(rng.below(region));
            return world.space.mailbox(currentLock, slot);
        }
        return world.space.shared(
            sharedWordBase + world.sharedSampler(rng));
      }
      case Phase::Os: {
        // Kernel writes overwhelmingly target per-process structures
        // (kernel stack, u-area); only hot scheduler words are
        // written shared. Reads also browse the shared kernel pool.
        if (is_write) {
            if (rng.chance(world.profile.kernelHotFrac))
                return world.space.kernelData(
                    rng.below(kernelHotWords));
            if (!rng.chance(0.4))
                return world.space.kernelProcData(processId,
                                                  lastKernelWrite);
            lastKernelWrite = rng.below(kernelHotWords * 4);
            return world.space.kernelProcData(processId,
                                              lastKernelWrite);
        }
        if (rng.chance(0.35))
            return world.space.kernelData(
                rng.below(world.profile.kernelWords));
        return world.space.kernelProcData(
            processId, rng.below(kernelHotWords * 4));
      }
      case Phase::SpinWait:
        break;
    }
    panic("dataAddr for a non-data phase");
}

void
SyntheticProcess::emitMixed(Trace &out, CpuId cpu, const PhaseMix &mix,
                            Phase for_phase)
{
    const bool kernel = for_phase == Phase::Os;
    const std::uint8_t flags = kernel ? flagSystem : flagNone;
    const double draw = rng.uniform();
    if (draw < mix.instrFrac) {
        emitRecord(out, cpu, RefType::Instr, nextInstr(kernel), flags);
    } else if (draw < mix.instrFrac + mix.readFrac) {
        emitRecord(out, cpu, RefType::Read,
                   dataAddr(for_phase, false), flags);
    } else {
        emitRecord(out, cpu, RefType::Write,
                   dataAddr(for_phase, true), flags);
    }
}

void
SyntheticProcess::advanceAfter(Phase finished)
{
    const WorkloadProfile &p = world.profile;

    const auto begin_acquire = [this] {
        // Same single rng draw as ever; the cluster base only offsets
        // the chosen index into the cluster's own lock set.
        currentLock = lockIndexBase
            + static_cast<unsigned>(rng.below(world.profile.numLocks));
        phase = Phase::SpinWait;
        remaining = 1; // unused while spinning
    };
    const auto os_or_local = [this, &p] {
        if (rng.chance(p.osBurstProb))
            enterPhase(Phase::Os, p.osBurstRefs);
        else
            enterPhase(Phase::Local, p.localWorkRefs);
    };

    switch (finished) {
      case Phase::Local:
        if (rng.chance(p.browseProb)) {
            wantLockAfterBrowse =
                p.numLocks > 0 && rng.chance(p.lockUseProb);
            enterPhase(Phase::Browse, p.browseRefs);
        } else if (p.numLocks > 0 && rng.chance(p.lockUseProb)) {
            begin_acquire();
        } else {
            os_or_local();
        }
        break;
      case Phase::Browse:
        if (wantLockAfterBrowse) {
            wantLockAfterBrowse = false;
            begin_acquire();
        } else {
            os_or_local();
        }
        break;
      case Phase::Critical:
        os_or_local();
        break;
      case Phase::Os:
        enterPhase(Phase::Local, p.localWorkRefs);
        break;
      case Phase::SpinWait:
        panic("SpinWait ends via acquisition, not phase exhaustion");
    }
}

unsigned
SyntheticProcess::step(Trace &out, CpuId cpu)
{
    const WorkloadProfile &p = world.profile;

    switch (phase) {
      case Phase::Local:
        emitMixed(out, cpu, p.localMix, phase);
        if (--remaining == 0)
            advanceAfter(Phase::Local);
        return 1;

      case Phase::Browse: {
        // Browsing is read-dominated by construction; the write
        // fraction is a separate knob because it controls how often
        // widely-shared blocks get invalidated (the Figure 1 tail).
        const double instr_frac = 0.45;
        PhaseMix mix;
        mix.instrFrac = instr_frac;
        mix.readFrac = (1.0 - instr_frac) * (1.0 - p.browseWriteProb);
        emitMixed(out, cpu, mix, phase);
        if (--remaining == 0)
            advanceAfter(Phase::Browse);
        return 1;
      }

      case Phase::SpinWait: {
        WorldState::Lock &lock = world.locks[currentLock];
        const Addr lock_addr = world.space.lock(currentLock);
        if (lock.holder < 0) {
            // Observed free: the final test read, then test-and-set.
            emitRecord(out, cpu, RefType::Read, lock_addr,
                       flagLockSpin);
            ++spinReadCount;
            emitRecord(out, cpu, RefType::Write, lock_addr,
                       flagLockWrite);
            lock.holder = static_cast<int>(index);
            // Queue the migratory mailbox work: the first half of the
            // payload blocks is read (the previous holder's data)
            // then overwritten; the rest is overwritten blind.
            mailboxOps.clear();
            const unsigned half = p.mailboxBlocks / 2;
            for (unsigned i = 0; i < half; ++i)
                mailboxOps.push_back(
                    {false, world.space.mailbox(currentLock, i)});
            for (unsigned i = 0; i < p.mailboxBlocks; ++i)
                mailboxOps.push_back(
                    {true, world.space.mailbox(currentLock, i)});
            enterPhase(Phase::Critical, p.criticalRefs);
            return 2;
        }
        // Busy: one spin-loop iteration. Under test-and-test-and-set
        // the test read stays cached until invalidated; under raw
        // test-and-set every failed attempt is a write to the lock
        // word (the ext_lock_primitive ablation).
        for (unsigned i = 0; i < p.spinInstrs; ++i)
            emitRecord(out, cpu, RefType::Instr, nextInstr(false));
        if (p.spinWithTestAndSet) {
            emitRecord(out, cpu, RefType::Write, lock_addr,
                       flagLockWrite);
        } else {
            emitRecord(out, cpu, RefType::Read, lock_addr,
                       flagLockSpin);
            ++spinReadCount;
        }
        return p.spinInstrs + 1;
      }

      case Phase::Critical: {
        WorldState::Lock &lock = world.locks[currentLock];
        panicIfNot(lock.holder == static_cast<int>(index),
                   "critical section without holding the lock");
        if (remaining > 0) {
            if (!mailboxOps.empty() && rng.chance(0.5)) {
                const MailboxOp op = mailboxOps.front();
                mailboxOps.pop_front();
                emitRecord(out, cpu,
                           op.write ? RefType::Write : RefType::Read,
                           op.addr);
            } else {
                emitMixed(out, cpu, p.criticalMix, phase);
            }
            --remaining;
            return 1;
        }
        if (!mailboxOps.empty()) {
            // Drain the remaining payload work before unlocking.
            const MailboxOp op = mailboxOps.front();
            mailboxOps.pop_front();
            emitRecord(out, cpu,
                       op.write ? RefType::Write : RefType::Read,
                       op.addr);
            return 1;
        }
        // Unlock.
        emitRecord(out, cpu, RefType::Write,
                   world.space.lock(currentLock), flagLockWrite);
        lock.holder = -1;
        ++lock.handoffs;
        advanceAfter(Phase::Critical);
        return 1;
      }

      case Phase::Os:
        emitMixed(out, cpu, p.osMix, phase);
        if (--remaining == 0)
            advanceAfter(Phase::Os);
        return 1;
    }
    panic("unknown phase");
}

} // namespace dirsim
