#include "tracegen/profile.hh"

#include "common/logging.hh"

namespace dirsim
{

void
PhaseMix::check(const std::string &what) const
{
    fatalIf(instrFrac < 0.0 || readFrac < 0.0
                || instrFrac + readFrac > 1.0,
            what, ": phase mix fractions out of range (instr ",
            instrFrac, ", read ", readFrac, ")");
}

void
WorkloadProfile::check() const
{
    fatalIf(name.empty(), "workload profile needs a name");
    fatalIf(numCpus == 0, name, ": needs at least one CPU");
    // The binary trace format (trace/format.hh) stores the cpu count
    // and every record's cpu id as u16, and the scheduler casts cpu
    // indices to CpuId; a larger machine would silently wrap.
    fatalIf(numCpus > 65535, name, ": ", numCpus,
            " CPUs exceed the trace format's u16 cpu ids (max 65535)");
    fatalIf(numProcesses == 0, name, ": needs at least one process");
    fatalIf(privateWords == 0 || sharedWords == 0 || kernelWords == 0,
            name, ": data pools must be non-empty");
    fatalIf(numLocks == 0 && lockUseProb > 0.0,
            name, ": lock use enabled but no locks configured");
    fatalIf(lockUseProb > 0.0 && lockRegionBlocks == 0,
            name, ": critical sections need a non-empty lock region");
    fatalIf(burstMinRefs == 0 || burstMinRefs > burstMaxRefs,
            name, ": invalid timeslice burst bounds");
    localMix.check(name + " local");
    criticalMix.check(name + " critical");
    osMix.check(name + " os");
}

WorkloadProfile
popsProfile()
{
    WorkloadProfile p;
    p.name = "pops";
    p.numProcesses = 5;

    // Rule matching: long private computation over the process's own
    // partition of the rule network.
    p.localWorkRefs = 700;
    p.localMix = PhaseMix{0.410, 0.430};
    p.privateWords = 12288;
    p.privateZipf = 0.85;

    // Read-mostly browsing of the shared working memory.
    p.browseProb = 0.50;
    p.browseRefs = 30;
    p.browseWriteProb = 0.006;
    p.sharedWords = 6144;
    p.sharedZipf = 0.75;

    // The hot conflict-resolution/task queue: long critical sections
    // keep waiters spinning (one third of reads are spins in the
    // original POPS trace), while handoffs stay rare enough that the
    // coherence-miss rate matches the paper's scale.
    p.lockUseProb = 0.88;
    p.numLocks = 1;
    p.criticalRefs = 420;
    p.criticalMix = PhaseMix{0.460, 0.480};
    p.mailboxBlocks = 2;
    p.lockRegionBlocks = 6;

    // MACH system activity: roughly 10% of all references.
    p.osBurstProb = 0.90;
    p.osBurstRefs = 200;
    p.osMix = PhaseMix{0.45, 0.47};
    p.kernelHotFrac = 0.05;
    return p;
}

WorkloadProfile
thorProfile()
{
    WorkloadProfile p;
    p.name = "thor";
    p.numProcesses = 5;

    // Gate evaluation over the process's own circuit partition.
    p.localWorkRefs = 550;
    p.localMix = PhaseMix{0.400, 0.410};
    p.privateWords = 24576;
    p.privateZipf = 0.80;

    // Node values: a larger, read-mostly shared state than POPS.
    p.browseProb = 0.55;
    p.browseRefs = 34;
    p.browseWriteProb = 0.008;
    p.sharedWords = 12288;
    p.sharedZipf = 0.70;

    // The event wheel: events migrate between evaluating processes
    // (more migratory payload than POPS, slightly more locks).
    p.lockUseProb = 0.80;
    p.numLocks = 1;
    p.criticalRefs = 450;
    p.criticalMix = PhaseMix{0.460, 0.480};
    p.mailboxBlocks = 2;
    p.lockRegionBlocks = 5;

    p.osBurstProb = 0.90;
    p.osBurstRefs = 170;
    p.osMix = PhaseMix{0.45, 0.47};
    p.kernelHotFrac = 0.05;
    return p;
}

WorkloadProfile
peroProfile()
{
    WorkloadProfile p;
    p.name = "pero";
    p.numProcesses = 4;

    // Routing: very long private grid sweeps; the read-to-write
    // ratio comes from the algorithm, not from lock spinning.
    p.localWorkRefs = 1400;
    p.localMix = PhaseMix{0.490, 0.390};
    p.privateWords = 32768;
    p.privateZipf = 0.70;

    // Boundary cells of neighbouring regions.
    p.browseProb = 0.35;
    p.browseRefs = 20;
    p.browseWriteProb = 0.008;
    p.sharedWords = 4096;
    p.sharedZipf = 0.60;

    // The global net list is locked rarely.
    p.lockUseProb = 0.12;
    p.numLocks = 1;
    p.criticalRefs = 200;
    p.criticalMix = PhaseMix{0.460, 0.510};
    p.mailboxBlocks = 2;
    p.lockRegionBlocks = 10;

    p.osBurstProb = 1.00;
    p.osBurstRefs = 150;
    p.osMix = PhaseMix{0.45, 0.47};
    p.kernelHotFrac = 0.03;
    return p;
}

WorkloadProfile
profileByName(const std::string &name)
{
    if (name == "pops")
        return popsProfile();
    if (name == "thor")
        return thorProfile();
    if (name == "pero")
        return peroProfile();
    fatal("unknown workload '", name, "' (expected pops, thor, pero)");
}

} // namespace dirsim
