/**
 * @file
 * Classification of synthetic-trace addresses back to their segment,
 * for analysis tools: given an address from a generated trace, which
 * kind of data is it (private, shared pool, lock word, migratory
 * lock region, kernel, code)?
 */

#ifndef DIRSIM_TRACEGEN_SEGMENTS_HH
#define DIRSIM_TRACEGEN_SEGMENTS_HH

#include <string>

#include "common/types.hh"

namespace dirsim
{

class Trace;

/** The address segments of tracegen/address_space.hh. */
enum class SegmentKind
{
    UserCode,    ///< per-process instruction stream
    PrivateData, ///< per-process data
    SharedData,  ///< application shared pool
    Lock,        ///< lock words
    Mailbox,     ///< lock-protected migratory payload/work regions
    KernelCode,  ///< OS instruction stream
    KernelData,  ///< shared kernel data
    KernelProc,  ///< per-process kernel data (stacks, u-areas)
    Unknown,     ///< not a tracegen address
};

/** Segment name, e.g. "shared-data". */
const char *toString(SegmentKind kind);

/** Classify an address against the tracegen address-space layout. */
SegmentKind classifyAddress(Addr addr);

/** Per-segment reference counts of a trace. */
struct SegmentProfile
{
    /** refs[kind] = number of references into that segment. */
    std::uint64_t refs[static_cast<int>(SegmentKind::Unknown) + 1] =
        {};

    std::uint64_t total = 0;

    std::uint64_t
    count(SegmentKind kind) const
    {
        return refs[static_cast<int>(kind)];
    }

    /** Fraction of all references in @p kind (0 when empty). */
    double fraction(SegmentKind kind) const;
};

/** Count every reference of @p trace by segment. */
SegmentProfile profileSegments(const Trace &trace);

} // namespace dirsim

#endif // DIRSIM_TRACEGEN_SEGMENTS_HH
