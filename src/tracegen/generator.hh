/**
 * @file
 * Top-level synthetic trace generation entry points.
 */

#ifndef DIRSIM_TRACEGEN_GENERATOR_HH
#define DIRSIM_TRACEGEN_GENERATOR_HH

#include <cstdint>
#include <string>

#include "trace/trace.hh"
#include "tracegen/profile.hh"

namespace dirsim
{

/**
 * Generate a synthetic multiprocessor trace.
 *
 * Deterministic: the same (profile, target_refs, seed) triple always
 * produces the identical trace, on any platform.
 *
 * @param profile workload parameters (see tracegen/profile.hh)
 * @param target_refs approximate trace length in references (the
 *        trace ends at the first timeslice boundary past the target)
 * @param seed random seed
 */
Trace generateTrace(const WorkloadProfile &profile,
                    std::uint64_t target_refs, std::uint64_t seed);

/** generateTrace() with a profile looked up by name. */
Trace generateTrace(const std::string &workload,
                    std::uint64_t target_refs, std::uint64_t seed);

} // namespace dirsim

#endif // DIRSIM_TRACEGEN_GENERATOR_HH
