/**
 * @file
 * The behavioural process model that emits synthetic references.
 *
 * Each process cycles through phases:
 *
 *   Local     private computation (instructions + private data)
 *   Browse    read-mostly browsing of the shared pool (optional)
 *   SpinWait  test-and-test-and-set acquisition of a lock: spin
 *             reads of the lock word until it is observed free, then
 *             the test-and-set write
 *   Critical  lock-protected work: migratory mailbox payload
 *             (read-then-write and blind-write blocks) mixed with
 *             shared-pool references, ended by the unlock write
 *   Os        a system-call burst (kernel code + shared kernel data,
 *             flagged as system references)
 *
 * Lock state is global (WorldState), so the spin/handoff interleaving
 * across processes is causally consistent: a process only acquires a
 * lock the generator has actually released.
 */

#ifndef DIRSIM_TRACEGEN_PROCESS_HH
#define DIRSIM_TRACEGEN_PROCESS_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/random.hh"
#include "trace/trace.hh"
#include "tracegen/address_space.hh"
#include "tracegen/profile.hh"

namespace dirsim
{

/** Generator-global state shared by all processes of a workload. */
struct WorldState
{
    /** @param profile_arg validated workload parameters */
    explicit WorldState(const WorkloadProfile &profile_arg);

    const WorkloadProfile profile;
    AddressSpace space;

    /** One entry per application lock. */
    struct Lock
    {
        /** Holding process index, or -1 when free. */
        int holder = -1;
        /** Completed acquire/release pairs (diagnostics). */
        std::uint64_t handoffs = 0;
    };
    /**
     * profile.numLocks locks per sharing cluster, cluster-major: lock
     * l of cluster c is locks[c * profile.numLocks + l]. One cluster
     * (the default) degenerates to the original flat lock table.
     */
    std::vector<Lock> locks;

    /** Sharing cluster of process @p proc_index. */
    unsigned clusterOf(unsigned proc_index) const
    {
        return proc_index / profile.clusterProcs();
    }

    ZipfSampler privateSampler;
    ZipfSampler sharedSampler;
};

/** One synthetic process; see the file comment for the model. */
class SyntheticProcess
{
  public:
    /**
     * @param index_arg process index within the workload
     * @param pid_arg process id recorded in the trace
     * @param world_arg shared generator state
     * @param rng_arg independent per-process random stream
     */
    SyntheticProcess(unsigned index_arg, ProcId pid_arg,
                     WorldState &world_arg, Rng rng_arg);

    /**
     * Emit one micro-step of references (one record, or a few for a
     * spin iteration / lock acquisition) onto @p out.
     *
     * @param out trace under construction
     * @param cpu CPU the scheduler is running this process on
     * @return number of references emitted
     */
    unsigned step(Trace &out, CpuId cpu);

    ProcId pid() const { return processId; }

    /** Spin reads emitted so far (calibration diagnostics). */
    std::uint64_t spinReads() const { return spinReadCount; }

  private:
    enum class Phase
    {
        Local,
        Browse,
        SpinWait,
        Critical,
        Os,
    };

    /** A pending mailbox operation inside a critical section. */
    struct MailboxOp
    {
        bool write;
        Addr addr;
    };

    void emitRecord(Trace &out, CpuId cpu, RefType type, Addr addr,
                    std::uint8_t flags = flagNone);

    /** Emit one mix-drawn reference for the current phase. */
    void emitMixed(Trace &out, CpuId cpu, const PhaseMix &mix,
                   Phase phase);

    /** Next instruction address (sequential with occasional jumps). */
    Addr nextInstr(bool kernel);

    /** Pick the data address for a phase's read/write. */
    Addr dataAddr(Phase phase, bool is_write);

    /** Decide what follows a completed phase. */
    void advanceAfter(Phase finished);

    /** Enter a phase with a freshly drawn geometric length. */
    void enterPhase(Phase phase, unsigned mean_refs);

    /** Draw 1 + geometric length with the given mean. */
    unsigned phaseLength(unsigned mean_refs);

    unsigned index;
    ProcId processId;
    WorldState &world;
    Rng rng;

    /** Sharing cluster this process belongs to. */
    unsigned cluster;
    /** First shared-pool word of the cluster's slice. */
    std::uint64_t sharedWordBase;
    /** First lock index of the cluster's lock set. */
    unsigned lockIndexBase;

    Phase phase = Phase::Local;
    unsigned remaining = 1;

    std::uint64_t codePos = 0;
    std::uint64_t kernelCodePos = 0;
    std::uint64_t lastPrivateWrite = 0;
    std::uint64_t lastKernelWrite = 0;

    unsigned currentLock = 0;
    std::deque<MailboxOp> mailboxOps;
    bool wantLockAfterBrowse = false;

    std::uint64_t spinReadCount = 0;
};

} // namespace dirsim

#endif // DIRSIM_TRACEGEN_PROCESS_HH
