/**
 * @file
 * The generator's CPU scheduler: interleaves the per-process
 * reference streams in timeslice bursts, occasionally migrating
 * processes between CPUs (the traces in the paper exhibit rare
 * migration-induced sharing, which is why it studies process-based
 * rather than processor-based sharing).
 */

#ifndef DIRSIM_TRACEGEN_SCHEDULER_HH
#define DIRSIM_TRACEGEN_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "trace/trace.hh"
#include "tracegen/process.hh"

namespace dirsim
{

/** See file comment. */
class TraceScheduler
{
  public:
    /**
     * @param profile_arg validated workload parameters
     * @param seed deterministic seed for the whole generation
     */
    TraceScheduler(const WorkloadProfile &profile_arg,
                   std::uint64_t seed);

    /**
     * Generate at least @p target_refs references (generation stops
     * at the first timeslice boundary past the target).
     */
    Trace generate(std::uint64_t target_refs);

    /** Number of process migrations performed (diagnostics). */
    std::uint64_t migrations() const { return migrationCount; }

    /** Total lock handoffs across all locks (diagnostics). */
    std::uint64_t lockHandoffs() const;

    /** Total spin reads across all processes (diagnostics). */
    std::uint64_t spinReads() const;

  private:
    /** Timeslice end on @p cpu: maybe migrate / context switch. */
    void reschedule(unsigned cpu);

    WorldState world;
    Rng rng;
    std::vector<std::unique_ptr<SyntheticProcess>> procs;
    /** Process index running on each CPU. */
    std::vector<unsigned> cpuProc;
    /** Runnable processes not currently on a CPU. */
    std::vector<unsigned> readyQueue;
    std::uint64_t migrationCount = 0;
};

} // namespace dirsim

#endif // DIRSIM_TRACEGEN_SCHEDULER_HH
