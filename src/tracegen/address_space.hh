/**
 * @file
 * Simulated virtual-address-space layout for the synthetic
 * workloads.
 *
 * Segments are placed far apart so they can never alias:
 *
 *   code       per-process instruction stream
 *   private    per-process data (never shared)
 *   shared     application shared data pool
 *   locks      one lock word per block (no false sharing)
 *   mailboxes  per-lock migratory data blocks (protected payload)
 *   kernel     OS code and shared kernel data
 *
 * Locks each occupy their own block deliberately: the paper's lock
 * analysis (Section 5.2) concerns lock-word ping-ponging, not false
 * sharing, so the generator keeps the two effects separate.
 */

#ifndef DIRSIM_TRACEGEN_ADDRESS_SPACE_HH
#define DIRSIM_TRACEGEN_ADDRESS_SPACE_HH

#include "common/types.hh"

namespace dirsim
{

/** Address calculator for the synthetic workloads. */
class AddressSpace
{
  public:
    /** @param block_bytes_arg simulation block size (lock spacing) */
    explicit AddressSpace(unsigned block_bytes_arg = defaultBlockBytes);

    /** Instruction address at word position @p pos of process @p pid. */
    Addr code(ProcId pid, std::uint64_t pos) const;

    /** Private data word @p index of process @p pid. */
    Addr privateData(ProcId pid, std::uint64_t index) const;

    /** Shared data word @p index (application pool). */
    Addr shared(std::uint64_t index) const;

    /** Lock word of lock @p lock (one lock per block). */
    Addr lock(unsigned lock) const;

    /** Payload block @p index protected by lock @p lock. */
    Addr mailbox(unsigned lock, unsigned index) const;

    /** Kernel instruction address at word position @p pos. */
    Addr kernelCode(std::uint64_t pos) const;

    /** Shared kernel data word @p index. */
    Addr kernelData(std::uint64_t index) const;

    /**
     * Per-process kernel data word @p index (kernel stack, process
     * table entry, ...). Kernel writes mostly land here, so OS
     * activity does not turn every kernel block into a 4-way-shared
     * invalidation target.
     */
    Addr kernelProcData(ProcId pid, std::uint64_t index) const;

    unsigned blockBytes() const { return blockSize; }

    /** Segment bases (public for tests asserting non-overlap). */
    // Each segment owns a disjoint 4 GiB region of the 64-bit
    // address space, so no realistic process id or pool size can
    // make segments collide (asserted by test).
    static constexpr Addr codeBase = 0x1'0000'0000;
    static constexpr Addr codeStride = 0x0040'0000;    // per process
    static constexpr Addr privateBase = 0x2'0000'0000;
    static constexpr Addr privateStride = 0x0100'0000; // per process
    static constexpr Addr sharedBase = 0x3'0000'0000;
    static constexpr Addr lockBase = 0x4'0000'0000;
    static constexpr Addr mailboxBase = 0x5'0000'0000;
    static constexpr Addr mailboxStride = 0x0001'0000; // per lock
    static constexpr Addr kernelCodeBase = 0x6'0000'0000;
    static constexpr Addr kernelDataBase = 0x7'0000'0000;
    static constexpr Addr kernelProcBase = 0x8'0000'0000;
    static constexpr Addr kernelProcStride = 0x0010'0000;

  private:
    unsigned blockSize;
};

} // namespace dirsim

#endif // DIRSIM_TRACEGEN_ADDRESS_SPACE_HH
