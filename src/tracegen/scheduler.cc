#include "tracegen/scheduler.hh"

#include "common/logging.hh"

namespace dirsim
{

TraceScheduler::TraceScheduler(const WorkloadProfile &profile_arg,
                               std::uint64_t seed)
    : world(profile_arg), rng(seed)
{
    const unsigned cpus = world.profile.numCpus;
    const unsigned nprocs = world.profile.numProcesses;

    procs.reserve(nprocs);
    for (unsigned i = 0; i < nprocs; ++i) {
        // Pids are offset so tests can tell pids from cpu numbers.
        procs.push_back(std::make_unique<SyntheticProcess>(
            i, static_cast<ProcId>(100 + i), world, rng.split()));
    }
    for (unsigned i = 0; i < nprocs && i < cpus; ++i)
        cpuProc.push_back(i);
    // With fewer processes than CPUs, idle CPUs simply do not appear
    // in the trace (matching a lightly-loaded machine).
    for (unsigned i = cpus; i < nprocs; ++i)
        readyQueue.push_back(i);
}

std::uint64_t
TraceScheduler::lockHandoffs() const
{
    std::uint64_t total = 0;
    for (const auto &lock : world.locks)
        total += lock.handoffs;
    return total;
}

std::uint64_t
TraceScheduler::spinReads() const
{
    std::uint64_t total = 0;
    for (const auto &proc : procs)
        total += proc->spinReads();
    return total;
}

void
TraceScheduler::reschedule(unsigned cpu)
{
    // Context switch to a waiting process (round robin through the
    // ready queue), if any.
    if (!readyQueue.empty()) {
        const unsigned incoming = readyQueue.front();
        readyQueue.erase(readyQueue.begin());
        readyQueue.push_back(cpuProc[cpu]);
        cpuProc[cpu] = incoming;
        return;
    }
    // Fully loaded machine: rare direct migration by swapping the
    // processes of two CPUs.
    if (cpuProc.size() > 1 && rng.chance(world.profile.migrationProb)) {
        unsigned other = static_cast<unsigned>(
            rng.below(cpuProc.size() - 1));
        if (other >= cpu)
            ++other;
        std::swap(cpuProc[cpu], cpuProc[other]);
        ++migrationCount;
    }
}

Trace
TraceScheduler::generate(std::uint64_t target_refs)
{
    fatalIf(target_refs == 0, "cannot generate an empty trace");
    Trace trace(world.profile.name, world.profile.numCpus);
    trace.reserve(target_refs + 64);

    while (trace.size() < target_refs) {
        for (unsigned cpu = 0; cpu < cpuProc.size(); ++cpu) {
            const unsigned burst = static_cast<unsigned>(
                rng.between(world.profile.burstMinRefs,
                            world.profile.burstMaxRefs));
            unsigned emitted = 0;
            while (emitted < burst) {
                // The CpuId narrowing is safe: profile.check() bounds
                // numCpus by the trace format's u16 cpu ids.
                emitted += procs[cpuProc[cpu]]->step(
                    trace, static_cast<CpuId>(cpu));
            }
            reschedule(cpu);
        }
    }
    return trace;
}

} // namespace dirsim
