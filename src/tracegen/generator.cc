#include "tracegen/generator.hh"

#include "tracegen/scheduler.hh"

namespace dirsim
{

Trace
generateTrace(const WorkloadProfile &profile,
              std::uint64_t target_refs, std::uint64_t seed)
{
    TraceScheduler scheduler(profile, seed);
    return scheduler.generate(target_refs);
}

Trace
generateTrace(const std::string &workload, std::uint64_t target_refs,
              std::uint64_t seed)
{
    return generateTrace(profileByName(workload), target_refs, seed);
}

} // namespace dirsim
