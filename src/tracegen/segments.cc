#include "tracegen/segments.hh"

#include "common/logging.hh"
#include "trace/trace.hh"
#include "tracegen/address_space.hh"

namespace dirsim
{

const char *
toString(SegmentKind kind)
{
    switch (kind) {
      case SegmentKind::UserCode:
        return "user-code";
      case SegmentKind::PrivateData:
        return "private-data";
      case SegmentKind::SharedData:
        return "shared-data";
      case SegmentKind::Lock:
        return "lock";
      case SegmentKind::Mailbox:
        return "mailbox";
      case SegmentKind::KernelCode:
        return "kernel-code";
      case SegmentKind::KernelData:
        return "kernel-data";
      case SegmentKind::KernelProc:
        return "kernel-proc";
      case SegmentKind::Unknown:
        return "unknown";
    }
    panic("unknown SegmentKind ", static_cast<int>(kind));
}

SegmentKind
classifyAddress(Addr addr)
{
    using AS = AddressSpace;
    // Segments are ascending, disjoint 4 GiB regions.
    if (addr < AS::codeBase)
        return SegmentKind::Unknown;
    if (addr < AS::privateBase)
        return SegmentKind::UserCode;
    if (addr < AS::sharedBase)
        return SegmentKind::PrivateData;
    if (addr < AS::lockBase)
        return SegmentKind::SharedData;
    if (addr < AS::mailboxBase)
        return SegmentKind::Lock;
    if (addr < AS::kernelCodeBase)
        return SegmentKind::Mailbox;
    if (addr < AS::kernelDataBase)
        return SegmentKind::KernelCode;
    if (addr < AS::kernelProcBase)
        return SegmentKind::KernelData;
    if (addr < AS::kernelProcBase + 0x1'0000'0000ull)
        return SegmentKind::KernelProc;
    return SegmentKind::Unknown;
}

double
SegmentProfile::fraction(SegmentKind kind) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(count(kind))
        / static_cast<double>(total);
}

SegmentProfile
profileSegments(const Trace &trace)
{
    SegmentProfile profile;
    for (const auto &record : trace) {
        ++profile.refs[static_cast<int>(
            classifyAddress(record.addr))];
        ++profile.total;
    }
    return profile;
}

} // namespace dirsim
