/**
 * @file
 * Parameter profiles for the synthetic workloads.
 *
 * The original study traced three parallel MACH applications on a
 * 4-CPU VAX 8350: POPS (parallel OPS5 rule system), THOR (parallel
 * logic simulator), and PERO (parallel VLSI router). Those ATUM
 * traces are unrecoverable; each profile below parameterizes the
 * behavioural process model (tracegen/process.hh) to reproduce the
 * trace properties the paper reports and that the evaluation is
 * sensitive to:
 *
 *  - reference mix of roughly 50% instructions, 40% reads, 10% writes
 *    and ~10% operating-system references (Table 3);
 *  - POPS and THOR: about one third of data reads are spins on locks
 *    (the first test of test-and-test-and-set, Section 4.4);
 *  - PERO: few lock references, a high read-to-write ratio caused by
 *    the algorithm, and a much smaller shared-reference fraction;
 *  - migratory lock-protected data, read-shared data, and mostly
 *    private data in proportions that put writes to previously-clean
 *    blocks overwhelmingly at <= 1 remote copy (Figure 1);
 *  - rare process migration.
 */

#ifndef DIRSIM_TRACEGEN_PROFILE_HH
#define DIRSIM_TRACEGEN_PROFILE_HH

#include <cstdint>
#include <string>

namespace dirsim
{

/** Reference mix of a behavioural phase; fractions sum to <= 1. */
struct PhaseMix
{
    double instrFrac = 0.5; ///< instruction fetches
    double readFrac = 0.4;  ///< data reads (writes take the rest)

    /** Validate; throws UsageError when fractions are inconsistent. */
    void check(const std::string &what) const;
};

/** Complete parameter set of a synthetic workload. */
struct WorkloadProfile
{
    std::string name;
    unsigned numCpus = 4;
    unsigned numProcesses = 4;

    // --- local (private) computation phase ---
    /** Mean refs per local-work phase (geometric). */
    unsigned localWorkRefs = 70;
    PhaseMix localMix{0.42, 0.34};
    /** Private pool size in words per process. */
    std::uint64_t privateWords = 16384;
    /** Zipf skew of private accesses. */
    double privateZipf = 0.6;

    // --- shared-data browsing (read-mostly sharing) ---
    /** Probability a cycle browses shared data after local work. */
    double browseProb = 0.3;
    /** Mean refs per browse phase. */
    unsigned browseRefs = 12;
    /** Fraction of browse data refs that are writes. */
    double browseWriteProb = 0.02;
    /** Shared pool size in words. */
    std::uint64_t sharedWords = 8192;
    /** Zipf skew of shared accesses. */
    double sharedZipf = 0.8;

    // --- critical sections ---
    /** Probability a cycle enters a lock-protected section. */
    double lockUseProb = 1.0;
    /** Number of application locks. */
    unsigned numLocks = 2;
    /** Mean refs of computation inside the critical section. */
    unsigned criticalRefs = 45;
    PhaseMix criticalMix{0.50, 0.44};
    /** Instructions per spin-loop iteration (plus one test read). */
    unsigned spinInstrs = 2;
    /**
     * When true, waiters spin with raw test-and-set WRITES instead of
     * the test-and-test-and-set read loop: every failed attempt dirties
     * the lock block and invalidates all other copies. This is the
     * classic anti-pattern the paper's applications avoid; used by the
     * ext_lock_primitive ablation.
     */
    bool spinWithTestAndSet = false;
    /**
     * Migratory payload blocks per lock: the first half is
     * read-then-written, the second half written blind, by each
     * successive lock holder.
     */
    unsigned mailboxBlocks = 4;
    /**
     * Blocks of the per-lock work region. Critical-section writes go
     * here (and half its reads), so written shared data migrates
     * between successive lock holders instead of invalidating widely
     * read-shared blocks — the structure behind the paper's Figure 1
     * result that clean-block writes almost always invalidate at most
     * one other copy.
     */
    unsigned lockRegionBlocks = 40;

    // --- operating system activity ---
    /** Probability a cycle ends with a system-call burst. */
    double osBurstProb = 0.25;
    /** Mean refs per system-call burst. */
    unsigned osBurstRefs = 40;
    PhaseMix osMix{0.55, 0.33};
    /** Kernel shared-data pool in words. */
    std::uint64_t kernelWords = 2048;
    /** Probability a kernel write targets a hot shared scheduler
     *  word rather than per-process kernel data. */
    double kernelHotFrac = 0.05;

    // --- sharing topology (the N-cache scaling knob) ---
    /**
     * Sharing degree: processes are partitioned into clusters of this
     * many processes, and each cluster gets its own slice of the
     * shared pool plus its own set of numLocks locks, so application
     * data is shared by at most a cluster's worth of caches no matter
     * how large the machine is. Zero (the default) keeps the original
     * single-cluster behaviour — every process shares one pool and
     * one lock set — and is guaranteed to generate byte-identical
     * traces to profiles predating this knob. Kernel hot words stay
     * machine-global in either mode, so large machines still exhibit
     * a widely-shared tail (docs/scaling.md).
     */
    unsigned sharingClusterProcs = 0;

    // --- scheduling ---
    /** Timeslice burst bounds in references. */
    unsigned burstMinRefs = 5;
    unsigned burstMaxRefs = 16;
    /** Probability a process migrates CPUs at a timeslice end (only
     *  on a fully-loaded machine — an oversubscribed one migrates by
     *  context switching instead). The default makes migration
     *  genuinely rare (a few dozen events per million references),
     *  matching the paper's "few instances of process migration in
     *  our traces". */
    double migrationProb = 0.0002;

    /** Processes per sharing cluster with the default resolved. */
    unsigned clusterProcs() const
    {
        if (sharingClusterProcs == 0
            || sharingClusterProcs >= numProcesses)
            return numProcesses;
        return sharingClusterProcs;
    }

    /** Number of sharing clusters (last one may be partial). */
    unsigned numClusters() const
    {
        const unsigned per = clusterProcs();
        return (numProcesses + per - 1) / per;
    }

    /** Validate the whole profile; throws UsageError on nonsense. */
    void check() const;
};

/** POPS: parallel OPS5 rule system — lock- and sharing-heavy. */
WorkloadProfile popsProfile();

/** THOR: parallel logic simulator — migratory event records. */
WorkloadProfile thorProfile();

/** PERO: parallel VLSI router — mostly private, few locks. */
WorkloadProfile peroProfile();

/** Look up a profile by name ("pops", "thor", "pero"). */
WorkloadProfile profileByName(const std::string &name);

} // namespace dirsim

#endif // DIRSIM_TRACEGEN_PROFILE_HH
