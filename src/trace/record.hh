/**
 * @file
 * The multiprocessor address-trace record model.
 *
 * This mirrors the information the ATUM traces of the paper carry:
 * interleaved per-CPU reference streams where every reference is
 * tagged with the CPU number and the identifier of the process that
 * issued it, so a reference can be attributed either to a processor or
 * to a process (the paper studies process sharing).
 */

#ifndef DIRSIM_TRACE_RECORD_HH
#define DIRSIM_TRACE_RECORD_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dirsim
{

/** The kind of memory reference a trace record describes. */
enum class RefType : std::uint8_t
{
    Instr = 0, ///< instruction fetch (never causes coherence traffic)
    Read = 1,  ///< data read
    Write = 2, ///< data write
};

/** Human-readable name of a RefType ("instr", "read", "write"). */
const char *toString(RefType type);

/** Parse a RefType name; throws UsageError on unknown names. */
RefType refTypeFromString(const std::string &name);

/**
 * Attribute flags carried by a trace record.
 *
 * The generator marks references it knows are spin-lock tests or
 * operating-system activity. The lock flag feeds the Section 5.2
 * experiment (excluding "the first test in a test-and-test-and-set");
 * the system flag feeds the Table 3 user/system split.
 */
enum RecordFlags : std::uint8_t
{
    flagNone = 0,
    /** Reference is part of a spin on a lock (the read in T&T&S). */
    flagLockSpin = 1u << 0,
    /** Reference executed in system (OS) context. */
    flagSystem = 1u << 1,
    /** Reference is the test-and-set or unlock write on a lock word. */
    flagLockWrite = 1u << 2,
};

/** Every flag bit with a defined meaning; readers reject the rest. */
inline constexpr std::uint8_t flagKnownMask =
    flagLockSpin | flagSystem | flagLockWrite;

/**
 * One reference in a multiprocessor address trace.
 *
 * Packed to 16 bytes so multi-million-record traces stay cheap.
 */
struct TraceRecord
{
    Addr addr = 0;       ///< byte address referenced
    ProcId pid = 0;      ///< issuing process
    CpuId cpu = 0;       ///< issuing processor
    RefType type = RefType::Instr;
    std::uint8_t flags = flagNone;

    bool isInstr() const { return type == RefType::Instr; }
    bool isRead() const { return type == RefType::Read; }
    bool isWrite() const { return type == RefType::Write; }
    bool isData() const { return type != RefType::Instr; }
    bool isLockSpin() const { return flags & flagLockSpin; }
    bool isLockWrite() const { return flags & flagLockWrite; }
    /** Any reference that touches a lock word. */
    bool isLockRef() const { return flags & (flagLockSpin|flagLockWrite); }
    bool isSystem() const { return flags & flagSystem; }

    bool operator==(const TraceRecord &other) const = default;
};

static_assert(sizeof(TraceRecord) == 16,
              "TraceRecord is expected to pack into 16 bytes");

} // namespace dirsim

#endif // DIRSIM_TRACE_RECORD_HH
