/**
 * @file
 * The dirsim binary trace container format, shared between the writer
 * (trace/writer.hh), the streaming readers (trace/reader.hh), and
 * tools that inspect trace files.
 *
 * Layout (all integers little-endian):
 *
 *   magic    "DSTR"             4 bytes
 *   version  u16                1 or 2
 *   cpus     u16                0 = unknown
 *   nameLen  u32 (<= 4096), name bytes
 *   count    u64                number of records
 *   count * record (16 bytes):
 *     addr u64, pid u32, cpu u16, type u8, flags u8
 *   checksum u64                v2 only: FNV-1a 64 of every preceding
 *                               byte (header + records)
 *
 * Version 2 adds two integrity guarantees v1 lacks: the record count
 * can be cross-checked against the container length (truncation is
 * detected before any allocation), and the trailing checksum detects
 * bit corruption anywhere in the header or the records.
 */

#ifndef DIRSIM_TRACE_FORMAT_HH
#define DIRSIM_TRACE_FORMAT_HH

#include <cstddef>
#include <cstdint>

namespace dirsim::traceformat
{

/** The 4-byte container magic. */
inline constexpr char magic[4] = {'D', 'S', 'T', 'R'};

/** The original, checksum-less format. */
inline constexpr std::uint16_t versionV1 = 1;
/** Adds the length consistency check and the trailing checksum. */
inline constexpr std::uint16_t versionV2 = 2;

/** Sanity cap on the trace-name length field. */
inline constexpr std::uint32_t maxNameLen = 4096;

/** Serialized size of one trace record. */
inline constexpr std::size_t recordBytes = 16;

/** Serialized size of the v2 trailing checksum. */
inline constexpr std::size_t checksumBytes = 8;

/**
 * Incremental FNV-1a 64-bit checksum, the integrity check of binary
 * format v2. Chosen for being trivially portable and fast enough to
 * disappear next to the I/O itself; this is corruption detection, not
 * cryptography.
 */
class Fnv64
{
  public:
    void
    update(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            state ^= bytes[i];
            state *= 0x100000001b3ull;
        }
    }

    std::uint64_t value() const { return state; }

  private:
    std::uint64_t state = 0xcbf29ce484222325ull;
};

/** Encode an unsigned integer little-endian into @p out. */
template <typename T>
void
encodeLe(unsigned char *out, T value)
{
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out[i] = static_cast<unsigned char>(
            (static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff);
}

/** Decode a little-endian unsigned integer from @p in. */
template <typename T>
T
decodeLe(const unsigned char *in)
{
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return static_cast<T>(value);
}

} // namespace dirsim::traceformat

#endif // DIRSIM_TRACE_FORMAT_HH
