#include "trace/writer.hh"

#include <fstream>
#include <ostream>

#include "common/logging.hh"

namespace dirsim
{

namespace
{

using namespace traceformat;

/** Serializes and, for v2, feeds every byte through the checksum. */
class BinarySink
{
  public:
    BinarySink(std::ostream &os_arg, bool checksummed_arg)
        : os(os_arg), checksummed(checksummed_arg)
    {}

    void
    write(const void *data, std::size_t size)
    {
        os.write(static_cast<const char *>(data),
                 static_cast<std::streamsize>(size));
        if (checksummed)
            checksum.update(data, size);
    }

    template <typename T>
    void
    put(T value)
    {
        unsigned char bytes[sizeof(T)];
        encodeLe(bytes, value);
        write(bytes, sizeof(bytes));
    }

    /** Emit the v2 trailer (not itself checksummed). */
    void
    finish()
    {
        if (!checksummed)
            return;
        unsigned char bytes[checksumBytes];
        encodeLe(bytes, checksum.value());
        os.write(reinterpret_cast<const char *>(bytes),
                 sizeof(bytes));
    }

  private:
    std::ostream &os;
    bool checksummed;
    Fnv64 checksum;
};

std::string
flagNames(std::uint8_t flags)
{
    std::string out;
    const auto append = [&out](const char *name) {
        if (!out.empty())
            out.push_back(',');
        out += name;
    };
    if (flags & flagLockSpin)
        append("lockspin");
    if (flags & flagLockWrite)
        append("lockwrite");
    if (flags & flagSystem)
        append("system");
    return out.empty() ? "-" : out;
}

} // namespace

void
writeBinaryTrace(const Trace &trace, std::ostream &os,
                 std::uint16_t version)
{
    fatalIf(version != versionV1 && version != versionV2,
            "cannot write binary trace version ", version,
            " (supported: 1, 2)");
    fatalIf(trace.name().size() > maxNameLen, "trace name of ",
            trace.name().size(), " bytes exceeds the format limit of ",
            maxNameLen);
    fatalIf(trace.numCpus() > 0xffff, "trace declares ",
            trace.numCpus(),
            " CPUs but the binary format caps at 65535");

    BinarySink sink(os, version >= versionV2);
    sink.write(magic, sizeof(magic));
    sink.put<std::uint16_t>(version);
    sink.put<std::uint16_t>(static_cast<std::uint16_t>(trace.numCpus()));
    sink.put<std::uint32_t>(
        static_cast<std::uint32_t>(trace.name().size()));
    sink.write(trace.name().data(), trace.name().size());
    sink.put<std::uint64_t>(trace.size());
    std::size_t index = 0;
    for (const auto &record : trace) {
        fatalIf((record.flags & ~flagKnownMask) != 0,
                "trace record ", index, " carries unknown flag bits 0x",
                std::hex,
                static_cast<int>(record.flags & ~flagKnownMask),
                std::dec, "; refusing to serialize them");
        sink.put<std::uint64_t>(record.addr);
        sink.put<std::uint32_t>(record.pid);
        sink.put<std::uint16_t>(record.cpu);
        sink.put<std::uint8_t>(static_cast<std::uint8_t>(record.type));
        sink.put<std::uint8_t>(record.flags);
        ++index;
    }
    sink.finish();
    fatalIf(!os, "I/O error while writing binary trace '",
            trace.name(), "'");
}

void
writeBinaryTraceFile(const Trace &trace, const std::string &path,
                     std::uint16_t version)
{
    std::ofstream os(path, std::ios::binary);
    fatalIf(!os, "cannot open '", path, "' for writing");
    writeBinaryTrace(trace, os, version);
}

void
writeTextTrace(const Trace &trace, std::ostream &os)
{
    os << "# dirsim-trace v1\n";
    os << "# name: " << trace.name() << '\n';
    os << "# cpus: " << trace.numCpus() << '\n';
    for (const auto &record : trace) {
        os << record.cpu << ' ' << record.pid << ' '
           << toString(record.type) << ' ' << std::hex << record.addr
           << std::dec << ' ' << flagNames(record.flags) << '\n';
    }
    fatalIf(!os, "I/O error while writing text trace '",
            trace.name(), "'");
}

void
writeTextTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path);
    fatalIf(!os, "cannot open '", path, "' for writing");
    writeTextTrace(trace, os);
}

} // namespace dirsim
