#include "trace/writer.hh"

#include <fstream>
#include <ostream>

#include "common/logging.hh"

namespace dirsim
{

namespace
{

template <typename T>
void
putLe(std::ostream &os, T value)
{
    unsigned char bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i)
        bytes[i] = static_cast<unsigned char>(
            (static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff);
    os.write(reinterpret_cast<const char *>(bytes), sizeof(T));
}

std::string
flagNames(std::uint8_t flags)
{
    std::string out;
    const auto append = [&out](const char *name) {
        if (!out.empty())
            out.push_back(',');
        out += name;
    };
    if (flags & flagLockSpin)
        append("lockspin");
    if (flags & flagLockWrite)
        append("lockwrite");
    if (flags & flagSystem)
        append("system");
    return out.empty() ? "-" : out;
}

} // namespace

void
writeBinaryTrace(const Trace &trace, std::ostream &os)
{
    os.write("DSTR", 4);
    putLe<std::uint16_t>(os, 1);
    putLe<std::uint16_t>(os, static_cast<std::uint16_t>(trace.numCpus()));
    putLe<std::uint32_t>(
        os, static_cast<std::uint32_t>(trace.name().size()));
    os.write(trace.name().data(),
             static_cast<std::streamsize>(trace.name().size()));
    putLe<std::uint64_t>(os, trace.size());
    for (const auto &record : trace) {
        putLe<std::uint64_t>(os, record.addr);
        putLe<std::uint32_t>(os, record.pid);
        putLe<std::uint16_t>(os, record.cpu);
        putLe<std::uint8_t>(os, static_cast<std::uint8_t>(record.type));
        putLe<std::uint8_t>(os, record.flags);
    }
    fatalIf(!os, "I/O error while writing binary trace '",
            trace.name(), "'");
}

void
writeBinaryTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    fatalIf(!os, "cannot open '", path, "' for writing");
    writeBinaryTrace(trace, os);
}

void
writeTextTrace(const Trace &trace, std::ostream &os)
{
    os << "# dirsim-trace v1\n";
    os << "# name: " << trace.name() << '\n';
    os << "# cpus: " << trace.numCpus() << '\n';
    for (const auto &record : trace) {
        os << record.cpu << ' ' << record.pid << ' '
           << toString(record.type) << ' ' << std::hex << record.addr
           << std::dec << ' ' << flagNames(record.flags) << '\n';
    }
    fatalIf(!os, "I/O error while writing text trace '",
            trace.name(), "'");
}

void
writeTextTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path);
    fatalIf(!os, "cannot open '", path, "' for writing");
    writeTextTrace(trace, os);
}

} // namespace dirsim
