#include "trace/reader.hh"

#include <cctype>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace dirsim
{

namespace
{

using namespace traceformat;

/** Cap speculative reservations driven by untrusted size fields. */
constexpr std::uint64_t maxSpeculativeReserve = 1u << 20;

/** True when every character of @p s is a decimal digit. */
bool
allDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (const char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** True when every character of @p s is a hex digit. */
bool
allHexDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (const char c : s)
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** Strip leading and trailing blanks. */
std::string
trim(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t");
    return s.substr(first, last - first + 1);
}

std::uint8_t
parseFlags(const std::string &field, std::size_t line_no)
{
    if (field == "-")
        return flagNone;
    std::uint8_t flags = flagNone;
    std::stringstream ss(field);
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (token == "lockspin")
            flags |= flagLockSpin;
        else if (token == "lockwrite")
            flags |= flagLockWrite;
        else if (token == "system")
            flags |= flagSystem;
        else
            fatal("text trace line ", line_no, ": unknown flag '",
                  token, "'");
    }
    return flags;
}

} // namespace

Trace
readTrace(TraceSource &source)
{
    Trace trace(source.name(), source.numCpus());
    if (const auto hint = source.sizeHint())
        trace.reserve(static_cast<std::size_t>(
            std::min(*hint, maxSpeculativeReserve)));
    TraceRecord record;
    while (source.next(record))
        trace.append(record);
    return trace;
}

// --- BinaryTraceReader ---------------------------------------------------

BinaryTraceReader::BinaryTraceReader(std::istream &is_arg) : is(is_arg)
{
    parseHeader();
}

BinaryTraceReader::BinaryTraceReader(const std::string &path)
    : owned(path, std::ios::binary), is(owned)
{
    fatalIf(!owned, "cannot open '", path, "' for reading");
    parseHeader();
}

void
BinaryTraceReader::readBytes(void *out, std::size_t size,
                             const char *what)
{
    is.read(static_cast<char *>(out), static_cast<std::streamsize>(size));
    fatalIf(!is, "truncated binary trace at byte offset ",
            offset + static_cast<std::uint64_t>(is.gcount()),
            " while reading ", what);
    offset += size;
    checksum.update(out, size);
}

void
BinaryTraceReader::parseHeader()
{
    char file_magic[4];
    readBytes(file_magic, sizeof(file_magic), "magic");
    fatalIf(std::string(file_magic, 4) != std::string(magic, 4),
            "not a dirsim binary trace (bad magic)");

    unsigned char fields[2 + 2 + 4];
    readBytes(fields, sizeof(fields), "header");
    ver = decodeLe<std::uint16_t>(fields);
    fatalIf(ver != versionV1 && ver != versionV2,
            "unsupported binary trace version ", ver);
    cpus = decodeLe<std::uint16_t>(fields + 2);
    const auto name_len = decodeLe<std::uint32_t>(fields + 4);
    fatalIf(name_len > maxNameLen, "implausible trace name length ",
            name_len, " (max ", maxNameLen, ")");
    traceName.resize(name_len);
    if (name_len > 0)
        readBytes(traceName.data(), name_len, "name");

    unsigned char count_bytes[8];
    readBytes(count_bytes, sizeof(count_bytes), "record count");
    count = decodeLe<std::uint64_t>(count_bytes);

    // Length consistency: on a seekable stream the declared count must
    // be backed by actual bytes, so a corrupt count is a clean
    // diagnostic here instead of an OOM in reserve() or a long read.
    const auto pos = is.tellg();
    if (pos != std::streampos(-1)) {
        is.seekg(0, std::ios::end);
        const auto end = is.tellg();
        is.seekg(pos);
        if (end != std::streampos(-1) && is) {
            const auto remaining =
                static_cast<std::uint64_t>(end - pos);
            const std::uint64_t trailer =
                ver >= versionV2 ? checksumBytes : 0;
            fatalIf(count > (remaining - std::min<std::uint64_t>(
                                 trailer, remaining)) / recordBytes,
                    "binary trace declares ", count,
                    " records but only ", remaining,
                    " bytes follow the header (need ",
                    count, " * ", recordBytes, trailer ? " + 8" : "",
                    ")");
            countChecked = true;
        } else {
            is.clear();
            is.seekg(pos);
        }
    } else {
        is.clear();
    }
}

std::optional<std::uint64_t>
BinaryTraceReader::sizeHint() const
{
    // Only advertise the declared count once it has been validated
    // against the container length; an unverifiable count must not
    // drive anyone's allocations.
    if (!countChecked)
        return std::nullopt;
    return count;
}

const char *
BinaryTraceReader::format() const
{
    return ver >= versionV2 ? "binary v2" : "binary v1";
}

void
BinaryTraceReader::verifyTrailer()
{
    drained = true;
    if (ver < versionV2)
        return;
    const std::uint64_t computed = checksum.value();
    unsigned char trailer[checksumBytes];
    is.read(reinterpret_cast<char *>(trailer), sizeof(trailer));
    fatalIf(!is, "truncated binary trace at byte offset ",
            offset + static_cast<std::uint64_t>(is.gcount()),
            " while reading checksum");
    offset += checksumBytes;
    const auto stored = decodeLe<std::uint64_t>(trailer);
    fatalIf(stored != computed,
            "binary trace checksum mismatch: file says 0x",
            std::hex, stored, " but the ", std::dec, count,
            " records hash to 0x", std::hex, computed,
            std::dec, " — the trace is corrupt");
}

bool
BinaryTraceReader::next(TraceRecord &record)
{
    if (index >= count) {
        if (!drained)
            verifyTrailer();
        return false;
    }

    unsigned char bytes[recordBytes];
    is.read(reinterpret_cast<char *>(bytes), sizeof(bytes));
    fatalIf(!is, "truncated binary trace at byte offset ",
            offset + static_cast<std::uint64_t>(is.gcount()),
            " while reading record ", index, " of ", count);
    checksum.update(bytes, sizeof(bytes));

    record.addr = decodeLe<std::uint64_t>(bytes);
    record.pid = decodeLe<std::uint32_t>(bytes + 8);
    record.cpu = decodeLe<std::uint16_t>(bytes + 12);
    const auto type = bytes[14];
    fatalIf(type > 2, "binary trace record ", index,
            " (byte offset ", offset, ") has invalid type ",
            static_cast<int>(type));
    record.type = static_cast<RefType>(type);
    const auto flags = bytes[15];
    fatalIf((flags & ~flagKnownMask) != 0, "binary trace record ",
            index, " (byte offset ", offset,
            ") has unknown flag bits 0x", std::hex,
            static_cast<int>(flags & ~flagKnownMask), std::dec);
    record.flags = flags;
    fatalIf(cpus != 0 && record.cpu >= cpus, "binary trace record ",
            index, " (byte offset ", offset, ") names cpu ",
            record.cpu, " but the header declares only ", cpus,
            " CPUs");

    offset += recordBytes;
    ++index;
    return true;
}

// --- TextTraceReader -----------------------------------------------------

TextTraceReader::TextTraceReader(std::istream &is_arg) : is(is_arg)
{
    parseLeadingHeader();
}

TextTraceReader::TextTraceReader(const std::string &path)
    : owned(path), is(owned)
{
    fatalIf(!owned, "cannot open '", path, "' for reading");
    parseLeadingHeader();
}

void
TextTraceReader::parseHeaderLine(const std::string &line)
{
    const auto colon = line.find(':');
    if (colon == std::string::npos)
        return; // free-form comment
    const std::string key = trim(line.substr(1, colon - 1));
    const std::string value = trim(line.substr(colon + 1));
    if (key == "name") {
        traceName = value;
    } else if (key == "cpus") {
        fatalIf(!allDigits(value), "text trace line ", lineNo,
                ": cpu count '", value, "' is not a number");
        fatalIf(value.size() > 5 || std::stoul(value) > 0xffff,
                "text trace line ", lineNo, ": cpu count ", value,
                " is out of range (max 65535)");
        cpus = static_cast<unsigned>(std::stoul(value));
    }
    // Unknown keys are ignored so the format can grow.
}

bool
TextTraceReader::parseRecordLine(const std::string &line,
                                 TraceRecord &record)
{
    if (line.empty() || trim(line).empty())
        return false;
    if (line[0] == '#') {
        if (!headerDone) // still in the leading header block
            parseHeaderLine(line);
        return false; // later '#' lines are comments
    }
    headerDone = true;

    std::istringstream fields(line);
    std::string cpu_field, pid_field, type, addr_hex;
    std::string flags = "-";
    fields >> cpu_field >> pid_field >> type >> addr_hex;
    fatalIf(fields.fail(), "text trace line ", lineNo,
            ": malformed record '", line, "'");
    fields >> flags;

    fatalIf(!allDigits(cpu_field), "text trace line ", lineNo,
            ": cpu '", cpu_field, "' is not a number");
    fatalIf(cpu_field.size() > 5 || std::stoul(cpu_field) > 0xffff,
            "text trace line ", lineNo, ": cpu ", cpu_field,
            " is out of range (max 65535)");
    record.cpu = static_cast<CpuId>(std::stoul(cpu_field));
    fatalIf(cpus != 0 && record.cpu >= cpus, "text trace line ",
            lineNo, ": cpu ", record.cpu,
            " but the header declares only ", cpus, " CPUs");

    fatalIf(!allDigits(pid_field), "text trace line ", lineNo,
            ": pid '", pid_field, "' is not a number");
    fatalIf(pid_field.size() > 10
                || std::stoull(pid_field)
                       > std::numeric_limits<std::uint32_t>::max(),
            "text trace line ", lineNo, ": pid ", pid_field,
            " is out of range (max 2^32-1)");
    record.pid = static_cast<ProcId>(std::stoull(pid_field));

    try {
        record.type = refTypeFromString(type);
    } catch (const SimulationError &) {
        fatal("text trace line ", lineNo,
              ": unknown reference type '", type, "'");
    }

    fatalIf(!allHexDigits(addr_hex) || addr_hex.size() > 16,
            "text trace line ", lineNo, ": bad address '", addr_hex,
            "'");
    record.addr = std::stoull(addr_hex, nullptr, 16);

    record.flags = parseFlags(flags, lineNo);
    return true;
}

void
TextTraceReader::parseLeadingHeader()
{
    std::string line;
    while (std::getline(is, line)) {
        ++lineNo;
        if (parseRecordLine(line, pending)) {
            havePending = true;
            return;
        }
    }
}

bool
TextTraceReader::next(TraceRecord &record)
{
    if (havePending) {
        record = pending;
        havePending = false;
        return true;
    }
    std::string line;
    while (std::getline(is, line)) {
        ++lineNo;
        TraceRecord parsed;
        if (parseRecordLine(line, parsed)) {
            record = parsed;
            return true;
        }
    }
    return false;
}

// --- whole-trace convenience ---------------------------------------------

std::unique_ptr<TraceSource>
openTraceSource(const std::string &path)
{
    const bool text = path.size() >= 4
        && path.compare(path.size() - 4, 4, ".txt") == 0;
    if (text)
        return std::make_unique<TextTraceReader>(path);
    return std::make_unique<BinaryTraceReader>(path);
}

Trace
readBinaryTrace(std::istream &is)
{
    BinaryTraceReader reader(is);
    return readTrace(reader);
}

Trace
readBinaryTraceFile(const std::string &path)
{
    BinaryTraceReader reader(path);
    return readTrace(reader);
}

Trace
readTextTrace(std::istream &is)
{
    TextTraceReader reader(is);
    return readTrace(reader);
}

Trace
readTextTraceFile(const std::string &path)
{
    TextTraceReader reader(path);
    return readTrace(reader);
}

} // namespace dirsim
