#include "trace/reader.hh"

#include <fstream>
#include <istream>
#include <sstream>

#include "common/logging.hh"

namespace dirsim
{

namespace
{

template <typename T>
T
getLe(std::istream &is, const char *what)
{
    unsigned char bytes[sizeof(T)];
    is.read(reinterpret_cast<char *>(bytes), sizeof(T));
    fatalIf(!is, "truncated binary trace while reading ", what);
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    return static_cast<T>(value);
}

std::uint8_t
parseFlags(const std::string &field, std::size_t line_no)
{
    if (field == "-")
        return flagNone;
    std::uint8_t flags = flagNone;
    std::stringstream ss(field);
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (token == "lockspin")
            flags |= flagLockSpin;
        else if (token == "lockwrite")
            flags |= flagLockWrite;
        else if (token == "system")
            flags |= flagSystem;
        else
            fatal("text trace line ", line_no, ": unknown flag '",
                  token, "'");
    }
    return flags;
}

} // namespace

Trace
readBinaryTrace(std::istream &is)
{
    char magic[4];
    is.read(magic, 4);
    fatalIf(!is || std::string(magic, 4) != "DSTR",
            "not a dirsim binary trace (bad magic)");

    const auto version = getLe<std::uint16_t>(is, "version");
    fatalIf(version != 1, "unsupported binary trace version ", version);

    const auto cpus = getLe<std::uint16_t>(is, "cpu count");
    const auto name_len = getLe<std::uint32_t>(is, "name length");
    fatalIf(name_len > 4096, "implausible trace name length ", name_len);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    fatalIf(!is, "truncated binary trace while reading name");

    const auto count = getLe<std::uint64_t>(is, "record count");
    Trace trace(name, cpus);
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord record;
        record.addr = getLe<std::uint64_t>(is, "record addr");
        record.pid = getLe<std::uint32_t>(is, "record pid");
        record.cpu = getLe<std::uint16_t>(is, "record cpu");
        const auto type = getLe<std::uint8_t>(is, "record type");
        fatalIf(type > 2, "binary trace record ", i,
                " has invalid type ", static_cast<int>(type));
        record.type = static_cast<RefType>(type);
        record.flags = getLe<std::uint8_t>(is, "record flags");
        trace.append(record);
    }
    return trace;
}

Trace
readBinaryTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open '", path, "' for reading");
    return readBinaryTrace(is);
}

Trace
readTextTrace(std::istream &is)
{
    Trace trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            const auto colon = line.find(':');
            if (colon == std::string::npos)
                continue;
            const std::string key = line.substr(1, colon - 1);
            std::string value = line.substr(colon + 1);
            const auto start = value.find_first_not_of(' ');
            value = start == std::string::npos ? "" : value.substr(start);
            if (key == " name")
                trace.setName(value);
            else if (key == " cpus")
                trace.setNumCpus(
                    static_cast<unsigned>(std::stoul(value)));
            continue;
        }
        std::istringstream fields(line);
        unsigned long cpu = 0;
        unsigned long pid = 0;
        std::string type;
        std::string addr_hex;
        std::string flags = "-";
        fields >> cpu >> pid >> type >> addr_hex;
        fatalIf(fields.fail(), "text trace line ", line_no,
                ": malformed record '", line, "'");
        fields >> flags;

        TraceRecord record;
        record.cpu = static_cast<CpuId>(cpu);
        record.pid = static_cast<ProcId>(pid);
        record.type = refTypeFromString(type);
        try {
            record.addr = std::stoull(addr_hex, nullptr, 16);
        } catch (const std::exception &) {
            fatal("text trace line ", line_no, ": bad address '",
                  addr_hex, "'");
        }
        record.flags = parseFlags(flags, line_no);
        trace.append(record);
    }
    return trace;
}

Trace
readTextTraceFile(const std::string &path)
{
    std::ifstream is(path);
    fatalIf(!is, "cannot open '", path, "' for reading");
    return readTextTrace(is);
}

} // namespace dirsim
