/**
 * @file
 * Trace serialization: a compact binary container and a human-readable
 * text format. Both round-trip exactly (see trace/reader.hh); the
 * binary layout is specified in trace/format.hh and
 * docs/trace-format.md.
 */

#ifndef DIRSIM_TRACE_WRITER_HH
#define DIRSIM_TRACE_WRITER_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/format.hh"
#include "trace/trace.hh"

namespace dirsim
{

/**
 * Write @p trace as a binary container.
 *
 * Defaults to format v2, which carries a validated record count and a
 * trailing FNV-1a checksum so readers detect truncation and
 * corruption; pass traceformat::versionV1 for the legacy layout.
 *
 * @throws UsageError for an unknown @p version, a trace whose
 *         name/CPU count/flags exceed the format's field widths, or
 *         an I/O failure
 */
void writeBinaryTrace(const Trace &trace, std::ostream &os,
                      std::uint16_t version = traceformat::versionV2);

/** Write a binary trace to @p path; throws UsageError on failure. */
void writeBinaryTraceFile(const Trace &trace, const std::string &path,
                          std::uint16_t version =
                              traceformat::versionV2);

/**
 * Text format: '#'-prefixed header lines (name, cpus), then one record
 * per line: "<cpu> <pid> <type> <hex addr> [flag,flag]".
 */
void writeTextTrace(const Trace &trace, std::ostream &os);

/** Write a text trace to @p path; throws UsageError on I/O failure. */
void writeTextTraceFile(const Trace &trace, const std::string &path);

} // namespace dirsim

#endif // DIRSIM_TRACE_WRITER_HH
