/**
 * @file
 * Trace serialization: a compact binary format and a human-readable
 * text format. Both round-trip exactly (see trace/reader.hh).
 */

#ifndef DIRSIM_TRACE_WRITER_HH
#define DIRSIM_TRACE_WRITER_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace dirsim
{

/**
 * Binary trace container layout (all integers little-endian):
 *
 *   magic   "DSTR"              4 bytes
 *   version u16                 currently 1
 *   cpus    u16
 *   nameLen u32, name bytes
 *   count   u64
 *   count * record:
 *     addr u64, pid u32, cpu u16, type u8, flags u8
 */
void writeBinaryTrace(const Trace &trace, std::ostream &os);

/** Write a binary trace to @p path; throws UsageError on I/O failure. */
void writeBinaryTraceFile(const Trace &trace, const std::string &path);

/**
 * Text format: '#'-prefixed header lines (name, cpus), then one record
 * per line: "<cpu> <pid> <type> <hex addr> [flag,flag]".
 */
void writeTextTrace(const Trace &trace, std::ostream &os);

/** Write a text trace to @p path; throws UsageError on I/O failure. */
void writeTextTraceFile(const Trace &trace, const std::string &path);

} // namespace dirsim

#endif // DIRSIM_TRACE_WRITER_HH
