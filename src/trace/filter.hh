/**
 * @file
 * Trace transformations used by the paper's experiments.
 *
 *  - excludeLockRefs(): Section 5.2 re-runs the simulations
 *    "excluding all the tests on locks".
 *  - keepUserOnly(): isolate application behaviour from OS activity.
 *  - remapProcessesToCpus(): switch from the process-sharing model to
 *    the processor-sharing model (the paper checked both and found
 *    them similar because migration is rare).
 */

#ifndef DIRSIM_TRACE_FILTER_HH
#define DIRSIM_TRACE_FILTER_HH

#include "trace/trace.hh"

namespace dirsim
{

/** Remove every reference to a lock word (spin reads and lock writes). */
Trace excludeLockRefs(const Trace &trace);

/** Remove only spin reads, keeping the T&S/unlock writes. */
Trace excludeSpinReads(const Trace &trace);

/** Keep only user-mode references. */
Trace keepUserOnly(const Trace &trace);

/** Keep only data references (drop instruction fetches). */
Trace dataRefsOnly(const Trace &trace);

/**
 * Rewrite every record's pid to its cpu, so a downstream simulator
 * keyed on process ids models per-processor caches instead.
 */
Trace remapProcessesToCpus(const Trace &trace);

/** Keep only the first @p n records (for quick experiments). */
Trace truncateTrace(const Trace &trace, std::size_t n);

} // namespace dirsim

#endif // DIRSIM_TRACE_FILTER_HH
