/**
 * @file
 * In-memory multiprocessor address trace.
 */

#ifndef DIRSIM_TRACE_TRACE_HH
#define DIRSIM_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace dirsim
{

/**
 * An ordered multiprocessor address trace plus its metadata.
 *
 * The record order is the global interleaving observed on the traced
 * machine; the paper notes that the temporal ordering of
 * synchronization activity must be preserved, so the trace is always
 * processed strictly in order.
 */
class Trace
{
  public:
    Trace() = default;

    /**
     * @param name_arg workload name ("pops", ...)
     * @param num_cpus_arg number of CPUs that produced the trace
     */
    Trace(std::string name_arg, unsigned num_cpus_arg)
        : traceName(std::move(name_arg)), cpus(num_cpus_arg)
    {}

    /** Append a record (validates the record's cpu index). */
    void append(const TraceRecord &record);

    /** Reserve storage for @p n records. */
    void reserve(std::size_t n) { records.reserve(n); }

    const std::string &name() const { return traceName; }
    void setName(std::string name_arg) { traceName = std::move(name_arg); }

    unsigned numCpus() const { return cpus; }
    void setNumCpus(unsigned num_cpus_arg) { cpus = num_cpus_arg; }

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }

    const TraceRecord &operator[](std::size_t i) const
    {
        return records[i];
    }

    auto begin() const { return records.begin(); }
    auto end() const { return records.end(); }

    /** Direct access for bulk operations (readers, filters). */
    const std::vector<TraceRecord> &data() const { return records; }

    /** Number of distinct process ids appearing in the trace. */
    std::size_t countProcesses() const;

    /** Largest cpu index appearing plus one (0 for empty traces). */
    unsigned observedCpus() const;

  private:
    std::string traceName;
    unsigned cpus = 0;
    std::vector<TraceRecord> records;
};

} // namespace dirsim

#endif // DIRSIM_TRACE_TRACE_HH
