#include "trace/trace_stats.hh"

#include <unordered_map>
#include <unordered_set>

#include "common/bitops.hh"
#include "common/stats.hh"

namespace dirsim
{

double
TraceStats::readWriteRatio() const
{
    if (dataWrites == 0)
        return 0.0;
    return static_cast<double>(dataReads)
        / static_cast<double>(dataWrites);
}

double
TraceStats::spinReadFraction() const
{
    if (dataReads == 0)
        return 0.0;
    return static_cast<double>(lockSpinReads)
        / static_cast<double>(dataReads);
}

double
TraceStats::systemFraction() const
{
    if (refs == 0)
        return 0.0;
    return static_cast<double>(sys) / static_cast<double>(refs);
}

double
TraceStats::sharedBlockFraction() const
{
    if (dataBlocks == 0)
        return 0.0;
    return static_cast<double>(sharedDataBlocks)
        / static_cast<double>(dataBlocks);
}

TraceStats
computeTraceStats(const Trace &trace, unsigned block_bytes)
{
    checkBlockSize(block_bytes);

    TraceStats stats;
    stats.name = trace.name();
    stats.numCpus = trace.numCpus();

    // block -> first accessor, promoted to the shared set on a second
    // distinct process.
    std::unordered_map<BlockNum, ProcId> first_accessor;
    std::unordered_set<BlockNum> shared;
    std::unordered_set<ProcId> pids;

    for (const auto &record : trace) {
        ++stats.refs;
        pids.insert(record.pid);
        if (record.isSystem())
            ++stats.sys;
        else
            ++stats.user;

        if (record.isInstr()) {
            ++stats.instr;
            continue;
        }
        if (record.isRead()) {
            ++stats.dataReads;
            if (record.isLockSpin())
                ++stats.lockSpinReads;
        } else {
            ++stats.dataWrites;
            if (record.isLockWrite())
                ++stats.lockWrites;
        }

        const BlockNum block = blockNumber(record.addr, block_bytes);
        const auto [it, inserted] =
            first_accessor.emplace(block, record.pid);
        if (!inserted && it->second != record.pid)
            shared.insert(block);
    }

    stats.numProcesses = pids.size();
    stats.dataBlocks = first_accessor.size();
    stats.sharedDataBlocks = shared.size();
    return stats;
}

std::vector<bool>
detectSpinReads(const Trace &trace, unsigned threshold)
{
    struct WordState
    {
        ProcId last_reader = 0;
        unsigned run = 0;       ///< consecutive same-process reads
        std::vector<std::size_t> run_indices;
    };

    std::vector<bool> spin(trace.size(), false);
    std::unordered_map<Addr, WordState> words;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto &record = trace[i];
        if (record.isInstr())
            continue;
        auto &state = words[record.addr];
        if (record.isWrite()) {
            state.run = 0;
            state.run_indices.clear();
            continue;
        }
        if (state.run > 0 && state.last_reader == record.pid) {
            ++state.run;
        } else {
            state.run = 1;
            state.last_reader = record.pid;
            state.run_indices.clear();
        }
        state.run_indices.push_back(i);
        if (state.run >= threshold) {
            // Mark the whole run once it qualifies as a spin.
            for (std::size_t idx : state.run_indices)
                spin[idx] = true;
        }
    }
    return spin;
}

} // namespace dirsim
