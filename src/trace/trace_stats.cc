#include "trace/trace_stats.hh"

#include <unordered_map>
#include <unordered_set>

#include "common/bitops.hh"
#include "common/stats.hh"

namespace dirsim
{

double
TraceStats::readWriteRatio() const
{
    if (dataWrites == 0)
        return 0.0;
    return static_cast<double>(dataReads)
        / static_cast<double>(dataWrites);
}

double
TraceStats::spinReadFraction() const
{
    if (dataReads == 0)
        return 0.0;
    return static_cast<double>(lockSpinReads)
        / static_cast<double>(dataReads);
}

double
TraceStats::systemFraction() const
{
    if (refs == 0)
        return 0.0;
    return static_cast<double>(sys) / static_cast<double>(refs);
}

double
TraceStats::sharedBlockFraction() const
{
    if (dataBlocks == 0)
        return 0.0;
    return static_cast<double>(sharedDataBlocks)
        / static_cast<double>(dataBlocks);
}

TraceStatsBuilder::TraceStatsBuilder(unsigned block_bytes_arg)
    : blockBytes(block_bytes_arg)
{
    checkBlockSize(blockBytes);
}

void
TraceStatsBuilder::add(const TraceRecord &record)
{
    ++stats.refs;
    pids.insert(record.pid);
    if (record.isSystem())
        ++stats.sys;
    else
        ++stats.user;

    if (record.isInstr()) {
        ++stats.instr;
        return;
    }
    if (record.isRead()) {
        ++stats.dataReads;
        if (record.isLockSpin())
            ++stats.lockSpinReads;
    } else {
        ++stats.dataWrites;
        if (record.isLockWrite())
            ++stats.lockWrites;
    }

    // block -> first accessor, promoted to the shared set on a second
    // distinct process.
    const BlockNum block = blockNumber(record.addr, blockBytes);
    const auto [it, inserted] = firstAccessor.emplace(block, record.pid);
    if (!inserted && it->second != record.pid)
        shared.insert(block);
}

TraceStats
TraceStatsBuilder::finish(const std::string &name_arg,
                          unsigned num_cpus_arg) const
{
    TraceStats result = stats;
    result.name = name_arg;
    result.numCpus = num_cpus_arg;
    result.numProcesses = pids.size();
    result.dataBlocks = firstAccessor.size();
    result.sharedDataBlocks = shared.size();
    return result;
}

TraceStats
computeTraceStats(const Trace &trace, unsigned block_bytes)
{
    TraceStatsBuilder builder(block_bytes);
    for (const auto &record : trace)
        builder.add(record);
    return builder.finish(trace.name(), trace.numCpus());
}

TraceStats
computeTraceStats(TraceSource &source, unsigned block_bytes)
{
    TraceStatsBuilder builder(block_bytes);
    TraceRecord record;
    while (source.next(record))
        builder.add(record);
    return builder.finish(source.name(), source.numCpus());
}

std::vector<bool>
detectSpinReads(const Trace &trace, unsigned threshold)
{
    struct WordState
    {
        ProcId last_reader = 0;
        unsigned run = 0;       ///< consecutive same-process reads
        std::vector<std::size_t> run_indices;
    };

    std::vector<bool> spin(trace.size(), false);
    std::unordered_map<Addr, WordState> words;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto &record = trace[i];
        if (record.isInstr())
            continue;
        auto &state = words[record.addr];
        if (record.isWrite()) {
            state.run = 0;
            state.run_indices.clear();
            continue;
        }
        if (state.run > 0 && state.last_reader == record.pid) {
            ++state.run;
        } else {
            state.run = 1;
            state.last_reader = record.pid;
            state.run_indices.clear();
        }
        state.run_indices.push_back(i);
        if (state.run >= threshold) {
            // Mark the whole run once it qualifies as a spin.
            for (std::size_t idx : state.run_indices)
                spin[idx] = true;
        }
    }
    return spin;
}

} // namespace dirsim
