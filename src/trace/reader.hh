/**
 * @file
 * Deserialization of dirsim traces (binary and text formats).
 */

#ifndef DIRSIM_TRACE_READER_HH
#define DIRSIM_TRACE_READER_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace dirsim
{

/**
 * Read a binary trace written by writeBinaryTrace().
 *
 * @throws UsageError on bad magic, unsupported version, truncated
 *         input, or malformed records
 */
Trace readBinaryTrace(std::istream &is);

/** Read a binary trace from @p path. */
Trace readBinaryTraceFile(const std::string &path);

/**
 * Read a text trace written by writeTextTrace().
 *
 * Unknown '#' header keys are ignored; malformed record lines throw
 * UsageError with the offending line number.
 */
Trace readTextTrace(std::istream &is);

/** Read a text trace from @p path. */
Trace readTextTraceFile(const std::string &path);

} // namespace dirsim

#endif // DIRSIM_TRACE_READER_HH
