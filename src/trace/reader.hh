/**
 * @file
 * Deserialization of dirsim traces (binary and text formats).
 *
 * Two layers:
 *
 *  - Streaming readers (BinaryTraceReader, TextTraceReader,
 *    openTraceSource): record-at-a-time TraceSource implementations
 *    whose memory use is independent of trace length. All input
 *    validation lives here — header sanity, record-count/length
 *    consistency, per-record type/flag/cpu legality, and the binary
 *    v2 trailing checksum.
 *
 *  - Whole-trace convenience functions (readBinaryTrace, ...): drain
 *    a streaming reader into an in-memory Trace. They inherit every
 *    validation rule above.
 *
 * Every malformed input is rejected with a UsageError naming the
 * offending line (text) or byte offset (binary); no input, however
 * hostile, causes a crash, an uncaught exception of another type, or
 * an allocation the input's actual size does not back.
 */

#ifndef DIRSIM_TRACE_READER_HH
#define DIRSIM_TRACE_READER_HH

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <string>

#include "trace/format.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace dirsim
{

/**
 * Streams records from a binary trace container (format v1 or v2,
 * see trace/format.hh).
 *
 * The header is parsed and validated on construction: magic, version,
 * name length, and — whenever the stream is seekable — the declared
 * record count against the bytes actually present, so a corrupt
 * 64-bit count is diagnosed up front instead of driving allocations
 * or a long read. For v2 containers the trailing FNV-1a checksum is
 * verified when the last record has been consumed.
 */
class BinaryTraceReader : public TraceSource
{
  public:
    /** Stream from @p is_arg (not owned; must outlive the reader). */
    explicit BinaryTraceReader(std::istream &is_arg);

    /** Open @p path and stream from it. */
    explicit BinaryTraceReader(const std::string &path);

    bool next(TraceRecord &record) override;
    const std::string &name() const override { return traceName; }
    unsigned numCpus() const override { return cpus; }
    std::optional<std::uint64_t> sizeHint() const override;
    const char *format() const override;

    /** Container format version (1 or 2). */
    std::uint16_t version() const { return ver; }

  private:
    void parseHeader();
    void readBytes(void *out, std::size_t size, const char *what);
    void verifyTrailer();

    std::ifstream owned; ///< backing file for the path constructor
    std::istream &is;
    std::string traceName;
    unsigned cpus = 0;
    std::uint16_t ver = 0;
    std::uint64_t count = 0;
    std::uint64_t index = 0;
    std::uint64_t offset = 0; ///< bytes consumed, for diagnostics
    bool countChecked = false; ///< count validated against length
    bool drained = false;
    traceformat::Fnv64 checksum;
};

/**
 * Streams records from a text trace.
 *
 * Header lines ('# key: value', any spacing around the key) are
 * consumed up front, so name()/numCpus() are valid immediately;
 * unknown keys and '#' lines after the first record are ignored as
 * comments. Record fields are range-checked (cpu against the declared
 * CPU count and the 16-bit format limit, pid against 32 bits, flags
 * against the known set); every rejection names the input line.
 */
class TextTraceReader : public TraceSource
{
  public:
    /** Stream from @p is_arg (not owned; must outlive the reader). */
    explicit TextTraceReader(std::istream &is_arg);

    /** Open @p path and stream from it. */
    explicit TextTraceReader(const std::string &path);

    bool next(TraceRecord &record) override;
    const std::string &name() const override { return traceName; }
    unsigned numCpus() const override { return cpus; }
    const char *format() const override { return "text"; }

  private:
    void parseLeadingHeader();
    void parseHeaderLine(const std::string &line);
    bool parseRecordLine(const std::string &line, TraceRecord &record);

    std::ifstream owned; ///< backing file for the path constructor
    std::istream &is;
    std::string traceName;
    unsigned cpus = 0;
    std::size_t lineNo = 0;
    bool headerDone = false; ///< a record line has been seen
    bool havePending = false;
    TraceRecord pending;
};

/**
 * Open a trace file as a streaming source: paths ending in ".txt" are
 * text traces, everything else binary (the trace_tool convention).
 *
 * @throws UsageError if the file cannot be opened or its header is
 *         malformed
 */
std::unique_ptr<TraceSource> openTraceSource(const std::string &path);

/**
 * Read a binary trace written by writeBinaryTrace() into memory.
 *
 * @throws UsageError on bad magic, unsupported version, truncated
 *         input, corrupt records, or a v2 checksum mismatch
 */
Trace readBinaryTrace(std::istream &is);

/** Read a binary trace from @p path. */
Trace readBinaryTraceFile(const std::string &path);

/**
 * Read a text trace written by writeTextTrace() into memory.
 *
 * Unknown '#' header keys are ignored; malformed header or record
 * lines throw UsageError with the offending line number.
 */
Trace readTextTrace(std::istream &is);

/** Read a text trace from @p path. */
Trace readTextTraceFile(const std::string &path);

} // namespace dirsim

#endif // DIRSIM_TRACE_READER_HH
