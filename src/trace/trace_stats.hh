/**
 * @file
 * Trace characterization: the quantities the paper reports in Table 3
 * plus derived ratios discussed in Section 4.4 (read-to-write ratio,
 * spin fraction, sharing summary).
 */

#ifndef DIRSIM_TRACE_TRACE_STATS_HH
#define DIRSIM_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace dirsim
{

/**
 * Summary characteristics of a trace, matching the Table 3 columns
 * (Refs, Instr, DRd, DWrt, User, Sys) plus quantities quoted in the
 * surrounding text.
 */
struct TraceStats
{
    std::string name;
    unsigned numCpus = 0;
    std::uint64_t numProcesses = 0;

    std::uint64_t refs = 0;       ///< total references
    std::uint64_t instr = 0;      ///< instruction fetches
    std::uint64_t dataReads = 0;  ///< data reads (DRd)
    std::uint64_t dataWrites = 0; ///< data writes (DWrt)
    std::uint64_t user = 0;       ///< user-mode references
    std::uint64_t sys = 0;        ///< system (OS) references

    std::uint64_t lockSpinReads = 0; ///< spin reads on lock words
    std::uint64_t lockWrites = 0;    ///< T&S / unlock writes

    /** Distinct data blocks touched, and those touched by >1 process. */
    std::uint64_t dataBlocks = 0;
    std::uint64_t sharedDataBlocks = 0;

    /** Data reads per data write; 0 when there are no writes. */
    double readWriteRatio() const;

    /** Fraction of data reads that are lock spins. */
    double spinReadFraction() const;

    /** Fraction of all references in system mode. */
    double systemFraction() const;

    /** Fraction of touched data blocks accessed by >1 process. */
    double sharedBlockFraction() const;
};

/**
 * Record-at-a-time accumulator behind computeTraceStats(), for
 * callers that stream a trace (trace/source.hh) instead of holding it
 * in memory. Working state grows with the number of distinct blocks
 * and processes, never with trace length.
 */
class TraceStatsBuilder
{
  public:
    /** @param block_bytes_arg block size for the sharing summary */
    explicit TraceStatsBuilder(
        unsigned block_bytes_arg = defaultBlockBytes);

    /** Fold one record into the statistics. */
    void add(const TraceRecord &record);

    /**
     * Finalize with the trace's metadata.
     *
     * @param name_arg workload name for TraceStats::name
     * @param num_cpus_arg declared CPU count
     */
    TraceStats finish(const std::string &name_arg,
                      unsigned num_cpus_arg) const;

  private:
    unsigned blockBytes;
    TraceStats stats;
    std::unordered_map<BlockNum, ProcId> firstAccessor;
    std::unordered_set<BlockNum> shared;
    std::unordered_set<ProcId> pids;
};

/**
 * Scan a trace and compute its statistics.
 *
 * @param trace the trace to characterize
 * @param block_bytes block size for the sharing summary
 */
TraceStats computeTraceStats(const Trace &trace,
                             unsigned block_bytes = defaultBlockBytes);

/** Drain @p source and compute its statistics in bounded memory. */
TraceStats computeTraceStats(TraceSource &source,
                             unsigned block_bytes = defaultBlockBytes);

/**
 * Identify spin reads without generator metadata, the way one would
 * have to on a real ATUM trace: a data read is classified as a spin
 * read if the same process read the same word as its previous data
 * reference to that word at least @p threshold times consecutively
 * without an intervening write by anyone.
 *
 * Returns a vector parallel to the trace marking detected spin reads;
 * used to validate the generator's flagLockSpin metadata.
 */
std::vector<bool> detectSpinReads(const Trace &trace,
                                  unsigned threshold = 2);

} // namespace dirsim

#endif // DIRSIM_TRACE_TRACE_STATS_HH
