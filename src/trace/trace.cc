#include "trace/trace.hh"

#include <unordered_set>

#include "common/logging.hh"

namespace dirsim
{

void
Trace::append(const TraceRecord &record)
{
    fatalIf(cpus != 0 && record.cpu >= cpus,
            "trace '", traceName, "' declared ", cpus,
            " CPUs but a record names cpu ", record.cpu);
    records.push_back(record);
}

std::size_t
Trace::countProcesses() const
{
    std::unordered_set<ProcId> pids;
    for (const auto &record : records)
        pids.insert(record.pid);
    return pids.size();
}

unsigned
Trace::observedCpus() const
{
    unsigned max_cpu = 0;
    bool any = false;
    for (const auto &record : records) {
        any = true;
        if (record.cpu > max_cpu)
            max_cpu = record.cpu;
    }
    return any ? max_cpu + 1 : 0;
}

} // namespace dirsim
