#include "trace/filter.hh"

#include <algorithm>

namespace dirsim
{

namespace
{

/** Copy metadata and the records selected by @p keep. */
template <typename Pred>
Trace
filterTrace(const Trace &trace, Pred keep)
{
    Trace out(trace.name(), trace.numCpus());
    out.reserve(trace.size());
    for (const auto &record : trace) {
        if (keep(record))
            out.append(record);
    }
    return out;
}

} // namespace

Trace
excludeLockRefs(const Trace &trace)
{
    return filterTrace(trace, [](const TraceRecord &r) {
        return !r.isLockRef();
    });
}

Trace
excludeSpinReads(const Trace &trace)
{
    return filterTrace(trace, [](const TraceRecord &r) {
        return !r.isLockSpin();
    });
}

Trace
keepUserOnly(const Trace &trace)
{
    return filterTrace(trace, [](const TraceRecord &r) {
        return !r.isSystem();
    });
}

Trace
dataRefsOnly(const Trace &trace)
{
    return filterTrace(trace, [](const TraceRecord &r) {
        return r.isData();
    });
}

Trace
remapProcessesToCpus(const Trace &trace)
{
    Trace out(trace.name(), trace.numCpus());
    out.reserve(trace.size());
    for (auto record : trace) {
        record.pid = record.cpu;
        out.append(record);
    }
    return out;
}

Trace
truncateTrace(const Trace &trace, std::size_t n)
{
    Trace out(trace.name(), trace.numCpus());
    const std::size_t count = std::min(n, trace.size());
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.append(trace[i]);
    return out;
}

} // namespace dirsim
