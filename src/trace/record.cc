#include "trace/record.hh"

#include "common/logging.hh"

namespace dirsim
{

const char *
toString(RefType type)
{
    switch (type) {
      case RefType::Instr:
        return "instr";
      case RefType::Read:
        return "read";
      case RefType::Write:
        return "write";
    }
    panic("unknown RefType ", static_cast<int>(type));
}

RefType
refTypeFromString(const std::string &name)
{
    if (name == "instr")
        return RefType::Instr;
    if (name == "read")
        return RefType::Read;
    if (name == "write")
        return RefType::Write;
    fatal("unknown reference type '", name, "'");
}

} // namespace dirsim
