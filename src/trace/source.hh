/**
 * @file
 * Record-at-a-time trace access.
 *
 * A TraceSource yields one TraceRecord per call, so consumers (the
 * simulator, statistics, validation tools) can process traces far
 * larger than memory: the streaming readers in trace/reader.hh hold
 * only fixed-size parser state regardless of trace length, and the
 * simulation loop in sim/simulator.hh consumes any source without
 * materializing a Trace.
 */

#ifndef DIRSIM_TRACE_SOURCE_HH
#define DIRSIM_TRACE_SOURCE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "trace/trace.hh"

namespace dirsim
{

/**
 * A forward-only stream of trace records plus the trace metadata.
 *
 * Sources validate as they go: next() throws UsageError (with a line
 * number or byte offset) on malformed input instead of returning a
 * bogus record, and integrity trailers (binary v2's checksum) are
 * verified when the source is drained — a consumer that reads every
 * record is guaranteed to have seen an uncorrupted trace.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     *
     * @param record filled in on success, untouched at end of stream
     * @return true if a record was produced, false at a clean end
     * @throws UsageError on malformed or corrupt input
     */
    virtual bool next(TraceRecord &record) = 0;

    /** Workload name from the container header ("" if absent). */
    virtual const std::string &name() const = 0;

    /** Declared CPU count from the header (0 = unknown). */
    virtual unsigned numCpus() const = 0;

    /** Records the container declares, when the format says. */
    virtual std::optional<std::uint64_t> sizeHint() const
    {
        return std::nullopt;
    }

    /** Human-readable format name ("binary v2", "text", "memory"). */
    virtual const char *format() const = 0;
};

/** Adapts an in-memory Trace to the TraceSource interface. */
class MemoryTraceSource : public TraceSource
{
  public:
    /** @param trace_arg must outlive the source */
    explicit MemoryTraceSource(const Trace &trace_arg)
        : trace(trace_arg)
    {}

    bool
    next(TraceRecord &record) override
    {
        if (index >= trace.size())
            return false;
        record = trace[index++];
        return true;
    }

    const std::string &name() const override { return trace.name(); }
    unsigned numCpus() const override { return trace.numCpus(); }

    std::optional<std::uint64_t>
    sizeHint() const override
    {
        return trace.size();
    }

    const char *format() const override { return "memory"; }

  private:
    const Trace &trace;
    std::size_t index = 0;
};

/**
 * Drain a source into an in-memory Trace.
 *
 * The size hint is used for the initial reservation but capped, so a
 * hostile header cannot force an allocation larger than the input
 * actually backs.
 */
Trace readTrace(TraceSource &source);

} // namespace dirsim

#endif // DIRSIM_TRACE_SOURCE_HH
