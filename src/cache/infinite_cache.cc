#include "cache/infinite_cache.hh"

#include "common/logging.hh"

namespace dirsim
{

CacheBlockState
InfiniteCache::lookup(BlockNum block) const
{
    if (denseMode)
        return block < dense.size() ? dense[block] : stateNotPresent;
    const auto it = blocks.find(block);
    return it == blocks.end() ? stateNotPresent : it->second;
}

bool
InfiniteCache::set(BlockNum block, CacheBlockState state)
{
    panicIfNot(state != stateNotPresent,
               "InfiniteCache::set with the reserved not-present state");
    if (denseMode) {
        panicIfNot(block < dense.size(),
                   "InfiniteCache::set: block ", block,
                   " outside the reserved dense arena of ",
                   dense.size(), " blocks");
        CacheBlockState &slot = dense[block];
        const bool inserted = slot == stateNotPresent;
        slot = state;
        denseResident += inserted ? 1 : 0;
        return inserted;
    }
    const auto [it, inserted] = blocks.insert_or_assign(block, state);
    (void)it;
    return inserted;
}

CacheBlockState
InfiniteCache::invalidate(BlockNum block)
{
    if (denseMode) {
        if (block >= dense.size())
            return stateNotPresent;
        const CacheBlockState old = dense[block];
        dense[block] = stateNotPresent;
        denseResident -= old != stateNotPresent ? 1 : 0;
        return old;
    }
    const auto it = blocks.find(block);
    if (it == blocks.end())
        return stateNotPresent;
    const CacheBlockState old = it->second;
    blocks.erase(it);
    return old;
}

std::size_t
InfiniteCache::residentBlocks() const
{
    return denseMode ? denseResident : blocks.size();
}

void
InfiniteCache::clear()
{
    if (denseMode) {
        std::fill(dense.begin(), dense.end(), stateNotPresent);
        denseResident = 0;
        return;
    }
    blocks.clear();
}

void
InfiniteCache::forEach(
    const std::function<void(BlockNum, CacheBlockState)> &fn) const
{
    if (denseMode) {
        for (BlockNum block = 0; block < dense.size(); ++block) {
            if (dense[block] != stateNotPresent)
                fn(block, dense[block]);
        }
        return;
    }
    for (const auto &[block, state] : blocks)
        fn(block, state);
}

void
InfiniteCache::reserveBlocks(std::uint64_t block_count)
{
    panicIfNot(blocks.empty() && denseResident == 0,
               "InfiniteCache::reserveBlocks on a non-empty cache");
    dense.assign(block_count, stateNotPresent);
    denseMode = true;
}

} // namespace dirsim
