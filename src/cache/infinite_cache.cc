#include "cache/infinite_cache.hh"

#include "common/logging.hh"

namespace dirsim
{

CacheBlockState
InfiniteCache::lookup(BlockNum block) const
{
    const auto it = blocks.find(block);
    return it == blocks.end() ? stateNotPresent : it->second;
}

bool
InfiniteCache::set(BlockNum block, CacheBlockState state)
{
    panicIfNot(state != stateNotPresent,
               "InfiniteCache::set with the reserved not-present state");
    const auto [it, inserted] = blocks.insert_or_assign(block, state);
    (void)it;
    return inserted;
}

CacheBlockState
InfiniteCache::invalidate(BlockNum block)
{
    const auto it = blocks.find(block);
    if (it == blocks.end())
        return stateNotPresent;
    const CacheBlockState old = it->second;
    blocks.erase(it);
    return old;
}

void
InfiniteCache::forEach(
    const std::function<void(BlockNum, CacheBlockState)> &fn) const
{
    for (const auto &[block, state] : blocks)
        fn(block, state);
}

} // namespace dirsim
