#include "cache/infinite_cache.hh"

#include "common/logging.hh"

namespace dirsim
{

CacheBlockState
InfiniteCache::lookup(BlockNum block) const
{
    if (denseMode)
        return block < denseSize ? dense[block] : stateNotPresent;
    const auto it = blocks.find(block);
    return it == blocks.end() ? stateNotPresent : it->second;
}

bool
InfiniteCache::set(BlockNum block, CacheBlockState state)
{
    panicIfNot(state != stateNotPresent,
               "InfiniteCache::set with the reserved not-present state");
    if (denseMode) {
        panicIfNot(block < denseSize,
                   "InfiniteCache::set: block ", block,
                   " outside the reserved dense arena of ",
                   denseSize, " blocks");
        CacheBlockState &slot = dense[block];
        const bool inserted = slot == stateNotPresent;
        slot = state;
        denseResident += inserted ? 1 : 0;
        return inserted;
    }
    const auto [it, inserted] = blocks.insert_or_assign(block, state);
    (void)it;
    return inserted;
}

CacheBlockState
InfiniteCache::invalidate(BlockNum block)
{
    if (denseMode) {
        if (block >= denseSize)
            return stateNotPresent;
        const CacheBlockState old = dense[block];
        dense[block] = stateNotPresent;
        denseResident -= old != stateNotPresent ? 1 : 0;
        return old;
    }
    const auto it = blocks.find(block);
    if (it == blocks.end())
        return stateNotPresent;
    const CacheBlockState old = it->second;
    blocks.erase(it);
    return old;
}

std::size_t
InfiniteCache::residentBlocks() const
{
    return denseMode ? denseResident : blocks.size();
}

void
InfiniteCache::clear()
{
    if (denseMode) {
        // Fresh calloc instead of a fill: the zeroing stays lazy.
        allocDense(denseSize);
        denseResident = 0;
        return;
    }
    blocks.clear();
}

void
InfiniteCache::forEach(
    const std::function<void(BlockNum, CacheBlockState)> &fn) const
{
    if (denseMode) {
        for (BlockNum block = 0; block < denseSize; ++block) {
            if (dense[block] != stateNotPresent)
                fn(block, dense[block]);
        }
        return;
    }
    for (const auto &[block, state] : blocks)
        fn(block, state);
}

void
InfiniteCache::allocDense(std::uint64_t block_count)
{
    // calloc so untouched pages never materialize; see the header.
    auto *arena = static_cast<CacheBlockState *>(
        std::calloc(block_count > 0 ? block_count : 1,
                    sizeof(CacheBlockState)));
    panicIfNot(arena != nullptr,
               "InfiniteCache: cannot allocate a dense arena of ",
               block_count, " blocks");
    dense.reset(arena);
    denseSize = block_count;
}

void
InfiniteCache::reserveBlocks(std::uint64_t block_count)
{
    panicIfNot(blocks.empty() && denseResident == 0,
               "InfiniteCache::reserveBlocks on a non-empty cache");
    allocDense(block_count);
    denseMode = true;
}

} // namespace dirsim
