/**
 * @file
 * The paper's cache model: an infinite cache that never replaces, so
 * every miss after the first reference to a block is a coherence
 * (invalidation/sharing) miss rather than a capacity or conflict miss.
 */

#ifndef DIRSIM_CACHE_INFINITE_CACHE_HH
#define DIRSIM_CACHE_INFINITE_CACHE_HH

#include <cstdlib>
#include <memory>
#include <unordered_map>

#include "cache/cache_if.hh"

namespace dirsim
{

/**
 * Unbounded block-state store; see CacheModel for semantics.
 *
 * Two storage backends share one interface: the default sparse hash
 * map keyed by arbitrary block numbers, and — after reserveBlocks() —
 * a flat state array indexed directly by densified block indices
 * (sim/decoded.hh), which turns every lookup into a single load on
 * the simulation hot path.
 */
class InfiniteCache : public CacheModel
{
  public:
    InfiniteCache() = default;

    CacheBlockState lookup(BlockNum block) const override;
    bool set(BlockNum block, CacheBlockState state) override;
    CacheBlockState invalidate(BlockNum block) override;
    std::size_t residentBlocks() const override;
    void clear() override;
    void forEach(
        const std::function<void(BlockNum, CacheBlockState)> &fn)
        const override;
    void reserveBlocks(std::uint64_t block_count) override;

    /** True once reserveBlocks() switched to the flat array. */
    bool denseStorage() const { return denseMode; }

  private:
    struct FreeDeleter
    {
        void operator()(CacheBlockState *p) const { std::free(p); }
    };

    /** (Re)claim a zeroed dense arena of @p block_count states. */
    void allocDense(std::uint64_t block_count);

    std::unordered_map<BlockNum, CacheBlockState> blocks;
    /**
     * Dense backend: state per block index, 0 = not resident. A
     * calloc'd buffer rather than a std::vector: a grid at large N
     * builds one arena per cache per cell, and zero-filling them all
     * eagerly (numCaches × blockCount bytes) costs more than the
     * simulation itself when each cache only ever touches a sliver of
     * the block space. calloc leaves untouched pages on the kernel's
     * zero page, so setup cost follows the blocks a cache actually
     * uses.
     */
    std::unique_ptr<CacheBlockState[], FreeDeleter> dense;
    std::size_t denseSize = 0;
    std::size_t denseResident = 0;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_CACHE_INFINITE_CACHE_HH
