/**
 * @file
 * The paper's cache model: an infinite cache that never replaces, so
 * every miss after the first reference to a block is a coherence
 * (invalidation/sharing) miss rather than a capacity or conflict miss.
 */

#ifndef DIRSIM_CACHE_INFINITE_CACHE_HH
#define DIRSIM_CACHE_INFINITE_CACHE_HH

#include <unordered_map>
#include <vector>

#include "cache/cache_if.hh"

namespace dirsim
{

/**
 * Unbounded block-state store; see CacheModel for semantics.
 *
 * Two storage backends share one interface: the default sparse hash
 * map keyed by arbitrary block numbers, and — after reserveBlocks() —
 * a flat state array indexed directly by densified block indices
 * (sim/decoded.hh), which turns every lookup into a single load on
 * the simulation hot path.
 */
class InfiniteCache : public CacheModel
{
  public:
    InfiniteCache() = default;

    CacheBlockState lookup(BlockNum block) const override;
    bool set(BlockNum block, CacheBlockState state) override;
    CacheBlockState invalidate(BlockNum block) override;
    std::size_t residentBlocks() const override;
    void clear() override;
    void forEach(
        const std::function<void(BlockNum, CacheBlockState)> &fn)
        const override;
    void reserveBlocks(std::uint64_t block_count) override;

    /** True once reserveBlocks() switched to the flat array. */
    bool denseStorage() const { return denseMode; }

  private:
    std::unordered_map<BlockNum, CacheBlockState> blocks;
    /** Dense backend: state per block index, 0 = not resident. */
    std::vector<CacheBlockState> dense;
    std::size_t denseResident = 0;
    bool denseMode = false;
};

} // namespace dirsim

#endif // DIRSIM_CACHE_INFINITE_CACHE_HH
