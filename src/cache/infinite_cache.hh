/**
 * @file
 * The paper's cache model: an infinite cache that never replaces, so
 * every miss after the first reference to a block is a coherence
 * (invalidation/sharing) miss rather than a capacity or conflict miss.
 */

#ifndef DIRSIM_CACHE_INFINITE_CACHE_HH
#define DIRSIM_CACHE_INFINITE_CACHE_HH

#include <unordered_map>

#include "cache/cache_if.hh"

namespace dirsim
{

/** Unbounded block-state store; see CacheModel for semantics. */
class InfiniteCache : public CacheModel
{
  public:
    InfiniteCache() = default;

    CacheBlockState lookup(BlockNum block) const override;
    bool set(BlockNum block, CacheBlockState state) override;
    CacheBlockState invalidate(BlockNum block) override;
    std::size_t residentBlocks() const override { return blocks.size(); }
    void clear() override { blocks.clear(); }
    void forEach(
        const std::function<void(BlockNum, CacheBlockState)> &fn)
        const override;

  private:
    std::unordered_map<BlockNum, CacheBlockState> blocks;
};

} // namespace dirsim

#endif // DIRSIM_CACHE_INFINITE_CACHE_HH
