/**
 * @file
 * Common interface for the per-process cache models.
 *
 * Coherence protocols attach a small protocol-specific state byte to
 * each resident block; the cache models only manage residency and
 * state storage. State value 0 is reserved to mean "not resident" and
 * is never stored.
 */

#ifndef DIRSIM_CACHE_CACHE_IF_HH
#define DIRSIM_CACHE_CACHE_IF_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.hh"

namespace dirsim
{

/** Protocol-defined per-block cache state; 0 means "not resident". */
using CacheBlockState = std::uint8_t;

/** Reserved "not resident" state value. */
inline constexpr CacheBlockState stateNotPresent = 0;

/**
 * Abstract per-process cache holding protocol state per block.
 *
 * Implementations: InfiniteCache (the paper's model, no replacement)
 * and FiniteCache (set-associative LRU with eviction callbacks).
 */
class CacheModel
{
  public:
    /** Callback invoked with (block, state) on a replacement. */
    using EvictionHook = std::function<void(BlockNum, CacheBlockState)>;

    virtual ~CacheModel() = default;

    /**
     * State of @p block, or stateNotPresent.
     */
    virtual CacheBlockState lookup(BlockNum block) const = 0;

    /**
     * Install or update @p block with @p state.
     *
     * @param state must not be stateNotPresent (panics otherwise)
     * @return true if the block was newly installed
     */
    virtual bool set(BlockNum block, CacheBlockState state) = 0;

    /**
     * Remove @p block.
     *
     * @return the state the block had, or stateNotPresent
     */
    virtual CacheBlockState invalidate(BlockNum block) = 0;

    /** Number of resident blocks. */
    virtual std::size_t residentBlocks() const = 0;

    /** Drop everything. */
    virtual void clear() = 0;

    /** Visit every resident (block, state) pair. */
    virtual void forEach(
        const std::function<void(BlockNum, CacheBlockState)> &fn)
        const = 0;

    /**
     * Mark @p block most-recently-used (replacement metadata only).
     * No-op for caches without replacement.
     */
    virtual void touch(BlockNum block) { (void)block; }

    /**
     * Announce that every future block key lies in
     * [0, @p block_count), inviting the cache to switch to dense
     * (array-indexed) storage. The cache must be empty. Optional:
     * the default keeps whatever storage the cache already uses, so
     * sparse implementations stay correct — dense keys are ordinary
     * block numbers to them.
     */
    virtual void reserveBlocks(std::uint64_t block_count)
    {
        (void)block_count;
    }

    /**
     * Register the hook invoked when replacement evicts a block.
     * No-op for caches that never evict.
     */
    virtual void setEvictionHook(EvictionHook hook) { (void)hook; }

    bool contains(BlockNum block) const
    {
        return lookup(block) != stateNotPresent;
    }
};

/** Factory producing one cache per coherence-domain member. */
using CacheFactory = std::function<std::unique_ptr<CacheModel>()>;

} // namespace dirsim

#endif // DIRSIM_CACHE_CACHE_IF_HH
