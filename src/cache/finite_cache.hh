/**
 * @file
 * Set-associative LRU cache used by the finite-cache extension
 * experiment (the paper argues finite-cache performance can be
 * estimated "to first order by adding the costs due to the finite
 * cache size"; this model lets us measure that directly).
 */

#ifndef DIRSIM_CACHE_FINITE_CACHE_HH
#define DIRSIM_CACHE_FINITE_CACHE_HH

#include <list>
#include <unordered_map>
#include <vector>

#include "cache/cache_if.hh"

namespace dirsim
{

/** Geometry of a FiniteCache. */
struct FiniteCacheConfig
{
    /** Total capacity in bytes; must be a power of two. */
    std::uint64_t capacityBytes = 64 * 1024;
    /** Associativity; must divide capacity/blockBytes. */
    unsigned ways = 4;
    /** Block size in bytes; must match the simulation block size. */
    unsigned blockBytes = defaultBlockBytes;

    /** Number of sets implied by the geometry. */
    std::uint64_t numSets() const;

    /** Validate; throws UsageError on impossible geometry. */
    void check() const;
};

/**
 * Set-associative LRU cache with an eviction callback.
 *
 * The protocol engine registers the callback so an evicted dirty
 * block can be written back and the directory updated, keeping the
 * global coherence state consistent.
 */
class FiniteCache : public CacheModel
{
  public:
    explicit FiniteCache(const FiniteCacheConfig &config_arg);

    CacheBlockState lookup(BlockNum block) const override;
    bool set(BlockNum block, CacheBlockState state) override;
    CacheBlockState invalidate(BlockNum block) override;
    std::size_t residentBlocks() const override { return resident; }
    void clear() override;
    void forEach(
        const std::function<void(BlockNum, CacheBlockState)> &fn)
        const override;

    /**
     * Register the hook invoked with (block, state) each time LRU
     * replacement evicts a block.
     */
    void
    setEvictionHook(EvictionHook hook) override
    {
        onEvict = std::move(hook);
    }

    /** Mark @p block most-recently-used without changing its state. */
    void touch(BlockNum block) override;

    const FiniteCacheConfig &config() const { return cfg; }

    /** Total LRU evictions performed. */
    std::uint64_t evictions() const { return evicted; }

  private:
    struct Line
    {
        BlockNum block;
        CacheBlockState state;
    };
    /** One LRU list per set: front == most recently used. */
    using Set = std::list<Line>;

    Set &setFor(BlockNum block);
    const Set &setFor(BlockNum block) const;

    FiniteCacheConfig cfg;
    std::vector<Set> sets;
    std::size_t resident = 0;
    std::uint64_t evicted = 0;
    EvictionHook onEvict;
};

} // namespace dirsim

#endif // DIRSIM_CACHE_FINITE_CACHE_HH
