#include "cache/finite_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace dirsim
{

std::uint64_t
FiniteCacheConfig::numSets() const
{
    return capacityBytes / blockBytes / ways;
}

void
FiniteCacheConfig::check() const
{
    checkBlockSize(blockBytes);
    fatalIf(capacityBytes == 0 || !isPowerOfTwo(capacityBytes),
            "finite cache capacity must be a non-zero power of two");
    fatalIf(ways == 0, "finite cache must have at least one way");
    const std::uint64_t lines = capacityBytes / blockBytes;
    fatalIf(lines == 0 || lines % ways != 0,
            "capacity ", capacityBytes, "B / block ", blockBytes,
            "B is not divisible into ", ways, " ways");
    fatalIf(!isPowerOfTwo(numSets()),
            "finite cache set count must be a power of two");
}

FiniteCache::FiniteCache(const FiniteCacheConfig &config_arg)
    : cfg(config_arg)
{
    cfg.check();
    sets.resize(cfg.numSets());
}

FiniteCache::Set &
FiniteCache::setFor(BlockNum block)
{
    return sets[block & (sets.size() - 1)];
}

const FiniteCache::Set &
FiniteCache::setFor(BlockNum block) const
{
    return sets[block & (sets.size() - 1)];
}

CacheBlockState
FiniteCache::lookup(BlockNum block) const
{
    for (const auto &line : setFor(block)) {
        if (line.block == block)
            return line.state;
    }
    return stateNotPresent;
}

bool
FiniteCache::set(BlockNum block, CacheBlockState state)
{
    panicIfNot(state != stateNotPresent,
               "FiniteCache::set with the reserved not-present state");
    Set &s = setFor(block);
    for (auto it = s.begin(); it != s.end(); ++it) {
        if (it->block == block) {
            it->state = state;
            s.splice(s.begin(), s, it); // promote to MRU
            return false;
        }
    }
    if (s.size() == cfg.ways) {
        const Line victim = s.back();
        s.pop_back();
        --resident;
        ++evicted;
        if (onEvict)
            onEvict(victim.block, victim.state);
    }
    s.push_front(Line{block, state});
    ++resident;
    return true;
}

CacheBlockState
FiniteCache::invalidate(BlockNum block)
{
    Set &s = setFor(block);
    for (auto it = s.begin(); it != s.end(); ++it) {
        if (it->block == block) {
            const CacheBlockState old = it->state;
            s.erase(it);
            --resident;
            return old;
        }
    }
    return stateNotPresent;
}

void
FiniteCache::clear()
{
    for (auto &s : sets)
        s.clear();
    resident = 0;
}

void
FiniteCache::forEach(
    const std::function<void(BlockNum, CacheBlockState)> &fn) const
{
    for (const auto &s : sets) {
        for (const auto &line : s)
            fn(line.block, line.state);
    }
}

void
FiniteCache::touch(BlockNum block)
{
    Set &s = setFor(block);
    for (auto it = s.begin(); it != s.end(); ++it) {
        if (it->block == block) {
            s.splice(s.begin(), s, it);
            return;
        }
    }
}

} // namespace dirsim
