/**
 * @file
 * A small fixed-size worker pool with a FIFO task queue, the
 * concurrency substrate of the parallel experiment runner
 * (sim/runner.hh).
 *
 * Tasks are plain std::function<void()> closures. An exception
 * escaping a task does not kill the worker: the first one is captured
 * and rethrown from the next wait(), so callers observe task failures
 * at a well-defined point.
 */

#ifndef DIRSIM_COMMON_THREAD_POOL_HH
#define DIRSIM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dirsim
{

/** Fixed-size thread pool executing submitted tasks FIFO. */
class ThreadPool
{
  public:
    /**
     * Start @p num_threads workers.
     *
     * @throws UsageError when @p num_threads is zero
     */
    explicit ThreadPool(unsigned num_threads);

    /** Drains the queue (discarding pending tasks) and joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers owned by the pool. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** Enqueue @p task; it runs on some worker in FIFO order. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished.
     *
     * @throws whatever the first failing task threw since the last
     *         wait(); remaining tasks still ran to completion
     */
    void wait();

    /** Tasks submitted but not yet finished. */
    std::size_t pendingTasks() const;

    /**
     * std::thread::hardware_concurrency() clamped to >= 1 (the
     * standard allows it to return 0 when undeterminable).
     */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    mutable std::mutex mutex;
    std::condition_variable taskReady;
    std::condition_variable allDone;
    std::deque<std::function<void()>> tasks;
    std::vector<std::thread> workers;
    std::size_t inFlight = 0;
    std::exception_ptr firstError;
    bool stopping = false;
};

} // namespace dirsim

#endif // DIRSIM_COMMON_THREAD_POOL_HH
