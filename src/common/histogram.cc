#include "common/histogram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dirsim
{

void
Histogram::add(std::uint64_t value, std::uint64_t count_arg)
{
    if (count_arg == 0)
        return;
    if (value >= counts.size())
        counts.resize(value + 1, 0);
    counts[value] += count_arg;
    total += count_arg;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.counts.size() > counts.size())
        counts.resize(other.counts.size(), 0);
    for (std::size_t i = 0; i < other.counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
}

void
Histogram::subtract(const Histogram &other)
{
    panicIfNot(other.total <= total,
               "Histogram::subtract removes more samples than present");
    for (std::size_t i = 0; i < other.counts.size(); ++i) {
        const std::uint64_t removed = other.counts[i];
        if (removed == 0)
            continue;
        panicIfNot(i < counts.size() && counts[i] >= removed,
                   "Histogram::subtract underflow in bucket ", i);
        counts[i] -= removed;
    }
    total -= other.total;
}

std::uint64_t
Histogram::count(std::uint64_t value) const
{
    return value < counts.size() ? counts[value] : 0;
}

double
Histogram::fraction(std::uint64_t value) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(count(value)) / static_cast<double>(total);
}

double
Histogram::fractionAtMost(std::uint64_t value) const
{
    if (total == 0)
        return 0.0;
    std::uint64_t below = 0;
    const std::uint64_t limit =
        std::min<std::uint64_t>(value + 1, counts.size());
    for (std::uint64_t i = 0; i < limit; ++i)
        below += counts[i];
    return static_cast<double>(below) / static_cast<double>(total);
}

double
Histogram::mean() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(weightedSum()) / static_cast<double>(total);
}

std::uint64_t
Histogram::maxValue() const
{
    for (std::size_t i = counts.size(); i-- > 0;) {
        if (counts[i] != 0)
            return i;
    }
    return 0;
}

std::uint64_t
Histogram::quantile(double q) const
{
    panicIfNot(q >= 0.0 && q <= 1.0, "Histogram::quantile out of range");
    if (total == 0)
        return 0;
    const double target = q * static_cast<double>(total);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        running += counts[i];
        if (static_cast<double>(running) >= target && counts[i] != 0)
            return i;
        if (static_cast<double>(running) >= target)
            return i;
    }
    return maxValue();
}

std::uint64_t
Histogram::weightedSum() const
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i)
        sum += counts[i] * i;
    return sum;
}

void
Histogram::clear()
{
    counts.clear();
    total = 0;
}

bool
Histogram::operator==(const Histogram &other) const
{
    if (total != other.total)
        return false;
    const std::size_t common =
        std::min(counts.size(), other.counts.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (counts[i] != other.counts[i])
            return false;
    }
    const auto &longer =
        counts.size() > other.counts.size() ? counts : other.counts;
    for (std::size_t i = common; i < longer.size(); ++i) {
        if (longer[i] != 0)
            return false;
    }
    return true;
}

} // namespace dirsim
