/**
 * @file
 * Dependency-free JSON support for the observability subsystem
 * (src/obs): a streaming writer used by the JSONL/CSV result sinks
 * and a small validating parser used by `dirsim_report` and the
 * manifest cross-checks.
 *
 * Writing is streaming (no DOM is built); numbers are emitted so they
 * round-trip exactly — unsigned integers verbatim and doubles via the
 * shortest representation that parses back to the same value. Parsing
 * builds a JsonValue tree; integer-looking numbers keep their full
 * 64-bit precision (doubles would silently truncate counters above
 * 2^53, e.g. FNV checksums).
 */

#ifndef DIRSIM_COMMON_JSON_HH
#define DIRSIM_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dirsim
{

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view text);

/**
 * A streaming JSON writer.
 *
 * Nesting and commas are tracked internally, so callers only state
 * structure:
 * @code
 *   JsonWriter w(os);
 *   w.beginObject().key("scheme").value("Dir0B")
 *    .key("refs").value(std::uint64_t{1500000}).endObject();
 * @endcode
 *
 * Misuse (a value where a key is required, unbalanced end calls) is
 * reported via panic() — it is always a dirsim bug, not bad input.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os_arg) : os(os_arg) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key; must be directly inside an object. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    JsonWriter &value(bool flag);
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(unsigned number);
    JsonWriter &null();

    /** True when every container has been closed. */
    bool balanced() const { return stack.empty(); }

  private:
    enum class Frame : unsigned char
    {
        Object,
        Array,
    };

    /** Emit the comma/clear-pending bookkeeping before a value. */
    void preValue();
    void push(Frame frame, char open);
    void pop(Frame frame, char close);

    std::ostream &os;
    std::vector<Frame> stack;
    /** Values already emitted in the innermost container. */
    std::vector<bool> hasElements;
    /** A key was just written; exactly one value must follow. */
    bool pendingKey = false;
};

/**
 * A parsed JSON document.
 *
 * Object members preserve their input order (so re-serialization is
 * stable) and are looked up linearly — the documents we parse have a
 * few dozen keys at most. Numbers keep their source spelling;
 * asU64()/asDouble() convert on demand so 64-bit counters survive
 * untruncated.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, JsonValue>;

    /**
     * Parse a complete JSON document.
     *
     * @throws UsageError on malformed input (message includes the
     *         byte offset) or nesting deeper than 64 levels
     */
    static JsonValue parse(std::string_view text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** @throws UsageError when the value is not a bool */
    bool asBool() const;

    /** @throws UsageError when not a number */
    double asDouble() const;

    /** @throws UsageError when not a non-negative integer number */
    std::uint64_t asU64() const;

    /** @throws UsageError when the value is not a string */
    const std::string &asString() const;

    /** Array elements / object size; 0 for scalars. */
    std::size_t size() const;

    /** @throws UsageError when not an array or out of range */
    const JsonValue &at(std::size_t index) const;

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view name) const;

    /** @throws UsageError when the member is absent */
    const JsonValue &at(std::string_view name) const;

    /** Object members in input order (empty for non-objects). */
    const std::vector<Member> &members() const { return object_; }

    /** Array elements (empty for non-arrays). */
    const std::vector<JsonValue> &elements() const { return array_; }

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar_; ///< number spelling or string payload
    std::vector<JsonValue> array_;
    std::vector<Member> object_;
};

} // namespace dirsim

#endif // DIRSIM_COMMON_JSON_HH
