#include "common/random.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dirsim
{

namespace
{

/** SplitMix64 step, used for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : state)
        word = splitMix64(x);
    // xoshiro requires a non-zero state; splitMix64 of anything gives
    // this with overwhelming probability, but guarantee it anyway.
    if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0)
        state[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    panicIfNot(bound != 0, "Rng::below(0)");
    // Lemire-style rejection-free enough for simulation purposes:
    // 128-bit multiply keeps the bias below 2^-64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    panicIfNot(lo <= hi, "Rng::between: lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    panicIfNot(p > 0.0 && p <= 1.0, "Rng::geometric: p out of (0,1]");
    if (p == 1.0)
        return 0;
    const double u = 1.0 - uniform(); // in (0, 1]
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log(1.0 - p)));
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        panicIfNot(w >= 0.0, "Rng::weighted: negative weight");
        total += w;
    }
    panicIfNot(total > 0.0, "Rng::weighted: weights sum to zero");

    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    ZipfSampler sampler(n, s);
    return sampler(*this);
}

Rng
Rng::split()
{
    return Rng(next());
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s)
{
    panicIfNot(n >= 1, "ZipfSampler: empty range");
    cdf.resize(n);
    double running = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
        running += 1.0 / std::pow(static_cast<double>(r + 1), s);
        cdf[r] = running;
    }
    for (auto &c : cdf)
        c /= running;
}

std::uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto index = static_cast<std::uint64_t>(it - cdf.begin());
    return std::min<std::uint64_t>(index, cdf.size() - 1);
}

} // namespace dirsim
