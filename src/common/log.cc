#include "common/log.hh"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>

#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/phase.hh"

namespace dirsim
{

const char *
toString(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
      case LogLevel::Off:
        return "off";
    }
    return "?";
}

LogLevel
parseLogLevel(std::string_view text)
{
    for (const LogLevel level :
         {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
          LogLevel::Error, LogLevel::Off}) {
        if (text == toString(level))
            return level;
    }
    fatal("unknown log level '", std::string(text),
          "' (expected debug|info|warn|error|off)");
}

std::string
logTimestampUtc()
{
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buffer[32];
    std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ",
                  &utc);
    return buffer;
}

StructuredLog::StructuredLog()
{
    configureFromEnvironment();
}

StructuredLog &
StructuredLog::global()
{
    static StructuredLog instance;
    return instance;
}

void
StructuredLog::setLevel(LogLevel level)
{
    threshold.store(static_cast<unsigned>(level),
                    std::memory_order_relaxed);
}

void
StructuredLog::setFile(const std::string &path)
{
    std::unique_lock<std::mutex> lock(sinkMutex);
    if (path.empty()) {
        owned.reset();
        ownedPath.clear();
        return;
    }
    auto file_stream = std::make_unique<std::ofstream>(
        path, std::ios::app | std::ios::binary);
    if (!*file_stream) {
        // Throwing with the mutex held would be fine, but release
        // first so the error path cannot deadlock a logging catch
        // handler.
        lock.unlock();
        fatal("cannot open log file '", path, "' for append");
    }
    owned = std::move(file_stream);
    ownedPath = path;
}

std::string
StructuredLog::file() const
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    return ownedPath;
}

void
StructuredLog::configureFromEnvironment()
{
    if (const std::optional<std::string> level =
            envString("DIRSIM_LOG_LEVEL"))
        setLevel(parseLogLevel(*level));
    if (const std::optional<std::string> path =
            envString("DIRSIM_LOG_FILE"))
        setFile(*path);
}

void
StructuredLog::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(sinkMutex);
    std::ostream &os = owned ? *owned : std::cerr;
    os << line << '\n' << std::flush;
}

LogEvent::LogEvent(LogLevel level_arg, std::string_view event)
    : active(StructuredLog::global().enabled(level_arg))
{
    if (!active)
        return;
    line << "{\"ts\":\"" << logTimestampUtc() << "\",\"mono_ns\":"
         << PhaseTimer::nowNs() << ",\"level\":\""
         << toString(level_arg) << "\",\"event\":\""
         << jsonEscape(event) << '"';
}

LogEvent::~LogEvent()
{
    if (!active)
        return;
    line << '}';
    StructuredLog::global().writeLine(line.str());
}

void
LogEvent::keyPrefix(std::string_view key)
{
    line << ",\"" << jsonEscape(key) << "\":";
}

LogEvent &
LogEvent::field(std::string_view key, std::string_view value)
{
    if (!active)
        return *this;
    keyPrefix(key);
    line << '"' << jsonEscape(value) << '"';
    return *this;
}

LogEvent &
LogEvent::field(std::string_view key, const char *value)
{
    return field(key, std::string_view(value));
}

LogEvent &
LogEvent::field(std::string_view key, std::uint64_t value)
{
    if (!active)
        return *this;
    keyPrefix(key);
    line << value;
    return *this;
}

LogEvent &
LogEvent::field(std::string_view key, std::int64_t value)
{
    if (!active)
        return *this;
    keyPrefix(key);
    line << value;
    return *this;
}

LogEvent &
LogEvent::field(std::string_view key, unsigned value)
{
    return field(key, static_cast<std::uint64_t>(value));
}

LogEvent &
LogEvent::field(std::string_view key, int value)
{
    return field(key, static_cast<std::int64_t>(value));
}

LogEvent &
LogEvent::field(std::string_view key, double value)
{
    if (!active)
        return *this;
    keyPrefix(key);
    // Shortest round-trip representation, like JsonWriter: printf %g
    // with enough precision for doubles, falling back to a fixed
    // spelling for non-finite values (JSON has no Inf/NaN).
    if (value != value || value > 1.7976931348623157e308
        || value < -1.7976931348623157e308) {
        line << "null";
        return *this;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    line << buffer;
    return *this;
}

LogEvent &
LogEvent::field(std::string_view key, bool value)
{
    if (!active)
        return *this;
    keyPrefix(key);
    line << (value ? "true" : "false");
    return *this;
}

} // namespace dirsim
