/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * workload generator.
 *
 * Trace generation must be bit-reproducible across platforms so that
 * experiments are repeatable; we therefore avoid std::default_random
 * (unspecified algorithms) and implement xoshiro256** together with
 * the handful of distributions the generator needs.
 */

#ifndef DIRSIM_COMMON_RANDOM_HH
#define DIRSIM_COMMON_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

namespace dirsim
{

/**
 * xoshiro256** by Blackman & Vigna: fast, high-quality, and with a
 * stable cross-platform definition.
 */
class Rng
{
  public:
    /**
     * Seed via SplitMix64 so that nearby seeds give unrelated streams.
     *
     * @param seed any 64-bit value, including 0
     */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with success probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Geometric draw: the number of failures before the first success
     * of a Bernoulli(p) process; mean (1-p)/p. Requires p in (0, 1].
     */
    std::uint64_t geometric(double p);

    /**
     * Draw an index from an unnormalized discrete weight vector.
     *
     * @param weights non-negative weights with a positive sum
     * @return index in [0, weights.size())
     */
    std::size_t weighted(const std::vector<double> &weights);

    /**
     * Zipf-like draw over [0, n): rank r has weight 1/(r+1)^s.
     *
     * Used for skewed shared-data popularity. Implemented by inverse
     * transform on a precomputable CDF is avoided here for simplicity;
     * this method recomputes harmonics only for small n, so prefer
     * ZipfSampler for hot paths.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Split off an independent child stream (for per-process RNGs). */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state;
};

/**
 * Precomputed Zipf sampler for repeated skewed draws over a fixed
 * range; O(log n) per draw via binary search on the CDF.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of ranks (must be >= 1)
     * @param s skew exponent (s = 0 degenerates to uniform)
     */
    ZipfSampler(std::uint64_t n, double s);

    /** Draw a rank in [0, n). */
    std::uint64_t operator()(Rng &rng) const;

    /** Number of ranks. */
    std::uint64_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace dirsim

#endif // DIRSIM_COMMON_RANDOM_HH
