/**
 * @file
 * Fundamental scalar types shared by every dirsim module.
 *
 * The simulator follows the paper's model: an address trace is a
 * sequence of (cpu, process, type, address) records, caches are keyed
 * by process, and coherence state is kept per aligned block.
 */

#ifndef DIRSIM_COMMON_TYPES_HH
#define DIRSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dirsim
{

/** A byte address in the simulated (virtual) address space. */
using Addr = std::uint64_t;

/**
 * An aligned block number (address divided by the block size).
 *
 * Block numbers, not byte addresses, key all coherence state; see
 * blockNumber() in common/bitops.hh.
 */
using BlockNum = std::uint64_t;

/** A physical CPU index in the traced machine (the paper uses 4). */
using CpuId = std::uint16_t;

/** A software process identifier (MACH pid in the original traces). */
using ProcId = std::uint32_t;

/**
 * Index of a cache in the coherence domain.
 *
 * Under the paper's process-sharing model there is one cache per
 * process; under the processor-sharing model, one per CPU.
 */
using CacheId = std::uint32_t;

/** Sentinel for "no cache" (e.g. no owner pointer in a directory). */
inline constexpr CacheId invalidCacheId =
    std::numeric_limits<CacheId>::max();

/** Default block size used throughout the paper: 4 words of 4 bytes. */
inline constexpr unsigned defaultBlockBytes = 16;

/** Bus data-path width assumed by both bus models (one 32-bit word). */
inline constexpr unsigned busWordBytes = 4;

} // namespace dirsim

#endif // DIRSIM_COMMON_TYPES_HH
