/**
 * @file
 * Integer-valued histogram used for, e.g., the Figure 1 distribution
 * of "number of other caches holding a previously-clean block when it
 * is written".
 */

#ifndef DIRSIM_COMMON_HISTOGRAM_HH
#define DIRSIM_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace dirsim
{

/**
 * A dense histogram over small non-negative integers.
 *
 * Buckets grow on demand; all statistics are exact (the histogram
 * stores raw counts, not approximations).
 */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one sample of @p value. */
    void add(std::uint64_t value, std::uint64_t count = 1);

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /**
     * Remove a previously merged histogram (used to discard warm-up
     * samples); panics if @p other was never part of this one.
     */
    void subtract(const Histogram &other);

    /** Total number of samples recorded. */
    std::uint64_t samples() const { return total; }

    /** Count in bucket @p value (0 if never recorded). */
    std::uint64_t count(std::uint64_t value) const;

    /** Fraction of samples equal to @p value; 0 when empty. */
    double fraction(std::uint64_t value) const;

    /** Fraction of samples less than or equal to @p value. */
    double fractionAtMost(std::uint64_t value) const;

    /** Arithmetic mean of the samples; 0 when empty. */
    double mean() const;

    /** Largest recorded value; 0 when empty. */
    std::uint64_t maxValue() const;

    /**
     * Smallest v such that at least @p q of the mass is <= v.
     *
     * @param q quantile in [0, 1]
     */
    std::uint64_t quantile(double q) const;

    /** Sum over all samples of their values. */
    std::uint64_t weightedSum() const;

    /** Drop all samples. */
    void clear();

    /** Dense per-bucket counts, index = value. */
    const std::vector<std::uint64_t> &buckets() const { return counts; }

    /**
     * Same samples in every bucket; trailing empty buckets (left
     * behind by subtract()) do not affect equality.
     */
    bool operator==(const Histogram &other) const;

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
};

} // namespace dirsim

#endif // DIRSIM_COMMON_HISTOGRAM_HH
