/**
 * @file
 * Plain-text table formatter used by the repro_* benchmark binaries to
 * print paper tables and figure data series.
 */

#ifndef DIRSIM_COMMON_TABLE_HH
#define DIRSIM_COMMON_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dirsim
{

/**
 * A right-padded text table.
 *
 * Usage:
 * @code
 *   TextTable t({"Scheme", "cycles/ref"});
 *   t.addRow({"Dir0B", TextTable::fixed(0.0491, 4)});
 *   t.print(std::cout);
 * @endcode
 *
 * The first column is left-aligned; the rest are right-aligned, which
 * matches the numeric tables in the paper.
 */
class TextTable
{
  public:
    /** @param header_arg column titles; fixes the column count */
    explicit TextTable(std::vector<std::string> header_arg);

    /**
     * Append one data row.
     *
     * @param cells exactly as many cells as there are columns
     */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal rule before the next row. */
    void addRule();

    /** Render to a stream with two-space column gutters. */
    void print(std::ostream &os) const;

    /** Render to a string (convenience for tests). */
    std::string toString() const;

    /** Format a double with @p digits fixed decimal places. */
    static std::string fixed(double value, int digits);

    /** Format a percentage with @p digits decimal places, no sign. */
    static std::string pct(double value, int digits = 2);

    /** Format an integer with thousands separators ("3,142"). */
    static std::string grouped(std::uint64_t value);

    /** Number of data rows added so far. */
    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body; // empty row == rule
};

/**
 * Render a horizontal ASCII bar of @p value scaled so that @p maximum
 * maps to @p width characters. Used to sketch the paper's figures in
 * terminal output.
 */
std::string asciiBar(double value, double maximum, int width = 50);

} // namespace dirsim

#endif // DIRSIM_COMMON_TABLE_HH
