#include "common/stats.hh"

namespace dirsim
{

void
CounterSet::add(const std::string &name, std::uint64_t delta)
{
    values[name] += delta;
}

std::uint64_t
CounterSet::get(const std::string &name) const
{
    const auto it = values.find(name);
    return it == values.end() ? 0 : it->second;
}

bool
CounterSet::has(const std::string &name) const
{
    return values.find(name) != values.end();
}

void
CounterSet::merge(const CounterSet &other)
{
    // Merging a set into itself is a no-op, not a doubling: the
    // naive loop would add each counter to itself mid-iteration.
    if (&other == this)
        return;
    for (const auto &[name, value] : other.values)
        values[name] += value;
}

double
CounterSet::ratio(const std::string &numer, const std::string &denom) const
{
    if (!has(numer))
        return 0.0;
    const auto d = get(denom);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(numer)) / static_cast<double>(d);
}

void
CounterSet::clear()
{
    for (auto &[name, value] : values)
        value = 0;
}

double
percent(std::uint64_t part, std::uint64_t whole)
{
    if (whole == 0)
        return 0.0;
    return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

double
safeRatio(double part, double whole)
{
    return whole == 0.0 ? 0.0 : part / whole;
}

} // namespace dirsim
