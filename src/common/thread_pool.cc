#include "common/thread_pool.hh"

#include "common/logging.hh"

namespace dirsim
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    fatalIf(num_threads == 0, "ThreadPool needs at least one thread");
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
        tasks.clear();
    }
    taskReady.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    panicIfNot(static_cast<bool>(task), "ThreadPool::submit null task");
    {
        std::lock_guard<std::mutex> lock(mutex);
        panicIfNot(!stopping, "submit on a stopping ThreadPool");
        tasks.push_back(std::move(task));
        ++inFlight;
    }
    taskReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    allDone.wait(lock, [this] { return inFlight == 0; });
    if (firstError) {
        const std::exception_ptr error = firstError;
        firstError = nullptr;
        std::rethrow_exception(error);
    }
}

std::size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return inFlight;
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned reported = std::thread::hardware_concurrency();
    return reported > 0 ? reported : 1;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            taskReady.wait(lock, [this] {
                return stopping || !tasks.empty();
            });
            if (stopping && tasks.empty())
                return;
            task = std::move(tasks.front());
            tasks.pop_front();
        }
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (error && !firstError)
                firstError = error;
            --inFlight;
            if (inFlight == 0)
                allDone.notify_all();
        }
    }
}

} // namespace dirsim
