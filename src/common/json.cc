#include "common/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace dirsim
{

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::push(Frame frame, char open)
{
    preValue();
    stack.push_back(frame);
    hasElements.push_back(false);
    os << open;
}

void
JsonWriter::pop(Frame frame, char close)
{
    panicIfNot(!stack.empty() && stack.back() == frame && !pendingKey,
               "unbalanced JSON writer end call");
    stack.pop_back();
    hasElements.pop_back();
    os << close;
}

void
JsonWriter::preValue()
{
    if (pendingKey) {
        pendingKey = false;
        return;
    }
    if (stack.empty())
        return;
    panicIfNot(stack.back() == Frame::Array,
               "JSON object member written without a key");
    if (hasElements.back())
        os << ',';
    hasElements.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    push(Frame::Object, '{');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    pop(Frame::Object, '}');
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    push(Frame::Array, '[');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    pop(Frame::Array, ']');
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    panicIfNot(!stack.empty() && stack.back() == Frame::Object
                   && !pendingKey,
               "JSON key '", std::string(name),
               "' written outside an object");
    if (hasElements.back())
        os << ',';
    hasElements.back() = true;
    os << '"' << jsonEscape(name) << "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    preValue();
    os << '"' << jsonEscape(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    preValue();
    os << (flag ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    preValue();
    if (!std::isfinite(number)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        os << "null";
        return *this;
    }
    // Shortest round-trip representation.
    char buf[32];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), number);
    panicIfNot(ec == std::errc(), "double formatting failed");
    os.write(buf, end - buf);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    preValue();
    os << number;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    preValue();
    os << number;
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned number)
{
    return value(static_cast<std::uint64_t>(number));
}

JsonWriter &
JsonWriter::null()
{
    preValue();
    os << "null";
    return *this;
}

/** Recursive-descent parser over an in-memory document (a friend of
 *  JsonValue, so it stays out of the public header). */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text_arg) : text(text_arg) {}

    JsonValue
    document()
    {
        JsonValue value = parseValue();
        skipSpace();
        fatalIf(pos != text.size(), "JSON: trailing garbage at byte ",
                pos);
        return value;
    }

  private:
    static constexpr int maxDepth = 64;

    [[noreturn]] void
    fail(const char *what)
    {
        fatal("JSON: ", what, " at byte ", pos);
    }

    void
    skipSpace()
    {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\t'
                   || text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            fail("invalid literal");
        pos += word.size();
    }

    /** Append one \uXXXX escape (incl. surrogate pairs) as UTF-8. */
    void
    unicodeEscape(std::string &out)
    {
        const auto hex4 = [&]() -> unsigned {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
                const char c = peek();
                ++pos;
                code <<= 4;
                if (c >= '0' && c <= '9')
                    code |= static_cast<unsigned>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    code |= static_cast<unsigned>(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F')
                    code |= static_cast<unsigned>(c - 'A' + 10);
                else
                    fail("bad \\u escape");
            }
            return code;
        };
        unsigned code = hex4();
        if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (!consume('\\') || !consume('u'))
                fail("unpaired surrogate");
            const unsigned low = hex4();
            if (low < 0xdc00 || low > 0xdfff)
                fail("unpaired surrogate");
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
        } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("unpaired surrogate");
        }
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = peek();
            ++pos;
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u':
                unicodeEscape(out);
                break;
              default:
                fail("bad escape");
            }
        }
    }

    std::string
    parseNumberToken()
    {
        const std::size_t start = pos;
        consume('-');
        if (!consume('0')) {
            if (peek() < '1' || peek() > '9')
                fail("bad number");
            while (pos < text.size() && text[pos] >= '0'
                   && text[pos] <= '9')
                ++pos;
        }
        if (consume('.')) {
            if (peek() < '0' || peek() > '9')
                fail("bad number");
            while (pos < text.size() && text[pos] >= '0'
                   && text[pos] <= '9')
                ++pos;
        }
        if (pos < text.size()
            && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size()
                && (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (peek() < '0' || peek() > '9')
                fail("bad number");
            while (pos < text.size() && text[pos] >= '0'
                   && text[pos] <= '9')
                ++pos;
        }
        return std::string(text.substr(start, pos - start));
    }

    JsonValue
    parseValue()
    {
        fatalIf(depth >= maxDepth, "JSON: nesting deeper than ",
                maxDepth, " levels");
        skipSpace();
        JsonValue value;
        switch (peek()) {
          case '{': {
            ++depth;
            ++pos;
            value.kind_ = JsonValue::Kind::Object;
            skipSpace();
            if (!consume('}')) {
                do {
                    skipSpace();
                    std::string name = parseString();
                    skipSpace();
                    expect(':');
                    value.object_.emplace_back(std::move(name),
                                               parseValue());
                    skipSpace();
                } while (consume(','));
                expect('}');
            }
            --depth;
            break;
          }
          case '[': {
            ++depth;
            ++pos;
            value.kind_ = JsonValue::Kind::Array;
            skipSpace();
            if (!consume(']')) {
                do {
                    value.array_.push_back(parseValue());
                    skipSpace();
                } while (consume(','));
                expect(']');
            }
            --depth;
            break;
          }
          case '"':
            value.kind_ = JsonValue::Kind::String;
            value.scalar_ = parseString();
            break;
          case 't':
            literal("true");
            value.kind_ = JsonValue::Kind::Bool;
            value.bool_ = true;
            break;
          case 'f':
            literal("false");
            value.kind_ = JsonValue::Kind::Bool;
            break;
          case 'n':
            literal("null");
            break;
          default:
            value.kind_ = JsonValue::Kind::Number;
            value.scalar_ = parseNumberToken();
            break;
        }
        return value;
    }

    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;
};

JsonValue
JsonValue::parse(std::string_view text)
{
    return JsonParser(text).document();
}

bool
JsonValue::asBool() const
{
    fatalIf(kind_ != Kind::Bool, "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    fatalIf(kind_ != Kind::Number, "JSON value is not a number");
    double out = 0.0;
    const char *begin = scalar_.data();
    const char *end = begin + scalar_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    fatalIf(ec != std::errc() || ptr != end,
            "JSON number '", scalar_, "' is out of double range");
    return out;
}

std::uint64_t
JsonValue::asU64() const
{
    fatalIf(kind_ != Kind::Number, "JSON value is not a number");
    std::uint64_t out = 0;
    const char *begin = scalar_.data();
    const char *end = begin + scalar_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    fatalIf(ec != std::errc() || ptr != end,
            "JSON number '", scalar_,
            "' is not a non-negative 64-bit integer");
    return out;
}

const std::string &
JsonValue::asString() const
{
    fatalIf(kind_ != Kind::String, "JSON value is not a string");
    return scalar_;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    fatalIf(kind_ != Kind::Array, "JSON value is not an array");
    fatalIf(index >= array_.size(), "JSON array index ", index,
            " out of range (size ", array_.size(), ")");
    return array_[index];
}

const JsonValue *
JsonValue::find(std::string_view name) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[key, value] : object_) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view name) const
{
    const JsonValue *value = find(name);
    fatalIf(value == nullptr, "JSON object has no member '",
            std::string(name), "'");
    return *value;
}

} // namespace dirsim
