/**
 * @file
 * Small bit-manipulation helpers used for block addressing and
 * directory entry encodings.
 */

#ifndef DIRSIM_COMMON_BITOPS_HH
#define DIRSIM_COMMON_BITOPS_HH

#include <cstdint>

#include "common/types.hh"

namespace dirsim
{

/** @return true iff @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/**
 * Floor of the base-2 logarithm.
 *
 * @param value must be non-zero (checked by the .cc implementation of
 *              the non-constexpr helpers; here the caller guarantees it)
 */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** Ceiling of the base-2 logarithm; ceilLog2(1) == 0. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return floorLog2(value) + (isPowerOfTwo(value) ? 0 : 1);
}

/**
 * The block number containing a byte address.
 *
 * @param addr byte address
 * @param block_bytes block size in bytes; must be a power of two
 */
constexpr BlockNum
blockNumber(Addr addr, unsigned block_bytes)
{
    return addr >> floorLog2(block_bytes);
}

/** First byte address of a block. */
constexpr Addr
blockBase(BlockNum block, unsigned block_bytes)
{
    return block << floorLog2(block_bytes);
}

/** Round @p addr down to its block boundary. */
constexpr Addr
alignToBlock(Addr addr, unsigned block_bytes)
{
    return addr & ~static_cast<Addr>(block_bytes - 1);
}

/**
 * Validate a block size, throwing UsageError when it is unusable.
 *
 * @param block_bytes candidate block size in bytes
 */
void checkBlockSize(unsigned block_bytes);

} // namespace dirsim

#endif // DIRSIM_COMMON_BITOPS_HH
