#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace dirsim
{

TextTable::TextTable(std::vector<std::string> header_arg)
    : header(std::move(header_arg))
{
    fatalIf(header.empty(), "TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != header.size(),
            "TextTable row has ", cells.size(), " cells; expected ",
            header.size());
    body.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    body.emplace_back(); // sentinel: empty row renders as a rule
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::size_t total_width = 0;
    for (std::size_t w : widths)
        total_width += w;
    total_width += 2 * (widths.size() - 1);

    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                os << "  ";
            if (c == 0)
                os << std::left << std::setw(
                    static_cast<int>(widths[c])) << row[c];
            else
                os << std::right << std::setw(
                    static_cast<int>(widths[c])) << row[c];
        }
        os << '\n';
    };

    emit(header);
    os << std::string(total_width, '-') << '\n';
    for (const auto &row : body) {
        if (row.empty())
            os << std::string(total_width, '-') << '\n';
        else
            emit(row);
    }
}

std::string
TextTable::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string
TextTable::fixed(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

std::string
TextTable::pct(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value << '%';
    return os.str();
}

std::string
TextTable::grouped(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int seen = 0;
    for (std::size_t i = digits.size(); i-- > 0;) {
        out.push_back(digits[i]);
        if (++seen == 3 && i != 0) {
            out.push_back(',');
            seen = 0;
        }
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
asciiBar(double value, double maximum, int width)
{
    if (maximum <= 0.0 || value <= 0.0 || width <= 0)
        return "";
    const double clamped = std::min(value, maximum);
    const int n = static_cast<int>(
        std::round(clamped / maximum * width));
    return std::string(static_cast<std::size_t>(std::max(n, 1)), '#');
}

} // namespace dirsim
