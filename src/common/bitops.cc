#include "common/bitops.hh"

#include "common/logging.hh"

namespace dirsim
{

void
checkBlockSize(unsigned block_bytes)
{
    fatalIf(block_bytes < busWordBytes,
            "block size ", block_bytes, " is smaller than one bus word (",
            busWordBytes, " bytes)");
    fatalIf(!isPowerOfTwo(block_bytes),
            "block size ", block_bytes, " is not a power of two");
}

} // namespace dirsim
