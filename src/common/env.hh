/**
 * @file
 * Environment-variable parsing shared by the DIRSIM_* configuration
 * knobs (sim/suite.hh, sim/simulator.hh, sim/runner.hh).
 */

#ifndef DIRSIM_COMMON_ENV_HH
#define DIRSIM_COMMON_ENV_HH

#include <cstdint>
#include <optional>
#include <string>

namespace dirsim
{

/** Raw value of @p name; nullopt when unset or empty. */
std::optional<std::string> envString(const char *name);

/**
 * Unsigned integer override: @p fallback when @p name is unset or
 * empty, its parsed value otherwise.
 *
 * @throws UsageError when the value is not a number
 */
std::uint64_t envU64(const char *name, std::uint64_t fallback);

/** envU64() narrowed to unsigned; rejects values that do not fit. */
unsigned envUnsigned(const char *name, unsigned fallback);

} // namespace dirsim

#endif // DIRSIM_COMMON_ENV_HH
