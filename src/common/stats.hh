/**
 * @file
 * Lightweight named-counter support for simulator statistics.
 */

#ifndef DIRSIM_COMMON_STATS_HH
#define DIRSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace dirsim
{

/**
 * An ordered collection of named 64-bit counters.
 *
 * Used where a fixed enum (protocols/events.hh) would be too rigid,
 * e.g. per-workload generator diagnostics. Counters are created on
 * first use and iterate in name order for stable output.
 */
class CounterSet
{
  public:
    /** Add @p delta to counter @p name, creating it at zero. */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** Current value (0 if never touched). */
    std::uint64_t get(const std::string &name) const;

    /** True if the counter was ever created. */
    bool has(const std::string &name) const;

    /** Merge all counters of @p other into this set. Merging a set
     *  into itself is a no-op (the values are already here). */
    void merge(const CounterSet &other);

    /** Ratio get(numer) / get(denom); 0 when the numerator counter
     *  does not exist or the denominator is 0. */
    double ratio(const std::string &numer, const std::string &denom) const;

    /** Reset every counter to zero (names are retained). */
    void clear();

    /** Name-ordered iteration support. */
    auto begin() const { return values.begin(); }
    auto end() const { return values.end(); }
    std::size_t size() const { return values.size(); }

  private:
    std::map<std::string, std::uint64_t> values;
};

/** Percentage helper: 100 * part / whole, 0 when whole == 0. */
double percent(std::uint64_t part, std::uint64_t whole);

/** Safe ratio helper: part / whole, 0 when whole == 0. */
double safeRatio(double part, double whole);

} // namespace dirsim

#endif // DIRSIM_COMMON_STATS_HH
