/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * dirsim is a library, so instead of aborting the process, panic() and
 * fatal() throw typed exceptions that callers (and tests) can observe:
 *
 *  - panic()  -> SimulationError subclass LogicError: an internal
 *               invariant was violated (a dirsim bug).
 *  - fatal()  -> SimulationError subclass UsageError: the caller
 *               supplied an impossible configuration or malformed
 *               input (the user's fault).
 *  - warn()   -> message on stderr, execution continues.
 *  - inform() -> status message on stderr, execution continues.
 */

#ifndef DIRSIM_COMMON_LOGGING_HH
#define DIRSIM_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace dirsim
{

/** Root of the dirsim error hierarchy. */
class SimulationError : public std::runtime_error
{
  public:
    explicit SimulationError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Thrown by panic(): an internal dirsim invariant failed. */
class LogicError : public SimulationError
{
  public:
    explicit LogicError(const std::string &what_arg)
        : SimulationError(what_arg)
    {}
};

/** Thrown by fatal(): bad configuration or malformed input. */
class UsageError : public SimulationError
{
  public:
    explicit UsageError(const std::string &what_arg)
        : SimulationError(what_arg)
    {}
};

namespace detail
{

/** Fold a parameter pack into one message string via operator<<. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit a tagged diagnostic line on stderr. */
void emitDiagnostic(const char *tag, const std::string &message);

} // namespace detail

/**
 * Report an internal invariant violation.
 *
 * @param args stream-formatted message fragments
 * @throws LogicError always
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw LogicError(detail::formatMessage(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user/configuration error.
 *
 * @param args stream-formatted message fragments
 * @throws UsageError always
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw UsageError(detail::formatMessage(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition on stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitDiagnostic(
        "warn", detail::formatMessage(std::forward<Args>(args)...));
}

/** Report normal operating status on stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitDiagnostic(
        "info", detail::formatMessage(std::forward<Args>(args)...));
}

/**
 * panic() unless a condition holds.
 *
 * @param condition the invariant that must be true
 * @param args stream-formatted message fragments
 */
template <typename... Args>
void
panicIfNot(bool condition, Args &&...args)
{
    if (!condition)
        panic(std::forward<Args>(args)...);
}

/**
 * fatal() if a condition holds.
 *
 * @param condition the user error to reject
 * @param args stream-formatted message fragments
 */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace dirsim

#endif // DIRSIM_COMMON_LOGGING_HH
