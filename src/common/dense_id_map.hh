/**
 * @file
 * DenseIdMap: append-only assignment of dense 32-bit ids to 64-bit
 * keys in order of first appearance.
 */

#ifndef DIRSIM_COMMON_DENSE_ID_MAP_HH
#define DIRSIM_COMMON_DENSE_ID_MAP_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace dirsim
{

/**
 * The decode pass (sim/decoded.cc) calls insert-or-find once per
 * trace record to densify block numbers and cache keys, so the map it
 * uses *is* the decode hot path. std::unordered_map spends most of
 * that time in node allocation and bucket chasing; this table is a
 * flat open-addressed array with linear probing, a power-of-two
 * capacity grown at 50% load, and a multiplicative hash that spreads
 * the near-sequential block numbers traces produce. Ids are handed
 * out as 0, 1, 2, ... by first appearance — exactly the densification
 * contract — and the map never erases.
 */
class DenseIdMap
{
  public:
    DenseIdMap() { slots.resize(initialCapacity); }

    /**
     * The id for @p key, assigning `size()` on first sight.
     *
     * @return the id and whether this call inserted it
     */
    std::pair<std::uint32_t, bool> idFor(std::uint64_t key)
    {
        if ((count + 1) * 2 > slots.size())
            grow();
        Slot &slot = probe(slots, key);
        if (slot.id != emptySlot)
            return {slot.id, false};
        if (count == maxIds) [[unlikely]]
            panic("DenseIdMap: more than 2^32 - 1 distinct keys");
        slot.key = key;
        slot.id = static_cast<std::uint32_t>(count++);
        return {slot.id, true};
    }

    /** Distinct keys seen so far. */
    std::size_t size() const { return count; }

  private:
    /** An unoccupied slot; ids stop one short of it (maxIds). */
    static constexpr std::uint32_t emptySlot = 0xffffffffu;
    static constexpr std::size_t maxIds = emptySlot;
    static constexpr std::size_t initialCapacity = 1024;

    struct Slot
    {
        std::uint64_t key = 0;
        std::uint32_t id = emptySlot;
    };

    /** The slot holding @p key, or the free slot it belongs in. */
    static Slot &probe(std::vector<Slot> &table, std::uint64_t key)
    {
        const std::size_t mask = table.size() - 1;
        std::size_t index =
            static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull)
                                     >> 32)
            & mask;
        while (table[index].id != emptySlot
               && table[index].key != key)
            index = (index + 1) & mask;
        return table[index];
    }

    void grow()
    {
        std::vector<Slot> next(slots.size() * 2);
        for (const Slot &slot : slots) {
            if (slot.id != emptySlot)
                probe(next, slot.key) = slot;
        }
        slots.swap(next);
    }

    std::vector<Slot> slots;
    std::size_t count = 0;
};

} // namespace dirsim

#endif // DIRSIM_COMMON_DENSE_ID_MAP_HH
