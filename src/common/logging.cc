#include "common/logging.hh"

#include <iostream>

namespace dirsim
{
namespace detail
{

void
emitDiagnostic(const char *tag, const std::string &message)
{
    std::cerr << "dirsim: " << tag << ": " << message << '\n';
}

} // namespace detail
} // namespace dirsim
