#include "common/logging.hh"

#include <string_view>

#include "common/log.hh"

namespace dirsim
{
namespace detail
{

void
emitDiagnostic(const char *tag, const std::string &message)
{
    // warn()/inform() predate the structured logger; route them
    // through it so every diagnostic a long-lived service emits is
    // one parseable JSONL line (common/log.hh) honoring
    // DIRSIM_LOG_LEVEL / DIRSIM_LOG_FILE.
    const LogLevel level = std::string_view(tag) == "warn"
        ? LogLevel::Warn
        : LogLevel::Info;
    logEvent(level, std::string("dirsim.") + tag)
        .field("msg", message);
}

} // namespace detail
} // namespace dirsim
