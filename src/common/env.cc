#include "common/env.hh"

#include <cstdlib>
#include <limits>

#include "common/logging.hh"

namespace dirsim
{

std::optional<std::string>
envString(const char *name)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return std::nullopt;
    return std::string(value);
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const auto value = envString(name);
    if (!value)
        return fallback;
    // std::stoull skips leading whitespace and silently wraps
    // negative values ("-1" -> 2^64-1), so insist on pure digits
    // before parsing.
    fatalIf(value->find_first_not_of("0123456789")
                != std::string::npos,
            "environment variable ", name, "='", *value,
            "' is not a number");
    try {
        std::size_t consumed = 0;
        const std::uint64_t parsed = std::stoull(*value, &consumed);
        fatalIf(consumed != value->size(),
                "environment variable ", name, "='", *value,
                "' is not a number");
        return parsed;
    } catch (const SimulationError &) {
        throw;
    } catch (const std::exception &) {
        fatal("environment variable ", name, "='", *value,
              "' is not a number");
    }
}

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const std::uint64_t value = envU64(name, fallback);
    fatalIf(value > std::numeric_limits<unsigned>::max(),
            "environment variable ", name, "=", value,
            " is out of range");
    return static_cast<unsigned>(value);
}

} // namespace dirsim
