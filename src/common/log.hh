/**
 * @file
 * Leveled structured (JSONL) logging for long-lived dirsim services.
 *
 * common/logging.hh covers *errors* (typed exceptions) plus the
 * legacy warn()/inform() stderr lines; this header covers *events*:
 * a daemon that serves traffic for days needs machine-parseable
 * diagnostics, not ad-hoc prose. Every emitted line is one JSON
 * object:
 *
 *   {"ts":"2026-08-08T12:34:56Z","mono_ns":123456789,
 *    "level":"info","event":"serve.run.finished",
 *    "run":3,"state":"done","wall_seconds":1.25}
 *
 * "ts" is wall-clock UTC (for humans and cross-host correlation);
 * "mono_ns" is the PhaseTimer::nowNs() monotonic clock every other
 * dirsim timestamp uses, so log lines line up with run journals and
 * Chrome traces.
 *
 * Usage is a fluent builder that emits on destruction:
 *
 *   logEvent(LogLevel::Info, "serve.start")
 *       .field("port", port).field("discipline", name);
 *
 * A disabled level costs one atomic load; field formatting is
 * skipped entirely. The sink is stderr by default, or an append-mode
 * file; configuration comes from DIRSIM_LOG_LEVEL (debug|info|warn|
 * error|off, default info) and DIRSIM_LOG_FILE (path, default
 * stderr). Lines are written atomically under one mutex, so
 * concurrent threads never interleave.
 */

#ifndef DIRSIM_COMMON_LOG_HH
#define DIRSIM_COMMON_LOG_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace dirsim
{

/** Log severity, least to most severe. Off disables everything. */
enum class LogLevel : unsigned
{
    Debug = 0,
    Info,
    Warn,
    Error,
    Off,
};

/** Lower-case level name ("debug", "info", "warn", "error", "off"). */
const char *toString(LogLevel level);

/** Parse a level name. @throws UsageError on unknown names */
LogLevel parseLogLevel(std::string_view text);

/**
 * The process-wide structured log sink.
 *
 * Thread-safe. configure() may be called at any time (a daemon
 * re-pointing the sink at a file); emitted lines always go to the
 * sink configured at emit time.
 */
class StructuredLog
{
  public:
    /** The singleton, lazily configured from DIRSIM_LOG_LEVEL /
     *  DIRSIM_LOG_FILE on first use. */
    static StructuredLog &global();

    /** True when @p level would be emitted (cheap: one atomic
     *  load). */
    bool
    enabled(LogLevel level) const
    {
        return static_cast<unsigned>(level)
            >= threshold.load(std::memory_order_relaxed)
            && level != LogLevel::Off;
    }

    LogLevel
    level() const
    {
        return static_cast<LogLevel>(
            threshold.load(std::memory_order_relaxed));
    }

    /** Set the emission threshold. */
    void setLevel(LogLevel level);

    /**
     * Send lines to @p path (append mode; created if absent). An
     * empty path restores stderr.
     *
     * @throws UsageError when the file cannot be opened
     */
    void setFile(const std::string &path);

    /** The active sink path ("" = stderr). */
    std::string file() const;

    /** Re-read DIRSIM_LOG_LEVEL / DIRSIM_LOG_FILE. @throws
     *  UsageError on malformed values */
    void configureFromEnvironment();

    /** Write one complete line (no trailing newline) atomically. */
    void writeLine(const std::string &line);

  private:
    StructuredLog();

    std::atomic<unsigned> threshold{
        static_cast<unsigned>(LogLevel::Info)};
    mutable std::mutex sinkMutex;
    std::unique_ptr<std::ostream> owned; ///< file sink when set
    std::string ownedPath;
};

/**
 * One structured log line under construction. Emits on destruction;
 * all field formatting is skipped when the level is disabled.
 */
class LogEvent
{
  public:
    LogEvent(LogLevel level_arg, std::string_view event);
    ~LogEvent();

    LogEvent(const LogEvent &) = delete;
    LogEvent &operator=(const LogEvent &) = delete;

    LogEvent &field(std::string_view key, std::string_view value);
    LogEvent &field(std::string_view key, const char *value);
    LogEvent &field(std::string_view key, std::uint64_t value);
    LogEvent &field(std::string_view key, std::int64_t value);
    LogEvent &field(std::string_view key, unsigned value);
    LogEvent &field(std::string_view key, int value);
    LogEvent &field(std::string_view key, double value);
    LogEvent &field(std::string_view key, bool value);

    bool live() const { return active; }

  private:
    void keyPrefix(std::string_view key);

    bool active;
    std::ostringstream line;
};

/** Begin a structured log line (emitted when the returned builder
 *  goes out of scope). */
inline LogEvent
logEvent(LogLevel level, std::string_view event)
{
    return LogEvent(level, event);
}

/** Wall-clock UTC "2026-08-08T12:34:56Z" (shared with manifests). */
std::string logTimestampUtc();

} // namespace dirsim

#endif // DIRSIM_COMMON_LOG_HH
