/**
 * @file
 * Decode-once reference streams.
 *
 * A grid run feeds the same trace to many schemes. The raw trace is
 * the wrong representation to replay: every cell re-hashes addresses
 * into block numbers, re-discovers first references, and re-maps pids
 * onto caches — identical work per cell. DecodedTrace performs that
 * work exactly once: a single pass over a Trace or TraceSource emits
 * a compact structure-of-arrays record stream (op kind + first-ref
 * flag, densified block index, dense cache id) plus the exact block,
 * cache, and reference counts a simulation needs.
 *
 * The densified block index is the key enabler: with blocks numbered
 * 0..blockCount-1 in order of first appearance, the engine's sparse
 * per-block hash maps become flat arrays
 * (CoherenceProtocol::reserveBlocks), so the per-reference hot path
 * performs no hashing at all. denseToBlock[] retains the original
 * block numbers for trace-sink labeling and for finite-cache runs
 * (whose set indexing needs real addresses).
 *
 * simulateTrace(DecodedTrace, ...) is bit-identical to the raw-trace
 * overloads by construction: it executes the same statement sequence
 * with precomputed operands (golden-tested in tests/sim/decoded_*).
 */

#ifndef DIRSIM_SIM_DECODED_HH
#define DIRSIM_SIM_DECODED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace dirsim
{

/** DecodedTrace::ops encoding: low bits = kind, bit 4 = first ref. */
constexpr std::uint8_t decodedOpInstr = 0;
constexpr std::uint8_t decodedOpRead = 1;
constexpr std::uint8_t decodedOpWrite = 2;
constexpr std::uint8_t decodedOpKindMask = 0x03;
constexpr std::uint8_t decodedOpFirstRef = 0x10;

/**
 * A trace decoded into simulation operands (see the file comment).
 *
 * The three record arrays are index-aligned with the source record
 * order; instruction rows carry zeros in blocks[]/caches[] so the
 * arrays never need separate cursors. The struct is immutable after
 * decoding and safe to share read-only across concurrent simulations
 * (the runner decodes each trace once per grid).
 */
struct DecodedTrace
{
    std::string name; ///< workload name (trace/file header)

    /** decodedOp* kind plus the decodedOpFirstRef flag. */
    std::vector<std::uint8_t> ops;
    /** Densified block index (first-appearance order over data refs). */
    std::vector<std::uint32_t> blocks;
    /** Dense cache id (first-appearance order over data refs). */
    std::vector<CacheId> caches;
    /** Dense block index -> original block number. */
    std::vector<BlockNum> denseToBlock;

    /** The geometry the stream was decoded under. */
    unsigned blockBytes = 0;
    SharingModel sharing = SharingModel::ByProcess;

    /**
     * Caches a simulation of this trace must build: distinct pids
     * over all records (ByProcess) or observed CPUs, falling back to
     * the header CPU count (ByProcessor) — exactly scanTraceFile()'s
     * sizing rule.
     */
    unsigned cachesNeeded = 0;
    /**
     * Distinct pids/CPUs over data records only — the cache ids the
     * stream actually uses (<= cachesNeeded; instruction-only
     * processes consume no cache).
     */
    unsigned cachesUsed = 0;
    /** Data references in the stream (reads + writes). */
    std::uint64_t dataRefs = 0;

    /** Total records (instructions included). */
    std::uint64_t numRecords() const { return ops.size(); }

    /** Distinct blocks the data references touch. */
    std::uint32_t blockCount() const
    {
        return static_cast<std::uint32_t>(denseToBlock.size());
    }

    /** Heap bytes held by the record arrays (for diagnostics). */
    std::uint64_t memoryBytes() const;
};

/**
 * The DIRSIM_DECODE toggle: true (the default) lets the runner and
 * simulateTraceFile() use the decode-once pipeline; DIRSIM_DECODE=0
 * forces the legacy sparse/streaming path (bounded memory, and the
 * reference implementation the equality tests compare against).
 */
bool decodeEnabled();

/**
 * Decode an in-memory trace under @p block_bytes / @p sharing.
 * The trace may be empty (simulating the result then fails exactly
 * like simulating the empty trace itself).
 */
DecodedTrace decodeTrace(const Trace &trace, unsigned block_bytes,
                         SharingModel sharing);

/** Streaming variant: decode @p source to exhaustion. */
DecodedTrace decodeTrace(TraceSource &source, unsigned block_bytes,
                         SharingModel sharing);

/**
 * Decode a trace file in a single streaming read — this both sizes
 * the coherence domain and captures the records, so callers that
 * previously scanned and then re-read the file (simulateTraceFile,
 * ExperimentRunner::runFiles) touch the file exactly once.
 */
DecodedTrace decodeTraceFile(const std::string &path,
                             unsigned block_bytes,
                             SharingModel sharing);

/**
 * Run a decoded stream through @p protocol.
 *
 * With infinite caches the engine is switched to dense block arenas
 * (CoherenceProtocol::reserveBlocks) and fed densified indices — the
 * hash-free hot path. Finite-cache protocols are fed the original
 * block numbers through the sparse engine, because replacement
 * depends on real addresses; they still gain the decode (no address
 * hashing, no first-ref set, no pid mapping per reference).
 *
 * The SimResult is bit-identical to the raw-trace overloads for the
 * same records and config. config.blockBytes and config.sharing must
 * equal the decode-time values (fatal otherwise: the densification
 * would not match).
 *
 * @throws UsageError as simulateTrace(Trace, ...) does for
 *         finite-cache misconfiguration
 */
SimResult simulateTrace(const DecodedTrace &decoded,
                        CoherenceProtocol &protocol,
                        const SimConfig &config = {});

/**
 * Build the scheme sized from the decoded stream (honoring
 * SimConfig::finiteCache), then simulate — the decoded counterpart
 * of simulateTrace(Trace, SchemeSpec, ...).
 */
SimResult simulateTrace(const DecodedTrace &decoded,
                        const SchemeSpec &scheme,
                        const SimConfig &config = {});

/** Legacy string-named convenience for the spec overload; kept as a
 *  one-line wrapper. Prefer runJob({TraceRef::of(decoded),
 *  parseScheme(name), config}) — sim/job.hh, docs/api.md. */
SimResult simulateTrace(const DecodedTrace &decoded,
                        const std::string &scheme,
                        const SimConfig &config = {});

} // namespace dirsim

#endif // DIRSIM_SIM_DECODED_HH
