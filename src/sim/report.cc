#include "sim/report.hh"

#include <ostream>

#include "common/logging.hh"

namespace dirsim
{

namespace
{

/** Paper Table 4 layout: which rows print for which schemes. */
bool
cellApplies(EventType event, const std::string &scheme)
{
    using E = EventType;
    switch (event) {
      case E::RmBlkCln:
      case E::RmBlkDrty:
      case E::WmBlkCln:
      case E::WmBlkDrty:
        return scheme != "WTI";
      case E::WhBlkCln:
      case E::WhBlkDrty:
        return scheme != "Dragon" && scheme != "WTI";
      case E::WhDistrib:
      case E::WhLocal:
        return scheme == "Dragon";
      default:
        return true;
    }
}

} // namespace

TextTable
eventFrequencyTable(const std::vector<SchemeResults> &grid,
                    bool paper_layout)
{
    fatalIf(grid.empty(), "no results to report");
    std::vector<std::string> header{"Event"};
    for (const auto &scheme : grid)
        header.push_back(scheme.scheme);
    TextTable table(std::move(header));

    std::vector<EventFreqs> freqs;
    freqs.reserve(grid.size());
    for (const auto &scheme : grid)
        freqs.push_back(scheme.averagedFreqs());

    for (std::size_t e = 0; e < numEventTypes; ++e) {
        const auto event = static_cast<EventType>(e);
        std::vector<std::string> row{toString(event)};
        for (std::size_t s = 0; s < grid.size(); ++s) {
            if (paper_layout
                && !cellApplies(event, grid[s].scheme)) {
                row.push_back("-");
            } else {
                row.push_back(TextTable::fixed(
                    100.0 * freqs[s].get(event), 2));
            }
        }
        table.addRow(std::move(row));
    }
    return table;
}

TextTable
costBreakdownTable(const std::vector<SchemeResults> &grid,
                   const BusCosts &costs)
{
    fatalIf(grid.empty(), "no results to report");
    std::vector<std::string> header{"Access type"};
    for (const auto &scheme : grid)
        header.push_back(scheme.scheme);
    TextTable table(std::move(header));

    std::vector<CycleBreakdown> breakdowns;
    breakdowns.reserve(grid.size());
    for (const auto &scheme : grid)
        breakdowns.push_back(scheme.averagedCost(costs));

    const auto add_row = [&](const char *label, auto accessor) {
        std::vector<std::string> row{label};
        for (const auto &breakdown : breakdowns)
            row.push_back(
                TextTable::fixed(accessor(breakdown), 4));
        table.addRow(std::move(row));
    };
    add_row("invalidate", [](const CycleBreakdown &b) {
        return b.invalidate;
    });
    add_row("write-back", [](const CycleBreakdown &b) {
        return b.writeBack;
    });
    add_row("mem access", [](const CycleBreakdown &b) {
        return b.memAccess;
    });
    add_row("wt or wup", [](const CycleBreakdown &b) {
        return b.writeThroughOrUpdate;
    });
    add_row("dir access", [](const CycleBreakdown &b) {
        return b.dirAccess;
    });
    table.addRule();
    add_row("cumulative", [](const CycleBreakdown &b) {
        return b.total();
    });
    return table;
}

TextTable
invalidationHistogramTable(const SchemeResults &scheme)
{
    std::vector<std::string> header{"other holders"};
    for (const auto &result : scheme.perTrace)
        header.push_back(result.traceName);
    header.push_back("merged");
    header.push_back("bar");
    TextTable table(std::move(header));

    const Histogram merged = scheme.mergedCleanWriteHolders();
    for (std::uint64_t v = 0; v <= merged.maxValue(); ++v) {
        std::vector<std::string> row{std::to_string(v)};
        for (const auto &result : scheme.perTrace)
            row.push_back(TextTable::fixed(
                100.0 * result.cleanWriteHolders.fraction(v), 2));
        row.push_back(
            TextTable::fixed(100.0 * merged.fraction(v), 2));
        row.push_back(asciiBar(merged.fraction(v), 1.0, 32));
        table.addRow(std::move(row));
    }
    return table;
}

TextTable
busCyclesTable(const std::vector<SchemeResults> &grid, bool per_trace)
{
    fatalIf(grid.empty(), "no results to report");
    const BusCosts pipe = paperPipelinedCosts();
    const BusCosts nonpipe = paperNonPipelinedCosts();

    if (!per_trace) {
        TextTable table({"scheme", "pipelined", "non-pipelined",
                         "txns/ref"});
        for (const auto &scheme : grid) {
            const CycleBreakdown cost = scheme.averagedCost(pipe);
            table.addRow({
                scheme.scheme,
                TextTable::fixed(cost.total(), 4),
                TextTable::fixed(
                    scheme.averagedCost(nonpipe).total(), 4),
                TextTable::fixed(cost.transactions, 4),
            });
        }
        return table;
    }

    TextTable table({"scheme", "trace", "pipelined",
                     "non-pipelined"});
    for (const auto &scheme : grid) {
        for (const auto &result : scheme.perTrace) {
            table.addRow({
                scheme.scheme,
                result.traceName,
                TextTable::fixed(result.cost(pipe).total(), 4),
                TextTable::fixed(result.cost(nonpipe).total(), 4),
            });
        }
    }
    return table;
}

void
printRunReport(std::ostream &os, const SimResult &result)
{
    os << "scheme " << result.scheme << " on '" << result.traceName
       << "' (" << TextTable::grouped(result.totalRefs)
       << " references, " << result.numCaches << " caches)\n\n";

    os << "event frequencies (% of all references):\n";
    TextTable events({"event", "%"});
    for (std::size_t e = 0; e < numEventTypes; ++e) {
        const auto event = static_cast<EventType>(e);
        if (result.events.count(event) == 0)
            continue;
        events.addRow({toString(event),
                       TextTable::fixed(
                           result.events.percentOfRefs(event), 3)});
    }
    events.print(os);

    os << "\nbus cycles per memory reference:\n";
    TextTable costs_table({"bus", "dir", "inv", "wb", "mem", "wt/wup",
                           "total", "cyc/txn"});
    for (const BusKind kind :
         {BusKind::Pipelined, BusKind::NonPipelined}) {
        const BusCosts bus = deriveBusCosts(paperBusTiming(), kind);
        const CycleBreakdown b = result.cost(bus);
        costs_table.addRow({
            toString(kind),
            TextTable::fixed(b.dirAccess, 4),
            TextTable::fixed(b.invalidate, 4),
            TextTable::fixed(b.writeBack, 4),
            TextTable::fixed(b.memAccess, 4),
            TextTable::fixed(b.writeThroughOrUpdate, 4),
            TextTable::fixed(b.total(), 4),
            TextTable::fixed(b.cyclesPerTransaction(), 2),
        });
    }
    costs_table.print(os);

    if (result.cleanWriteHolders.samples() > 0) {
        os << "\nwrites to previously-clean blocks: "
           << TextTable::grouped(result.cleanWriteHolders.samples())
           << ", share invalidating <=1 remote copy "
           << TextTable::fixed(
                  result.cleanWriteHolders.fractionAtMost(1), 3)
           << '\n';
    }
}

} // namespace dirsim
