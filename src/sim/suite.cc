#include "sim/suite.hh"

#include "common/env.hh"
#include "common/logging.hh"
#include "tracegen/generator.hh"

namespace dirsim
{

SuiteParams
SuiteParams::fromEnvironment()
{
    SuiteParams params;
    params.refsPerTrace =
        envU64("DIRSIM_SUITE_REFS", params.refsPerTrace);
    params.seed = envU64("DIRSIM_SUITE_SEED", params.seed);
    return params;
}

std::vector<Trace>
standardSuite(const SuiteParams &params)
{
    fatalIf(params.refsPerTrace == 0, "suite traces cannot be empty");
    std::vector<Trace> traces;
    traces.reserve(3);
    // Distinct derived seeds keep the workloads' random streams
    // independent of each other.
    traces.push_back(
        generateTrace("pops", params.refsPerTrace, params.seed * 3 + 1));
    traces.push_back(
        generateTrace("thor", params.refsPerTrace, params.seed * 3 + 2));
    traces.push_back(
        generateTrace("pero", params.refsPerTrace, params.seed * 3 + 3));
    return traces;
}

} // namespace dirsim
