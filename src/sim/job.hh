/**
 * @file
 * The composable simulation entry point.
 *
 * Every way of running a simulation — an in-memory Trace, a decoded
 * stream, a trace file; one scheme or a whole grid — is one shape
 * here: a SimJob (trace reference + scheme + SimConfig) expanded by
 * buildPlan() into a SimPlan of executable cells, each run by
 * runPlannedCell(). All the legacy entry points (the scheme-building
 * simulateTrace()/simulateTraceFile() overloads, runGrid(),
 * ExperimentRunner::run()/runFiles()) are thin wrappers over this
 * engine, so they stay bit-identical to each other by construction.
 *
 * The engine adds two capabilities the legacy names expose through
 * options:
 *
 *  - **Block-sharded cells** (ShardPlan): a decoded cell's dense
 *    block indices are partitioned into K shards simulated on
 *    separate workers against per-shard protocol arenas, then merged.
 *    Per-block directory state never crosses blocks and every counter
 *    is additive, so the merged SimResult is bit-identical to the
 *    sequential cell (asserted by tests/sim/shard_test.cc).
 *    Finite-cache cells fall back to one shard: set replacement
 *    couples co-resident blocks.
 *
 *  - **A content-addressed cell cache** (CellCache): results keyed by
 *    FNV-1a 64 over (trace checksum, canonical scheme name, SimConfig,
 *    engine schema version). A warm cache replays a whole grid with
 *    zero simulated references. The file-backed implementation lives
 *    in obs/cell_cache.hh (DIRSIM_CACHE_DIR).
 */

#ifndef DIRSIM_SIM_JOB_HH
#define DIRSIM_SIM_JOB_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/decoded.hh"
#include "sim/simulator.hh"

namespace dirsim
{

/**
 * A lightweight, non-owning reference to a simulation input. The
 * referenced Trace/DecodedTrace must outlive any plan built from it.
 */
struct TraceRef
{
    enum class Kind
    {
        Memory,  ///< an in-memory Trace
        Decoded, ///< an already-decoded stream
        File,    ///< a trace file on disk
    };

    Kind kind = Kind::Memory;
    const Trace *memory = nullptr;
    const DecodedTrace *decoded = nullptr;
    std::string path;

    /**
     * Legacy sizing hints for File refs run without decoding: the
     * cache count (skips the sizing scan, as simulateTraceFile's
     * caches_hint) and the record count / workload name from an
     * earlier scanTraceFile(), used for planning and progress.
     */
    unsigned cachesHint = 0;
    std::uint64_t recordsHint = 0;
    std::string nameHint;

    static TraceRef of(const Trace &trace);
    static TraceRef of(const DecodedTrace &decoded);
    static TraceRef file(std::string path);

    /** Workload name when known without I/O; the path otherwise. */
    std::string displayName() const;
};

/** One simulation request: what to run, under which scheme, how. */
struct SimJob
{
    TraceRef trace;
    SchemeSpec scheme;
    SimConfig config;
};

/** How to split one cell's blocks across workers. */
struct ShardPlan
{
    /**
     * Shards per cell: 1 = sequential (the default, and the exact
     * legacy path); 0 = auto (size from refs and hardware); K > 1 =
     * exactly K shards. Cells that cannot shard — finite caches, a
     * raw SimConfig::traceSink, no decoded stream — always run with
     * one shard regardless.
     */
    unsigned shards = 1;

    /** Auto sizing: aim for at least this many data refs per shard. */
    std::uint64_t minRefsPerShard = 250'000;

    /** Auto sizing cap; 0 = the hardware thread count. */
    unsigned maxShards = 0;

    /** The DIRSIM_SHARDS override: unset keeps the sequential
     *  default, "auto" (or 0) enables auto sizing, K forces K. */
    static ShardPlan fromEnvironment();

    /** Shards a cell with these properties will actually use. */
    unsigned resolve(std::uint64_t data_refs, std::uint64_t block_count,
                     bool finite_caches) const;
};

/**
 * A content-addressed store of finished cell results.
 *
 * Keys are cellCacheKey() values; a key fully determines the
 * SimResult, so lookup() either misses or returns a result
 * bit-identical to re-simulating. Implementations must be safe for
 * concurrent lookup/store from grid workers. The file-backed
 * implementation is obs' FileCellCache (this library cannot depend
 * on obs, which links against it).
 */
class CellCache
{
  public:
    virtual ~CellCache() = default;

    /** @return true and fill @p out on a hit; false on a miss. */
    virtual bool lookup(std::uint64_t key, SimResult &out) = 0;

    /** Persist @p result under @p key. @p wall_seconds is the time
     *  the cell took to simulate (metadata only). */
    virtual void store(std::uint64_t key, const SimResult &result,
                       double wall_seconds) = 0;
};

/**
 * Version of the engine's observable semantics, folded into every
 * cache key. Bump on any change that alters what a (trace, scheme,
 * config) triple produces, so stale entries miss instead of lying.
 */
inline constexpr std::uint32_t engineSchemaVersion = 1;

/** FNV-1a 64 over a trace's name, shape, and every record. */
std::uint64_t traceChecksumFnv64(const Trace &trace);

/** FNV-1a 64 over a decoded stream's name, geometry, and arrays.
 *  Decoding is deterministic, so a file and the in-memory trace read
 *  from it produce the same decoded checksum. */
std::uint64_t traceChecksumFnv64(const DecodedTrace &decoded);

/**
 * FNV-1a 64 over a file's raw bytes (the trace-format-v2 hash, also
 * used by RunManifest provenance).
 */
std::uint64_t fileChecksumFnv64(const std::string &path);

/** The content-addressed key of one (trace, scheme, config) cell. */
std::uint64_t cellCacheKey(std::uint64_t trace_checksum,
                           const SchemeSpec &scheme,
                           const SimConfig &config);

/**
 * Builds the trace sink for one shard of a cell (obs/tracer.hh
 * sessions are single-threaded, so a sharded cell needs one per
 * shard; their distributions merge additively). Shard indices are
 * 0..K-1; an unsharded cell asks for shard 0 only. Returning nullptr
 * leaves the shard untraced.
 */
using ShardSinkFactory =
    std::function<std::unique_ptr<ProtocolTraceSink>(unsigned shard)>;

/** Engine options shared by every cell of a plan. */
struct JobOptions
{
    ShardPlan shards;

    /** Decode traces once up front (sim/decoded.hh) and replay the
     *  dense stream; off = the legacy sparse/streaming engine. */
    bool decode = true;

    /** Cell result cache; nullptr = always simulate. */
    std::shared_ptr<CellCache> cache;

    /** DIRSIM_DECODE + DIRSIM_SHARDS; no cache (wire one from
     *  obs' FileCellCache::fromEnvironment()). */
    static JobOptions fromEnvironment();

    /** The exact legacy semantics: no decode, one shard, no cache.
     *  Used by the wrapped simulateTrace() overloads so their
     *  reference behavior is untouched. */
    static JobOptions sequential();
};

/** One executable cell of a SimPlan. */
struct PlannedCell
{
    SchemeSpec scheme;
    SimConfig config;
    TraceRef trace;
    /** Shared decoded stream (plan-owned or caller-owned); nullptr
     *  when the cell runs the sparse/streaming engine. */
    const DecodedTrace *stream = nullptr;
    /** Workload name when known before execution. */
    std::string traceName;
    /** Records this cell will process (0 when unknown up front). */
    std::uint64_t records = 0;
    /** Shards the cell will use (resolved; >= 1). */
    unsigned shards = 1;
    std::uint64_t cacheKey = 0;
    bool cacheable = false;
};

/** A fully-resolved execution plan: cells plus shared streams. */
struct SimPlan
{
    std::vector<PlannedCell> cells;
    /** Streams decoded by buildPlan(), shared across its cells. */
    std::vector<std::unique_ptr<DecodedTrace>> streams;
    std::shared_ptr<CellCache> cache;

    /** Sum of every cell's known record count. */
    std::uint64_t plannedRefs() const;
};

/** What executing one cell produced. */
struct CellOutcome
{
    SimResult result;
    /** True when the result came from the cache, not simulation. */
    bool cacheHit = false;
    /** Shards the simulation used (1 for cached cells). */
    unsigned shardsUsed = 1;
    /** Records actually simulated: 0 on a cache hit. */
    std::uint64_t simulatedRefs = 0;
    /** Records the cell covers, simulated or replayed. */
    std::uint64_t records = 0;
    double wallSeconds = 0.0;
};

/**
 * Expand jobs into an executable plan: decode each distinct trace
 * once (shared by every cell that references it), resolve shard
 * counts, and compute cache keys. Pure planning — no simulation.
 */
SimPlan buildPlan(const std::vector<SimJob> &jobs,
                  const JobOptions &options = JobOptions::fromEnvironment());

/**
 * Execute one cell of a plan: cache lookup, sharded or sequential
 * simulation, cache store. Safe to call for different indices from
 * concurrent workers. @p make_sink builds per-shard trace sinks for
 * this cell (tracing disables the cache *lookup* — a replayed result
 * cannot feed a tracer — but the result is still stored).
 */
CellOutcome runPlannedCell(const SimPlan &plan, std::size_t index,
                           const ShardSinkFactory &make_sink = {});

/** Plan and run a single job. */
CellOutcome runJob(const SimJob &job,
                   const JobOptions &options = JobOptions::fromEnvironment());

/**
 * Plan and run a batch of jobs on @p workers threads (0 = the
 * DIRSIM_JOBS/hardware default; 1 = sequential on this thread).
 * Outcomes are returned in job order regardless of scheduling. For
 * scheme x trace grids with progress callbacks and timing telemetry,
 * use ExperimentRunner (a wrapper over the same engine).
 */
std::vector<CellOutcome> runJobs(
    const std::vector<SimJob> &jobs,
    const JobOptions &options = JobOptions::fromEnvironment(),
    unsigned workers = 1);

/**
 * The sharded cell executor: partition @p decoded's dense blocks
 * into @p shards shards, simulate each on its own worker against a
 * per-shard protocol arena, and merge. Bit-identical to the
 * sequential cell by construction; requires infinite caches.
 * With SimConfig::invariantCheckPeriod set, additionally checks that
 * the per-shard sharer sets partition cleanly (no block is held in
 * two shards' arenas).
 */
SimResult simulateTraceSharded(const DecodedTrace &decoded,
                               const SchemeSpec &scheme,
                               const SimConfig &config, unsigned shards,
                               const ShardSinkFactory &make_sink = {});

} // namespace dirsim

#endif // DIRSIM_SIM_JOB_HH
