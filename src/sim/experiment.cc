#include "sim/experiment.hh"

#include "common/logging.hh"
#include "sim/runner.hh"

namespace dirsim
{

EventFreqs
SchemeResults::averagedFreqs() const
{
    fatalIf(perTrace.empty(), "no results to average");
    std::vector<EventFreqs> sets;
    sets.reserve(perTrace.size());
    for (const auto &result : perTrace)
        sets.push_back(result.freqs());
    return EventFreqs::average(sets);
}

Histogram
SchemeResults::mergedCleanWriteHolders() const
{
    Histogram merged;
    for (const auto &result : perTrace)
        merged.merge(result.cleanWriteHolders);
    return merged;
}

CleanWriteProfile
SchemeResults::mergedProfile() const
{
    return CleanWriteProfile::fromHistogram(mergedCleanWriteHolders());
}

OpCounts
SchemeResults::mergedOps() const
{
    OpCounts merged;
    for (const auto &result : perTrace)
        merged.merge(result.ops);
    return merged;
}

std::uint64_t
SchemeResults::mergedRefs() const
{
    std::uint64_t refs = 0;
    for (const auto &result : perTrace)
        refs += result.totalRefs;
    return refs;
}

CycleBreakdown
SchemeResults::averagedCost(const BusCosts &costs,
                            const CostOptions &options) const
{
    std::vector<CycleBreakdown> breakdowns;
    breakdowns.reserve(perTrace.size());
    for (const auto &result : perTrace)
        breakdowns.push_back(result.cost(costs, options));
    return averageBreakdowns(breakdowns);
}

CycleBreakdown
SchemeResults::paperCost(const BusCosts &costs,
                         const CostOptions &options) const
{
    const auto kind = schemeKindFromName(scheme);
    if (!kind)
        return averagedCost(costs, options);
    return costFromFreqs(*kind, averagedFreqs(), costs,
                         mergedProfile(), options);
}

std::vector<SchemeResults>
runGrid(const std::vector<std::string> &schemes,
        const std::vector<Trace> &traces, const SimConfig &config)
{
    const ExperimentRunner runner;
    return runner.run(schemes, traces, config).schemes;
}

CycleBreakdown
averageBreakdowns(const std::vector<CycleBreakdown> &breakdowns)
{
    fatalIf(breakdowns.empty(), "no breakdowns to average");
    CycleBreakdown avg;
    for (const auto &breakdown : breakdowns) {
        avg.dirAccess += breakdown.dirAccess;
        avg.invalidate += breakdown.invalidate;
        avg.writeBack += breakdown.writeBack;
        avg.memAccess += breakdown.memAccess;
        avg.writeThroughOrUpdate += breakdown.writeThroughOrUpdate;
        avg.transactions += breakdown.transactions;
    }
    const double n = static_cast<double>(breakdowns.size());
    avg.dirAccess /= n;
    avg.invalidate /= n;
    avg.writeBack /= n;
    avg.memAccess /= n;
    avg.writeThroughOrUpdate /= n;
    avg.transactions /= n;
    return avg;
}

double
effectiveProcessorLimit(const CycleBreakdown &cost, double mips,
                        double bus_cycle_ns)
{
    fatalIf(mips <= 0.0 || bus_cycle_ns <= 0.0,
            "effectiveProcessorLimit needs positive rates");
    // "On average each instruction in the traces makes one data
    // reference" (Section 5): a processor at `mips` issues 2*mips
    // million memory references per second, each consuming
    // cost.total() bus cycles.
    const double cycles_per_second_per_cpu =
        2.0 * mips * 1e6 * cost.total();
    const double bus_cycles_per_second = 1e9 / bus_cycle_ns;
    if (cycles_per_second_per_cpu == 0.0)
        return 0.0;
    return bus_cycles_per_second / cycles_per_second_per_cpu;
}

} // namespace dirsim
