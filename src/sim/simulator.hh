/**
 * @file
 * The trace-driven simulation driver.
 *
 * Feeds a multiprocessor address trace through a coherence protocol
 * exactly as Section 4 of the paper describes: infinite caches, one
 * cache per *process* (sharing between processes, not processors),
 * globally-first references to a block tracked and excluded from the
 * cost metrics, and instructions generating no coherence traffic.
 */

#ifndef DIRSIM_SIM_SIMULATOR_HH
#define DIRSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "bus/cost_model.hh"
#include "cache/finite_cache.hh"
#include "common/histogram.hh"
#include "obs/phase.hh"
#include "protocols/events.hh"
#include "protocols/protocol.hh"
#include "protocols/registry.hh"
#include "trace/source.hh"
#include "trace/trace.hh"

namespace dirsim
{

/** How trace records map onto caches. */
enum class SharingModel
{
    /** One cache per process id (the paper's choice). */
    ByProcess,
    /** One cache per CPU (the paper's cross-check; similar results
     *  because process migration is rare). */
    ByProcessor,
};

/** Simulation parameters. */
struct SimConfig
{
    unsigned blockBytes = defaultBlockBytes;
    SharingModel sharing = SharingModel::ByProcess;
    /**
     * When non-zero, run CoherenceProtocol::checkAllInvariants()
     * every this-many data references (slow; used by tests).
     */
    std::uint64_t invariantCheckPeriod = 0;
    /**
     * Measurement warm-up: events, operations, and histogram samples
     * accumulated during the first this-many references are discarded
     * from the results (coherence state is still built up). The paper
     * measures whole traces; warm-up exists to study how much of a
     * short trace's cost is cold sharing (see bench/ext_warmup).
     */
    std::uint64_t warmupRefs = 0;
    /**
     * When set, build per-process FiniteCaches of this geometry
     * instead of the paper's infinite caches: replacement misses and
     * eviction write-backs then appear in the results (the geometry's
     * blockBytes must equal the simulation blockBytes). Honored by
     * the scheme-building simulateTrace overloads; the overload
     * taking an already-built protocol rejects the combination unless
     * the protocol itself runs finite caches.
     */
    std::optional<FiniteCacheConfig> finiteCache;

    /**
     * When set, the protocol reports every data reference to this
     * sink (CoherenceProtocol::attachTracer): distribution callbacks
     * always, full transition events at the sink's sampling period.
     * Observation only — results are bit-identical with or without a
     * sink. Not serialized into manifests; the caller owns the
     * sink's lifetime (it must outlive the simulation call). Ignored
     * in DIRSIM_NO_TRACER builds.
     */
    ProtocolTraceSink *traceSink = nullptr;

    /**
     * Apply the DIRSIM_BLOCK_BYTES / DIRSIM_WARMUP_REFS /
     * DIRSIM_SHARING ("process" or "processor") environment
     * overrides, if set — the SimConfig counterpart of
     * SuiteParams::fromEnvironment().
     */
    static SimConfig fromEnvironment();
};

/** Everything a single (scheme, trace) simulation produces. */
struct SimResult
{
    std::string scheme;
    std::string traceName;
    unsigned numCaches = 0;
    std::uint64_t totalRefs = 0;

    EventCounts events;
    OpCounts ops;
    /** Figure 1 histogram: other holders on writes to clean blocks. */
    Histogram cleanWriteHolders;
    /**
     * Where this cell's wall time went (obs/phase.hh): trace
     * reading/scanning, the warm-up window, the measured simulation
     * window, and result assembly. Timed only at phase boundaries —
     * a handful of clock reads per simulation, never per record.
     */
    PhaseBreakdown phases;

    /** Event frequencies as fractions of all references. */
    EventFreqs freqs() const { return EventFreqs::fromCounts(events); }

    /** Figure 1 summary for the cost models. */
    CleanWriteProfile profile() const
    {
        return CleanWriteProfile::fromHistogram(cleanWriteHolders);
    }

    /** Ops-based cost under a bus model (exact for every scheme). */
    CycleBreakdown cost(const BusCosts &costs,
                        const CostOptions &options = {}) const
    {
        return costFromOps(ops, totalRefs, costs, options);
    }
};

/**
 * Run @p trace through @p protocol.
 *
 * The protocol must have been built with enough caches for the
 * trace's processes (ByProcess) or CPUs (ByProcessor); process ids
 * are mapped to dense cache ids in order of first appearance.
 *
 * @throws UsageError when @p config requests a finite cache but the
 *         already-built @p protocol does not run finite caches (the
 *         geometry cannot be applied retroactively)
 */
SimResult simulateTrace(const Trace &trace,
                        CoherenceProtocol &protocol,
                        const SimConfig &config = {});

/**
 * Streaming variant: run the records of @p source through
 * @p protocol without ever materializing the trace.
 *
 * This is the same simulation loop the in-memory overload runs (that
 * overload is a thin wrapper over a MemoryTraceSource), so the
 * SimResult is bit-identical for an identical record sequence; only
 * the reader's fixed-size parser state plus the simulation's own
 * block/cache maps are resident, independent of trace length.
 */
SimResult simulateTrace(TraceSource &source,
                        CoherenceProtocol &protocol,
                        const SimConfig &config = {});

/**
 * Build the scheme from its structured spec with the cache count
 * implied by the trace and the sharing model (honoring
 * SimConfig::finiteCache), then simulate.
 *
 * One-line wrapper over the SimJob engine (sim/job.hh) with
 * JobOptions::sequential() — the exact legacy sparse path. New code
 * that wants decoding, sharding, or the result cache should build a
 * SimJob and call runJob().
 */
SimResult simulateTrace(const Trace &trace, const SchemeSpec &scheme,
                        const SimConfig &config = {});

/**
 * Legacy string-named convenience: parse the scheme name
 * (protocols/registry.hh), then run the spec-based overload. Kept as
 * a one-line wrapper for downstream code; prefer
 * runJob({TraceRef::of(trace), parseScheme(name), config}) — see
 * docs/api.md for the migration table.
 */
SimResult simulateTrace(const Trace &trace, const std::string &scheme,
                        const SimConfig &config = {});

/** Caches @p trace needs under @p sharing (distinct pids or CPUs). */
unsigned cachesNeeded(const Trace &trace, SharingModel sharing);

/**
 * The cache factory SimConfig::finiteCache implies: empty (infinite
 * caches) when unset, a validated FiniteCache factory when set.
 */
CacheFactory cacheFactoryFor(const SimConfig &config);

/** What one streaming pass over a trace file learns. */
struct TraceFileInfo
{
    std::string name;          ///< workload name from the header
    std::uint64_t records = 0; ///< records in the file
    unsigned caches = 0;       ///< caches needed under the scan's
                               ///< sharing model
};

/**
 * Scan a trace file once (streaming, bounded memory) to learn what a
 * simulation of it needs: the record count, the workload name, and
 * the cache count under @p sharing. Validates the whole file as a
 * side effect — header, every record, and the v2 checksum.
 */
TraceFileInfo scanTraceFile(const std::string &path,
                            SharingModel sharing);

/**
 * Simulate a trace file end to end.
 *
 * By default the file is decoded in a single streaming read
 * (sim/decoded.hh) — sizing the coherence domain and capturing the
 * records at once — and simulated through the dense hash-free path.
 * With DIRSIM_DECODE=0 the legacy bounded-memory pipeline runs
 * instead: one streaming sizing scan (skipped when @p caches_hint is
 * non-zero, e.g. from an earlier scanTraceFile()), then a streaming
 * simulation pass. Results are bit-identical either way, and to
 * loading the file and running the in-memory overload.
 *
 * This is the engine's single-file primitive; new code that wants
 * sharding or the result cache should run a SimJob on a
 * TraceRef::file() instead (sim/job.hh, docs/api.md).
 */
SimResult simulateTraceFile(const std::string &path,
                            const SchemeSpec &scheme,
                            const SimConfig &config = {},
                            unsigned caches_hint = 0);

/**
 * Legacy string-named convenience for simulateTraceFile(); kept as a
 * one-line wrapper. Prefer a SimJob over TraceRef::file() with
 * parseScheme() (docs/api.md).
 */
SimResult simulateTraceFile(const std::string &path,
                            const std::string &scheme,
                            const SimConfig &config = {},
                            unsigned caches_hint = 0);

} // namespace dirsim

#endif // DIRSIM_SIM_SIMULATOR_HH
