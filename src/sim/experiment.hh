/**
 * @file
 * Experiment orchestration: run scheme x trace x bus grids and
 * aggregate the results the way the paper does (event frequencies
 * averaged across traces, cost models applied afterwards).
 */

#ifndef DIRSIM_SIM_EXPERIMENT_HH
#define DIRSIM_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "bus/cost_model.hh"
#include "sim/simulator.hh"

namespace dirsim
{

/** All per-trace results for one scheme. */
struct SchemeResults
{
    std::string scheme;
    std::vector<SimResult> perTrace;

    /** Table 4 style: event frequencies averaged across traces. */
    EventFreqs averagedFreqs() const;

    /** Figure 1 histogram merged over all traces. */
    Histogram mergedCleanWriteHolders() const;

    /** CleanWriteProfile of the merged histogram. */
    CleanWriteProfile mergedProfile() const;

    /** Operation counts and references summed over all traces. */
    OpCounts mergedOps() const;
    std::uint64_t mergedRefs() const;

    /**
     * Cross-trace average cost on a bus: per-trace ops-based
     * breakdowns averaged component-wise, mirroring the frequency
     * averaging of Table 4/5.
     */
    CycleBreakdown averagedCost(const BusCosts &costs,
                                const CostOptions &options = {}) const;

    /**
     * The paper's cost path: averaged frequencies + merged Figure 1
     * profile through the closed-form scheme model. Falls back to
     * averagedCost() for schemes without a closed form (Dir_i
     * families).
     */
    CycleBreakdown paperCost(const BusCosts &costs,
                             const CostOptions &options = {}) const;
};

/**
 * Run every scheme on every trace.
 *
 * A thin wrapper over ExperimentRunner (sim/runner.hh): cells execute
 * on a worker pool sized by DIRSIM_JOBS (default: hardware threads;
 * 1 = the exact legacy sequential path), and the returned ordering
 * and results are identical to a sequential run. Use the runner
 * directly for progress callbacks and per-cell timing.
 *
 * @param schemes scheme names for protocols/registry.hh
 * @param traces input traces
 * @param config simulation parameters
 */
std::vector<SchemeResults> runGrid(
    const std::vector<std::string> &schemes,
    const std::vector<Trace> &traces, const SimConfig &config = {});

/** Component-wise arithmetic mean of breakdowns. */
CycleBreakdown averageBreakdowns(
    const std::vector<CycleBreakdown> &breakdowns);

/**
 * Estimate the number of processors a shared bus can sustain, the
 * paper's Section 5 back-of-envelope: a processor issuing one data
 * reference per instruction at @p mips needs total() bus cycles per
 * reference, and the bus delivers 1e9/@p bus_cycle_ns cycles/second.
 */
double effectiveProcessorLimit(const CycleBreakdown &cost, double mips,
                               double bus_cycle_ns);

} // namespace dirsim

#endif // DIRSIM_SIM_EXPERIMENT_HH
