/**
 * @file
 * The parallel experiment engine.
 *
 * Every (scheme, trace) cell of an experiment grid is independent —
 * an immutable Trace goes in, a fresh CoherenceProtocol and a
 * SimResult come out — so the grid is embarrassingly parallel.
 * ExperimentRunner executes the cells on a ThreadPool while keeping
 * the result ordering (scheme-major, traces in input order) and the
 * results themselves bit-identical to the sequential path, and
 * additionally reports per-cell wall time and throughput.
 *
 * runGrid() (sim/experiment.hh) is a thin wrapper over this API with
 * environment-default concurrency; CLIs that want progress output or
 * timing metrics use the runner directly.
 *
 * The runner itself is a wrapper over the SimJob engine (sim/job.hh):
 * run()/runFiles() expand the grid into scheme-major SimJobs, build
 * one SimPlan (each distinct trace decoded and checksummed once), and
 * execute the planned cells on the pool. That routing is what gives
 * grids intra-cell block sharding (RunnerConfig::shards) and the
 * content-addressed cell cache (RunnerConfig::cellCache) for free.
 */

#ifndef DIRSIM_SIM_RUNNER_HH
#define DIRSIM_SIM_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/job.hh"
#include "sim/simulator.hh"

namespace dirsim
{

/** Execution metrics of one (scheme, trace) cell. */
struct CellTiming
{
    std::string scheme;
    std::string traceName;
    /** References the cell simulated (trace records incl. fetches). */
    std::uint64_t refs = 0;
    double wallSeconds = 0.0;
    /**
     * Cell start on the PhaseTimer::nowNs() clock and an opaque tag
     * of the worker thread that ran it — enough to lay the grid out
     * on a per-worker timeline (obs/chrome_trace.hh).
     */
    std::uint64_t startNs = 0;
    std::uint64_t threadTag = 0;
    /** True when the result came from the cell cache. */
    bool cacheHit = false;
    /** Shards the cell's simulation used (1 = sequential). */
    unsigned shards = 1;
    /** Records actually simulated: 0 for cache hits. */
    std::uint64_t simulatedRefs = 0;

    /** Simulation throughput; 0 when the cell ran too fast to time. */
    double refsPerSecond() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(refs) / wallSeconds
            : 0.0;
    }
};

/** Snapshot handed to the progress callback after each cell. */
struct GridProgress
{
    /** Cells finished so far (including this one). */
    std::size_t completedCells = 0;
    std::size_t totalCells = 0;
    /** The cell that just finished. */
    const CellTiming &cell;
    /** Wall time since the grid started. */
    double elapsedSeconds = 0.0;
    /** References simulated by the cells finished so far. */
    std::uint64_t completedRefs = 0;
    /** References the whole grid will simulate (known up front). */
    std::uint64_t plannedRefs = 0;
    /** Cells served from the cell cache so far. */
    std::size_t cacheHits = 0;

    /** Aggregate throughput so far; 0 until measurable. */
    double refsPerSecond() const
    {
        return elapsedSeconds > 0.0
            ? static_cast<double>(completedRefs) / elapsedSeconds
            : 0.0;
    }

    /** Remaining-work estimate from the throughput so far; 0 when
     *  unknown or done. */
    double etaSeconds() const
    {
        const double rate = refsPerSecond();
        if (rate <= 0.0 || plannedRefs <= completedRefs)
            return 0.0;
        return static_cast<double>(plannedRefs - completedRefs)
            / rate;
    }
};

/**
 * Invoked after every finished cell. Calls are serialized (never
 * concurrent) but, with jobs > 1, arrive in completion order, not
 * grid order.
 */
using ProgressCallback = std::function<void(const GridProgress &)>;

/** ExperimentRunner knobs. */
struct RunnerConfig
{
    /**
     * Worker threads for the grid; 0 resolves to defaultJobs().
     * 1 runs the exact legacy sequential path on the calling thread
     * (no pool, no worker threads).
     */
    unsigned jobs = 0;

    /** Optional per-cell completion hook (see ProgressCallback). */
    ProgressCallback onCellComplete;

    /**
     * Builds one per-cell trace sink (obs/tracer.hh sessions), keyed
     * by (scheme, trace). Called once per cell on the worker thread
     * that runs it; the sink is attached via SimConfig::traceSink
     * for that cell only and destroyed (merging its data) when the
     * cell finishes. Returning nullptr leaves the cell untraced.
     */
    using CellSinkFactory =
        std::function<std::unique_ptr<ProtocolTraceSink>(
            const std::string &scheme, const std::string &trace)>;

    /** Optional per-cell tracer-session factory (empty = no tracing). */
    CellSinkFactory makeCellTraceSink;

    /**
     * Decode each trace once up front (sim/decoded.hh) and share the
     * immutable decoded stream read-only across all scheme cells, so
     * every cell runs the hash-free dense path instead of re-paying
     * the per-reference decode work. Results are bit-identical either
     * way (asserted by test); disable (or set DIRSIM_DECODE=0) to
     * force the legacy sparse/streaming engine — e.g. to keep
     * runFiles() strictly bounded-memory.
     */
    bool decode = true;

    /**
     * Intra-cell block sharding (sim/job.hh): how many shards each
     * decoded cell splits into. The default is one shard — the exact
     * legacy sequential cell. Cells that cannot shard (finite caches,
     * no decoded stream) ignore the plan and run one shard.
     */
    ShardPlan shards;

    /**
     * Content-addressed cell result cache (sim/job.hh); nullptr (the
     * default) simulates every cell. Wire obs'
     * FileCellCache::fromEnvironment() here to honor
     * DIRSIM_CACHE_DIR.
     */
    std::shared_ptr<CellCache> cellCache;

    /**
     * The DIRSIM_JOBS environment override when set and non-zero,
     * otherwise the hardware thread count.
     */
    static unsigned defaultJobs();

    /** A config with jobs = the DIRSIM_JOBS override (or 0), decode =
     *  the DIRSIM_DECODE override (or on), and shards = the
     *  DIRSIM_SHARDS override (or sequential). The cell cache is not
     *  wired here — the sim layer cannot see obs' file cache. */
    static RunnerConfig fromEnvironment();
};

/** Everything one grid run produces. */
struct GridResult
{
    /** Per-scheme results, ordered exactly like sequential runGrid. */
    std::vector<SchemeResults> schemes;
    /** Per-cell metrics in grid (scheme-major) order. */
    std::vector<CellTiming> cells;
    /** End-to-end wall time of the grid. */
    double wallSeconds = 0.0;
    /** Grid start on the PhaseTimer::nowNs() clock (timeline zero). */
    std::uint64_t startNs = 0;
    /** Worker threads actually used. */
    unsigned jobs = 1;
    /**
     * Grid-level work outside any cell: runFiles' up-front validating
     * scans land here as Read time. Per-cell phase splits live in
     * each SimResult::phases.
     */
    PhaseBreakdown setupPhases;
    /** True when the grid ran with a cell cache configured. */
    bool cacheEnabled = false;

    /** Aggregate throughput: all simulated refs over the wall time. */
    double refsPerSecond() const;
    /** Sum of every cell's covered references (cached or not). */
    std::uint64_t totalRefs() const;
    /** Cells served from the cell cache. */
    std::uint64_t cacheHits() const;
    /** Cells that actually simulated. */
    std::uint64_t cacheMisses() const;
    /** References actually simulated (0 for a fully warm cache). */
    std::uint64_t simulatedRefs() const;
};

/**
 * Executes scheme x trace grids on a worker pool.
 *
 * Determinism: each cell builds its own protocol from the scheme
 * spec and simulates a shared immutable trace, so results do not
 * depend on scheduling; the output ordering is fixed by the input
 * order. A run with any job count is bit-identical (events, ops,
 * histograms) to the sequential path (asserted by test).
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(
        RunnerConfig config = RunnerConfig::fromEnvironment());

    /**
     * Run every scheme on every trace.
     *
     * @param schemes scheme specs (see protocols/registry.hh)
     * @param traces input traces, shared read-only across workers
     * @param sim simulation parameters applied to every cell
     * @throws UsageError on empty inputs; any cell's exception is
     *         rethrown after the remaining cells finish
     */
    GridResult run(const std::vector<SchemeSpec> &schemes,
                   const std::vector<Trace> &traces,
                   const SimConfig &sim = {}) const;

    /** Legacy string-named convenience: parseScheme() each name,
     *  then run. Kept as a one-line wrapper (docs/api.md). */
    GridResult run(const std::vector<std::string> &schemes,
                   const std::vector<Trace> &traces,
                   const SimConfig &sim = {}) const;

    /**
     * Run every scheme on every trace *file*.
     *
     * With decoding on (the default), each file is read exactly once:
     * the up-front decode pass both sizes the coherence domain and
     * captures the compact record stream every cell then replays from
     * memory. With RunnerConfig::decode off, the legacy
     * bounded-memory pipeline runs: each path is scanned once up
     * front (scanTraceFile()) to size the coherence domain and
     * validate the file, then every cell re-opens its file and
     * streams it, so peak memory is one record's parser state per
     * worker plus the simulation's own tables — independent of trace
     * length. Results are bit-identical either way, and to loading
     * the files and calling run().
     *
     * @param schemes scheme specs (see protocols/registry.hh)
     * @param tracePaths trace files (".txt" = text, else binary)
     * @param sim simulation parameters applied to every cell
     */
    GridResult runFiles(const std::vector<SchemeSpec> &schemes,
                        const std::vector<std::string> &tracePaths,
                        const SimConfig &sim = {}) const;

    /** Legacy string-named convenience for runFiles(); kept as a
     *  one-line wrapper (docs/api.md). */
    GridResult runFiles(const std::vector<std::string> &schemes,
                        const std::vector<std::string> &tracePaths,
                        const SimConfig &sim = {}) const;

    /** The job count a run() will use (config resolved). */
    unsigned resolvedJobs() const;

  private:
    /** Expand scheme-major jobs through the SimJob engine
     *  (buildPlan + runPlannedCell per cell) and execute them on the
     *  grid scaffolding. */
    GridResult runJobGrid(const std::vector<SimJob> &jobs,
                          const std::vector<SchemeSpec> &schemes,
                          std::size_t num_traces) const;

    /** Shared grid scaffolding: cells(s, t) fills one SimResult.
     *  @param planned_refs total references the grid will simulate,
     *         reported through GridProgress */
    GridResult runGridCells(
        std::size_t num_schemes, std::size_t num_traces,
        std::uint64_t planned_refs,
        const std::function<SimResult(std::size_t, std::size_t,
                                      CellTiming &)> &cell) const;

    RunnerConfig config;
};

} // namespace dirsim

#endif // DIRSIM_SIM_RUNNER_HH
