#include "sim/simulator.hh"

#include <unordered_map>
#include <unordered_set>

#include "common/bitops.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "protocols/registry.hh"
#include "sim/decoded.hh"
#include "sim/job.hh"
#include "trace/reader.hh"

namespace dirsim
{

namespace
{

/** Dense first-appearance mapping of pids (or CPUs) to cache ids. */
class CacheMapper
{
  public:
    CacheMapper(SharingModel sharing_arg, unsigned limit_arg)
        : sharing(sharing_arg), limit(limit_arg)
    {}

    CacheId
    map(const TraceRecord &record)
    {
        const std::uint64_t key = sharing == SharingModel::ByProcess
            ? static_cast<std::uint64_t>(record.pid)
            : static_cast<std::uint64_t>(record.cpu);
        const auto it = ids.find(key);
        if (it != ids.end())
            return it->second;
        const auto next = static_cast<CacheId>(ids.size());
        fatalIf(next >= limit,
                "trace needs more than ", limit,
                " caches; build the protocol with a larger domain");
        ids.emplace(key, next);
        return next;
    }

  private:
    SharingModel sharing;
    unsigned limit;
    std::unordered_map<std::uint64_t, CacheId> ids;
};

/** Parse DIRSIM_SHARING into a SharingModel. */
SharingModel
sharingFromEnvironment(SharingModel fallback)
{
    const auto value = envString("DIRSIM_SHARING");
    if (!value)
        return fallback;
    if (*value == "process")
        return SharingModel::ByProcess;
    if (*value == "processor")
        return SharingModel::ByProcessor;
    fatal("environment variable DIRSIM_SHARING='", *value,
          "' is neither 'process' nor 'processor'");
}

} // namespace

SimConfig
SimConfig::fromEnvironment()
{
    SimConfig config;
    config.blockBytes =
        envUnsigned("DIRSIM_BLOCK_BYTES", config.blockBytes);
    config.warmupRefs = envU64("DIRSIM_WARMUP_REFS", config.warmupRefs);
    config.sharing = sharingFromEnvironment(config.sharing);
    return config;
}

unsigned
cachesNeeded(const Trace &trace, SharingModel sharing)
{
    if (sharing == SharingModel::ByProcess)
        return static_cast<unsigned>(trace.countProcesses());
    const unsigned cpus = trace.observedCpus();
    return cpus > 0 ? cpus : trace.numCpus();
}

namespace
{

/**
 * The simulation loop, generic over the record source so the
 * in-memory path keeps its direct (devirtualized) vector iteration
 * while the streaming path pays one virtual call per record. Both
 * instantiations execute the identical statement sequence, which is
 * what makes streaming results bit-identical to in-memory ones.
 *
 * @tparam Source provides bool next(TraceRecord&)
 */
template <typename Source>
SimResult
simulateRecords(Source &&source, const std::string &trace_name,
                CoherenceProtocol &protocol, const SimConfig &config)
{
    checkBlockSize(config.blockBytes);
    fatalIf(config.finiteCache && !protocol.finiteCaches(),
            "SimConfig::finiteCache is set but the supplied protocol "
            "was built with infinite caches; build it with a "
            "FiniteCache factory or use a scheme-building "
            "simulateTrace overload");

    if (config.traceSink != nullptr)
        protocol.attachTracer(config.traceSink);

    CacheMapper mapper(config.sharing, protocol.numCaches());
    std::unordered_set<BlockNum> seen_blocks;
    std::uint64_t data_refs = 0;
    std::uint64_t processed = 0;

    // Warm-up snapshot: whatever accumulated before the measurement
    // window is subtracted from the results afterwards. Phase timing
    // reads the clock only here and at the loop boundaries, so it
    // costs nothing per record.
    EventCounts warmup_events;
    OpCounts warmup_ops;
    Histogram warmup_hist;
    bool warmup_taken = config.warmupRefs == 0;

    PhaseBreakdown phases;
    const std::uint64_t loop_start = PhaseTimer::nowNs();
    std::uint64_t measure_start = loop_start;

    TraceRecord record;
    while (source.next(record)) {
        if (!warmup_taken && processed >= config.warmupRefs) {
            warmup_events = protocol.events();
            warmup_ops = protocol.ops();
            warmup_hist = protocol.cleanWriteHolders();
            warmup_taken = true;
            measure_start = PhaseTimer::nowNs();
            phases.add(Phase::Warmup, measure_start - loop_start);
        }
        ++processed;
        if (record.isInstr()) {
            protocol.instruction();
            continue;
        }
        const CacheId cache = mapper.map(record);
        const BlockNum block =
            blockNumber(record.addr, config.blockBytes);
        const bool first_ref = seen_blocks.insert(block).second;
        if (record.isRead())
            protocol.read(cache, block, first_ref);
        else
            protocol.write(cache, block, first_ref);
        ++data_refs;
        if (config.invariantCheckPeriod != 0
            && data_refs % config.invariantCheckPeriod == 0) {
            protocol.checkAllInvariants();
        }
    }
    fatalIf(processed == 0, "cannot simulate an empty trace");
    if (config.invariantCheckPeriod != 0)
        protocol.checkAllInvariants();
    fatalIf(!warmup_taken,
            "warm-up of ", config.warmupRefs,
            " references consumed the whole trace (",
            processed, " references)");
    const std::uint64_t loop_end = PhaseTimer::nowNs();
    phases.add(Phase::Simulate, loop_end - measure_start);

    SimResult result;
    result.scheme = protocol.name();
    result.traceName = trace_name;
    result.numCaches = protocol.numCaches();
    result.events = protocol.events();
    result.events.subtract(warmup_events);
    result.ops = protocol.ops();
    result.ops.subtract(warmup_ops);
    result.cleanWriteHolders = protocol.cleanWriteHolders();
    result.cleanWriteHolders.subtract(warmup_hist);
    result.totalRefs = result.events.totalRefs();
    phases.add(Phase::Reduce, PhaseTimer::nowNs() - loop_end);
    result.phases = phases;
    return result;
}

/** Non-virtual record cursor over an in-memory trace. */
class TraceCursor
{
  public:
    explicit TraceCursor(const Trace &trace_arg) : trace(trace_arg) {}

    bool
    next(TraceRecord &record)
    {
        if (index >= trace.size())
            return false;
        record = trace[index++];
        return true;
    }

  private:
    const Trace &trace;
    std::size_t index = 0;
};

} // namespace

CacheFactory
cacheFactoryFor(const SimConfig &config)
{
    CacheFactory factory;
    if (config.finiteCache) {
        const FiniteCacheConfig cache_config = *config.finiteCache;
        fatalIf(cache_config.blockBytes != config.blockBytes,
                "finite-cache block size ", cache_config.blockBytes,
                " differs from the simulation block size ",
                config.blockBytes);
        cache_config.check();
        factory = [cache_config] {
            return std::make_unique<FiniteCache>(cache_config);
        };
    }
    return factory;
}

SimResult
simulateTrace(const Trace &trace, CoherenceProtocol &protocol,
              const SimConfig &config)
{
    fatalIf(trace.empty(), "cannot simulate an empty trace");
    return simulateRecords(TraceCursor(trace), trace.name(), protocol,
                           config);
}

SimResult
simulateTrace(TraceSource &source, CoherenceProtocol &protocol,
              const SimConfig &config)
{
    return simulateRecords(source, source.name(), protocol, config);
}

SimResult
simulateTrace(const Trace &trace, const SchemeSpec &scheme,
              const SimConfig &config)
{
    // One-line wrapper over the SimJob engine (sim/job.hh);
    // JobOptions::sequential() pins the legacy semantics — sparse
    // engine, one shard, no cache — so this overload stays the
    // reference the decoded/sharded paths are tested against.
    return runJob({TraceRef::of(trace), scheme, config},
                  JobOptions::sequential())
        .result;
}

TraceFileInfo
scanTraceFile(const std::string &path, SharingModel sharing)
{
    const auto source = openTraceSource(path);
    TraceFileInfo info;
    std::unordered_set<std::uint64_t> pids;
    unsigned max_cpu = 0;
    TraceRecord record;
    while (source->next(record)) {
        ++info.records;
        pids.insert(record.pid);
        if (record.cpu > max_cpu)
            max_cpu = record.cpu;
    }
    info.name = source->name();
    if (sharing == SharingModel::ByProcess) {
        info.caches = static_cast<unsigned>(pids.size());
    } else {
        const unsigned observed = info.records > 0 ? max_cpu + 1 : 0;
        info.caches = observed > 0 ? observed : source->numCpus();
    }
    return info;
}

SimResult
simulateTraceFile(const std::string &path, const SchemeSpec &scheme,
                  const SimConfig &config, unsigned caches_hint)
{
    // Decode pipeline (the default): one streaming read both sizes
    // the coherence domain and captures the records, so the file is
    // touched exactly once with or without a hint. The whole decode
    // is the cell's Read phase.
    if (decodeEnabled()) {
        const std::uint64_t read_start = PhaseTimer::nowNs();
        const DecodedTrace decoded =
            decodeTraceFile(path, config.blockBytes, config.sharing);
        const unsigned caches = caches_hint != 0
            ? caches_hint
            : decoded.cachesNeeded;
        fatalIf(caches == 0, "trace file '", path,
                "' has no references");
        const auto protocol =
            makeProtocol(scheme, caches, cacheFactoryFor(config));
        const std::uint64_t read_ns = PhaseTimer::nowNs() - read_start;
        SimResult result = simulateTrace(decoded, *protocol, config);
        result.phases.add(Phase::Read, read_ns);
        return result;
    }

    // Legacy streaming path (DIRSIM_DECODE=0): bounded memory, at
    // the price of an extra sizing scan when no hint is given. The
    // sizing scan and the reader setup are the cell's Read phase (a
    // hinted call skips the scan, so only the open is charged).
    const std::uint64_t read_start = PhaseTimer::nowNs();
    const unsigned caches = caches_hint != 0
        ? caches_hint
        : scanTraceFile(path, config.sharing).caches;
    fatalIf(caches == 0, "trace file '", path,
            "' has no references");
    const auto protocol =
        makeProtocol(scheme, caches, cacheFactoryFor(config));
    const auto source = openTraceSource(path);
    const std::uint64_t read_ns = PhaseTimer::nowNs() - read_start;
    SimResult result = simulateTrace(*source, *protocol, config);
    result.phases.add(Phase::Read, read_ns);
    return result;
}

SimResult
simulateTraceFile(const std::string &path, const std::string &scheme,
                  const SimConfig &config, unsigned caches_hint)
{
    return simulateTraceFile(path, parseScheme(scheme), config,
                             caches_hint);
}

SimResult
simulateTrace(const Trace &trace, const std::string &scheme,
              const SimConfig &config)
{
    return simulateTrace(trace, parseScheme(scheme), config);
}

} // namespace dirsim
