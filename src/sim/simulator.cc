#include "sim/simulator.hh"

#include <unordered_map>
#include <unordered_set>

#include "common/bitops.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "protocols/registry.hh"

namespace dirsim
{

namespace
{

/** Dense first-appearance mapping of pids (or CPUs) to cache ids. */
class CacheMapper
{
  public:
    CacheMapper(SharingModel sharing_arg, unsigned limit_arg)
        : sharing(sharing_arg), limit(limit_arg)
    {}

    CacheId
    map(const TraceRecord &record)
    {
        const std::uint64_t key = sharing == SharingModel::ByProcess
            ? static_cast<std::uint64_t>(record.pid)
            : static_cast<std::uint64_t>(record.cpu);
        const auto it = ids.find(key);
        if (it != ids.end())
            return it->second;
        const auto next = static_cast<CacheId>(ids.size());
        fatalIf(next >= limit,
                "trace needs more than ", limit,
                " caches; build the protocol with a larger domain");
        ids.emplace(key, next);
        return next;
    }

  private:
    SharingModel sharing;
    unsigned limit;
    std::unordered_map<std::uint64_t, CacheId> ids;
};

/** Parse DIRSIM_SHARING into a SharingModel. */
SharingModel
sharingFromEnvironment(SharingModel fallback)
{
    const auto value = envString("DIRSIM_SHARING");
    if (!value)
        return fallback;
    if (*value == "process")
        return SharingModel::ByProcess;
    if (*value == "processor")
        return SharingModel::ByProcessor;
    fatal("environment variable DIRSIM_SHARING='", *value,
          "' is neither 'process' nor 'processor'");
}

} // namespace

SimConfig
SimConfig::fromEnvironment()
{
    SimConfig config;
    config.blockBytes =
        envUnsigned("DIRSIM_BLOCK_BYTES", config.blockBytes);
    config.warmupRefs = envU64("DIRSIM_WARMUP_REFS", config.warmupRefs);
    config.sharing = sharingFromEnvironment(config.sharing);
    return config;
}

unsigned
cachesNeeded(const Trace &trace, SharingModel sharing)
{
    if (sharing == SharingModel::ByProcess)
        return static_cast<unsigned>(trace.countProcesses());
    const unsigned cpus = trace.observedCpus();
    return cpus > 0 ? cpus : trace.numCpus();
}

SimResult
simulateTrace(const Trace &trace, CoherenceProtocol &protocol,
              const SimConfig &config)
{
    checkBlockSize(config.blockBytes);
    fatalIf(trace.empty(), "cannot simulate an empty trace");
    fatalIf(config.finiteCache && !protocol.finiteCaches(),
            "SimConfig::finiteCache is set but the supplied protocol "
            "was built with infinite caches; build it with a "
            "FiniteCache factory or use a scheme-building "
            "simulateTrace overload");

    CacheMapper mapper(config.sharing, protocol.numCaches());
    std::unordered_set<BlockNum> seen_blocks;
    std::uint64_t data_refs = 0;
    std::uint64_t processed = 0;

    // Warm-up snapshot: whatever accumulated before the measurement
    // window is subtracted from the results afterwards.
    EventCounts warmup_events;
    OpCounts warmup_ops;
    Histogram warmup_hist;
    bool warmup_taken = config.warmupRefs == 0;

    for (const auto &record : trace) {
        if (!warmup_taken && processed >= config.warmupRefs) {
            warmup_events = protocol.events();
            warmup_ops = protocol.ops();
            warmup_hist = protocol.cleanWriteHolders();
            warmup_taken = true;
        }
        ++processed;
        if (record.isInstr()) {
            protocol.instruction();
            continue;
        }
        const CacheId cache = mapper.map(record);
        const BlockNum block =
            blockNumber(record.addr, config.blockBytes);
        const bool first_ref = seen_blocks.insert(block).second;
        if (record.isRead())
            protocol.read(cache, block, first_ref);
        else
            protocol.write(cache, block, first_ref);
        ++data_refs;
        if (config.invariantCheckPeriod != 0
            && data_refs % config.invariantCheckPeriod == 0) {
            protocol.checkAllInvariants();
        }
    }
    if (config.invariantCheckPeriod != 0)
        protocol.checkAllInvariants();
    fatalIf(!warmup_taken,
            "warm-up of ", config.warmupRefs,
            " references consumed the whole trace (",
            trace.size(), " references)");

    SimResult result;
    result.scheme = protocol.name();
    result.traceName = trace.name();
    result.numCaches = protocol.numCaches();
    result.events = protocol.events();
    result.events.subtract(warmup_events);
    result.ops = protocol.ops();
    result.ops.subtract(warmup_ops);
    result.cleanWriteHolders = protocol.cleanWriteHolders();
    result.cleanWriteHolders.subtract(warmup_hist);
    result.totalRefs = result.events.totalRefs();
    return result;
}

SimResult
simulateTrace(const Trace &trace, const SchemeSpec &scheme,
              const SimConfig &config)
{
    const unsigned caches = cachesNeeded(trace, config.sharing);
    fatalIf(caches == 0, "trace '", trace.name(), "' has no references");
    CacheFactory factory;
    if (config.finiteCache) {
        const FiniteCacheConfig cache_config = *config.finiteCache;
        fatalIf(cache_config.blockBytes != config.blockBytes,
                "finite-cache block size ", cache_config.blockBytes,
                " differs from the simulation block size ",
                config.blockBytes);
        cache_config.check();
        factory = [cache_config] {
            return std::make_unique<FiniteCache>(cache_config);
        };
    }
    const auto protocol = makeProtocol(scheme, caches, factory);
    return simulateTrace(trace, *protocol, config);
}

SimResult
simulateTrace(const Trace &trace, const std::string &scheme,
              const SimConfig &config)
{
    return simulateTrace(trace, parseScheme(scheme), config);
}

} // namespace dirsim
