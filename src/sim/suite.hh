/**
 * @file
 * The standard experiment suite: the three synthetic workload traces
 * standing in for the paper's POPS / THOR / PERO ATUM traces, at a
 * common length and with fixed seeds, so every repro_* benchmark
 * operates on identical inputs.
 */

#ifndef DIRSIM_SIM_SUITE_HH
#define DIRSIM_SIM_SUITE_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace dirsim
{

/** Parameters of the standard suite. */
struct SuiteParams
{
    /**
     * References per trace. The paper's traces hold ~3.2M references;
     * the default is sized so the full repro grid still runs in
     * seconds. Override via DIRSIM_SUITE_REFS for paper-scale runs.
     */
    std::uint64_t refsPerTrace = 1'500'000;
    /** Base seed; each workload derives its own from it. */
    std::uint64_t seed = 88;

    /**
     * Apply the DIRSIM_SUITE_REFS / DIRSIM_SUITE_SEED environment
     * overrides, if set.
     */
    static SuiteParams fromEnvironment();
};

/** Generate the pops, thor, and pero traces (in that order). */
std::vector<Trace> standardSuite(const SuiteParams &params =
                                     SuiteParams::fromEnvironment());

} // namespace dirsim

#endif // DIRSIM_SIM_SUITE_HH
