#include "sim/decoded.hh"

#include "common/bitops.hh"
#include "common/dense_id_map.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "protocols/registry.hh"
#include "trace/reader.hh"

namespace dirsim
{

bool
decodeEnabled()
{
    return envUnsigned("DIRSIM_DECODE", 1) != 0;
}

std::uint64_t
DecodedTrace::memoryBytes() const
{
    return ops.size() * sizeof(std::uint8_t)
        + blocks.size() * sizeof(std::uint32_t)
        + caches.size() * sizeof(CacheId)
        + denseToBlock.size() * sizeof(BlockNum);
}

DecodedTrace
decodeTrace(TraceSource &source, unsigned block_bytes,
            SharingModel sharing)
{
    checkBlockSize(block_bytes);

    DecodedTrace out;
    out.blockBytes = block_bytes;
    out.sharing = sharing;

    if (const auto hint = source.sizeHint()) {
        out.ops.reserve(*hint);
        out.blocks.reserve(*hint);
        out.caches.reserve(*hint);
    }

    // Sizing state mirrors scanTraceFile(): distinct pids over *all*
    // records / the maximum CPU index. The mapping state mirrors the
    // simulation loop: dense ids handed out in order of first
    // appearance over *data* records only. DenseIdMap rather than
    // std::unordered_map: these three insert-or-finds per record are
    // the whole decode pass, and the flat table halves its cost.
    DenseIdMap sizing_pids;
    unsigned max_cpu = 0;
    DenseIdMap cache_ids;
    DenseIdMap block_ids;

    TraceRecord record;
    while (source.next(record)) {
        if (sharing == SharingModel::ByProcess)
            sizing_pids.idFor(record.pid);
        else if (record.cpu > max_cpu)
            max_cpu = record.cpu;

        if (record.isInstr()) {
            // Zero-filled so the arrays stay index-aligned; the op
            // kind alone routes the record.
            out.ops.push_back(decodedOpInstr);
            out.blocks.push_back(0);
            out.caches.push_back(0);
            continue;
        }

        const std::uint64_t key = sharing == SharingModel::ByProcess
            ? static_cast<std::uint64_t>(record.pid)
            : static_cast<std::uint64_t>(record.cpu);
        const CacheId cache = cache_ids.idFor(key).first;

        const BlockNum block =
            blockNumber(record.addr, block_bytes);
        const auto [dense_block, first_ref] = block_ids.idFor(block);
        if (first_ref)
            out.denseToBlock.push_back(block);

        std::uint8_t op = record.isRead() ? decodedOpRead
                                          : decodedOpWrite;
        if (first_ref)
            op |= decodedOpFirstRef;
        out.ops.push_back(op);
        out.blocks.push_back(dense_block);
        out.caches.push_back(cache);
        ++out.dataRefs;
    }

    out.name = source.name();
    out.cachesUsed = static_cast<unsigned>(cache_ids.size());
    if (sharing == SharingModel::ByProcess) {
        out.cachesNeeded = static_cast<unsigned>(sizing_pids.size());
    } else {
        const unsigned observed =
            out.numRecords() > 0 ? max_cpu + 1 : 0;
        out.cachesNeeded = observed > 0 ? observed : source.numCpus();
    }
    return out;
}

DecodedTrace
decodeTrace(const Trace &trace, unsigned block_bytes,
            SharingModel sharing)
{
    MemoryTraceSource source(trace);
    return decodeTrace(source, block_bytes, sharing);
}

DecodedTrace
decodeTraceFile(const std::string &path, unsigned block_bytes,
                SharingModel sharing)
{
    const auto source = openTraceSource(path);
    return decodeTrace(*source, block_bytes, sharing);
}

SimResult
simulateTrace(const DecodedTrace &decoded,
              CoherenceProtocol &protocol, const SimConfig &config)
{
    checkBlockSize(config.blockBytes);
    fatalIf(config.blockBytes != decoded.blockBytes,
            "trace was decoded with ", decoded.blockBytes,
            "-byte blocks but the simulation uses ", config.blockBytes,
            "-byte blocks; decode it again");
    fatalIf(config.sharing != decoded.sharing,
            "trace was decoded under a different sharing model than "
            "the simulation requests; decode it again");
    fatalIf(config.finiteCache && !protocol.finiteCaches(),
            "SimConfig::finiteCache is set but the supplied protocol "
            "was built with infinite caches; build it with a "
            "FiniteCache factory or use a scheme-building "
            "simulateTrace overload");
    fatalIf(decoded.cachesUsed > protocol.numCaches(),
            "trace needs more than ", protocol.numCaches(),
            " caches; build the protocol with a larger domain");

    if (config.traceSink != nullptr)
        protocol.attachTracer(config.traceSink);

    // Infinite caches take the hash-free path: dense arenas keyed by
    // block index. Finite caches keep real block numbers (their set
    // indexing depends on the address bits) through the sparse
    // engine, still skipping the per-reference decode work.
    const bool dense = !protocol.finiteCaches();
    if (dense)
        protocol.reserveBlocks(decoded.blockCount(),
                               decoded.denseToBlock.data());

    std::uint64_t data_refs = 0;
    std::uint64_t processed = 0;

    EventCounts warmup_events;
    OpCounts warmup_ops;
    Histogram warmup_hist;
    bool warmup_taken = config.warmupRefs == 0;

    PhaseBreakdown phases;
    const std::uint64_t loop_start = PhaseTimer::nowNs();
    std::uint64_t measure_start = loop_start;

    // This loop is the simulateRecords() statement sequence with the
    // per-record decode work replaced by array loads — the basis of
    // the bit-identity guarantee (tests/sim/decoded_test.cc).
    const std::uint64_t num_records = decoded.numRecords();
    for (std::uint64_t i = 0; i < num_records; ++i) {
        if (!warmup_taken && processed >= config.warmupRefs) {
            warmup_events = protocol.events();
            warmup_ops = protocol.ops();
            warmup_hist = protocol.cleanWriteHolders();
            warmup_taken = true;
            measure_start = PhaseTimer::nowNs();
            phases.add(Phase::Warmup, measure_start - loop_start);
        }
        ++processed;
        const std::uint8_t op = decoded.ops[i];
        if ((op & decodedOpKindMask) == decodedOpInstr) {
            protocol.instruction();
            continue;
        }
        const CacheId cache = decoded.caches[i];
        const BlockNum block = dense
            ? static_cast<BlockNum>(decoded.blocks[i])
            : decoded.denseToBlock[decoded.blocks[i]];
        const bool first_ref = (op & decodedOpFirstRef) != 0;
        if ((op & decodedOpKindMask) == decodedOpRead)
            protocol.read(cache, block, first_ref);
        else
            protocol.write(cache, block, first_ref);
        ++data_refs;
        if (config.invariantCheckPeriod != 0
            && data_refs % config.invariantCheckPeriod == 0) {
            protocol.checkAllInvariants();
        }
    }
    fatalIf(processed == 0, "cannot simulate an empty trace");
    if (config.invariantCheckPeriod != 0)
        protocol.checkAllInvariants();
    fatalIf(!warmup_taken,
            "warm-up of ", config.warmupRefs,
            " references consumed the whole trace (",
            processed, " references)");
    const std::uint64_t loop_end = PhaseTimer::nowNs();
    phases.add(Phase::Simulate, loop_end - measure_start);

    SimResult result;
    result.scheme = protocol.name();
    result.traceName = decoded.name;
    result.numCaches = protocol.numCaches();
    result.events = protocol.events();
    result.events.subtract(warmup_events);
    result.ops = protocol.ops();
    result.ops.subtract(warmup_ops);
    result.cleanWriteHolders = protocol.cleanWriteHolders();
    result.cleanWriteHolders.subtract(warmup_hist);
    result.totalRefs = result.events.totalRefs();
    phases.add(Phase::Reduce, PhaseTimer::nowNs() - loop_end);
    result.phases = phases;
    return result;
}

SimResult
simulateTrace(const DecodedTrace &decoded, const SchemeSpec &scheme,
              const SimConfig &config)
{
    const unsigned caches = decoded.cachesNeeded;
    fatalIf(caches == 0, "trace '", decoded.name,
            "' has no references");
    const auto protocol =
        makeProtocol(scheme, caches, cacheFactoryFor(config));
    return simulateTrace(decoded, *protocol, config);
}

SimResult
simulateTrace(const DecodedTrace &decoded, const std::string &scheme,
              const SimConfig &config)
{
    return simulateTrace(decoded, parseScheme(scheme), config);
}

} // namespace dirsim
