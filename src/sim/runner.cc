#include "sim/runner.hh"

#include <chrono>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/log.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/decoded.hh"
#include "sim/job.hh"

namespace dirsim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Opaque identity of the calling thread for timeline lanes. */
std::uint64_t
currentThreadTag()
{
    return static_cast<std::uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

} // namespace

unsigned
RunnerConfig::defaultJobs()
{
    const unsigned jobs = envUnsigned("DIRSIM_JOBS", 0);
    return jobs > 0 ? jobs : ThreadPool::hardwareThreads();
}

RunnerConfig
RunnerConfig::fromEnvironment()
{
    RunnerConfig config;
    config.jobs = envUnsigned("DIRSIM_JOBS", 0);
    config.decode = decodeEnabled();
    config.shards = ShardPlan::fromEnvironment();
    return config;
}

std::uint64_t
GridResult::totalRefs() const
{
    std::uint64_t refs = 0;
    for (const auto &cell : cells)
        refs += cell.refs;
    return refs;
}

double
GridResult::refsPerSecond() const
{
    return wallSeconds > 0.0
        ? static_cast<double>(totalRefs()) / wallSeconds
        : 0.0;
}

std::uint64_t
GridResult::cacheHits() const
{
    std::uint64_t hits = 0;
    for (const auto &cell : cells)
        hits += cell.cacheHit ? 1 : 0;
    return hits;
}

std::uint64_t
GridResult::cacheMisses() const
{
    return cells.size() - cacheHits();
}

std::uint64_t
GridResult::simulatedRefs() const
{
    std::uint64_t refs = 0;
    for (const auto &cell : cells)
        refs += cell.simulatedRefs;
    return refs;
}

ExperimentRunner::ExperimentRunner(RunnerConfig config_arg)
    : config(std::move(config_arg))
{}

unsigned
ExperimentRunner::resolvedJobs() const
{
    return config.jobs > 0 ? config.jobs : RunnerConfig::defaultJobs();
}

GridResult
ExperimentRunner::runGridCells(
    std::size_t num_schemes, std::size_t num_traces,
    std::uint64_t planned_refs,
    const std::function<SimResult(std::size_t, std::size_t,
                                  CellTiming &)> &cell) const
{
    const std::size_t num_cells = num_schemes * num_traces;
    GridResult grid;
    grid.cells.resize(num_cells);
    grid.schemes.resize(num_schemes);
    for (std::size_t s = 0; s < num_schemes; ++s)
        grid.schemes[s].perTrace.resize(num_traces);

    const auto start = Clock::now();
    grid.startNs = PhaseTimer::nowNs();
    logEvent(LogLevel::Debug, "runner.grid.start")
        .field("schemes", static_cast<std::uint64_t>(num_schemes))
        .field("traces", static_cast<std::uint64_t>(num_traces))
        .field("planned_refs", planned_refs);

    std::mutex progress_mutex;
    std::size_t completed = 0;
    std::uint64_t completed_refs = 0;
    std::size_t completed_hits = 0;
    const auto finishCell = [&](std::size_t index) {
        if (!config.onCellComplete)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        completed_refs += grid.cells[index].refs;
        completed_hits += grid.cells[index].cacheHit ? 1 : 0;
        GridProgress progress{++completed,         num_cells,
                              grid.cells[index],   secondsSince(start),
                              completed_refs,      planned_refs,
                              completed_hits};
        config.onCellComplete(progress);
    };

    const unsigned jobs = resolvedJobs();
    if (jobs == 1) {
        // Exact legacy path: every cell in grid order on this thread.
        for (std::size_t s = 0; s < num_schemes; ++s) {
            for (std::size_t t = 0; t < num_traces; ++t) {
                const std::size_t index = s * num_traces + t;
                grid.schemes[s].perTrace[t] =
                    cell(s, t, grid.cells[index]);
                finishCell(index);
            }
        }
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, num_cells)));
        for (std::size_t s = 0; s < num_schemes; ++s) {
            for (std::size_t t = 0; t < num_traces; ++t) {
                const std::size_t index = s * num_traces + t;
                pool.submit([&, s, t, index] {
                    grid.schemes[s].perTrace[t] =
                        cell(s, t, grid.cells[index]);
                    finishCell(index);
                });
            }
        }
        pool.wait();
    }

    grid.wallSeconds = secondsSince(start);
    grid.jobs = jobs;
    logEvent(LogLevel::Debug, "runner.grid.finished")
        .field("cells", static_cast<std::uint64_t>(num_cells))
        .field("jobs", jobs)
        .field("cache_hits",
               static_cast<std::uint64_t>(grid.cacheHits()))
        .field("wall_seconds", grid.wallSeconds);
    return grid;
}

GridResult
ExperimentRunner::runJobGrid(const std::vector<SimJob> &jobs,
                             const std::vector<SchemeSpec> &schemes,
                             std::size_t num_traces) const
{
    JobOptions options;
    options.decode = config.decode;
    options.shards = config.shards;
    options.cache = config.cellCache;

    // Planning (decode + checksum each distinct trace once) is grid
    // setup, charged as Read time; it makes plannedRefs exact by
    // construction for decoded grids.
    const std::uint64_t plan_start = PhaseTimer::nowNs();
    const SimPlan plan = buildPlan(jobs, options);
    const std::uint64_t plan_ns = PhaseTimer::nowNs() - plan_start;

    GridResult grid = runGridCells(
        schemes.size(), num_traces, plan.plannedRefs(),
        [&](std::size_t s, std::size_t t, CellTiming &timing) {
            const std::size_t index = s * num_traces + t;
            const PlannedCell &planned = plan.cells[index];
            timing.startNs = PhaseTimer::nowNs();
            timing.threadTag = currentThreadTag();
            const auto start = Clock::now();
            timing.scheme = planned.scheme.name();
            timing.traceName = planned.traceName;

            ShardSinkFactory make_sink;
            if (config.makeCellTraceSink) {
                make_sink = [this, &timing](unsigned) {
                    return config.makeCellTraceSink(timing.scheme,
                                                    timing.traceName);
                };
            }
            const CellOutcome outcome =
                runPlannedCell(plan, index, make_sink);
            timing.refs = outcome.records;
            timing.wallSeconds = secondsSince(start);
            timing.cacheHit = outcome.cacheHit;
            timing.shards = outcome.shardsUsed;
            timing.simulatedRefs = outcome.simulatedRefs;
            if (timing.traceName.empty())
                timing.traceName = outcome.result.traceName;
            return outcome.result;
        });
    grid.setupPhases.add(Phase::Read, plan_ns);
    grid.cacheEnabled = config.cellCache != nullptr;
    for (std::size_t s = 0; s < schemes.size(); ++s)
        grid.schemes[s].scheme = schemes[s].name();
    return grid;
}

GridResult
ExperimentRunner::run(const std::vector<SchemeSpec> &schemes,
                      const std::vector<Trace> &traces,
                      const SimConfig &sim) const
{
    fatalIf(schemes.empty(), "experiment grid with no schemes");
    fatalIf(traces.empty(), "experiment grid with no traces");

    std::vector<SimJob> jobs;
    jobs.reserve(schemes.size() * traces.size());
    for (const SchemeSpec &scheme : schemes)
        for (const Trace &trace : traces)
            jobs.push_back({TraceRef::of(trace), scheme, sim});
    return runJobGrid(jobs, schemes, traces.size());
}

GridResult
ExperimentRunner::runFiles(const std::vector<SchemeSpec> &schemes,
                           const std::vector<std::string> &tracePaths,
                           const SimConfig &sim) const
{
    fatalIf(schemes.empty(), "experiment grid with no schemes");
    fatalIf(tracePaths.empty(), "experiment grid with no trace files");

    if (config.decode) {
        // One decode per file — the only read it ever gets. The plan
        // validates the file, sizes the coherence domain, and captures
        // the stream every cell replays, fixing the legacy double read
        // (sizing scan + per-cell reopen).
        std::vector<SimJob> jobs;
        jobs.reserve(schemes.size() * tracePaths.size());
        for (const SchemeSpec &scheme : schemes)
            for (const std::string &path : tracePaths)
                jobs.push_back({TraceRef::file(path), scheme, sim});
        return runJobGrid(jobs, schemes, tracePaths.size());
    }

    // Legacy bounded-memory pipeline: one validating scan per file,
    // up front, sizes every cell's coherence domain and rejects
    // malformed inputs before any simulation work is queued; each
    // cell then re-opens and streams its file.
    const std::uint64_t scan_start = PhaseTimer::nowNs();
    std::vector<TraceFileInfo> infos;
    infos.reserve(tracePaths.size());
    for (const auto &path : tracePaths)
        infos.push_back(scanTraceFile(path, sim.sharing));
    const std::uint64_t scan_ns = PhaseTimer::nowNs() - scan_start;

    std::vector<SimJob> jobs;
    jobs.reserve(schemes.size() * tracePaths.size());
    for (const SchemeSpec &scheme : schemes) {
        for (std::size_t t = 0; t < tracePaths.size(); ++t) {
            TraceRef ref = TraceRef::file(tracePaths[t]);
            ref.cachesHint = infos[t].caches;
            ref.recordsHint = infos[t].records;
            ref.nameHint = infos[t].name;
            jobs.push_back({std::move(ref), scheme, sim});
        }
    }
    GridResult grid = runJobGrid(jobs, schemes, tracePaths.size());
    grid.setupPhases.add(Phase::Read, scan_ns);
    return grid;
}

GridResult
ExperimentRunner::runFiles(const std::vector<std::string> &schemes,
                           const std::vector<std::string> &tracePaths,
                           const SimConfig &sim) const
{
    std::vector<SchemeSpec> specs;
    specs.reserve(schemes.size());
    for (const auto &name : schemes)
        specs.push_back(parseScheme(name));
    return runFiles(specs, tracePaths, sim);
}

GridResult
ExperimentRunner::run(const std::vector<std::string> &schemes,
                      const std::vector<Trace> &traces,
                      const SimConfig &sim) const
{
    std::vector<SchemeSpec> specs;
    specs.reserve(schemes.size());
    for (const auto &name : schemes)
        specs.push_back(parseScheme(name));
    return run(specs, traces, sim);
}

} // namespace dirsim
