#include "sim/runner.hh"

#include <chrono>
#include <mutex>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace dirsim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Simulate one cell and record its timing. */
SimResult
runCell(const SchemeSpec &scheme, const Trace &trace,
        const SimConfig &sim, CellTiming &timing)
{
    const auto start = Clock::now();
    SimResult result = simulateTrace(trace, scheme, sim);
    timing.scheme = scheme.name();
    timing.traceName = trace.name();
    timing.refs = trace.size();
    timing.wallSeconds = secondsSince(start);
    return result;
}

} // namespace

unsigned
RunnerConfig::defaultJobs()
{
    const unsigned jobs = envUnsigned("DIRSIM_JOBS", 0);
    return jobs > 0 ? jobs : ThreadPool::hardwareThreads();
}

RunnerConfig
RunnerConfig::fromEnvironment()
{
    RunnerConfig config;
    config.jobs = envUnsigned("DIRSIM_JOBS", 0);
    return config;
}

std::uint64_t
GridResult::totalRefs() const
{
    std::uint64_t refs = 0;
    for (const auto &cell : cells)
        refs += cell.refs;
    return refs;
}

double
GridResult::refsPerSecond() const
{
    return wallSeconds > 0.0
        ? static_cast<double>(totalRefs()) / wallSeconds
        : 0.0;
}

ExperimentRunner::ExperimentRunner(RunnerConfig config_arg)
    : config(std::move(config_arg))
{}

unsigned
ExperimentRunner::resolvedJobs() const
{
    return config.jobs > 0 ? config.jobs : RunnerConfig::defaultJobs();
}

GridResult
ExperimentRunner::run(const std::vector<SchemeSpec> &schemes,
                      const std::vector<Trace> &traces,
                      const SimConfig &sim) const
{
    fatalIf(schemes.empty(), "experiment grid with no schemes");
    fatalIf(traces.empty(), "experiment grid with no traces");

    const std::size_t num_cells = schemes.size() * traces.size();
    GridResult grid;
    grid.cells.resize(num_cells);
    grid.schemes.resize(schemes.size());
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        grid.schemes[s].scheme = schemes[s].name();
        grid.schemes[s].perTrace.resize(traces.size());
    }

    const auto start = Clock::now();

    std::mutex progress_mutex;
    std::size_t completed = 0;
    const auto finishCell = [&](std::size_t cell) {
        if (!config.onCellComplete)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        GridProgress progress{++completed, num_cells,
                              grid.cells[cell]};
        config.onCellComplete(progress);
    };

    const unsigned jobs = resolvedJobs();
    if (jobs == 1) {
        // Exact legacy path: every cell in grid order on this thread.
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            for (std::size_t t = 0; t < traces.size(); ++t) {
                const std::size_t cell = s * traces.size() + t;
                grid.schemes[s].perTrace[t] = runCell(
                    schemes[s], traces[t], sim, grid.cells[cell]);
                finishCell(cell);
            }
        }
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, num_cells)));
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            for (std::size_t t = 0; t < traces.size(); ++t) {
                const std::size_t cell = s * traces.size() + t;
                pool.submit([&, s, t, cell] {
                    grid.schemes[s].perTrace[t] = runCell(
                        schemes[s], traces[t], sim, grid.cells[cell]);
                    finishCell(cell);
                });
            }
        }
        pool.wait();
    }

    grid.wallSeconds = secondsSince(start);
    grid.jobs = jobs;
    return grid;
}

GridResult
ExperimentRunner::run(const std::vector<std::string> &schemes,
                      const std::vector<Trace> &traces,
                      const SimConfig &sim) const
{
    std::vector<SchemeSpec> specs;
    specs.reserve(schemes.size());
    for (const auto &name : schemes)
        specs.push_back(parseScheme(name));
    return run(specs, traces, sim);
}

} // namespace dirsim
