#include "sim/runner.hh"

#include <chrono>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/decoded.hh"

namespace dirsim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Opaque identity of the calling thread for timeline lanes. */
std::uint64_t
currentThreadTag()
{
    return static_cast<std::uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

/**
 * Attach a per-cell trace sink, when configured. The returned owner
 * must live until the cell's simulation call returns; destroying it
 * merges the session's data into its tracer.
 */
std::unique_ptr<ProtocolTraceSink>
attachCellSink(const RunnerConfig::CellSinkFactory &make_sink,
               const std::string &scheme, const std::string &trace,
               SimConfig &sim)
{
    if (!make_sink)
        return nullptr;
    std::unique_ptr<ProtocolTraceSink> sink =
        make_sink(scheme, trace);
    if (sink)
        sim.traceSink = sink.get();
    return sink;
}

/** Simulate one cell and record its timing. */
SimResult
runCell(const SchemeSpec &scheme, const Trace &trace,
        const SimConfig &sim,
        const RunnerConfig::CellSinkFactory &make_sink,
        CellTiming &timing)
{
    timing.startNs = PhaseTimer::nowNs();
    timing.threadTag = currentThreadTag();
    const auto start = Clock::now();
    timing.scheme = scheme.name();
    timing.traceName = trace.name();
    SimConfig cell_sim = sim;
    const auto sink = attachCellSink(make_sink, timing.scheme,
                                     timing.traceName, cell_sim);
    SimResult result = simulateTrace(trace, scheme, cell_sim);
    timing.refs = trace.size();
    timing.wallSeconds = secondsSince(start);
    return result;
}

/** The decode-once cell: replay a shared decoded stream. */
SimResult
runDecodedCell(const SchemeSpec &scheme, const DecodedTrace &decoded,
               const SimConfig &sim,
               const RunnerConfig::CellSinkFactory &make_sink,
               CellTiming &timing)
{
    timing.startNs = PhaseTimer::nowNs();
    timing.threadTag = currentThreadTag();
    const auto start = Clock::now();
    timing.scheme = scheme.name();
    timing.traceName = decoded.name;
    SimConfig cell_sim = sim;
    const auto sink = attachCellSink(make_sink, timing.scheme,
                                     timing.traceName, cell_sim);
    SimResult result = simulateTrace(decoded, scheme, cell_sim);
    timing.refs = decoded.numRecords();
    timing.wallSeconds = secondsSince(start);
    return result;
}

} // namespace

unsigned
RunnerConfig::defaultJobs()
{
    const unsigned jobs = envUnsigned("DIRSIM_JOBS", 0);
    return jobs > 0 ? jobs : ThreadPool::hardwareThreads();
}

RunnerConfig
RunnerConfig::fromEnvironment()
{
    RunnerConfig config;
    config.jobs = envUnsigned("DIRSIM_JOBS", 0);
    config.decode = decodeEnabled();
    return config;
}

std::uint64_t
GridResult::totalRefs() const
{
    std::uint64_t refs = 0;
    for (const auto &cell : cells)
        refs += cell.refs;
    return refs;
}

double
GridResult::refsPerSecond() const
{
    return wallSeconds > 0.0
        ? static_cast<double>(totalRefs()) / wallSeconds
        : 0.0;
}

ExperimentRunner::ExperimentRunner(RunnerConfig config_arg)
    : config(std::move(config_arg))
{}

unsigned
ExperimentRunner::resolvedJobs() const
{
    return config.jobs > 0 ? config.jobs : RunnerConfig::defaultJobs();
}

GridResult
ExperimentRunner::runGridCells(
    std::size_t num_schemes, std::size_t num_traces,
    std::uint64_t planned_refs,
    const std::function<SimResult(std::size_t, std::size_t,
                                  CellTiming &)> &cell) const
{
    const std::size_t num_cells = num_schemes * num_traces;
    GridResult grid;
    grid.cells.resize(num_cells);
    grid.schemes.resize(num_schemes);
    for (std::size_t s = 0; s < num_schemes; ++s)
        grid.schemes[s].perTrace.resize(num_traces);

    const auto start = Clock::now();
    grid.startNs = PhaseTimer::nowNs();

    std::mutex progress_mutex;
    std::size_t completed = 0;
    std::uint64_t completed_refs = 0;
    const auto finishCell = [&](std::size_t index) {
        if (!config.onCellComplete)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        completed_refs += grid.cells[index].refs;
        GridProgress progress{++completed,         num_cells,
                              grid.cells[index],   secondsSince(start),
                              completed_refs,      planned_refs};
        config.onCellComplete(progress);
    };

    const unsigned jobs = resolvedJobs();
    if (jobs == 1) {
        // Exact legacy path: every cell in grid order on this thread.
        for (std::size_t s = 0; s < num_schemes; ++s) {
            for (std::size_t t = 0; t < num_traces; ++t) {
                const std::size_t index = s * num_traces + t;
                grid.schemes[s].perTrace[t] =
                    cell(s, t, grid.cells[index]);
                finishCell(index);
            }
        }
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, num_cells)));
        for (std::size_t s = 0; s < num_schemes; ++s) {
            for (std::size_t t = 0; t < num_traces; ++t) {
                const std::size_t index = s * num_traces + t;
                pool.submit([&, s, t, index] {
                    grid.schemes[s].perTrace[t] =
                        cell(s, t, grid.cells[index]);
                    finishCell(index);
                });
            }
        }
        pool.wait();
    }

    grid.wallSeconds = secondsSince(start);
    grid.jobs = jobs;
    return grid;
}

GridResult
ExperimentRunner::run(const std::vector<SchemeSpec> &schemes,
                      const std::vector<Trace> &traces,
                      const SimConfig &sim) const
{
    fatalIf(schemes.empty(), "experiment grid with no schemes");
    fatalIf(traces.empty(), "experiment grid with no traces");

    if (config.decode) {
        // Decode each trace once; all scheme cells replay the shared
        // immutable stream. The decode is grid setup, charged as Read
        // time, and makes plannedRefs exact by construction.
        const std::uint64_t decode_start = PhaseTimer::nowNs();
        std::vector<DecodedTrace> decoded;
        decoded.reserve(traces.size());
        for (const Trace &trace : traces)
            decoded.push_back(
                decodeTrace(trace, sim.blockBytes, sim.sharing));
        const std::uint64_t decode_ns =
            PhaseTimer::nowNs() - decode_start;

        std::uint64_t trace_refs = 0;
        for (const DecodedTrace &stream : decoded)
            trace_refs += stream.numRecords();
        GridResult grid = runGridCells(
            schemes.size(), traces.size(),
            trace_refs * schemes.size(),
            [&](std::size_t s, std::size_t t, CellTiming &timing) {
                return runDecodedCell(schemes[s], decoded[t], sim,
                                      config.makeCellTraceSink,
                                      timing);
            });
        grid.setupPhases.add(Phase::Read, decode_ns);
        for (std::size_t s = 0; s < schemes.size(); ++s)
            grid.schemes[s].scheme = schemes[s].name();
        return grid;
    }

    std::uint64_t trace_refs = 0;
    for (const Trace &trace : traces)
        trace_refs += trace.size();
    GridResult grid = runGridCells(
        schemes.size(), traces.size(), trace_refs * schemes.size(),
        [&](std::size_t s, std::size_t t, CellTiming &timing) {
            return runCell(schemes[s], traces[t], sim,
                           config.makeCellTraceSink, timing);
        });
    for (std::size_t s = 0; s < schemes.size(); ++s)
        grid.schemes[s].scheme = schemes[s].name();
    return grid;
}

GridResult
ExperimentRunner::runFiles(const std::vector<SchemeSpec> &schemes,
                           const std::vector<std::string> &tracePaths,
                           const SimConfig &sim) const
{
    fatalIf(schemes.empty(), "experiment grid with no schemes");
    fatalIf(tracePaths.empty(), "experiment grid with no trace files");

    if (config.decode) {
        // One decode per file — the only read it ever gets. The same
        // pass validates the file, sizes the coherence domain, and
        // captures the stream every cell replays, fixing the legacy
        // double read (sizing scan + per-cell reopen).
        const std::uint64_t decode_start = PhaseTimer::nowNs();
        std::vector<DecodedTrace> decoded;
        decoded.reserve(tracePaths.size());
        for (const auto &path : tracePaths)
            decoded.push_back(decodeTraceFile(path, sim.blockBytes,
                                              sim.sharing));
        const std::uint64_t decode_ns =
            PhaseTimer::nowNs() - decode_start;

        std::uint64_t trace_refs = 0;
        for (const DecodedTrace &stream : decoded)
            trace_refs += stream.numRecords();
        GridResult grid = runGridCells(
            schemes.size(), tracePaths.size(),
            trace_refs * schemes.size(),
            [&](std::size_t s, std::size_t t, CellTiming &timing) {
                return runDecodedCell(schemes[s], decoded[t], sim,
                                      config.makeCellTraceSink,
                                      timing);
            });
        grid.setupPhases.add(Phase::Read, decode_ns);
        for (std::size_t s = 0; s < schemes.size(); ++s)
            grid.schemes[s].scheme = schemes[s].name();
        return grid;
    }

    // One validating scan per file, up front: sizes every cell's
    // coherence domain and rejects malformed inputs before any
    // simulation work is queued.
    const std::uint64_t scan_start = PhaseTimer::nowNs();
    std::vector<TraceFileInfo> infos;
    infos.reserve(tracePaths.size());
    for (const auto &path : tracePaths)
        infos.push_back(scanTraceFile(path, sim.sharing));
    const std::uint64_t scan_ns = PhaseTimer::nowNs() - scan_start;

    std::uint64_t trace_refs = 0;
    for (const TraceFileInfo &info : infos)
        trace_refs += info.records;
    GridResult grid = runGridCells(
        schemes.size(), tracePaths.size(),
        trace_refs * schemes.size(),
        [&](std::size_t s, std::size_t t, CellTiming &timing) {
            timing.startNs = PhaseTimer::nowNs();
            timing.threadTag = currentThreadTag();
            const auto start = Clock::now();
            timing.scheme = schemes[s].name();
            timing.traceName = infos[t].name;
            SimConfig cell_sim = sim;
            const auto sink = attachCellSink(
                config.makeCellTraceSink, timing.scheme,
                timing.traceName, cell_sim);
            SimResult result = simulateTraceFile(
                tracePaths[t], schemes[s], cell_sim,
                infos[t].caches);
            timing.refs = infos[t].records;
            timing.wallSeconds = secondsSince(start);
            return result;
        });
    grid.setupPhases.add(Phase::Read, scan_ns);
    for (std::size_t s = 0; s < schemes.size(); ++s)
        grid.schemes[s].scheme = schemes[s].name();
    return grid;
}

GridResult
ExperimentRunner::runFiles(const std::vector<std::string> &schemes,
                           const std::vector<std::string> &tracePaths,
                           const SimConfig &sim) const
{
    std::vector<SchemeSpec> specs;
    specs.reserve(schemes.size());
    for (const auto &name : schemes)
        specs.push_back(parseScheme(name));
    return runFiles(specs, tracePaths, sim);
}

GridResult
ExperimentRunner::run(const std::vector<std::string> &schemes,
                      const std::vector<Trace> &traces,
                      const SimConfig &sim) const
{
    std::vector<SchemeSpec> specs;
    specs.reserve(schemes.size());
    for (const auto &name : schemes)
        specs.push_back(parseScheme(name));
    return run(specs, traces, sim);
}

} // namespace dirsim
