/**
 * @file
 * Report generation: render experiment results as the text tables
 * the paper's evaluation uses. The repro_* benchmarks and the
 * example CLIs build their output from these helpers, and downstream
 * users get ready-made views of their own runs.
 */

#ifndef DIRSIM_SIM_REPORT_HH
#define DIRSIM_SIM_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/experiment.hh"

namespace dirsim
{

/**
 * Table 4 view: event frequencies (percent of all references) with
 * one column per scheme, in the paper's row order.
 *
 * @param grid per-scheme results (runGrid output)
 * @param paper_layout when true, cells the paper leaves blank for a
 *        scheme (e.g. rm-blk-cln for WTI) print as "-"
 */
TextTable eventFrequencyTable(const std::vector<SchemeResults> &grid,
                              bool paper_layout = false);

/**
 * Table 5 view: the bus-cycle breakdown per memory reference by
 * operation category, plus the cumulative row.
 *
 * @param grid per-scheme results
 * @param costs the bus model to apply
 */
TextTable costBreakdownTable(const std::vector<SchemeResults> &grid,
                             const BusCosts &costs);

/**
 * Figure 1 view: the distribution of other-cache copies on writes to
 * previously-clean blocks, per trace and merged, with ASCII bars.
 *
 * @param scheme one scheme's results (usually Dir0B)
 */
TextTable invalidationHistogramTable(const SchemeResults &scheme);

/**
 * Figure 2/3 view: total cycles per reference on both buses, per
 * scheme (and per trace when @p per_trace is set).
 */
TextTable busCyclesTable(const std::vector<SchemeResults> &grid,
                         bool per_trace = false);

/**
 * One-stop textual report for a single run: event frequencies, both
 * bus costs, transactions, and the Figure-1 summary.
 */
void printRunReport(std::ostream &os, const SimResult &result);

} // namespace dirsim

#endif // DIRSIM_SIM_REPORT_HH
