/**
 * @file
 * The scaling suite: N-cache workloads for the cache-count sweep.
 *
 * The paper's evaluation ran on a 4-CPU VAX; the modern directory
 * debate is about hundreds of sharers. This module defines the
 * machine-size axis of that study: one synthetic workload family,
 * parameterized only by the cache count N, with the sharing degree
 * (processes per sharing cluster) and the migration rate held fixed
 * across N so that cost and invalidation-distribution curves as a
 * function of N compare like against like. The examples/dirsim_scaling
 * CLI runs the scheme grid over this suite and renders those curves
 * from the run's artifacts (docs/scaling.md).
 */

#ifndef DIRSIM_SIM_SCALING_HH
#define DIRSIM_SIM_SCALING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "protocols/registry.hh"
#include "trace/trace.hh"
#include "tracegen/profile.hh"

namespace dirsim
{

/** Parameters of the scaling suite. */
struct ScalingParams
{
    /**
     * Cache counts to sweep. The defaults cover the paper's machine
     * (4) through the sizes the scalability debate is about; every
     * count must fit the trace format's u16 cpu ids.
     */
    std::vector<unsigned> cacheCounts{4, 16, 64, 256, 1024};

    /**
     * References per trace — the same for every N, so per-reference
     * metrics compare directly across machine sizes.
     */
    std::uint64_t refsPerTrace = 600'000;

    /** Base seed; each N derives its own from it. */
    std::uint64_t seed = 1024;

    /**
     * Sharing degree: processes per sharing cluster
     * (WorkloadProfile::sharingClusterProcs). Application data is
     * shared by at most this many caches; kernel hot words stay
     * machine-global, giving the widely-shared tail.
     */
    unsigned clusterProcs = 4;

    /**
     * Per-timeslice CPU-swap probability on the fully-loaded machine
     * (WorkloadProfile::migrationProb). One order of magnitude above
     * the paper-default so migration-induced sharing is visible at
     * suite-sized traces while staying rare per reference.
     */
    double migrationProb = 0.002;

    /**
     * Apply the DIRSIM_SCALING_{NS,REFS,SEED,CLUSTER} environment
     * overrides, if set. DIRSIM_SCALING_NS is a comma-separated list
     * of cache counts, e.g. "4,64,1024".
     */
    static ScalingParams fromEnvironment();
};

/**
 * The N-cache workload profile, named "scale<N>".
 *
 * A fully-loaded machine (one process per CPU, so the migration knob
 * is live), thor-like reference mixes, and cluster-partitioned
 * application sharing per @p params. Deterministic: depends only on
 * (num_cpus, params).
 */
WorkloadProfile scalingProfile(unsigned num_cpus,
                               const ScalingParams &params = {});

/** Generate the "scale<N>" trace for one cache count. */
Trace scalingTrace(unsigned num_cpus,
                   const ScalingParams &params = {});

/** Generate one trace per params.cacheCounts entry, in order. */
std::vector<Trace> scalingSuite(
    const ScalingParams &params = ScalingParams::fromEnvironment());

/**
 * The scheme axis of the scaling report: Dir0B through the full map
 * (Dir_inf), including the broadcast and no-broadcast limited-pointer
 * families at small i, the ternary coarse vector, and a region coarse
 * vector whose granularity does not divide most cache counts
 * (exercising the last-region arithmetic).
 */
std::vector<SchemeSpec> scalingSchemes();

} // namespace dirsim

#endif // DIRSIM_SIM_SCALING_HH
