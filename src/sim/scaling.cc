#include "sim/scaling.hh"

#include "common/env.hh"
#include "common/logging.hh"
#include "tracegen/generator.hh"

namespace dirsim
{

namespace
{

/** Parse a comma-separated cache-count list, e.g. "4,64,1024". */
std::vector<unsigned>
parseCacheCounts(const std::string &text)
{
    std::vector<unsigned> counts;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string item = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        fatalIf(item.empty() || item.find_first_not_of("0123456789")
                                    != std::string::npos,
                "DIRSIM_SCALING_NS: bad cache count '", item,
                "' in '", text, "'");
        const unsigned long value = std::stoul(item);
        fatalIf(value == 0 || value > 65535,
                "DIRSIM_SCALING_NS: cache count ", value,
                " outside [1, 65535]");
        counts.push_back(static_cast<unsigned>(value));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    fatalIf(counts.empty(), "DIRSIM_SCALING_NS: empty list");
    return counts;
}

} // namespace

ScalingParams
ScalingParams::fromEnvironment()
{
    ScalingParams params;
    if (const auto ns = envString("DIRSIM_SCALING_NS"))
        params.cacheCounts = parseCacheCounts(*ns);
    params.refsPerTrace =
        envU64("DIRSIM_SCALING_REFS", params.refsPerTrace);
    params.seed = envU64("DIRSIM_SCALING_SEED", params.seed);
    params.clusterProcs =
        envUnsigned("DIRSIM_SCALING_CLUSTER", params.clusterProcs);
    return params;
}

WorkloadProfile
scalingProfile(unsigned num_cpus, const ScalingParams &params)
{
    fatalIf(num_cpus == 0, "scaling profile needs at least one CPU");
    WorkloadProfile p;
    p.name = "scale" + std::to_string(num_cpus);
    p.numCpus = num_cpus;
    // Fully loaded: one process per CPU, so the ready queue stays
    // empty and the migration knob (CPU swaps) is the only way
    // processes move — the rate is then directly migrationProb per
    // timeslice.
    p.numProcesses = num_cpus;

    // Thor-like mixes: a parallel application with long private
    // phases, read-mostly browsing, migratory lock payloads, and
    // MACH-scale OS activity.
    p.localWorkRefs = 600;
    p.localMix = PhaseMix{0.420, 0.410};
    p.privateWords = 8192;
    p.privateZipf = 0.80;

    p.browseProb = 0.50;
    p.browseRefs = 30;
    p.browseWriteProb = 0.010;
    p.sharedWords = 6144;
    p.sharedZipf = 0.70;

    p.lockUseProb = 0.60;
    p.numLocks = 2;
    p.criticalRefs = 300;
    p.criticalMix = PhaseMix{0.460, 0.480};
    p.mailboxBlocks = 2;
    p.lockRegionBlocks = 8;

    p.osBurstProb = 0.90;
    p.osBurstRefs = 180;
    p.osMix = PhaseMix{0.45, 0.47};
    p.kernelHotFrac = 0.05;

    // The scaling knobs proper: cluster-bounded application sharing
    // and a visible (but still rare) migration rate.
    p.sharingClusterProcs = params.clusterProcs;
    p.migrationProb = params.migrationProb;
    return p;
}

Trace
scalingTrace(unsigned num_cpus, const ScalingParams &params)
{
    fatalIf(params.refsPerTrace == 0,
            "scaling traces cannot be empty");
    // Distinct derived seeds keep the per-N random streams unrelated
    // while the whole suite remains a function of the base seed.
    return generateTrace(scalingProfile(num_cpus, params),
                         params.refsPerTrace,
                         params.seed * 31 + num_cpus);
}

std::vector<Trace>
scalingSuite(const ScalingParams &params)
{
    fatalIf(params.cacheCounts.empty(),
            "scaling suite needs at least one cache count");
    std::vector<Trace> traces;
    traces.reserve(params.cacheCounts.size());
    for (const unsigned n : params.cacheCounts)
        traces.push_back(scalingTrace(n, params));
    return traces;
}

std::vector<SchemeSpec>
scalingSchemes()
{
    // Dir0B through Dir_inf, plus both coarse-vector codes. The
    // region granularity 12 deliberately divides none of the default
    // cache counts, so every entry carries a short last region.
    std::vector<SchemeSpec> specs;
    for (const char *name :
         {"Dir0B", "Dir1NB", "Dir2NB", "Dir4NB", "Dir4B", "DirCV",
          "DirCVr12", "DirNNB"})
        specs.push_back(parseScheme(name));
    return specs;
}

} // namespace dirsim
