#include "sim/job.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>

#include "common/bitops.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "directory/sharer_set.hh"
#include "trace/format.hh"

namespace dirsim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

const char *
toString(SharingModel sharing)
{
    return sharing == SharingModel::ByProcess ? "process" : "processor";
}

} // namespace

TraceRef
TraceRef::of(const Trace &trace)
{
    TraceRef ref;
    ref.kind = Kind::Memory;
    ref.memory = &trace;
    return ref;
}

TraceRef
TraceRef::of(const DecodedTrace &decoded)
{
    TraceRef ref;
    ref.kind = Kind::Decoded;
    ref.decoded = &decoded;
    return ref;
}

TraceRef
TraceRef::file(std::string path)
{
    TraceRef ref;
    ref.kind = Kind::File;
    ref.path = std::move(path);
    return ref;
}

std::string
TraceRef::displayName() const
{
    switch (kind) {
      case Kind::Memory:
        return memory->name();
      case Kind::Decoded:
        return decoded->name;
      case Kind::File:
        return nameHint.empty() ? path : nameHint;
    }
    return path;
}

ShardPlan
ShardPlan::fromEnvironment()
{
    ShardPlan plan;
    const auto setting = envString("DIRSIM_SHARDS");
    if (!setting || setting->empty())
        return plan;
    if (*setting == "auto") {
        plan.shards = 0;
        return plan;
    }
    plan.shards = envUnsigned("DIRSIM_SHARDS", 1);
    return plan;
}

unsigned
ShardPlan::resolve(std::uint64_t data_refs, std::uint64_t block_count,
                   bool finite_caches) const
{
    if (finite_caches)
        return 1;
    std::uint64_t k = shards;
    if (k == 0) {
        // Auto: one shard per minRefsPerShard data refs, capped by
        // the worker budget — small cells stay sequential.
        const std::uint64_t cap =
            maxShards > 0 ? maxShards : ThreadPool::hardwareThreads();
        const std::uint64_t per_shard =
            std::max<std::uint64_t>(minRefsPerShard, 1);
        k = std::min(data_refs / per_shard, cap);
    }
    // Never more shards than blocks to put in them.
    k = std::min(k, std::max<std::uint64_t>(block_count, 1));
    return static_cast<unsigned>(std::max<std::uint64_t>(k, 1));
}

std::uint64_t
traceChecksumFnv64(const Trace &trace)
{
    traceformat::Fnv64 fnv;
    const std::string &name = trace.name();
    fnv.update(name.data(), name.size());
    const std::uint64_t shape[2] = {trace.numCpus(), trace.size()};
    fnv.update(shape, sizeof(shape));
    // TraceRecord packs into exactly 16 bytes (static_assert in
    // trace/record.hh), so the raw array is padding-free.
    fnv.update(trace.data().data(),
               trace.size() * sizeof(TraceRecord));
    return fnv.value();
}

std::uint64_t
traceChecksumFnv64(const DecodedTrace &decoded)
{
    traceformat::Fnv64 fnv;
    fnv.update(decoded.name.data(), decoded.name.size());
    const std::uint64_t shape[5] = {
        decoded.blockBytes,
        decoded.sharing == SharingModel::ByProcess ? 0u : 1u,
        decoded.cachesNeeded, decoded.cachesUsed, decoded.dataRefs};
    fnv.update(shape, sizeof(shape));
    fnv.update(decoded.ops.data(),
               decoded.ops.size() * sizeof(decoded.ops[0]));
    fnv.update(decoded.blocks.data(),
               decoded.blocks.size() * sizeof(decoded.blocks[0]));
    fnv.update(decoded.caches.data(),
               decoded.caches.size() * sizeof(decoded.caches[0]));
    fnv.update(decoded.denseToBlock.data(),
               decoded.denseToBlock.size()
                   * sizeof(decoded.denseToBlock[0]));
    return fnv.value();
}

std::uint64_t
fileChecksumFnv64(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open '", path, "' for checksumming");
    traceformat::Fnv64 fnv;
    char buf[1 << 16];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
        fnv.update(buf, static_cast<std::size_t>(in.gcount()));
        if (in.eof())
            break;
    }
    fatalIf(in.bad(), "I/O error while checksumming '", path, "'");
    return fnv.value();
}

std::uint64_t
cellCacheKey(std::uint64_t trace_checksum, const SchemeSpec &scheme,
             const SimConfig &config)
{
    // Canonical text, then FNV-1a 64. Observation-only fields
    // (traceSink, invariantCheckPeriod) do not change the result and
    // are deliberately absent, so an instrumented run and a plain run
    // of the same cell share one entry.
    std::ostringstream key;
    key << "v" << engineSchemaVersion << "|trace:" << std::hex
        << trace_checksum << std::dec << "|scheme:" << scheme.name()
        << "|block:" << config.blockBytes
        << "|sharing:" << toString(config.sharing)
        << "|warmup:" << config.warmupRefs;
    if (config.finiteCache) {
        key << "|finite:" << config.finiteCache->capacityBytes << ":"
            << config.finiteCache->ways << ":"
            << config.finiteCache->blockBytes;
    }
    const std::string text = key.str();
    traceformat::Fnv64 fnv;
    fnv.update(text.data(), text.size());
    return fnv.value();
}

JobOptions
JobOptions::fromEnvironment()
{
    JobOptions options;
    options.shards = ShardPlan::fromEnvironment();
    options.decode = decodeEnabled();
    return options;
}

JobOptions
JobOptions::sequential()
{
    JobOptions options;
    options.shards.shards = 1;
    options.decode = false;
    options.cache = nullptr;
    return options;
}

std::uint64_t
SimPlan::plannedRefs() const
{
    std::uint64_t refs = 0;
    for (const PlannedCell &cell : cells)
        refs += cell.records;
    return refs;
}

SimPlan
buildPlan(const std::vector<SimJob> &jobs, const JobOptions &options)
{
    SimPlan plan;
    plan.cache = options.cache;
    plan.cells.reserve(jobs.size());

    // Decode and checksum each distinct (source, geometry) once; the
    // cells share the immutable stream read-only.
    std::map<std::string, const DecodedTrace *> streams;
    std::map<std::string, std::uint64_t> checksums;

    for (const SimJob &job : jobs) {
        PlannedCell cell;
        cell.scheme = job.scheme;
        cell.config = job.config;
        cell.trace = job.trace;

        const TraceRef &ref = job.trace;
        std::ostringstream source_key;
        switch (ref.kind) {
          case TraceRef::Kind::Memory:
            source_key << "mem:" << static_cast<const void *>(ref.memory);
            fatalIf(ref.memory == nullptr,
                    "SimJob references a null Trace");
            break;
          case TraceRef::Kind::Decoded:
            source_key << "dec:"
                       << static_cast<const void *>(ref.decoded);
            fatalIf(ref.decoded == nullptr,
                    "SimJob references a null DecodedTrace");
            break;
          case TraceRef::Kind::File:
            source_key << "file:" << ref.path;
            fatalIf(ref.path.empty(),
                    "SimJob references an empty trace path");
            break;
        }
        const std::string source = source_key.str();

        if (ref.kind == TraceRef::Kind::Decoded) {
            cell.stream = ref.decoded;
        } else if (options.decode) {
            const std::string stream_key = source + "|"
                + std::to_string(job.config.blockBytes) + "|"
                + toString(job.config.sharing);
            auto it = streams.find(stream_key);
            if (it == streams.end()) {
                auto stream = std::make_unique<DecodedTrace>(
                    ref.kind == TraceRef::Kind::Memory
                        ? decodeTrace(*ref.memory, job.config.blockBytes,
                                      job.config.sharing)
                        : decodeTraceFile(ref.path,
                                          job.config.blockBytes,
                                          job.config.sharing));
                it = streams.emplace(stream_key, stream.get()).first;
                plan.streams.push_back(std::move(stream));
            }
            cell.stream = it->second;
        }

        if (cell.stream != nullptr) {
            cell.traceName = cell.stream->name;
            cell.records = cell.stream->numRecords();
        } else if (ref.kind == TraceRef::Kind::Memory) {
            cell.traceName = ref.memory->name();
            cell.records = ref.memory->size();
        } else {
            cell.traceName = ref.nameHint.empty() ? ref.path
                                                  : ref.nameHint;
            cell.records = ref.recordsHint;
        }

        // A raw single sink cannot be split across shard workers and
        // cannot be replayed from the cache; such cells run
        // sequentially and uncached.
        const bool raw_sink = job.config.traceSink != nullptr;
        cell.shards = cell.stream != nullptr && !raw_sink
            ? options.shards.resolve(cell.stream->dataRefs,
                                     cell.stream->blockCount(),
                                     job.config.finiteCache.has_value())
            : 1;

        if (options.cache && !raw_sink) {
            // The stream checksum is canonical across file and
            // in-memory inputs (decoding is deterministic); undecoded
            // sources hash their raw representation instead.
            const std::string sum_key = cell.stream != nullptr
                ? "sptr:" + source : source;
            auto it = checksums.find(sum_key);
            if (it == checksums.end()) {
                const std::uint64_t sum = cell.stream != nullptr
                    ? traceChecksumFnv64(*cell.stream)
                    : ref.kind == TraceRef::Kind::Memory
                        ? traceChecksumFnv64(*ref.memory)
                        : fileChecksumFnv64(ref.path);
                it = checksums.emplace(sum_key, sum).first;
            }
            cell.cacheKey = cellCacheKey(it->second, job.scheme,
                                         job.config);
            cell.cacheable = true;
        }
        plan.cells.push_back(std::move(cell));
    }
    return plan;
}

namespace
{

/** One shard's simulation output plus its live protocol arena (kept
 *  for the cross-shard disjointness check). */
struct ShardPart
{
    SimResult result;
    std::unique_ptr<CoherenceProtocol> protocol;
};

/**
 * Replay the whole stream against a per-shard protocol arena,
 * skipping blocks owned by other shards. The loop is the dense
 * simulateTrace() statement sequence with one added membership test;
 * the global `processed` counter (every record, skipped or not)
 * keeps the warm-up boundary at the same record index in every
 * shard, which is what makes per-shard (total - warmup) subtraction
 * sum to the sequential cell's exactly.
 */
ShardPart
runShard(const DecodedTrace &decoded, const SchemeSpec &scheme,
         const SimConfig &config,
         const std::vector<std::uint32_t> &shard_of, unsigned shard,
         const ShardSinkFactory &make_sink)
{
    ShardPart part;
    part.protocol = makeProtocol(scheme, decoded.cachesNeeded);
    CoherenceProtocol &protocol = *part.protocol;

    std::unique_ptr<ProtocolTraceSink> sink;
    if (make_sink) {
        sink = make_sink(shard);
        if (sink)
            protocol.attachTracer(sink.get());
    }
    protocol.reserveBlocks(decoded.blockCount(),
                           decoded.denseToBlock.data());

    std::uint64_t data_refs = 0;
    std::uint64_t processed = 0;
    EventCounts warmup_events;
    OpCounts warmup_ops;
    Histogram warmup_hist;
    bool warmup_taken = config.warmupRefs == 0;

    const std::uint64_t num_records = decoded.numRecords();
    for (std::uint64_t i = 0; i < num_records; ++i) {
        if (!warmup_taken && processed >= config.warmupRefs) {
            warmup_events = protocol.events();
            warmup_ops = protocol.ops();
            warmup_hist = protocol.cleanWriteHolders();
            warmup_taken = true;
        }
        ++processed;
        const std::uint8_t op = decoded.ops[i];
        if ((op & decodedOpKindMask) == decodedOpInstr) {
            // Instructions touch no block; shard 0 owns them so the
            // merged Instr count matches the sequential cell.
            if (shard == 0)
                protocol.instruction();
            continue;
        }
        const std::uint32_t index = decoded.blocks[i];
        if (shard_of[index] != shard)
            continue;
        const CacheId cache = decoded.caches[i];
        const bool first_ref = (op & decodedOpFirstRef) != 0;
        if ((op & decodedOpKindMask) == decodedOpRead)
            protocol.read(cache, static_cast<BlockNum>(index),
                          first_ref);
        else
            protocol.write(cache, static_cast<BlockNum>(index),
                           first_ref);
        ++data_refs;
        if (config.invariantCheckPeriod != 0
            && data_refs % config.invariantCheckPeriod == 0) {
            protocol.checkAllInvariants();
        }
    }
    fatalIf(!warmup_taken,
            "warm-up of ", config.warmupRefs,
            " references consumed the whole trace (",
            processed, " references)");
    if (config.invariantCheckPeriod != 0)
        protocol.checkAllInvariants();

    SimResult &result = part.result;
    result.scheme = protocol.name();
    result.traceName = decoded.name;
    result.numCaches = protocol.numCaches();
    result.events = protocol.events();
    result.events.subtract(warmup_events);
    result.ops = protocol.ops();
    result.ops.subtract(warmup_ops);
    result.cleanWriteHolders = protocol.cleanWriteHolders();
    result.cleanWriteHolders.subtract(warmup_hist);
    result.totalRefs = result.events.totalRefs();
    return part;
}

/** Attach a single sink (shard 0) for a sequential cell. */
std::unique_ptr<ProtocolTraceSink>
attachSingleSink(const ShardSinkFactory &make_sink, SimConfig &config)
{
    if (!make_sink)
        return nullptr;
    std::unique_ptr<ProtocolTraceSink> sink = make_sink(0);
    if (sink)
        config.traceSink = sink.get();
    return sink;
}

} // namespace

SimResult
simulateTraceSharded(const DecodedTrace &decoded,
                     const SchemeSpec &scheme, const SimConfig &config,
                     unsigned shards, const ShardSinkFactory &make_sink)
{
    const std::uint64_t block_count = decoded.blockCount();
    const unsigned k = static_cast<unsigned>(std::min<std::uint64_t>(
        std::max(shards, 1u), std::max<std::uint64_t>(block_count, 1)));
    if (k <= 1) {
        SimConfig sequential = config;
        const auto sink = attachSingleSink(make_sink, sequential);
        return simulateTrace(decoded, scheme, sequential);
    }
    fatalIf(config.finiteCache.has_value(),
            "sharded simulation requires infinite caches (finite-cache "
            "replacement couples co-resident blocks); run one shard");
    fatalIf(config.traceSink != nullptr,
            "a sharded cell cannot share one SimConfig::traceSink "
            "across shards; pass a ShardSinkFactory instead");
    checkBlockSize(config.blockBytes);
    fatalIf(config.blockBytes != decoded.blockBytes,
            "trace was decoded with ", decoded.blockBytes,
            "-byte blocks but the simulation uses ", config.blockBytes,
            "-byte blocks; decode it again");
    fatalIf(config.sharing != decoded.sharing,
            "trace was decoded under a different sharing model than "
            "the simulation requests; decode it again");
    const unsigned caches = decoded.cachesNeeded;
    fatalIf(caches == 0, "trace '", decoded.name,
            "' has no references");
    fatalIf(decoded.numRecords() == 0,
            "cannot simulate an empty trace");

    // Round-robin block ownership: balanced for free, and stable so
    // a run is reproducible for a given K.
    std::vector<std::uint32_t> shard_of(block_count);
    for (std::uint64_t b = 0; b < block_count; ++b)
        shard_of[b] = static_cast<std::uint32_t>(b % k);

    std::vector<ShardPart> parts(k);
    const std::uint64_t parallel_start = PhaseTimer::nowNs();
    {
        ThreadPool pool(std::min(k, ThreadPool::hardwareThreads()));
        for (unsigned shard = 0; shard < k; ++shard) {
            pool.submit([&, shard] {
                parts[shard] = runShard(decoded, scheme, config,
                                        shard_of, shard, make_sink);
            });
        }
        pool.wait();
    }
    const std::uint64_t parallel_ns =
        PhaseTimer::nowNs() - parallel_start;

    const std::uint64_t merge_start = PhaseTimer::nowNs();
    SimResult result = std::move(parts[0].result);
    for (unsigned shard = 1; shard < k; ++shard) {
        result.events.merge(parts[shard].result.events);
        result.ops.merge(parts[shard].result.ops);
        result.cleanWriteHolders.merge(
            parts[shard].result.cleanWriteHolders);
    }
    result.totalRefs = result.events.totalRefs();

    if (config.invariantCheckPeriod != 0) {
        // Cross-shard disjointness: round-robin ownership must leave
        // every block's sharers in exactly one shard's arena.
        for (std::uint64_t b = 0; b < block_count; ++b) {
            SharerSet all(caches);
            for (unsigned shard = 0; shard < k; ++shard) {
                const SharerSet holders =
                    parts[shard].protocol->holders(b);
                panicIfNot(!all.intersects(holders),
                           "block ", decoded.denseToBlock[b],
                           " is held in multiple shard arenas");
                all.unionWith(holders);
            }
        }
    }

    PhaseBreakdown phases;
    phases.add(Phase::Simulate, parallel_ns);
    phases.add(Phase::Reduce, PhaseTimer::nowNs() - merge_start);
    result.phases = phases;
    return result;
}

CellOutcome
runPlannedCell(const SimPlan &plan, std::size_t index,
               const ShardSinkFactory &make_sink)
{
    panicIfNot(index < plan.cells.size(),
               "runPlannedCell index ", index, " outside a plan of ",
               plan.cells.size(), " cells");
    const PlannedCell &cell = plan.cells[index];
    CellOutcome out;
    out.records = cell.records;
    const auto start = Clock::now();

    // Traced cells skip the lookup (a replayed result cannot feed the
    // sinks) but still store: the result is identical either way.
    if (cell.cacheable && plan.cache && !make_sink
        && plan.cache->lookup(cell.cacheKey, out.result)) {
        out.cacheHit = true;
        out.simulatedRefs = 0;
        out.wallSeconds = secondsSince(start);
        return out;
    }

    if (cell.stream != nullptr) {
        if (cell.shards > 1) {
            out.result = simulateTraceSharded(*cell.stream, cell.scheme,
                                              cell.config, cell.shards,
                                              make_sink);
        } else {
            SimConfig config = cell.config;
            const auto sink = attachSingleSink(make_sink, config);
            out.result = simulateTrace(*cell.stream, cell.scheme,
                                       config);
        }
        out.simulatedRefs = cell.stream->numRecords();
    } else if (cell.trace.kind == TraceRef::Kind::Memory) {
        // The sparse-engine primitive, inlined: the scheme-building
        // simulateTrace(Trace, ...) overloads wrap runJob(), so the
        // engine must build the protocol itself.
        SimConfig config = cell.config;
        const auto sink = attachSingleSink(make_sink, config);
        const Trace &trace = *cell.trace.memory;
        const unsigned caches = cachesNeeded(trace, config.sharing);
        fatalIf(caches == 0, "trace '", trace.name(),
                "' has no references");
        const auto protocol =
            makeProtocol(cell.scheme, caches, cacheFactoryFor(config));
        out.result = simulateTrace(trace, *protocol, config);
        out.simulatedRefs = trace.size();
    } else {
        SimConfig config = cell.config;
        const auto sink = attachSingleSink(make_sink, config);
        out.result = simulateTraceFile(cell.trace.path, cell.scheme,
                                       config, cell.trace.cachesHint);
        // Streaming cells learn their record count only by running;
        // fall back to the measured total when no hint was planned.
        out.simulatedRefs =
            cell.records > 0 ? cell.records : out.result.totalRefs;
        if (out.records == 0)
            out.records = out.simulatedRefs;
    }
    out.shardsUsed = cell.shards;
    out.wallSeconds = secondsSince(start);
    if (cell.cacheable && plan.cache)
        plan.cache->store(cell.cacheKey, out.result, out.wallSeconds);
    return out;
}

CellOutcome
runJob(const SimJob &job, const JobOptions &options)
{
    const SimPlan plan = buildPlan({job}, options);
    return runPlannedCell(plan, 0);
}

std::vector<CellOutcome>
runJobs(const std::vector<SimJob> &jobs, const JobOptions &options,
        unsigned workers)
{
    const SimPlan plan = buildPlan(jobs, options);
    std::vector<CellOutcome> outcomes(plan.cells.size());
    if (workers == 0) {
        const unsigned env = envUnsigned("DIRSIM_JOBS", 0);
        workers = env > 0 ? env : ThreadPool::hardwareThreads();
    }
    if (workers <= 1 || plan.cells.size() <= 1) {
        for (std::size_t i = 0; i < plan.cells.size(); ++i)
            outcomes[i] = runPlannedCell(plan, i);
        return outcomes;
    }
    ThreadPool pool(static_cast<unsigned>(std::min<std::size_t>(
        workers, plan.cells.size())));
    for (std::size_t i = 0; i < plan.cells.size(); ++i)
        pool.submit([&plan, &outcomes, i] {
            outcomes[i] = runPlannedCell(plan, i);
        });
    pool.wait();
    return outcomes;
}

} // namespace dirsim
