/**
 * @file
 * Umbrella header: the full public API of dirsim, a trace-driven
 * simulator reproducing "An Evaluation of Directory Schemes for Cache
 * Coherence" (Agarwal, Simoni, Hennessy, Horowitz).
 *
 * Typical use:
 * @code
 *   #include "dirsim/dirsim.hh"
 *
 *   auto trace  = dirsim::generateTrace("pops", 1'000'000, 42);
 *   auto result = dirsim::simulateTrace(trace, "Dir0B");
 *   auto cost   = result.cost(dirsim::paperPipelinedCosts());
 *   std::cout << cost.total() << " bus cycles per reference\n";
 * @endcode
 */

#ifndef DIRSIM_DIRSIM_HH
#define DIRSIM_DIRSIM_HH

#include "bus/bus_model.hh"
#include "bus/cost_model.hh"
#include "bus/latency_model.hh"
#include "bus/timing.hh"
#include "cache/finite_cache.hh"
#include "cache/infinite_cache.hh"
#include "common/bitops.hh"
#include "common/env.hh"
#include "common/histogram.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/types.hh"
#include "directory/coarse_vector.hh"
#include "directory/full_map.hh"
#include "directory/limited.hh"
#include "directory/sharer_set.hh"
#include "directory/storage.hh"
#include "directory/tang.hh"
#include "directory/two_bit.hh"
#include "obs/artifacts.hh"
#include "obs/cell_cache.hh"
#include "obs/chrome_trace.hh"
#include "obs/exposition.hh"
#include "obs/histogram.hh"
#include "obs/journal.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "obs/progress.hh"
#include "obs/record.hh"
#include "obs/sink.hh"
#include "obs/tracer.hh"
#include "protocols/berkeley.hh"
#include "protocols/dir0_b.hh"
#include "protocols/dir1_nb.hh"
#include "protocols/dir_cv.hh"
#include "protocols/dir_i_b.hh"
#include "protocols/dir_i_nb.hh"
#include "protocols/dir_n_nb.hh"
#include "protocols/dragon.hh"
#include "protocols/events.hh"
#include "protocols/protocol.hh"
#include "protocols/registry.hh"
#include "protocols/wti.hh"
#include "protocols/yen_fu.hh"
#include "sim/decoded.hh"
#include "sim/experiment.hh"
#include "sim/job.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/scaling.hh"
#include "serve/client.hh"
#include "serve/discipline.hh"
#include "serve/http.hh"
#include "serve/server.hh"
#include "sim/simulator.hh"
#include "sim/suite.hh"
#include "sweep/expand.hh"
#include "sweep/run.hh"
#include "sweep/spec.hh"
#include "trace/filter.hh"
#include "trace/format.hh"
#include "trace/reader.hh"
#include "trace/record.hh"
#include "trace/source.hh"
#include "trace/trace.hh"
#include "trace/trace_stats.hh"
#include "trace/writer.hh"
#include "tracegen/generator.hh"
#include "tracegen/profile.hh"
#include "tracegen/segments.hh"

#endif // DIRSIM_DIRSIM_HH
