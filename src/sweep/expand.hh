/**
 * @file
 * Sweep expansion: the cross product of a SweepSpec's axes, resolved
 * into an ordered list of concrete cells.
 *
 * Expansion is pure bookkeeping — no traces are generated, no files
 * are read — so `dirsim_sweep plan` can show what a spec will run
 * (and how big it is) instantly. The cell order is deterministic
 * (trace-major: trace instance, then scheme, then block size, then
 * geometry, then shards), which fixes the artifact order and makes
 * re-runs byte-comparable.
 *
 * Each cell carries a stable label ("<trace>@b32@64KiB..." — axis
 * values appear in the label only when their axis has more than one
 * value), used as the artifact trace name so every cell of a sweep
 * is addressable in reports and diffs.
 */

#ifndef DIRSIM_SWEEP_EXPAND_HH
#define DIRSIM_SWEEP_EXPAND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "protocols/registry.hh"
#include "sweep/spec.hh"
#include "trace/trace.hh"

namespace dirsim
{

/** One concrete trace the sweep will simulate. */
struct SweepTraceInstance
{
    SweepTraceEntry::Kind kind = SweepTraceEntry::Kind::Profile;

    /** Unique instance label, e.g. "pops", "scale64", "pops-r80000". */
    std::string label;

    // Generated instances.
    std::string profile;
    /** Machine size override; 0 keeps the profile's native size. */
    unsigned caches = 0;
    std::uint64_t refs = 0;
    std::uint64_t seed = 0;

    // File instances.
    std::string path;
};

/** One cell of the expanded sweep. */
struct SweepCell
{
    std::size_t traceIndex = 0; ///< into SweepPlan::traces
    SchemeSpec scheme;
    unsigned blockBytes = defaultBlockBytes;
    SweepGeometry geometry;
    unsigned shards = 1;

    /** Trace label + variant suffixes; the artifact cell name. */
    std::string label;

    /** The cell's SimConfig (block size, geometry, warm-up, sharing
     *  from the spec). */
    SimConfig config(const SweepSpec &spec) const;
};

/** A fully-expanded sweep. */
struct SweepPlan
{
    SweepSpec spec;
    std::vector<SchemeSpec> schemes;
    std::vector<SweepTraceInstance> traces;
    /** Cells in deterministic trace-major order. */
    std::vector<SweepCell> cells;

    /** Sum of the generated traces' target refs over all cells —
     *  a planning estimate (file cells contribute 0: their length is
     *  unknown until read). */
    std::uint64_t targetCellRefs() const;
};

/**
 * Expand a spec into its plan.
 *
 * @throws UsageError on specs that cannot expand (parseSweepSpec()
 *         already rejects most; this re-checks axis emptiness for
 *         hand-built specs)
 */
SweepPlan expandSweep(const SweepSpec &spec);

/**
 * Generate every Profile-kind trace instance of a plan (in instance
 * order; File instances yield nullptr — the runner streams those
 * straight from disk through the decode-once engine). Deterministic:
 * depends only on the plan.
 */
std::vector<std::unique_ptr<Trace>> materializeSweepTraces(
    const SweepPlan &plan);

} // namespace dirsim

#endif // DIRSIM_SWEEP_EXPAND_HH
