/**
 * @file
 * Sweep execution: run an expanded SweepPlan on the SimJob engine.
 *
 * runSweep() materializes the plan's generated traces, expands every
 * cell into a SimJob, and executes the resulting SimPlan on a
 * ThreadPool — each distinct (trace, block size, sharing) input is
 * decoded once and shared read-only by all cells that replay it.
 * With a CellCache wired in, finished cells persist as they complete,
 * so an interrupted sweep resumes incrementally: re-running the same
 * spec replays the finished cells from the cache and only simulates
 * the remainder (docs/sweep.md, "Resume semantics").
 *
 * The outcome carries one CellRecord per executed cell — with the
 * cell's unique sweep label as its trace name, so multi-axis cells
 * never collide — plus the run manifest and a MetricRegistry using
 * the established runner.grid.* / runner.cache.* names.
 */

#ifndef DIRSIM_SWEEP_RUN_HH
#define DIRSIM_SWEEP_RUN_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hh"
#include "obs/record.hh"
#include "obs/sink.hh"
#include "sim/job.hh"
#include "sim/runner.hh"
#include "sweep/expand.hh"

namespace dirsim
{

/** runSweep() knobs. */
struct SweepOptions
{
    /** Worker threads; 0 = RunnerConfig::defaultJobs(), 1 =
     *  sequential on the calling thread (deterministic cell order). */
    unsigned jobs = 0;

    /** Cell result cache; nullptr = always simulate. */
    std::shared_ptr<CellCache> cache;

    /**
     * Simulation budget: stop dispatching cells once this many have
     * been *simulated* (cache hits are free and do not count). 0 =
     * unlimited. An exhausted budget leaves the outcome incomplete —
     * the simulated cells are already in the cache, so re-running the
     * spec resumes where the budget cut it off. Deterministic with
     * jobs = 1; with more workers in-flight cells still finish.
     */
    std::uint64_t maxSimulatedCells = 0;

    /** Cooperative cancellation (the daemon's per-run cancel): when
     *  it reads true, no further cells are dispatched. */
    const std::atomic<bool> *cancel = nullptr;

    /** Per-finished-cell hook (sim/runner.hh semantics: serialized,
     *  completion order). */
    ProgressCallback onProgress;

    /**
     * Caller-scoped run identity ("run 3" in the daemon, a campaign
     * name in a CLI) threaded into every structured log line this
     * run emits, so one journal/log stream interleaving many runs
     * stays attributable. Empty = the spec's name.
     */
    std::string runLabel;
};

/** Everything one sweep run produces. */
struct SweepOutcome
{
    /** False when the budget ran out or the run was cancelled; the
     *  executed cells are still recorded (and cached). */
    bool completed = false;

    /** One record per *executed* cell, in plan (cell) order; each
     *  record's trace field is the cell's unique sweep label. */
    std::vector<CellRecord> records;

    /** Plan indices of the executed cells (parallel to records). */
    std::vector<std::size_t> cellIndices;

    /**
     * Wall-clock layout of the executed cells (parallel to records):
     * start stamps on the PhaseTimer::nowNs() clock plus worker
     * tags, enough for a Chrome timeline of the run
     * (obs/chrome_trace.hh writeChromeSpans) without a GridResult.
     */
    std::vector<CellTiming> timings;

    /** PhaseTimer::nowNs() at run start (the trace origin). */
    std::uint64_t startNs = 0;

    RunManifest manifest;
    MetricRegistry metrics;

    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /** References actually simulated (cache hits contribute 0). */
    std::uint64_t simulatedRefs = 0;
    double wallSeconds = 0.0;
};

/**
 * Execute a plan.
 *
 * @throws UsageError on unrunnable cells (unreadable trace files,
 *         invalid geometry/block combinations)
 */
SweepOutcome runSweep(const SweepPlan &plan,
                      const SweepOptions &options = {});

/**
 * Write a finished sweep's artifacts: the manifest, every cell
 * record in plan order, and the metrics snapshot. The stream is
 * loadArtifacts()-compatible, so dirsim_report renders and diffs
 * sweep results exactly like experiment results.
 */
void writeSweepArtifacts(const SweepOutcome &outcome,
                         ResultsSink &sink);

} // namespace dirsim

#endif // DIRSIM_SWEEP_RUN_HH
