#include "sweep/expand.hh"

#include <map>
#include <sstream>

#include "common/logging.hh"
#include "sim/scaling.hh"
#include "tracegen/generator.hh"

namespace dirsim
{

namespace
{

/** Filename stem: "traces/pops.v2.bin" -> "pops.v2". */
std::string
fileStem(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
    const std::size_t dot = path.find_last_of('.');
    const std::size_t end =
        dot == std::string::npos || dot <= start ? path.size() : dot;
    return path.substr(start, end - start);
}

/** The trace instances of one spec entry, base-labelled. */
std::vector<SweepTraceInstance>
instancesOf(const SweepTraceEntry &entry)
{
    std::vector<SweepTraceInstance> instances;
    if (entry.kind == SweepTraceEntry::Kind::File) {
        SweepTraceInstance instance;
        instance.kind = SweepTraceEntry::Kind::File;
        instance.path = entry.file;
        instance.label = fileStem(entry.file);
        instances.push_back(std::move(instance));
        return instances;
    }
    const std::vector<unsigned> counts =
        entry.caches.empty() ? std::vector<unsigned>{0} : entry.caches;
    for (const unsigned caches : counts) {
        SweepTraceInstance instance;
        instance.kind = SweepTraceEntry::Kind::Profile;
        instance.profile = entry.profile;
        instance.caches = caches;
        instance.refs = entry.refs;
        // Distinct derived seeds per machine size (the scalingTrace
        // convention), so widening an axis never reuses a stream.
        instance.seed = caches == 0 ? entry.seed
                                    : entry.seed * 31 + caches;
        if (entry.profile == "scale") {
            instance.label = "scale" + std::to_string(caches);
        } else if (caches == 0) {
            instance.label = entry.profile;
        } else {
            instance.label =
                entry.profile + std::to_string(caches);
        }
        instances.push_back(std::move(instance));
    }
    return instances;
}

/** Make repeated base labels unique by appending the refs/seed that
 *  distinguish them (then an index as the last resort). */
void
disambiguateLabels(std::vector<SweepTraceInstance> &instances)
{
    std::map<std::string, unsigned> uses;
    for (const SweepTraceInstance &instance : instances)
        ++uses[instance.label];
    std::map<std::string, unsigned> seen;
    for (SweepTraceInstance &instance : instances) {
        if (uses[instance.label] <= 1)
            continue;
        const std::string base = instance.label;
        std::ostringstream label;
        label << base;
        if (instance.kind == SweepTraceEntry::Kind::Profile)
            label << "-r" << instance.refs << "-s" << instance.seed;
        else
            label << "-" << seen[base];
        instance.label = label.str();
        ++seen[base];
    }
}

} // namespace

SimConfig
SweepCell::config(const SweepSpec &spec) const
{
    SimConfig config;
    config.blockBytes = blockBytes;
    config.sharing = spec.sharing;
    config.warmupRefs = spec.warmupRefs;
    if (!geometry.infinite) {
        FiniteCacheConfig finite;
        finite.capacityBytes = geometry.capacityBytes;
        finite.ways = geometry.ways;
        finite.blockBytes = blockBytes;
        config.finiteCache = finite;
    }
    return config;
}

std::uint64_t
SweepPlan::targetCellRefs() const
{
    std::uint64_t refs = 0;
    for (const SweepCell &cell : cells) {
        const SweepTraceInstance &instance = traces[cell.traceIndex];
        if (instance.kind == SweepTraceEntry::Kind::Profile)
            refs += instance.refs;
    }
    return refs;
}

SweepPlan
expandSweep(const SweepSpec &spec)
{
    fatalIf(spec.schemes.empty(), "sweep '", spec.name,
            "' has no schemes");
    fatalIf(spec.traces.empty(), "sweep '", spec.name,
            "' has no traces");
    fatalIf(spec.blockBytes.empty(), "sweep '", spec.name,
            "' has no block sizes");
    fatalIf(spec.geometries.empty(), "sweep '", spec.name,
            "' has no cache geometries");
    fatalIf(spec.shards.empty(), "sweep '", spec.name,
            "' has no shard counts");

    SweepPlan plan;
    plan.spec = spec;
    for (const std::string &name : spec.schemes)
        plan.schemes.push_back(parseScheme(name));
    for (const SweepTraceEntry &entry : spec.traces) {
        for (SweepTraceInstance &instance : instancesOf(entry))
            plan.traces.push_back(std::move(instance));
    }
    disambiguateLabels(plan.traces);

    // Axis values join the cell label only when the axis can vary —
    // a single-point axis would just add noise to every name.
    const bool label_block = spec.blockBytes.size() > 1;
    const bool label_geometry = spec.geometries.size() > 1;
    const bool label_shards = spec.shards.size() > 1;

    plan.cells.reserve(plan.traces.size() * plan.schemes.size()
                       * spec.blockBytes.size()
                       * spec.geometries.size() * spec.shards.size());
    for (std::size_t t = 0; t < plan.traces.size(); ++t) {
        for (const SchemeSpec &scheme : plan.schemes) {
            for (const unsigned block : spec.blockBytes) {
                for (const SweepGeometry &geometry : spec.geometries) {
                    for (const unsigned shards : spec.shards) {
                        SweepCell cell;
                        cell.traceIndex = t;
                        cell.scheme = scheme;
                        cell.blockBytes = block;
                        cell.geometry = geometry;
                        cell.shards = shards;
                        std::ostringstream label;
                        label << plan.traces[t].label;
                        if (label_block)
                            label << "@b" << block;
                        if (label_geometry)
                            label << "@" << geometry.label();
                        if (label_shards)
                            label << "@x" << shards;
                        cell.label = label.str();
                        plan.cells.push_back(std::move(cell));
                    }
                }
            }
        }
    }
    return plan;
}

std::vector<std::unique_ptr<Trace>>
materializeSweepTraces(const SweepPlan &plan)
{
    std::vector<std::unique_ptr<Trace>> traces;
    traces.reserve(plan.traces.size());
    for (const SweepTraceInstance &instance : plan.traces) {
        if (instance.kind == SweepTraceEntry::Kind::File) {
            traces.push_back(nullptr);
            continue;
        }
        WorkloadProfile profile;
        if (instance.profile == "scale") {
            ScalingParams params;
            params.refsPerTrace = instance.refs;
            profile = scalingProfile(instance.caches, params);
        } else {
            profile = profileByName(instance.profile);
            if (instance.caches != 0) {
                // Widen like the scaling suite: fully loaded, one
                // process per CPU.
                profile.numCpus = instance.caches;
                profile.numProcesses = instance.caches;
            }
        }
        profile.check();
        traces.push_back(std::make_unique<Trace>(generateTrace(
            profile, instance.refs, instance.seed)));
    }
    return traces;
}

} // namespace dirsim
