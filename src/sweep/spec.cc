#include "sweep/spec.hh"

#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "cache/finite_cache.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "protocols/registry.hh"

namespace dirsim
{

namespace
{

/** Parser that either throws on the first problem (diags == nullptr)
 *  or records every problem and keeps going with defaults. */
class SpecReader
{
  public:
    explicit SpecReader(std::vector<SweepDiagnostic> *diags_arg)
        : diags(diags_arg)
    {}

    template <typename... Args>
    void
    problem(const std::string &where, Args &&...args)
    {
        std::ostringstream message;
        (message << ... << std::forward<Args>(args));
        if (diags == nullptr)
            fatal("sweep spec: ", where, ": ", message.str());
        diags->push_back({where, message.str()});
    }

    bool
    collecting() const
    {
        return diags != nullptr;
    }

  private:
    std::vector<SweepDiagnostic> *diags;
};

std::uint64_t
readU64(SpecReader &reader, const JsonValue &value,
        const std::string &where, std::uint64_t fallback)
{
    try {
        return value.asU64();
    } catch (const SimulationError &error) {
        reader.problem(where, error.what());
        return fallback;
    }
}

unsigned
readUnsigned(SpecReader &reader, const JsonValue &value,
             const std::string &where, unsigned fallback)
{
    const std::uint64_t wide = readU64(reader, value, where, fallback);
    if (wide > std::numeric_limits<unsigned>::max()) {
        reader.problem(where, wide, " does not fit in an unsigned");
        return fallback;
    }
    return static_cast<unsigned>(wide);
}

const std::set<std::string> &
knownProfiles()
{
    static const std::set<std::string> names{"pops", "thor", "pero",
                                             "scale"};
    return names;
}

SweepTraceEntry
readTraceEntry(SpecReader &reader, const JsonValue &json,
               const std::string &where)
{
    SweepTraceEntry entry;
    if (!json.isObject()) {
        reader.problem(where, "must be an object with either a "
                              "\"profile\" or a \"file\" member");
        return entry;
    }
    bool has_profile = false;
    bool has_file = false;
    for (const auto &[key, value] : json.members()) {
        const std::string at = where + "." + key;
        if (key == "profile") {
            has_profile = true;
            if (value.kind() != JsonValue::Kind::String) {
                reader.problem(at, "must be a string");
                continue;
            }
            entry.profile = value.asString();
            if (knownProfiles().count(entry.profile) == 0) {
                reader.problem(at, "unknown profile '", entry.profile,
                               "' (valid: pops, thor, pero, scale)");
            }
        } else if (key == "file") {
            has_file = true;
            if (value.kind() != JsonValue::Kind::String) {
                reader.problem(at, "must be a string");
                continue;
            }
            entry.file = value.asString();
            if (entry.file.empty())
                reader.problem(at, "must not be empty");
        } else if (key == "refs") {
            entry.refs = readU64(reader, value, at, entry.refs);
            if (entry.refs == 0)
                reader.problem(at, "a trace cannot be empty");
        } else if (key == "seed") {
            entry.seed = readU64(reader, value, at, entry.seed);
        } else if (key == "caches") {
            if (!value.isArray()) {
                reader.problem(at, "must be an array of cache counts");
                continue;
            }
            for (std::size_t i = 0; i < value.size(); ++i) {
                const std::string slot =
                    at + "[" + std::to_string(i) + "]";
                const unsigned count =
                    readUnsigned(reader, value.at(i), slot, 1);
                if (count == 0) {
                    reader.problem(slot,
                                   "a machine needs at least one cache");
                    continue;
                }
                // The trace container stores cpu ids as u16
                // (trace/format.hh), so larger machines cannot even
                // be represented.
                if (count > 65535) {
                    reader.problem(slot, count,
                                   " caches overflow the trace "
                                   "format's u16 cpu ids (max 65535)");
                    continue;
                }
                entry.caches.push_back(count);
            }
        } else {
            reader.problem(at, "unknown member");
        }
    }
    if (has_profile == has_file) {
        reader.problem(where, "needs exactly one of \"profile\" or "
                              "\"file\"");
    }
    entry.kind = has_file && !has_profile ? SweepTraceEntry::Kind::File
                                          : SweepTraceEntry::Kind::Profile;
    if (entry.kind == SweepTraceEntry::Kind::Profile
        && entry.profile == "scale" && entry.caches.empty()) {
        reader.problem(where, "the \"scale\" profile needs a "
                              "\"caches\" axis (its machine size is "
                              "the parameter)");
    }
    if (entry.kind == SweepTraceEntry::Kind::File
        && !entry.caches.empty()) {
        reader.problem(where, "\"caches\" only applies to generated "
                              "traces, not files");
    }
    return entry;
}

std::vector<unsigned>
readUnsignedAxis(SpecReader &reader, const JsonValue &value,
                 const std::string &where, unsigned min_value,
                 const char *too_small)
{
    std::vector<unsigned> axis;
    if (!value.isArray()) {
        reader.problem(where, "must be an array");
        return axis;
    }
    for (std::size_t i = 0; i < value.size(); ++i) {
        const std::string slot = where + "[" + std::to_string(i) + "]";
        const unsigned entry =
            readUnsigned(reader, value.at(i), slot, min_value);
        if (entry < min_value) {
            reader.problem(slot, too_small);
            continue;
        }
        axis.push_back(entry);
    }
    if (axis.empty())
        reader.problem(where, "axis is empty");
    return axis;
}

SweepGeometry
readGeometry(SpecReader &reader, const JsonValue &json,
             const std::string &where)
{
    SweepGeometry geometry;
    if (json.kind() == JsonValue::Kind::String) {
        if (json.asString() != "infinite") {
            reader.problem(where, "unknown geometry '", json.asString(),
                           "' (use \"infinite\" or an object with "
                           "capacity_bytes and ways)");
        }
        return geometry;
    }
    if (!json.isObject()) {
        reader.problem(where, "must be \"infinite\" or an object with "
                              "capacity_bytes and ways");
        return geometry;
    }
    geometry.infinite = false;
    bool has_capacity = false;
    bool has_ways = false;
    for (const auto &[key, value] : json.members()) {
        const std::string at = where + "." + key;
        if (key == "capacity_bytes") {
            has_capacity = true;
            geometry.capacityBytes = readU64(reader, value, at, 0);
        } else if (key == "ways") {
            has_ways = true;
            geometry.ways = readUnsigned(reader, value, at, 0);
        } else {
            reader.problem(at, "unknown member");
        }
    }
    if (!has_capacity)
        reader.problem(where, "finite geometry needs capacity_bytes");
    if (!has_ways)
        reader.problem(where, "finite geometry needs ways");
    return geometry;
}

SweepSpec
readSpec(SpecReader &reader, const JsonValue &json)
{
    SweepSpec spec;
    if (!json.isObject()) {
        reader.problem("(root)", "a sweep spec is a JSON object");
        return spec;
    }
    bool has_name = false;
    bool has_schemes = false;
    bool has_traces = false;
    for (const auto &[key, value] : json.members()) {
        if (key == "name") {
            has_name = true;
            if (value.kind() != JsonValue::Kind::String
                || value.asString().empty()) {
                reader.problem("name", "must be a non-empty string");
                continue;
            }
            spec.name = value.asString();
        } else if (key == "schemes") {
            has_schemes = true;
            if (!value.isArray()) {
                reader.problem("schemes", "must be an array of scheme "
                                          "names");
                continue;
            }
            for (std::size_t i = 0; i < value.size(); ++i) {
                const std::string at =
                    "schemes[" + std::to_string(i) + "]";
                if (value.at(i).kind() != JsonValue::Kind::String) {
                    reader.problem(at, "must be a string");
                    continue;
                }
                const std::string &name = value.at(i).asString();
                try {
                    // Canonicalize, so "dir0b" and "Dir0B" are one
                    // axis value (and one cache key).
                    spec.schemes.push_back(parseScheme(name).name());
                } catch (const UsageError &error) {
                    reader.problem(at, error.what());
                }
            }
            if (spec.schemes.empty())
                reader.problem("schemes", "axis is empty");
        } else if (key == "traces") {
            has_traces = true;
            if (!value.isArray()) {
                reader.problem("traces", "must be an array of trace "
                                         "entries");
                continue;
            }
            for (std::size_t i = 0; i < value.size(); ++i) {
                spec.traces.push_back(readTraceEntry(
                    reader, value.at(i),
                    "traces[" + std::to_string(i) + "]"));
            }
            if (spec.traces.empty())
                reader.problem("traces", "axis is empty");
        } else if (key == "block_bytes") {
            spec.blockBytes = readUnsignedAxis(
                reader, value, "block_bytes", 1,
                "a block holds at least one byte");
        } else if (key == "geometries") {
            if (!value.isArray()) {
                reader.problem("geometries", "must be an array");
                continue;
            }
            spec.geometries.clear();
            for (std::size_t i = 0; i < value.size(); ++i) {
                spec.geometries.push_back(readGeometry(
                    reader, value.at(i),
                    "geometries[" + std::to_string(i) + "]"));
            }
            if (spec.geometries.empty())
                reader.problem("geometries", "axis is empty");
        } else if (key == "shards") {
            spec.shards = readUnsignedAxis(
                reader, value, "shards", 1,
                "a cell runs at least one shard");
        } else if (key == "warmup_refs") {
            spec.warmupRefs =
                readU64(reader, value, "warmup_refs", 0);
        } else if (key == "sharing") {
            if (value.kind() != JsonValue::Kind::String) {
                reader.problem("sharing", "must be \"process\" or "
                                          "\"processor\"");
                continue;
            }
            const std::string &mode = value.asString();
            if (mode == "process") {
                spec.sharing = SharingModel::ByProcess;
            } else if (mode == "processor") {
                spec.sharing = SharingModel::ByProcessor;
            } else {
                reader.problem("sharing", "unknown mode '", mode,
                               "' (use \"process\" or \"processor\")");
            }
        } else {
            reader.problem(key, "unknown member");
        }
    }
    if (!has_name)
        reader.problem("name", "required member is missing");
    if (!has_schemes)
        reader.problem("schemes", "required member is missing");
    if (!has_traces)
        reader.problem("traces", "required member is missing");
    return spec;
}

/** One axis value's identity for repeat detection. */
std::string
traceEntryIdentity(const SweepTraceEntry &entry, unsigned caches)
{
    if (entry.kind == SweepTraceEntry::Kind::File)
        return "file:" + entry.file;
    std::ostringstream id;
    id << "gen:" << entry.profile << ":" << caches << ":" << entry.refs
       << ":" << entry.seed;
    return id.str();
}

/** Report axis values that repeat — each repeat multiplies the whole
 *  cross product into duplicate cells. */
void
lintDuplicates(SpecReader &reader, const SweepSpec &spec)
{
    const auto repeats = [&reader](const std::string &axis,
                                   const std::vector<std::string> &ids) {
        std::set<std::string> seen;
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (!seen.insert(ids[i]).second) {
                reader.problem(
                    axis + "[" + std::to_string(i) + "]",
                    "duplicate axis value '", ids[i],
                    "' expands into duplicate cells");
            }
        }
    };
    repeats("schemes", spec.schemes);

    std::vector<std::string> trace_ids;
    for (const SweepTraceEntry &entry : spec.traces) {
        if (entry.caches.empty()) {
            trace_ids.push_back(traceEntryIdentity(entry, 0));
        } else {
            for (const unsigned caches : entry.caches)
                trace_ids.push_back(traceEntryIdentity(entry, caches));
        }
    }
    repeats("traces", trace_ids);

    const auto numbers = [](const std::vector<unsigned> &axis) {
        std::vector<std::string> ids;
        ids.reserve(axis.size());
        for (const unsigned value : axis)
            ids.push_back(std::to_string(value));
        return ids;
    };
    repeats("block_bytes", numbers(spec.blockBytes));
    repeats("shards", numbers(spec.shards));

    std::vector<std::string> geometry_ids;
    for (const SweepGeometry &geometry : spec.geometries)
        geometry_ids.push_back(geometry.label());
    repeats("geometries", geometry_ids);
}

/** Check every finite geometry against every block size. */
void
lintGeometries(SpecReader &reader, const SweepSpec &spec)
{
    for (std::size_t g = 0; g < spec.geometries.size(); ++g) {
        const SweepGeometry &geometry = spec.geometries[g];
        if (geometry.infinite)
            continue;
        for (const unsigned block : spec.blockBytes) {
            FiniteCacheConfig config;
            config.capacityBytes = geometry.capacityBytes;
            config.ways = geometry.ways;
            config.blockBytes = block;
            try {
                config.check();
            } catch (const UsageError &error) {
                reader.problem(
                    "geometries[" + std::to_string(g) + "]",
                    "impossible with ", block, "-byte blocks: ",
                    error.what());
            }
        }
    }
}

} // namespace

std::string
SweepGeometry::label() const
{
    if (infinite)
        return "inf";
    return std::to_string(capacityBytes) + "B" + std::to_string(ways)
        + "w";
}

SweepSpec
parseSweepSpec(const JsonValue &json)
{
    SpecReader reader(nullptr);
    return readSpec(reader, json);
}

SweepSpec
parseSweepSpec(std::string_view text)
{
    return parseSweepSpec(JsonValue::parse(text));
}

SweepSpec
loadSweepSpec(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open sweep spec '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    fatalIf(in.bad(), "I/O error reading sweep spec '", path, "'");
    try {
        return parseSweepSpec(text.str());
    } catch (const UsageError &error) {
        fatal("'", path, "': ", error.what());
    }
}

std::vector<SweepDiagnostic>
lintSweepSpec(std::string_view text)
{
    std::vector<SweepDiagnostic> diags;
    SpecReader reader(&diags);
    JsonValue json;
    try {
        json = JsonValue::parse(text);
    } catch (const SimulationError &error) {
        diags.push_back({"(json)", error.what()});
        return diags;
    }
    const SweepSpec spec = readSpec(reader, json);
    if (!diags.empty())
        return diags; // structure is broken; semantics would mislead
    lintDuplicates(reader, spec);
    lintGeometries(reader, spec);
    return diags;
}

} // namespace dirsim
