#include "sweep/run.hh"

#include <algorithm>
#include <chrono>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>

#include "common/log.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/phase.hh"

namespace dirsim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Manifest with per-instance provenance (generated instances are
 *  "memory" sources named by their sweep label; files carry the
 *  whole-file checksum). */
RunManifest
captureSweepManifest(const SweepPlan &plan,
                     const std::vector<std::unique_ptr<Trace>> &traces)
{
    // The manifest's flattened SimConfig fields describe one config;
    // a sweep has one per cell. Record the first cell's (the spec's
    // first axis values) — per-cell truth lives in the cell labels.
    RunManifest manifest = RunManifest::capture(
        plan.schemes, plan.cells.front().config(plan.spec));
    for (std::size_t t = 0; t < plan.traces.size(); ++t) {
        const SweepTraceInstance &instance = plan.traces[t];
        TraceProvenance provenance;
        provenance.name = instance.label;
        if (instance.kind == SweepTraceEntry::Kind::File) {
            provenance.path = instance.path;
            provenance.source = "file";
            provenance.checksum = fileChecksumFnv64(instance.path);
            provenance.hasChecksum = true;
        } else {
            provenance.source = "memory";
            provenance.records = traces[t]->size();
            provenance.caches =
                cachesNeeded(*traces[t], plan.spec.sharing);
        }
        manifest.traces.push_back(std::move(provenance));
    }
    return manifest;
}

/** Opaque identity of the calling thread for timeline lanes
 *  (mirrors the runner's tag so traces compose). */
std::uint64_t
workerThreadTag()
{
    return static_cast<std::uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

/** Mutable run state shared by the workers (mutex-guarded). */
struct RunState
{
    std::mutex mutex;
    std::vector<std::optional<CellOutcome>> outcomes;
    std::vector<std::uint64_t> cellStartNs;
    std::vector<std::uint64_t> cellThreadTags;
    std::size_t executedCells = 0;
    std::uint64_t simulatedCells = 0;
    std::uint64_t completedRefs = 0;
    std::uint64_t cacheHits = 0;
    bool stopped = false;
};

} // namespace

SweepOutcome
runSweep(const SweepPlan &plan, const SweepOptions &options)
{
    fatalIf(plan.cells.empty(), "sweep '", plan.spec.name,
            "' expands to no cells");

    const std::vector<std::unique_ptr<Trace>> traces =
        materializeSweepTraces(plan);

    std::vector<SimJob> jobs;
    jobs.reserve(plan.cells.size());
    for (const SweepCell &cell : plan.cells) {
        const SweepTraceInstance &instance =
            plan.traces[cell.traceIndex];
        SimJob job;
        job.trace = instance.kind == SweepTraceEntry::Kind::File
            ? TraceRef::file(instance.path)
            : TraceRef::of(*traces[cell.traceIndex]);
        job.scheme = cell.scheme;
        job.config = cell.config(plan.spec);
        jobs.push_back(std::move(job));
    }

    JobOptions engine;
    engine.shards.shards = 1;
    engine.cache = options.cache;
    SimPlan sim_plan = buildPlan(jobs, engine);

    // Apply the per-cell shard axis. buildPlan resolved everything to
    // one shard (the plan-wide default); a cell that can shard — a
    // decoded stream, infinite caches — takes its axis value, capped
    // by its block count.
    for (std::size_t i = 0; i < plan.cells.size(); ++i) {
        const unsigned want = plan.cells[i].shards;
        PlannedCell &planned = sim_plan.cells[i];
        if (want <= 1 || !planned.stream
            || planned.config.finiteCache)
            continue;
        planned.shards = static_cast<unsigned>(
            std::min<std::uint64_t>(
                want,
                std::max<std::uint64_t>(
                    1, planned.stream->blockCount())));
    }

    SweepOutcome outcome;
    outcome.manifest = captureSweepManifest(plan, traces);
    outcome.manifest.stampStart();

    const unsigned resolved_jobs = options.jobs != 0
        ? options.jobs
        : RunnerConfig::defaultJobs();
    outcome.manifest.jobs = resolved_jobs;

    const std::uint64_t planned_refs = sim_plan.plannedRefs();
    const Clock::time_point start = Clock::now();
    outcome.startNs = PhaseTimer::nowNs();

    RunState state;
    state.outcomes.resize(plan.cells.size());
    state.cellStartNs.resize(plan.cells.size(), 0);
    state.cellThreadTags.resize(plan.cells.size(), 0);

    const std::string run_label = options.runLabel.empty()
        ? plan.spec.name
        : options.runLabel;
    logEvent(LogLevel::Info, "sweep.run.start")
        .field("run", run_label)
        .field("name", plan.spec.name)
        .field("cells", static_cast<std::uint64_t>(plan.cells.size()))
        .field("jobs", resolved_jobs);

    // Pre-dispatch gate (under state.mutex): budget and cancellation
    // stop *dispatching*; in-flight cells always finish and are
    // recorded (and cached), which is what makes the cut resumable.
    const auto should_stop = [&]() {
        if (state.stopped)
            return true;
        if (options.cancel
            && options.cancel->load(std::memory_order_relaxed))
            state.stopped = true;
        else if (options.maxSimulatedCells != 0
                 && state.simulatedCells >= options.maxSimulatedCells)
            state.stopped = true;
        return state.stopped;
    };

    const auto record_outcome = [&](std::size_t index,
                                    std::uint64_t start_ns,
                                    CellOutcome cell_outcome) {
        logEvent(LogLevel::Debug, "sweep.cell.finished")
            .field("run", run_label)
            .field("cell", plan.cells[index].label)
            .field("scheme", plan.cells[index].scheme.name())
            .field("refs", cell_outcome.records)
            .field("cache_hit", cell_outcome.cacheHit)
            .field("wall_seconds", cell_outcome.wallSeconds);
        std::lock_guard<std::mutex> lock(state.mutex);
        state.cellStartNs[index] = start_ns;
        state.cellThreadTags[index] = workerThreadTag();
        ++state.executedCells;
        if (cell_outcome.cacheHit)
            ++state.cacheHits;
        else
            ++state.simulatedCells;
        state.completedRefs += cell_outcome.records;
        if (options.onProgress) {
            CellTiming timing;
            timing.scheme = plan.cells[index].scheme.name();
            timing.traceName = plan.cells[index].label;
            timing.refs = cell_outcome.records;
            timing.wallSeconds = cell_outcome.wallSeconds;
            timing.cacheHit = cell_outcome.cacheHit;
            timing.shards = cell_outcome.shardsUsed;
            timing.simulatedRefs = cell_outcome.simulatedRefs;
            GridProgress progress{state.executedCells,
                                  plan.cells.size(),
                                  timing,
                                  secondsSince(start),
                                  state.completedRefs,
                                  planned_refs,
                                  state.cacheHits};
            options.onProgress(progress);
        }
        state.outcomes[index] = std::move(cell_outcome);
    };

    if (resolved_jobs <= 1) {
        for (std::size_t i = 0; i < plan.cells.size(); ++i) {
            {
                std::lock_guard<std::mutex> lock(state.mutex);
                if (should_stop())
                    break;
            }
            const std::uint64_t start_ns = PhaseTimer::nowNs();
            record_outcome(i, start_ns, runPlannedCell(sim_plan, i));
        }
    } else {
        ThreadPool pool(resolved_jobs);
        for (std::size_t i = 0; i < plan.cells.size(); ++i) {
            pool.submit([&, i] {
                {
                    std::lock_guard<std::mutex> lock(state.mutex);
                    if (should_stop())
                        return;
                }
                const std::uint64_t start_ns = PhaseTimer::nowNs();
                record_outcome(i, start_ns,
                               runPlannedCell(sim_plan, i));
            });
        }
        pool.wait();
    }

    outcome.wallSeconds = secondsSince(start);
    outcome.manifest.stampFinish();
    outcome.completed = state.executedCells == plan.cells.size();

    std::uint64_t covered_refs = 0;
    for (std::size_t i = 0; i < plan.cells.size(); ++i) {
        if (!state.outcomes[i])
            continue;
        const CellOutcome &cell_outcome = *state.outcomes[i];
        CellTiming timing;
        timing.scheme = plan.cells[i].scheme.name();
        timing.traceName = plan.cells[i].label;
        timing.refs = cell_outcome.records;
        timing.wallSeconds = cell_outcome.wallSeconds;
        timing.cacheHit = cell_outcome.cacheHit;
        timing.shards = cell_outcome.shardsUsed;
        timing.simulatedRefs = cell_outcome.simulatedRefs;
        timing.startNs = state.cellStartNs[i];
        timing.threadTag = state.cellThreadTags[i];
        outcome.timings.push_back(timing);
        const SweepTraceInstance &instance =
            plan.traces[plan.cells[i].traceIndex];
        CellRecord record = CellRecord::fromCell(
            cell_outcome.result, timing,
            instance.kind == SweepTraceEntry::Kind::File
                ? instance.path
                : std::string());
        // The sweep label is the cell's identity: a plain trace name
        // would collide across block/geometry/shard axis values.
        record.trace = plan.cells[i].label;
        outcome.records.push_back(std::move(record));
        outcome.cellIndices.push_back(i);

        if (cell_outcome.cacheHit)
            ++outcome.cacheHits;
        else
            ++outcome.cacheMisses;
        outcome.simulatedRefs += cell_outcome.simulatedRefs;
        covered_refs += cell_outcome.records;
        outcome.metrics.observe(
            "runner.cell.wall_ms",
            static_cast<std::uint64_t>(cell_outcome.wallSeconds
                                       * 1e3));
    }

    outcome.metrics.set("runner.grid.wall_seconds",
                        outcome.wallSeconds);
    outcome.metrics.set(
        "runner.grid.refs_per_second",
        outcome.wallSeconds > 0.0
            ? static_cast<double>(covered_refs) / outcome.wallSeconds
            : 0.0);
    outcome.metrics.set("runner.grid.jobs", resolved_jobs);
    outcome.metrics.set(
        "runner.grid.cells",
        static_cast<double>(outcome.records.size()));
    if (options.cache) {
        outcome.metrics.add("runner.cache.hits", outcome.cacheHits);
        outcome.metrics.add("runner.cache.misses",
                            outcome.cacheMisses);
        outcome.metrics.add("runner.grid.simulated_refs",
                            outcome.simulatedRefs);
    }
    outcome.metrics.add("sweep.cells.total", plan.cells.size());
    outcome.metrics.add("sweep.cells.executed",
                        outcome.records.size());
    outcome.metrics.add("sweep.cells.skipped",
                        plan.cells.size() - outcome.records.size());
    outcome.metrics.add("sweep.traces", plan.traces.size());
    logEvent(LogLevel::Info, "sweep.run.finished")
        .field("run", run_label)
        .field("completed", outcome.completed)
        .field("cells",
               static_cast<std::uint64_t>(outcome.records.size()))
        .field("cache_hits", outcome.cacheHits)
        .field("simulated_refs", outcome.simulatedRefs)
        .field("wall_seconds", outcome.wallSeconds);
    return outcome;
}

void
writeSweepArtifacts(const SweepOutcome &outcome, ResultsSink &sink)
{
    sink.writeManifest(outcome.manifest);
    for (const CellRecord &record : outcome.records)
        sink.writeCell(record);
    sink.writeMetrics(outcome.metrics);
    sink.finish();
}

} // namespace dirsim
