/**
 * @file
 * SweepSpec: the JSON description of a parameter sweep.
 *
 * A sweep is the cross product of axes — schemes x traces x block
 * sizes x cache geometries x shard counts — exactly the shape of
 * every result in the paper (Tables 4/5 are scheme x trace at one
 * block size; Figure 4 adds the block-size axis; the scaling study
 * adds cache counts). The spec is deliberately small and strict:
 * unknown keys are rejected (they are almost always typos that would
 * otherwise silently shrink a campaign), every scheme name must
 * parse, and every axis must be non-empty.
 *
 * Two entry points consume a spec:
 *
 *  - parseSweepSpec(): strict — throws UsageError on the first
 *    problem, with the offending member named. The run paths
 *    (`dirsim_sweep`, the `dirsim_serve` POST handler) use this; a
 *    daemon turns the exception into a 400 with the message as the
 *    diagnostic.
 *  - lintSweepSpec(): exhaustive — collects *every* problem
 *    (unknown schemes, empty axes, cache counts past the trace
 *    format's u16 cpu ids, impossible geometries, duplicate cells)
 *    so `dirsim_validate --sweep` can report them all at once.
 *
 * See docs/sweep.md for the schema and worked examples.
 */

#ifndef DIRSIM_SWEEP_SPEC_HH
#define DIRSIM_SWEEP_SPEC_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"
#include "sim/simulator.hh"

namespace dirsim
{

class JsonValue;

/** One entry of the spec's "traces" axis. */
struct SweepTraceEntry
{
    enum class Kind
    {
        Profile, ///< generated from a tracegen profile
        File,    ///< an on-disk trace file
    };

    Kind kind = Kind::Profile;

    /** Profile name: "pops", "thor", "pero", or "scale" (the N-cache
     *  scaling workload; requires "caches"). */
    std::string profile;

    /** Target references for generated traces. */
    std::uint64_t refs = 60'000;

    /** Generation seed. */
    std::uint64_t seed = 88;

    /**
     * Cache-count axis for generated traces: one trace instance per
     * count (the profile is widened to that many CPUs/processes).
     * Empty keeps the profile's native machine size. Counts must fit
     * the trace format's u16 cpu ids.
     */
    std::vector<unsigned> caches;

    /** Trace file path (Kind::File). */
    std::string file;
};

/** One entry of the spec's "geometries" axis. */
struct SweepGeometry
{
    /** True = the paper's infinite caches (the JSON value
     *  "infinite"); false = a finite geometry. */
    bool infinite = true;
    std::uint64_t capacityBytes = 0;
    unsigned ways = 0;

    /** Stable short label: "inf" or "<capacity>B<ways>w". */
    std::string label() const;

    bool operator==(const SweepGeometry &) const = default;
};

/** A parsed sweep specification. */
struct SweepSpec
{
    /** Campaign name; becomes the artifact directory's default. */
    std::string name;

    /** Scheme axis (canonical paper notation, validated). */
    std::vector<std::string> schemes;

    /** Trace axis. */
    std::vector<SweepTraceEntry> traces;

    /** Block-size axis in bytes. */
    std::vector<unsigned> blockBytes{defaultBlockBytes};

    /** Cache-geometry axis. */
    std::vector<SweepGeometry> geometries{SweepGeometry{}};

    /** Shard-count axis (sim/job.hh intra-cell sharding). Results
     *  are bit-identical across shard counts; the axis exists for
     *  throughput studies. */
    std::vector<unsigned> shards{1};

    /** Measurement warm-up applied to every cell. */
    std::uint64_t warmupRefs = 0;

    /** Record-to-cache mapping applied to every cell. */
    SharingModel sharing = SharingModel::ByProcess;
};

/**
 * Parse a complete sweep spec from JSON text.
 *
 * @throws UsageError on malformed JSON (message carries the byte
 *         offset) or on the first structural problem (message names
 *         the member)
 */
SweepSpec parseSweepSpec(std::string_view text);

/** parseSweepSpec() on an already-parsed document. */
SweepSpec parseSweepSpec(const JsonValue &json);

/** Read and parse a sweep spec file.
 *  @throws UsageError when unreadable or invalid */
SweepSpec loadSweepSpec(const std::string &path);

/** One problem lintSweepSpec() found. */
struct SweepDiagnostic
{
    std::string where;   ///< spec location, e.g. "schemes[2]"
    std::string message; ///< what is wrong with it
};

/**
 * Exhaustively lint sweep-spec text: structural problems, unknown
 * scheme names, empty axes, cache counts that overflow the trace
 * format's u16 cpu ids, impossible finite-cache geometries, and
 * axis repeats that would expand into duplicate cells. Returns every
 * problem found (empty = clean); never throws on bad input.
 */
std::vector<SweepDiagnostic> lintSweepSpec(std::string_view text);

} // namespace dirsim

#endif // DIRSIM_SWEEP_SPEC_HH
