/**
 * @file
 * The two bus organizations of Section 4.3 and the per-operation
 * cycle costs derived from them (the paper's Table 2).
 *
 * Pipelined bus: separate address and data paths; the bus is not
 * held during memory/cache access waits. Non-pipelined bus: address
 * and data multiplexed; the bus is held for the access wait.
 */

#ifndef DIRSIM_BUS_BUS_MODEL_HH
#define DIRSIM_BUS_BUS_MODEL_HH

#include <string>

#include "bus/timing.hh"
#include "common/types.hh"

namespace dirsim
{

/** Bus organization (the two extremes the paper evaluates). */
enum class BusKind
{
    Pipelined,
    NonPipelined,
};

/** Human-readable bus name. */
const char *toString(BusKind kind);

/**
 * Per-operation bus-cycle costs (Table 2), derived from a BusTiming
 * and a bus organization for a given block size.
 *
 * Convention for dirty-block supplies (write-backs that also deliver
 * the data to the requester): the data-word cycles are accounted in
 * the write-back category and the request (address and, on a held
 * bus, the cache-access wait) in the memory-access category. This
 * convention reproduces the paper's Table 5 exactly from its Table 4
 * frequencies (see tests/bus/golden_paper_numbers.cc).
 */
struct BusCosts
{
    BusKind kind = BusKind::Pipelined;
    unsigned blockWords = defaultBlockBytes / busWordBytes;

    /** Full block read from main memory. */
    double memoryAccess = 0.0;
    /** Full block read from a remote cache (Dragon/Berkeley supply). */
    double cacheAccess = 0.0;
    /** Data-cycle portion of a write-back. */
    double writeBack = 0.0;
    /** Request portion of a dirty supply (address [+ cache wait]). */
    double dirtySupplyRequest = 0.0;
    /** One-word write-through to memory or update to caches. */
    double writeThrough = 0.0;
    /** Standalone directory probe (not overlapped with memory). */
    double dirCheck = 0.0;
    /** Invalidation signal, single or broadcast. */
    double invalidate = 0.0;
};

/**
 * Derive the Table 2 costs.
 *
 * @param timing fundamental operation timings (Table 1)
 * @param kind bus organization
 * @param block_words words per block (the paper uses 4)
 */
BusCosts deriveBusCosts(const BusTiming &timing, BusKind kind,
                        unsigned block_words =
                            defaultBlockBytes / busWordBytes);

/** Costs for the paper's pipelined bus at 4-word blocks. */
BusCosts paperPipelinedCosts();

/** Costs for the paper's non-pipelined bus at 4-word blocks. */
BusCosts paperNonPipelinedCosts();

} // namespace dirsim

#endif // DIRSIM_BUS_BUS_MODEL_HH
