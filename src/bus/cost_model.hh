/**
 * @file
 * Cost models: weight event frequencies (or concrete operation
 * counts) by the per-operation bus-cycle costs to obtain the paper's
 * headline metric — bus cycles per memory reference — decomposed into
 * the Table 5 categories.
 *
 * Two equivalent paths are provided:
 *
 *  - costFromFreqs(): the paper's methodology. One simulation yields
 *    a scheme's event frequencies; any bus model can then be applied
 *    without re-simulating. This path also accepts externally
 *    supplied frequencies, which is how the golden tests reproduce
 *    the paper's published Table 5 from its published Table 4.
 *
 *  - costFromOps(): weight the concrete operations a protocol engine
 *    tallied. Exact for every scheme, including the parameterized
 *    Dir_i families whose invalidation behaviour depends on run-time
 *    pointer state. For the standard schemes the two paths agree
 *    (asserted by test).
 */

#ifndef DIRSIM_BUS_COST_MODEL_HH
#define DIRSIM_BUS_COST_MODEL_HH

#include <optional>
#include <string>

#include "bus/bus_model.hh"
#include "common/histogram.hh"
#include "protocols/events.hh"

namespace dirsim
{

/** Schemes with a closed-form event-frequency cost model. */
enum class SchemeKind
{
    Dir1NB,
    DirNNB,
    Dir0B,
    WTI,
    Dragon,
    Berkeley,
};

/** Scheme name in the paper's notation. */
const char *toString(SchemeKind kind);

/** Parse a scheme name; nullopt for Dir_i families (ops-only). */
std::optional<SchemeKind> schemeKindFromName(const std::string &name);

/**
 * The Table 5 breakdown: bus cycles per memory reference by
 * operation category, plus the bus-transaction rate used by the
 * Figure 5 and Section 5.1 analyses.
 */
struct CycleBreakdown
{
    double dirAccess = 0.0;   ///< unoverlapped directory probes
    double invalidate = 0.0;  ///< invalidation / flush-request signals
    double writeBack = 0.0;   ///< write-back data cycles
    double memAccess = 0.0;   ///< memory & remote-cache block reads
    double writeThroughOrUpdate = 0.0; ///< "wt or wup" row

    /** Bus transactions per memory reference. */
    double transactions = 0.0;

    /** Total bus cycles per memory reference. */
    double total() const
    {
        return dirAccess + invalidate + writeBack + memAccess
            + writeThroughOrUpdate;
    }

    /** Figure 5 metric: average bus cycles per bus transaction. */
    double cyclesPerTransaction() const
    {
        return transactions == 0.0 ? 0.0 : total() / transactions;
    }

    /**
     * Section 5.1 metric: total when every bus transaction carries a
     * fixed overhead of @p q additional cycles (arbitration, bus
     * controller propagation, initial cache access).
     */
    double totalWithOverhead(double q) const
    {
        return total() + q * transactions;
    }
};

/**
 * Summary of the Figure 1 histogram the clean-write invalidation
 * costs depend on.
 */
struct CleanWriteProfile
{
    /** Mean number of other holders over all clean-write events. */
    double meanOtherHolders = 1.0;
    /** Fraction of clean-write events with at least one other holder. */
    double fracWithHolders = 1.0;

    /** Derive the profile from a protocol's cleanWriteHolders(). */
    static CleanWriteProfile fromHistogram(const Histogram &hist);

    /**
     * The paper's implicit profile when only Table 4 is available:
     * every clean write invalidates (frac 1) exactly once (mean 1).
     */
    static CleanWriteProfile paperDefault()
    {
        return CleanWriteProfile{};
    }
};

/** Knobs for the cost models. */
struct CostOptions
{
    /**
     * Cycles consumed by a broadcast invalidation, the paper's "b".
     * Negative (the default) means "use the single-invalidate cost",
     * the simplifying assumption of the main evaluation.
     */
    double broadcastCost = -1.0;
};

/**
 * The paper's methodology: cost a scheme from its event frequencies.
 *
 * @param kind which scheme's formulas to apply
 * @param freqs event frequencies (fractions of all references)
 * @param costs per-operation cycle costs (Table 2)
 * @param profile clean-write invalidation profile (Figure 1 summary)
 * @param options broadcast-cost override etc.
 */
CycleBreakdown costFromFreqs(SchemeKind kind, const EventFreqs &freqs,
                             const BusCosts &costs,
                             const CleanWriteProfile &profile =
                                 CleanWriteProfile::paperDefault(),
                             const CostOptions &options = {});

/**
 * Cost a run from the concrete operations the protocol tallied.
 *
 * @param ops operation counts
 * @param total_refs all references of the run (incl. instructions)
 * @param costs per-operation cycle costs
 * @param options broadcast-cost override etc.
 */
CycleBreakdown costFromOps(const OpCounts &ops,
                           std::uint64_t total_refs,
                           const BusCosts &costs,
                           const CostOptions &options = {});

} // namespace dirsim

#endif // DIRSIM_BUS_COST_MODEL_HH
