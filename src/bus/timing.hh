/**
 * @file
 * Table 1 of the paper: timing of the fundamental bus operations, in
 * bus cycles. Everything else in the bus module is derived from
 * these five numbers plus the bus organization.
 */

#ifndef DIRSIM_BUS_TIMING_HH
#define DIRSIM_BUS_TIMING_HH

namespace dirsim
{

/** Fundamental bus operation timings (Table 1). */
struct BusTiming
{
    /** Transfer one data word. */
    unsigned transferWord = 1;
    /** Send an invalidation signal (single or broadcast). */
    unsigned invalidate = 1;
    /** Wait for a directory access. */
    unsigned waitDirectory = 2;
    /** Wait for a main-memory access. */
    unsigned waitMemory = 2;
    /** Wait for a (remote) cache access. */
    unsigned waitCache = 1;

    /** Sanity-check the values; throws UsageError when unusable. */
    void check() const;
};

/** The paper's Table 1 values (the defaults above). */
BusTiming paperBusTiming();

} // namespace dirsim

#endif // DIRSIM_BUS_TIMING_HH
