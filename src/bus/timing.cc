#include "bus/timing.hh"

#include "common/logging.hh"

namespace dirsim
{

void
BusTiming::check() const
{
    fatalIf(transferWord == 0, "word transfer must take >= 1 cycle");
    fatalIf(invalidate == 0, "invalidation must take >= 1 cycle");
}

BusTiming
paperBusTiming()
{
    return BusTiming{};
}

} // namespace dirsim
