#include "bus/latency_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dirsim
{

namespace
{

/** Cap used to keep the near-saturation queue delay printable. */
constexpr double delayCap = 1e9;

} // namespace

void
SystemParams::check() const
{
    fatalIf(mips <= 0.0, "processor speed must be positive");
    fatalIf(busCycleNs <= 0.0, "bus cycle time must be positive");
    fatalIf(refsPerInstr <= 0.0,
            "references per instruction must be positive");
    fatalIf(overheadQ < 0.0, "transaction overhead cannot be negative");
    fatalIf(processors == 0, "the machine needs at least one processor");
}

SystemEstimate
estimateSystem(const CycleBreakdown &cost, const SystemParams &params)
{
    params.check();

    SystemEstimate estimate;
    // Per-processor demand in bus cycles per second.
    const double refs_per_second =
        params.mips * 1e6 * params.refsPerInstr;
    const double cycles_per_ref =
        cost.totalWithOverhead(params.overheadQ);
    const double demand = refs_per_second * cycles_per_ref;
    const double capacity = 1e9 / params.busCycleNs;

    estimate.offeredUtilization =
        demand * params.processors / capacity;
    estimate.utilization = std::min(estimate.offeredUtilization, 1.0);

    estimate.serviceCycles = cost.transactions == 0.0
        ? 0.0
        : cost.cyclesPerTransaction() + params.overheadQ;

    // M/D/1 mean waiting time: rho * S / (2 (1 - rho)).
    const double rho = estimate.offeredUtilization;
    if (rho >= 1.0) {
        estimate.queueingDelayCycles = delayCap;
    } else {
        estimate.queueingDelayCycles =
            rho * estimate.serviceCycles / (2.0 * (1.0 - rho));
    }
    estimate.accessCycles =
        estimate.serviceCycles
        + std::min(estimate.queueingDelayCycles, delayCap);

    // Throughput view: beyond saturation the bus caps the aggregate
    // reference rate.
    const double sustainable =
        demand == 0.0 ? static_cast<double>(params.processors)
                      : capacity / demand;
    estimate.effectiveProcessors = std::min(
        static_cast<double>(params.processors), sustainable);
    estimate.efficiency = estimate.effectiveProcessors
        / static_cast<double>(params.processors);
    return estimate;
}

double
saturationProcessors(const CycleBreakdown &cost,
                     const SystemParams &params)
{
    params.check();
    const double refs_per_second =
        params.mips * 1e6 * params.refsPerInstr;
    const double cycles_per_ref =
        cost.totalWithOverhead(params.overheadQ);
    const double demand = refs_per_second * cycles_per_ref;
    fatalIf(demand <= 0.0,
            "a scheme with zero bus traffic never saturates the bus");
    return (1e9 / params.busCycleNs) / demand;
}

} // namespace dirsim
