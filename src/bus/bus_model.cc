#include "bus/bus_model.hh"

#include "common/logging.hh"

namespace dirsim
{

const char *
toString(BusKind kind)
{
    switch (kind) {
      case BusKind::Pipelined:
        return "pipelined";
      case BusKind::NonPipelined:
        return "non-pipelined";
    }
    panic("unknown BusKind ", static_cast<int>(kind));
}

BusCosts
deriveBusCosts(const BusTiming &timing, BusKind kind,
               unsigned block_words)
{
    timing.check();
    fatalIf(block_words == 0, "blocks must hold at least one word");

    BusCosts costs;
    costs.kind = kind;
    costs.blockWords = block_words;

    const double addr = 1.0; // one cycle to send an address
    const double data =
        static_cast<double>(block_words) * timing.transferWord;

    if (kind == BusKind::Pipelined) {
        // Separate address/data paths; the bus is released during
        // access waits.
        costs.memoryAccess = addr + data;
        costs.cacheAccess = addr + data;
        costs.dirtySupplyRequest = addr;
        // The first write-back cycle carries the address with the
        // first word, so the whole write-back is block_words cycles.
        costs.writeBack = data;
        costs.writeThrough = 1.0; // address and word ride together
        costs.dirCheck = addr;
        costs.invalidate = timing.invalidate;
    } else {
        // Multiplexed bus held for the access wait.
        costs.memoryAccess = addr + timing.waitMemory + data;
        costs.cacheAccess = addr + timing.waitCache + data;
        costs.dirtySupplyRequest = addr + timing.waitCache;
        costs.writeBack = data;
        costs.writeThrough = addr + timing.transferWord;
        costs.dirCheck = addr + timing.waitDirectory;
        costs.invalidate = timing.invalidate;
    }
    return costs;
}

BusCosts
paperPipelinedCosts()
{
    return deriveBusCosts(paperBusTiming(), BusKind::Pipelined);
}

BusCosts
paperNonPipelinedCosts()
{
    return deriveBusCosts(paperBusTiming(), BusKind::NonPipelined);
}

} // namespace dirsim
