/**
 * @file
 * System-level performance estimation (the paper's Section 5.1
 * discussion, carried one step further).
 *
 * The paper notes that "total system performance cannot be determined
 * from the bus cycles metric alone" and sketches two ingredients: a
 * fixed per-transaction overhead q, and the back-of-envelope bus
 * saturation estimate (~15 10-MIPS processors on a 100ns bus for the
 * best scheme). This module combines the two into a small analytic
 * model of a symmetric shared-bus multiprocessor:
 *
 *  - each processor issues `refsPerInstr * mips` million memory
 *    references per second, each consuming `total + q*transactions`
 *    bus cycles on average (from a scheme's CycleBreakdown);
 *  - the bus is a single server; waiting is approximated by the
 *    M/D/1 mean queue delay at the offered utilization.
 *
 * The model deliberately stays first-order (as the paper's own
 * estimates do): no feedback from stalls to the reference rate below
 * saturation, and throughput capped at the bus capacity above it.
 */

#ifndef DIRSIM_BUS_LATENCY_MODEL_HH
#define DIRSIM_BUS_LATENCY_MODEL_HH

#include "bus/cost_model.hh"

namespace dirsim
{

/** Parameters of the modelled machine. */
struct SystemParams
{
    /** Processor speed in millions of instructions per second. */
    double mips = 10.0;
    /** Bus cycle time in nanoseconds. */
    double busCycleNs = 100.0;
    /**
     * Memory references per instruction. The paper's traces average
     * one data reference per instruction, i.e. two references
     * (instruction + data) per instruction.
     */
    double refsPerInstr = 2.0;
    /** Fixed overhead cycles added to every bus transaction (q). */
    double overheadQ = 0.0;
    /** Number of processors on the bus. */
    unsigned processors = 16;

    /** Validate; throws UsageError on nonsense. */
    void check() const;
};

/** What the model predicts for one (scheme, machine) point. */
struct SystemEstimate
{
    /** Demand / capacity; may exceed 1 (saturated). */
    double offeredUtilization = 0.0;
    /** Actual bus utilization, capped at 1. */
    double utilization = 0.0;
    /** Mean M/D/1 queueing delay per transaction, in bus cycles
     *  (infinite at or beyond saturation is reported as capped at
     *  1e9 to stay printable). */
    double queueingDelayCycles = 0.0;
    /** Mean bus service time per transaction incl. overhead q. */
    double serviceCycles = 0.0;
    /** Mean access time per transaction = service + queueing. */
    double accessCycles = 0.0;
    /** Throughput-equivalent processor count (<= processors). */
    double effectiveProcessors = 0.0;
    /** effectiveProcessors / processors. */
    double efficiency = 0.0;
};

/**
 * Evaluate the model.
 *
 * @param cost a scheme's bus-cycle breakdown (per memory reference)
 * @param params the machine
 */
SystemEstimate estimateSystem(const CycleBreakdown &cost,
                              const SystemParams &params);

/**
 * The processor count at which the bus saturates (offered
 * utilization reaches 1) — the paper's "maximum performance of 15
 * effective processors" number, for any scheme and machine.
 */
double saturationProcessors(const CycleBreakdown &cost,
                            const SystemParams &params);

} // namespace dirsim

#endif // DIRSIM_BUS_LATENCY_MODEL_HH
