#include "bus/cost_model.hh"

#include "common/logging.hh"

namespace dirsim
{

namespace
{

using E = EventType;

double
broadcastCycles(const BusCosts &costs, const CostOptions &options)
{
    return options.broadcastCost < 0.0 ? costs.invalidate
                                       : options.broadcastCost;
}

/**
 * Shared memory/write-back accounting for the directory schemes
 * (Dir1NB, DirNNB, Dir0B): clean misses are served by memory, dirty
 * misses by the owner's write-back (request under memAccess, data
 * under writeBack).
 */
void
directorySupplyCosts(const EventFreqs &freqs, const BusCosts &costs,
                     CycleBreakdown &result)
{
    const double clean_misses = freqs.get(E::RdMiss)
        - freqs.get(E::RmBlkDrty) + freqs.get(E::WrtMiss)
        - freqs.get(E::WmBlkDrty);
    const double dirty = freqs.dirtyMisses();
    result.memAccess = clean_misses * costs.memoryAccess
        + dirty * costs.dirtySupplyRequest;
    result.writeBack = dirty * costs.writeBack;
}

CycleBreakdown
costDir1NB(const EventFreqs &freqs, const BusCosts &costs)
{
    CycleBreakdown result;
    directorySupplyCosts(freqs, costs, result);
    // Every miss that finds the (single) copy elsewhere sends one
    // directed invalidate/flush message. The directory probe always
    // overlaps the memory access.
    const double displacements = freqs.get(E::RmBlkCln)
        + freqs.get(E::RmBlkDrty) + freqs.get(E::WmBlkCln)
        + freqs.get(E::WmBlkDrty);
    result.invalidate = displacements * costs.invalidate;
    result.transactions = freqs.get(E::RdMiss) + freqs.get(E::WrtMiss);
    return result;
}

CycleBreakdown
costDirNNB(const EventFreqs &freqs, const BusCosts &costs,
           const CleanWriteProfile &profile)
{
    CycleBreakdown result;
    directorySupplyCosts(freqs, costs, result);
    // Writes to clean blocks probe the directory (no memory access to
    // overlap with) and send one directed invalidation per copy.
    result.dirAccess = freqs.get(E::WhBlkCln) * costs.dirCheck;
    const double clean_writes =
        freqs.get(E::WhBlkCln) + freqs.get(E::WmBlkCln);
    const double flush_requests = freqs.dirtyMisses();
    result.invalidate =
        (flush_requests + clean_writes * profile.meanOtherHolders)
        * costs.invalidate;
    result.transactions = freqs.get(E::RdMiss) + freqs.get(E::WrtMiss)
        + freqs.get(E::WhBlkCln);
    return result;
}

CycleBreakdown
costDir0B(const EventFreqs &freqs, const BusCosts &costs,
          const CleanWriteProfile &profile, const CostOptions &options)
{
    CycleBreakdown result;
    directorySupplyCosts(freqs, costs, result);
    result.dirAccess = freqs.get(E::WhBlkCln) * costs.dirCheck;
    // Invalidations and flush requests are broadcasts. Clean writes
    // whose block is in no other cache (directory state clean-one)
    // skip the broadcast; the Figure 1 profile supplies the fraction.
    const double clean_writes =
        freqs.get(E::WhBlkCln) + freqs.get(E::WmBlkCln);
    const double broadcasts = freqs.dirtyMisses()
        + clean_writes * profile.fracWithHolders;
    result.invalidate = broadcasts * broadcastCycles(costs, options);
    result.transactions = freqs.get(E::RdMiss) + freqs.get(E::WrtMiss)
        + freqs.get(E::WhBlkCln);
    return result;
}

CycleBreakdown
costWTI(const EventFreqs &freqs, const BusCosts &costs)
{
    CycleBreakdown result;
    // Memory is never stale: every miss is a plain memory access, and
    // every write (hits, misses, and first references alike) is
    // transmitted to memory.
    result.memAccess = (freqs.get(E::RdMiss) + freqs.get(E::WrtMiss))
        * costs.memoryAccess;
    result.writeThroughOrUpdate =
        freqs.get(E::Write) * costs.writeThrough;
    result.transactions = freqs.get(E::RdMiss) + freqs.get(E::WrtMiss)
        + freqs.get(E::Write);
    return result;
}

CycleBreakdown
costDragon(const EventFreqs &freqs, const BusCosts &costs)
{
    CycleBreakdown result;
    // A block present in any other cache is supplied cache-to-cache
    // (the shared line is pulled); otherwise memory supplies it.
    const double cache_supplied = freqs.get(E::RmBlkCln)
        + freqs.get(E::RmBlkDrty) + freqs.get(E::WmBlkCln)
        + freqs.get(E::WmBlkDrty);
    const double mem_supplied =
        freqs.readMissNoCopy() + freqs.writeMissNoCopy();
    result.memAccess = cache_supplied * costs.cacheAccess
        + mem_supplied * costs.memoryAccess;
    // Write updates: every shared write hit, plus the distribution of
    // the write after a write miss that found sharers.
    const double updates = freqs.get(E::WhDistrib)
        + freqs.get(E::WmBlkCln) + freqs.get(E::WmBlkDrty);
    result.writeThroughOrUpdate = updates * costs.writeThrough;
    result.transactions = freqs.get(E::RdMiss) + freqs.get(E::WrtMiss)
        + freqs.get(E::WhDistrib);
    return result;
}

CycleBreakdown
costBerkeley(const EventFreqs &freqs, const BusCosts &costs,
             const CostOptions &options)
{
    CycleBreakdown result;
    // Like Dir0B but: no directory probe (the local block state says
    // whether to invalidate), and a dirty block is supplied
    // cache-to-cache without updating memory.
    const double clean_misses = freqs.get(E::RdMiss)
        - freqs.get(E::RmBlkDrty) + freqs.get(E::WrtMiss)
        - freqs.get(E::WmBlkDrty);
    result.memAccess = clean_misses * costs.memoryAccess
        + freqs.dirtyMisses() * costs.cacheAccess;
    // Every write miss and every non-exclusive write hit broadcasts
    // an invalidation on the snoopy bus.
    const double broadcasts =
        freqs.get(E::WhBlkCln) + freqs.get(E::WrtMiss);
    result.invalidate = broadcasts * broadcastCycles(costs, options);
    result.transactions = freqs.get(E::RdMiss) + freqs.get(E::WrtMiss)
        + freqs.get(E::WhBlkCln);
    return result;
}

} // namespace

const char *
toString(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Dir1NB:
        return "Dir1NB";
      case SchemeKind::DirNNB:
        return "DirNNB";
      case SchemeKind::Dir0B:
        return "Dir0B";
      case SchemeKind::WTI:
        return "WTI";
      case SchemeKind::Dragon:
        return "Dragon";
      case SchemeKind::Berkeley:
        return "Berkeley";
    }
    panic("unknown SchemeKind ", static_cast<int>(kind));
}

std::optional<SchemeKind>
schemeKindFromName(const std::string &name)
{
    if (name == "Dir1NB")
        return SchemeKind::Dir1NB;
    if (name == "DirNNB")
        return SchemeKind::DirNNB;
    if (name == "Dir0B")
        return SchemeKind::Dir0B;
    if (name == "WTI")
        return SchemeKind::WTI;
    if (name == "Dragon")
        return SchemeKind::Dragon;
    if (name == "Berkeley")
        return SchemeKind::Berkeley;
    return std::nullopt;
}

CleanWriteProfile
CleanWriteProfile::fromHistogram(const Histogram &hist)
{
    CleanWriteProfile profile;
    if (hist.samples() == 0)
        return profile;
    profile.meanOtherHolders = hist.mean();
    profile.fracWithHolders = 1.0 - hist.fraction(0);
    return profile;
}

CycleBreakdown
costFromFreqs(SchemeKind kind, const EventFreqs &freqs,
              const BusCosts &costs, const CleanWriteProfile &profile,
              const CostOptions &options)
{
    switch (kind) {
      case SchemeKind::Dir1NB:
        return costDir1NB(freqs, costs);
      case SchemeKind::DirNNB:
        return costDirNNB(freqs, costs, profile);
      case SchemeKind::Dir0B:
        return costDir0B(freqs, costs, profile, options);
      case SchemeKind::WTI:
        return costWTI(freqs, costs);
      case SchemeKind::Dragon:
        return costDragon(freqs, costs);
      case SchemeKind::Berkeley:
        return costBerkeley(freqs, costs, options);
    }
    panic("unknown SchemeKind ", static_cast<int>(kind));
}

CycleBreakdown
costFromOps(const OpCounts &ops, std::uint64_t total_refs,
            const BusCosts &costs, const CostOptions &options)
{
    fatalIf(total_refs == 0, "costFromOps over zero references");
    const double refs = static_cast<double>(total_refs);

    CycleBreakdown result;
    result.memAccess =
        (static_cast<double>(ops.memSupplies) * costs.memoryAccess
         + static_cast<double>(ops.cacheSupplies) * costs.cacheAccess
         + static_cast<double>(ops.dirtySupplies)
               * costs.dirtySupplyRequest)
        / refs;
    result.writeBack =
        static_cast<double>(ops.dirtySupplies + ops.evictionWriteBacks)
        * costs.writeBack / refs;
    result.invalidate =
        (static_cast<double>(ops.invalMsgs + ops.overflowInvals)
             * costs.invalidate
         + static_cast<double>(ops.broadcastInvals)
               * broadcastCycles(costs, options))
        / refs;
    result.dirAccess =
        static_cast<double>(ops.dirChecks) * costs.dirCheck / refs;
    result.writeThroughOrUpdate =
        static_cast<double>(ops.writeThroughs + ops.writeUpdates)
        * costs.writeThrough / refs;
    result.transactions =
        static_cast<double>(ops.busTransactions) / refs;
    return result;
}

} // namespace dirsim
