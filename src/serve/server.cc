#include "serve/server.hh"

#include <sstream>

#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/artifacts.hh"
#include "obs/cell_cache.hh"
#include "obs/sink.hh"
#include "sweep/run.hh"
#include "sweep/spec.hh"

namespace dirsim
{

namespace
{

std::string
errorJson(const std::string &message)
{
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject().key("error").value(message).endObject();
    return os.str();
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    HttpResponse response;
    response.status = status;
    response.body = errorJson(message);
    return response;
}

/** "/runs/12/events" -> {"runs", "12", "events"}. */
std::vector<std::string>
pathSegments(const std::string &path)
{
    std::vector<std::string> segments;
    std::istringstream in(path);
    std::string segment;
    while (std::getline(in, segment, '/')) {
        if (!segment.empty())
            segments.push_back(segment);
    }
    return segments;
}

/** Parse a run id segment; false on non-numeric ids. */
bool
parseRunId(const std::string &text, std::uint64_t &id)
{
    if (text.empty()
        || text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    try {
        id = std::stoull(text);
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

} // namespace

ServeConfig
ServeConfig::fromEnvironment()
{
    ServeConfig config;
    const unsigned port = envUnsigned("DIRSIM_SERVE_PORT", 0);
    fatalIf(port > 65535, "DIRSIM_SERVE_PORT ", port,
            " is not a valid port");
    config.port = static_cast<std::uint16_t>(port);
    config.queueCapacity = envU64("DIRSIM_SERVE_QUEUE", 8);
    config.jobs = envUnsigned("DIRSIM_SERVE_JOBS", 0);
    config.discipline =
        envString("DIRSIM_SERVE_DISCIPLINE").value_or("fcfs");
    config.cache = FileCellCache::fromEnvironment();
    return config;
}

SweepServer::SweepServer(ServeConfig config_arg)
    : config(std::move(config_arg))
{
}

SweepServer::~SweepServer()
{
    stop();
}

void
SweepServer::start()
{
    fatalIf(started, "server already started");
    queue = makeDiscipline(config.discipline);
    holding = config.hold;
    listener = std::make_unique<HttpListener>(config.port);
    started = true;
    acceptThread = std::thread(&SweepServer::acceptLoop, this);
    workerThread = std::thread(&SweepServer::workerLoop, this);
}

std::uint16_t
SweepServer::port() const
{
    panicIfNot(listener != nullptr, "port() before start()");
    return listener->port();
}

void
SweepServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(stateMutex);
    stopCv.wait(lock, [&] { return stopping; });
}

void
SweepServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        stopping = true;
        // The running sweep (if any) stops at its next cell boundary.
        for (auto &[id, entry] : runs)
            entry->cancel.store(true);
    }
    workCv.notify_all();
    eventsCv.notify_all();
    stopCv.notify_all();
    if (listener)
        listener->shutdown();
    if (acceptThread.joinable())
        acceptThread.join();

    // The accept thread was the only spawner, so the handler list is
    // stable now.
    std::vector<std::thread> to_join;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        to_join.swap(handlers);
    }
    for (std::thread &handler : to_join)
        handler.join();
    if (workerThread.joinable())
        workerThread.join();
}

void
SweepServer::acceptLoop()
{
    for (;;) {
        const int fd = listener->acceptConnection();
        if (fd < 0)
            return;
        std::lock_guard<std::mutex> lock(stateMutex);
        if (stopping) {
            HttpConnection drop(fd);
            return;
        }
        handlers.emplace_back(&SweepServer::handleConnection, this,
                              fd);
    }
}

void
SweepServer::handleConnection(int fd)
{
    HttpConnection connection(fd);
    HttpRequest request;
    std::string parse_error;
    if (!connection.readRequest(request, parse_error)) {
        if (!parse_error.empty())
            connection.sendResponse(
                errorResponse(400, parse_error));
        return;
    }

    bool responded = false;
    HttpResponse response;
    try {
        response = handle(request, connection, responded);
    } catch (const SimulationError &error) {
        response = errorResponse(400, error.what());
    } catch (const std::exception &error) {
        response = errorResponse(500, error.what());
    }
    if (!responded)
        connection.sendResponse(response);
}

HttpResponse
SweepServer::handle(const HttpRequest &request,
                    HttpConnection &connection, bool &responded)
{
    const std::vector<std::string> segments =
        pathSegments(request.path());

    if (segments.empty()) {
        if (request.method != "GET")
            return errorResponse(405, "use GET /");
        std::ostringstream os;
        JsonWriter writer(os);
        std::lock_guard<std::mutex> lock(stateMutex);
        writer.beginObject()
            .key("service").value("dirsim_serve")
            .key("discipline").value(queue->name())
            .key("queue_depth").value(
                static_cast<std::uint64_t>(queue->size()))
            .key("queue_capacity").value(
                static_cast<std::uint64_t>(config.queueCapacity))
            .key("holding").value(holding)
            .key("runs").value(
                static_cast<std::uint64_t>(runs.size()))
            .endObject();
        HttpResponse response;
        response.body = os.str();
        return response;
    }

    if (segments[0] == "runs") {
        if (segments.size() == 1) {
            if (request.method == "POST")
                return handleSubmit(request);
            if (request.method == "GET")
                return handleList();
            return errorResponse(405, "use GET or POST /runs");
        }
        std::uint64_t id = 0;
        if (!parseRunId(segments[1], id))
            return errorResponse(404, "unknown run '" + segments[1]
                                     + "'");
        if (segments.size() == 2) {
            if (request.method != "GET")
                return errorResponse(405, "use GET /runs/{id}");
            return handleStatus(id);
        }
        if (segments.size() == 3 && segments[2] == "events") {
            if (request.method != "GET")
                return errorResponse(405,
                                     "use GET /runs/{id}/events");
            streamEvents(id, connection);
            responded = true;
            return {};
        }
        if (segments.size() == 3 && segments[2] == "artifacts") {
            if (request.method != "GET")
                return errorResponse(
                    405, "use GET /runs/{id}/artifacts");
            return handleArtifacts(id);
        }
        if (segments.size() == 3 && segments[2] == "cancel") {
            if (request.method != "POST")
                return errorResponse(405,
                                     "use POST /runs/{id}/cancel");
            return handleCancel(id);
        }
        if (segments.size() == 4 && segments[2] == "diff") {
            if (request.method != "GET")
                return errorResponse(
                    405, "use GET /runs/{id}/diff/{id}");
            std::uint64_t other = 0;
            if (!parseRunId(segments[3], other))
                return errorResponse(404, "unknown run '"
                                         + segments[3] + "'");
            return handleDiff(id, other);
        }
        return errorResponse(404,
                             "no such endpoint under /runs");
    }

    if (segments.size() == 2 && segments[0] == "admin"
        && segments[1] == "release") {
        if (request.method != "POST")
            return errorResponse(405, "use POST /admin/release");
        {
            std::lock_guard<std::mutex> lock(stateMutex);
            holding = false;
        }
        workCv.notify_all();
        HttpResponse response;
        response.body = "{\"holding\":false}";
        return response;
    }

    if (segments.size() == 1 && segments[0] == "shutdown") {
        if (request.method != "POST")
            return errorResponse(405, "use POST /shutdown");
        {
            std::lock_guard<std::mutex> lock(stateMutex);
            stopping = true;
            for (auto &[id, entry] : runs)
                entry->cancel.store(true);
        }
        stopCv.notify_all();
        workCv.notify_all();
        eventsCv.notify_all();
        HttpResponse response;
        response.body = "{\"stopping\":true}";
        return response;
    }

    return errorResponse(404, "no such endpoint '" + request.path()
                             + "'");
}

HttpResponse
SweepServer::handleSubmit(const HttpRequest &request)
{
    // Validate up front so a malformed spec is a 400 with the
    // parser's diagnostic and never occupies a queue slot.
    SweepSpec spec;
    std::size_t cells = 0;
    try {
        spec = parseSweepSpec(request.body);
        cells = expandSweep(spec).cells.size();
    } catch (const UsageError &error) {
        return errorResponse(400, std::string("sweep spec rejected: ")
                                 + error.what());
    }

    const std::string *client_header =
        request.header("x-dirsim-client");
    const std::string client =
        client_header ? *client_header : std::string();

    std::uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        if (stopping)
            return errorResponse(503, "daemon is shutting down");
        if (queue->size() >= config.queueCapacity)
            return errorResponse(
                429, "queue full ("
                    + std::to_string(config.queueCapacity)
                    + " runs waiting); retry later");
        id = nextId++;
        auto entry = std::make_unique<RunEntry>();
        entry->id = id;
        entry->client = client;
        entry->specText = request.body;
        entry->name = spec.name;
        entry->events.push_back("{\"kind\":\"state\",\"state\":"
                                "\"queued\"}");
        runs.emplace(id, std::move(entry));
        queue->enqueue({id, client});
    }
    workCv.notify_one();
    eventsCv.notify_all();

    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("id").value(id)
        .key("name").value(spec.name)
        .key("state").value("queued")
        .key("cells").value(static_cast<std::uint64_t>(cells))
        .endObject();
    HttpResponse response;
    response.status = 202;
    response.body = os.str();
    return response;
}

namespace
{

void
writeRunJson(JsonWriter &writer,
             std::uint64_t id, const std::string &name,
             const std::string &state, const std::string &client,
             const std::string &error, std::size_t events)
{
    writer.beginObject()
        .key("id").value(id)
        .key("name").value(name)
        .key("state").value(state);
    if (!client.empty())
        writer.key("client").value(client);
    if (!error.empty())
        writer.key("error").value(error);
    writer.key("events").value(static_cast<std::uint64_t>(events))
        .endObject();
}

} // namespace

HttpResponse
SweepServer::handleStatus(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(stateMutex);
    const auto it = runs.find(id);
    if (it == runs.end())
        return errorResponse(404,
                             "unknown run " + std::to_string(id));
    const RunEntry &entry = *it->second;
    std::ostringstream os;
    JsonWriter writer(os);
    writeRunJson(writer, entry.id, entry.name, entry.state,
                 entry.client, entry.error, entry.events.size());
    HttpResponse response;
    response.body = os.str();
    return response;
}

HttpResponse
SweepServer::handleList()
{
    std::lock_guard<std::mutex> lock(stateMutex);
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject().key("runs").beginArray();
    for (const auto &[id, entry] : runs)
        writeRunJson(writer, entry->id, entry->name, entry->state,
                     entry->client, entry->error,
                     entry->events.size());
    writer.endArray().endObject();
    HttpResponse response;
    response.body = os.str();
    return response;
}

HttpResponse
SweepServer::handleArtifacts(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(stateMutex);
    const auto it = runs.find(id);
    if (it == runs.end())
        return errorResponse(404,
                             "unknown run " + std::to_string(id));
    const RunEntry &entry = *it->second;
    if (entry.state != "done")
        return errorResponse(409, "run " + std::to_string(id)
                                 + " has no artifacts (state "
                                 + entry.state + ")");
    HttpResponse response;
    response.contentType = "application/x-ndjson";
    response.body = entry.artifacts;
    return response;
}

HttpResponse
SweepServer::handleDiff(std::uint64_t a, std::uint64_t b)
{
    std::string artifacts_a;
    std::string artifacts_b;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        for (const std::uint64_t id : {a, b}) {
            const auto it = runs.find(id);
            if (it == runs.end())
                return errorResponse(
                    404, "unknown run " + std::to_string(id));
            if (it->second->state != "done")
                return errorResponse(
                    409, "run " + std::to_string(id)
                        + " has no artifacts (state "
                        + it->second->state + ")");
        }
        artifacts_a = runs.at(a)->artifacts;
        artifacts_b = runs.at(b)->artifacts;
    }

    std::istringstream stream_a(artifacts_a);
    std::istringstream stream_b(artifacts_b);
    const RunArtifacts loaded_a = loadArtifacts(stream_a);
    const RunArtifacts loaded_b = loadArtifacts(stream_b);
    const std::vector<MetricDelta> deltas =
        diffArtifacts(loaded_a, loaded_b);

    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("a").value(a)
        .key("b").value(b)
        .key("clean").value(deltas.empty())
        .key("deltas").beginArray();
    for (const MetricDelta &delta : deltas) {
        writer.beginObject()
            .key("cell").value(delta.cell)
            .key("metric").value(delta.metric)
            .key("a").value(delta.a)
            .key("b").value(delta.b)
            .endObject();
    }
    writer.endArray().endObject();
    HttpResponse response;
    response.body = os.str();
    return response;
}

HttpResponse
SweepServer::handleCancel(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(stateMutex);
    const auto it = runs.find(id);
    if (it == runs.end())
        return errorResponse(404,
                             "unknown run " + std::to_string(id));
    RunEntry &entry = *it->second;
    if (entry.state == "queued") {
        queue->remove(id);
        entry.state = "cancelled";
        entry.events.push_back("{\"kind\":\"state\",\"state\":"
                               "\"cancelled\"}");
        eventsCv.notify_all();
    } else if (entry.state == "running") {
        entry.cancel.store(true);
    }
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("id").value(id)
        .key("state").value(entry.state)
        .endObject();
    HttpResponse response;
    response.body = os.str();
    return response;
}

void
SweepServer::streamEvents(std::uint64_t id,
                          HttpConnection &connection)
{
    RunEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        const auto it = runs.find(id);
        if (it == runs.end()) {
            connection.sendResponse(errorResponse(
                404, "unknown run " + std::to_string(id)));
            return;
        }
        entry = it->second.get();
    }

    connection.beginStream(200);
    std::size_t sent = 0;
    std::unique_lock<std::mutex> lock(stateMutex);
    for (;;) {
        while (sent < entry->events.size()) {
            const std::string line = entry->events[sent++];
            lock.unlock();
            const bool alive = connection.sendLine(line);
            lock.lock();
            if (!alive)
                return; // peer went away
        }
        if (entry->finished() || stopping)
            return;
        eventsCv.wait(lock);
    }
}

void
SweepServer::appendEvent(RunEntry &entry, std::string line)
{
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        entry.events.push_back(std::move(line));
    }
    eventsCv.notify_all();
}

void
SweepServer::workerLoop()
{
    for (;;) {
        RunEntry *entry = nullptr;
        {
            std::unique_lock<std::mutex> lock(stateMutex);
            workCv.wait(lock, [&] {
                return stopping || (!holding && !queue->empty());
            });
            if (stopping)
                return;
            const std::optional<QueuedRun> next = queue->dequeue();
            if (!next)
                continue;
            entry = runs.at(next->id).get();
            entry->state = "running";
            entry->events.push_back("{\"kind\":\"state\",\"state\":"
                                    "\"running\"}");
        }
        eventsCv.notify_all();
        executeRun(*entry);
    }
}

void
SweepServer::executeRun(RunEntry &entry)
{
    std::string final_state = "done";
    std::string error;
    std::string artifacts;
    std::size_t executed_cells = 0;
    try {
        const SweepSpec spec = parseSweepSpec(entry.specText);
        const SweepPlan plan = expandSweep(spec);

        SweepOptions options;
        options.jobs = config.jobs;
        options.cache = config.cache;
        options.cancel = &entry.cancel;
        options.onProgress = [&](const GridProgress &progress) {
            std::ostringstream os;
            JsonWriter writer(os);
            writer.beginObject()
                .key("kind").value("progress")
                .key("completed").value(static_cast<std::uint64_t>(
                    progress.completedCells))
                .key("total").value(static_cast<std::uint64_t>(
                    progress.totalCells))
                .key("cell").value(progress.cell.traceName)
                .key("scheme").value(progress.cell.scheme)
                .key("refs").value(progress.cell.refs)
                .key("cache_hit").value(progress.cell.cacheHit)
                .endObject();
            appendEvent(entry, os.str());
        };

        const SweepOutcome outcome = runSweep(plan, options);
        executed_cells = outcome.records.size();
        if (outcome.completed) {
            std::ostringstream os;
            JsonlSink sink(os);
            writeSweepArtifacts(outcome, sink);
            artifacts = os.str();
        } else {
            final_state = "cancelled";
        }
    } catch (const SimulationError &failure) {
        final_state = "failed";
        error = failure.what();
    } catch (const std::exception &failure) {
        final_state = "failed";
        error = failure.what();
    }

    {
        std::lock_guard<std::mutex> lock(stateMutex);
        entry.state = final_state;
        entry.error = error;
        entry.artifacts = std::move(artifacts);
        std::ostringstream os;
        JsonWriter writer(os);
        writer.beginObject()
            .key("kind").value("state")
            .key("state").value(final_state)
            .key("cells").value(
                static_cast<std::uint64_t>(executed_cells));
        if (!error.empty())
            writer.key("error").value(error);
        writer.endObject();
        entry.events.push_back(os.str());
    }
    eventsCv.notify_all();
}

} // namespace dirsim
