#include "serve/server.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/env.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/logging.hh"
#include "obs/artifacts.hh"
#include "obs/cell_cache.hh"
#include "obs/exposition.hh"
#include "obs/phase.hh"
#include "obs/sink.hh"
#include "sweep/run.hh"
#include "sweep/spec.hh"

namespace dirsim
{

namespace
{

/** Regular buckets of the latency histograms: log2 milliseconds,
 *  bucket b holding waits in [2^(b-1), 2^b - 1] ms (bucket 0 =
 *  sub-millisecond). 2^31 ms ≈ 25 days — nothing overflows. */
constexpr std::size_t latencyBuckets = 32;

std::uint64_t
latencyBucket(std::uint64_t duration_ns)
{
    return std::bit_width(duration_ns / 1000000);
}

/** Cumulative upper bounds of the latency buckets, in seconds. */
std::vector<double>
latencyBounds()
{
    std::vector<double> bounds;
    bounds.reserve(latencyBuckets);
    for (std::size_t b = 0; b < latencyBuckets; ++b)
        bounds.push_back((std::pow(2.0, static_cast<double>(b)) - 1.0)
                         / 1e3);
    return bounds;
}

std::string
errorJson(const std::string &message)
{
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject().key("error").value(message).endObject();
    return os.str();
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    HttpResponse response;
    response.status = status;
    response.body = errorJson(message);
    return response;
}

/** "/runs/12/events" -> {"runs", "12", "events"}. */
std::vector<std::string>
pathSegments(const std::string &path)
{
    std::vector<std::string> segments;
    std::istringstream in(path);
    std::string segment;
    while (std::getline(in, segment, '/')) {
        if (!segment.empty())
            segments.push_back(segment);
    }
    return segments;
}

/** Parse a run id segment; false on non-numeric ids. */
bool
parseRunId(const std::string &text, std::uint64_t &id)
{
    if (text.empty()
        || text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    try {
        id = std::stoull(text);
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

/**
 * Normalize a request path to its route pattern, so the request
 * counters stay a bounded family ({endpoint, status} labels) no
 * matter how many runs exist or what garbage paths arrive.
 */
std::string
endpointPattern(const std::vector<std::string> &segments)
{
    if (segments.empty())
        return "/";
    if (segments[0] == "runs") {
        if (segments.size() == 1)
            return "/runs";
        if (segments.size() == 2)
            return "/runs/{id}";
        if (segments.size() == 3
            && (segments[2] == "events" || segments[2] == "artifacts"
                || segments[2] == "cancel" || segments[2] == "trace"))
            return "/runs/{id}/" + segments[2];
        if (segments.size() == 4 && segments[2] == "diff")
            return "/runs/{id}/diff/{id}";
        return "(other)";
    }
    if (segments.size() == 1
        && (segments[0] == "metrics" || segments[0] == "status"
            || segments[0] == "shutdown"))
        return "/" + segments[0];
    if (segments.size() == 2 && segments[0] == "admin"
        && segments[1] == "release")
        return "/admin/release";
    return "(other)";
}

/** The one synthetic event line replay gives a recovered run, so
 *  streamers of recovered runs terminate like any finished run's. */
std::string
stateEventLine(const std::string &state)
{
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("kind").value("state")
        .key("state").value(state)
        .endObject();
    return os.str();
}

} // namespace

ServeConfig
ServeConfig::fromEnvironment()
{
    ServeConfig config;
    const unsigned port = envUnsigned("DIRSIM_SERVE_PORT", 0);
    fatalIf(port > 65535, "DIRSIM_SERVE_PORT ", port,
            " is not a valid port");
    config.port = static_cast<std::uint16_t>(port);
    config.queueCapacity = envU64("DIRSIM_SERVE_QUEUE", 8);
    config.jobs = envUnsigned("DIRSIM_SERVE_JOBS", 0);
    config.discipline =
        envString("DIRSIM_SERVE_DISCIPLINE").value_or("fcfs");
    config.cache = FileCellCache::fromEnvironment();
    config.journalDir =
        envString("DIRSIM_JOURNAL_DIR").value_or("");
    return config;
}

SweepServer::SweepServer(ServeConfig config_arg)
    : config(std::move(config_arg)),
      queueWaitHist(latencyBuckets),
      runDurationHist(latencyBuckets)
{
}

SweepServer::~SweepServer()
{
    stop();
}

void
SweepServer::replayJournalLocked()
{
    const std::string path = journalPathInDir(config.journalDir);
    const JournalReplay replay = replayJournal(path);
    for (const JournalRun &run : replay.runs) {
        auto entry = std::make_unique<RunEntry>();
        entry->id = run.id;
        entry->client = run.client;
        entry->specText = run.spec;
        entry->name = run.name;
        entry->state = run.state;
        entry->error = run.error;
        entry->cellsTotal = run.cellsTotal;
        entry->recovered = true;
        entry->events.push_back(stateEventLine(run.state));
        runs.emplace(run.id, std::move(entry));
    }
    nextId = replay.maxRunId + 1;
    journal = std::make_unique<RunJournal>(path);
    logEvent(LogLevel::Info, "serve.journal.replayed")
        .field("path", path)
        .field("runs",
               static_cast<std::uint64_t>(replay.runs.size()))
        .field("corrupt_lines",
               static_cast<std::uint64_t>(replay.corruptLines))
        .field("truncated_tail", replay.truncatedTail);
}

void
SweepServer::journalAppend(JournalEvent event)
{
    if (journal)
        journal->append(std::move(event));
}

void
SweepServer::start()
{
    fatalIf(started, "server already started");
    queue = makeDiscipline(config.discipline);
    holding = config.hold;
    serverStartNs = PhaseTimer::nowNs();
    if (!config.journalDir.empty()) {
        std::lock_guard<std::mutex> lock(stateMutex);
        replayJournalLocked();
    }
    listener = std::make_unique<HttpListener>(config.port);
    started = true;
    acceptThread = std::thread(&SweepServer::acceptLoop, this);
    workerThread = std::thread(&SweepServer::workerLoop, this);
    logEvent(LogLevel::Info, "serve.start")
        .field("port", static_cast<unsigned>(listener->port()))
        .field("discipline", config.discipline)
        .field("queue_capacity",
               static_cast<std::uint64_t>(config.queueCapacity))
        .field("journal", config.journalDir.empty()
                   ? std::string_view("")
                   : std::string_view(journal->path()));
}

std::uint16_t
SweepServer::port() const
{
    panicIfNot(listener != nullptr, "port() before start()");
    return listener->port();
}

void
SweepServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(stateMutex);
    stopCv.wait(lock, [&] { return stopping; });
}

void
SweepServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        stopping = true;
        // The running sweep (if any) stops at its next cell boundary.
        for (auto &[id, entry] : runs)
            entry->cancel.store(true);
    }
    workCv.notify_all();
    eventsCv.notify_all();
    stopCv.notify_all();
    if (listener)
        listener->shutdown();
    if (acceptThread.joinable())
        acceptThread.join();

    // The accept thread was the only spawner, so the handler list is
    // stable now.
    std::vector<std::thread> to_join;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        to_join.swap(handlers);
    }
    for (std::thread &handler : to_join)
        handler.join();
    if (workerThread.joinable())
        workerThread.join();
}

void
SweepServer::acceptLoop()
{
    for (;;) {
        const int fd = listener->acceptConnection();
        if (fd < 0)
            return;
        std::lock_guard<std::mutex> lock(stateMutex);
        if (stopping) {
            HttpConnection drop(fd);
            return;
        }
        handlers.emplace_back(&SweepServer::handleConnection, this,
                              fd);
    }
}

void
SweepServer::recordRequest(const std::string &pattern, int status,
                           std::uint64_t start_ns)
{
    const std::uint64_t now = PhaseTimer::nowNs();
    const std::uint64_t duration_ns =
        now > start_ns ? now - start_ns : 0;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        ++requestCounts[{pattern, std::to_string(status)}];
        TraceSpan span;
        span.name = pattern;
        span.category = "http";
        span.startNs = start_ns;
        span.durationNs = duration_ns;
        span.args.emplace_back("status", std::to_string(status));
        if (httpSpans.size() >= 512)
            httpSpans.erase(httpSpans.begin());
        httpSpans.push_back(std::move(span));
    }
    logEvent(LogLevel::Debug, "serve.http.request")
        .field("endpoint", pattern)
        .field("status", status)
        .field("duration_ms",
               static_cast<double>(duration_ns) / 1e6);
}

void
SweepServer::handleConnection(int fd)
{
    HttpConnection connection(fd);
    HttpRequest request;
    std::string parse_error;
    if (!connection.readRequest(request, parse_error)) {
        if (!parse_error.empty())
            connection.sendResponse(
                errorResponse(400, parse_error));
        return;
    }

    const std::uint64_t start_ns = PhaseTimer::nowNs();
    bool responded = false;
    HttpResponse response;
    try {
        response = handle(request, connection, responded);
    } catch (const SimulationError &error) {
        response = errorResponse(400, error.what());
    } catch (const std::exception &error) {
        response = errorResponse(500, error.what());
    }
    // Streamed responses (responded == true) committed a 200 before
    // streaming.
    recordRequest(endpointPattern(pathSegments(request.path())),
                  responded ? 200 : response.status, start_ns);
    if (!responded)
        connection.sendResponse(response);
}

HttpResponse
SweepServer::handle(const HttpRequest &request,
                    HttpConnection &connection, bool &responded)
{
    const std::vector<std::string> segments =
        pathSegments(request.path());

    if (segments.empty()) {
        if (request.method != "GET")
            return errorResponse(405, "use GET /");
        std::ostringstream os;
        JsonWriter writer(os);
        std::lock_guard<std::mutex> lock(stateMutex);
        writer.beginObject()
            .key("service").value("dirsim_serve")
            .key("discipline").value(queue->name())
            .key("queue_depth").value(
                static_cast<std::uint64_t>(queue->size()))
            .key("queue_capacity").value(
                static_cast<std::uint64_t>(config.queueCapacity))
            .key("holding").value(holding)
            .key("runs").value(
                static_cast<std::uint64_t>(runs.size()))
            .endObject();
        HttpResponse response;
        response.body = os.str();
        return response;
    }

    if (segments.size() == 1 && segments[0] == "status") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /status");
        return handleServiceStatus();
    }

    if (segments.size() == 1 && segments[0] == "metrics") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /metrics");
        return handleMetrics();
    }

    if (segments[0] == "runs") {
        if (segments.size() == 1) {
            if (request.method == "POST")
                return handleSubmit(request);
            if (request.method == "GET")
                return handleList();
            return errorResponse(405, "use GET or POST /runs");
        }
        std::uint64_t id = 0;
        if (!parseRunId(segments[1], id))
            return errorResponse(404, "unknown run '" + segments[1]
                                     + "'");
        if (segments.size() == 2) {
            if (request.method != "GET")
                return errorResponse(405, "use GET /runs/{id}");
            return handleStatus(id);
        }
        if (segments.size() == 3 && segments[2] == "events") {
            if (request.method != "GET")
                return errorResponse(405,
                                     "use GET /runs/{id}/events");
            streamEvents(id, connection);
            responded = true;
            return {};
        }
        if (segments.size() == 3 && segments[2] == "artifacts") {
            if (request.method != "GET")
                return errorResponse(
                    405, "use GET /runs/{id}/artifacts");
            return handleArtifacts(id);
        }
        if (segments.size() == 3 && segments[2] == "trace") {
            if (request.method != "GET")
                return errorResponse(405,
                                     "use GET /runs/{id}/trace");
            return handleTrace(id);
        }
        if (segments.size() == 3 && segments[2] == "cancel") {
            if (request.method != "POST")
                return errorResponse(405,
                                     "use POST /runs/{id}/cancel");
            return handleCancel(id);
        }
        if (segments.size() == 4 && segments[2] == "diff") {
            if (request.method != "GET")
                return errorResponse(
                    405, "use GET /runs/{id}/diff/{id}");
            std::uint64_t other = 0;
            if (!parseRunId(segments[3], other))
                return errorResponse(404, "unknown run '"
                                         + segments[3] + "'");
            return handleDiff(id, other);
        }
        return errorResponse(404,
                             "no such endpoint under /runs");
    }

    if (segments.size() == 2 && segments[0] == "admin"
        && segments[1] == "release") {
        if (request.method != "POST")
            return errorResponse(405, "use POST /admin/release");
        {
            std::lock_guard<std::mutex> lock(stateMutex);
            holding = false;
        }
        workCv.notify_all();
        HttpResponse response;
        response.body = "{\"holding\":false}";
        return response;
    }

    if (segments.size() == 1 && segments[0] == "shutdown") {
        if (request.method != "POST")
            return errorResponse(405, "use POST /shutdown");
        {
            std::lock_guard<std::mutex> lock(stateMutex);
            stopping = true;
            for (auto &[id, entry] : runs)
                entry->cancel.store(true);
        }
        logEvent(LogLevel::Info, "serve.shutdown");
        stopCv.notify_all();
        workCv.notify_all();
        eventsCv.notify_all();
        HttpResponse response;
        response.body = "{\"stopping\":true}";
        return response;
    }

    return errorResponse(404, "no such endpoint '" + request.path()
                             + "'");
}

HttpResponse
SweepServer::handleSubmit(const HttpRequest &request)
{
    // Validate up front so a malformed spec is a 400 with the
    // parser's diagnostic and never occupies a queue slot.
    SweepSpec spec;
    std::size_t cells = 0;
    try {
        spec = parseSweepSpec(request.body);
        cells = expandSweep(spec).cells.size();
    } catch (const UsageError &error) {
        return errorResponse(400, std::string("sweep spec rejected: ")
                                 + error.what());
    }

    const std::string *client_header =
        request.header("x-dirsim-client");
    const std::string client =
        client_header ? *client_header : std::string();

    std::uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        if (stopping)
            return errorResponse(503, "daemon is shutting down");
        if (queue->size() >= config.queueCapacity)
            return errorResponse(
                429, "queue full ("
                    + std::to_string(config.queueCapacity)
                    + " runs waiting); retry later");
        id = nextId++;
        auto entry = std::make_unique<RunEntry>();
        entry->id = id;
        entry->client = client;
        entry->specText = request.body;
        entry->name = spec.name;
        entry->cellsTotal = cells;
        entry->submittedNs = PhaseTimer::nowNs();
        entry->events.push_back("{\"kind\":\"state\",\"state\":"
                                "\"queued\"}");
        runs.emplace(id, std::move(entry));
        queue->enqueue({id, client});

        JournalEvent event;
        event.kind = "submitted";
        event.runId = id;
        event.name = spec.name;
        event.client = client;
        event.spec = request.body;
        event.cellsTotal = cells;
        journalAppend(std::move(event));
    }
    workCv.notify_one();
    eventsCv.notify_all();
    logEvent(LogLevel::Info, "serve.run.submitted")
        .field("run", id)
        .field("name", spec.name)
        .field("client", client)
        .field("cells", static_cast<std::uint64_t>(cells));

    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("id").value(id)
        .key("name").value(spec.name)
        .key("state").value("queued")
        .key("cells").value(static_cast<std::uint64_t>(cells))
        .endObject();
    HttpResponse response;
    response.status = 202;
    response.body = os.str();
    return response;
}

namespace
{

void
writeRunJson(JsonWriter &writer,
             std::uint64_t id, const std::string &name,
             const std::string &state, const std::string &client,
             const std::string &error, std::size_t events)
{
    writer.beginObject()
        .key("id").value(id)
        .key("name").value(name)
        .key("state").value(state);
    if (!client.empty())
        writer.key("client").value(client);
    if (!error.empty())
        writer.key("error").value(error);
    writer.key("events").value(static_cast<std::uint64_t>(events))
        .endObject();
}

} // namespace

HttpResponse
SweepServer::handleStatus(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(stateMutex);
    const auto it = runs.find(id);
    if (it == runs.end())
        return errorResponse(404,
                             "unknown run " + std::to_string(id));
    const RunEntry &entry = *it->second;
    std::ostringstream os;
    JsonWriter writer(os);
    writeRunJson(writer, entry.id, entry.name, entry.state,
                 entry.client, entry.error, entry.events.size());
    HttpResponse response;
    response.body = os.str();
    return response;
}

HttpResponse
SweepServer::handleList()
{
    std::lock_guard<std::mutex> lock(stateMutex);
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject().key("runs").beginArray();
    for (const auto &[id, entry] : runs)
        writeRunJson(writer, entry->id, entry->name, entry->state,
                     entry->client, entry->error,
                     entry->events.size());
    writer.endArray().endObject();
    HttpResponse response;
    response.body = os.str();
    return response;
}

HttpResponse
SweepServer::handleServiceStatus()
{
    const std::uint64_t now = PhaseTimer::nowNs();
    std::lock_guard<std::mutex> lock(stateMutex);
    std::size_t interrupted = 0;
    for (const auto &[id, entry] : runs)
        if (entry->state == "interrupted")
            ++interrupted;
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("service").value("dirsim_serve")
        .key("discipline").value(queue->name())
        .key("queue_depth").value(
            static_cast<std::uint64_t>(queue->size()))
        .key("queue_capacity").value(
            static_cast<std::uint64_t>(config.queueCapacity))
        .key("holding").value(holding)
        .key("active_run").value(activeRunId)
        .key("uptime_seconds").value(
            static_cast<double>(now - serverStartNs) / 1e9)
        .key("journal").value(journal ? journal->path()
                                      : std::string())
        .key("runs").value(static_cast<std::uint64_t>(runs.size()))
        .key("runs_interrupted").value(
            static_cast<std::uint64_t>(interrupted))
        .endObject();
    HttpResponse response;
    response.body = os.str();
    return response;
}

HttpResponse
SweepServer::handleMetrics()
{
    const std::uint64_t now = PhaseTimer::nowNs();
    const std::vector<double> bounds = latencyBounds();
    std::ostringstream os;
    PromWriter prom(os);
    std::lock_guard<std::mutex> lock(stateMutex);

    prom.help("dirsim_serve_uptime_seconds",
              "Seconds since the daemon started");
    prom.type("dirsim_serve_uptime_seconds", "gauge");
    prom.sample("dirsim_serve_uptime_seconds", {},
                static_cast<double>(now - serverStartNs) / 1e9);

    prom.help("dirsim_serve_queue_depth",
              "Runs waiting in the service queue");
    prom.type("dirsim_serve_queue_depth", "gauge");
    prom.sample("dirsim_serve_queue_depth",
                {{"discipline", queue->name()}},
                static_cast<std::uint64_t>(queue->size()));

    prom.help("dirsim_serve_queue_capacity",
              "Queued-run bound; submissions past it get 429");
    prom.type("dirsim_serve_queue_capacity", "gauge");
    prom.sample("dirsim_serve_queue_capacity", {},
                static_cast<std::uint64_t>(config.queueCapacity));

    std::map<std::string, std::uint64_t> by_state;
    for (const auto &[id, entry] : runs)
        ++by_state[entry->state];
    prom.help("dirsim_serve_runs",
              "Known runs by lifecycle state");
    prom.type("dirsim_serve_runs", "gauge");
    for (const auto &[state, count] : by_state)
        prom.sample("dirsim_serve_runs", {{"state", state}}, count);

    prom.help("dirsim_serve_requests_total",
              "HTTP requests served, by endpoint pattern and "
              "status");
    prom.type("dirsim_serve_requests_total", "counter");
    for (const auto &[key, count] : requestCounts)
        prom.sample("dirsim_serve_requests_total",
                    {{"endpoint", key.first},
                     {"status", key.second}},
                    count);

    prom.help("dirsim_serve_queue_wait_seconds",
              "Submission-to-dispatch wait per run");
    prom.type("dirsim_serve_queue_wait_seconds", "histogram");
    prom.histogram("dirsim_serve_queue_wait_seconds",
                   {{"discipline", queue->name()}}, queueWaitHist,
                   bounds, queueWaitSumSeconds);

    prom.help("dirsim_serve_run_duration_seconds",
              "Sweep execution wall time per run");
    prom.type("dirsim_serve_run_duration_seconds", "histogram");
    prom.histogram("dirsim_serve_run_duration_seconds",
                   {{"discipline", queue->name()}}, runDurationHist,
                   bounds, runDurationSumSeconds);

    prom.help("dirsim_serve_cells_completed_total",
              "Sweep cells finished across all runs");
    prom.type("dirsim_serve_cells_completed_total", "counter");
    prom.sample("dirsim_serve_cells_completed_total", {},
                totalCellsCompleted);

    prom.help("dirsim_serve_cache_hits_total",
              "Cells replayed from the cell cache");
    prom.type("dirsim_serve_cache_hits_total", "counter");
    prom.sample("dirsim_serve_cache_hits_total", {},
                totalCacheHits);

    prom.help("dirsim_serve_cache_misses_total",
              "Cells simulated (not in the cell cache)");
    prom.type("dirsim_serve_cache_misses_total", "counter");
    prom.sample("dirsim_serve_cache_misses_total", {},
                totalCacheMisses);

    prom.help("dirsim_serve_simulated_refs_total",
              "Trace references simulated across all runs");
    prom.type("dirsim_serve_simulated_refs_total", "counter");
    prom.sample("dirsim_serve_simulated_refs_total", {},
                totalSimulatedRefs);

    prom.help("dirsim_serve_refs_per_second",
              "Aggregate simulation throughput over finished runs");
    prom.type("dirsim_serve_refs_per_second", "gauge");
    prom.sample("dirsim_serve_refs_per_second", {},
                totalRunWallSeconds > 0.0
                    ? static_cast<double>(totalSimulatedRefs)
                        / totalRunWallSeconds
                    : 0.0);

    writePrometheus(os, sweepMetrics, "dirsim.sweep");

    HttpResponse response;
    response.contentType = "text/plain; version=0.0.4";
    response.body = os.str();
    return response;
}

HttpResponse
SweepServer::handleTrace(std::uint64_t id)
{
    const std::uint64_t now = PhaseTimer::nowNs();
    std::lock_guard<std::mutex> lock(stateMutex);
    const auto it = runs.find(id);
    if (it == runs.end())
        return errorResponse(404,
                             "unknown run " + std::to_string(id));
    const RunEntry &entry = *it->second;
    if (entry.recovered || entry.submittedNs == 0)
        return errorResponse(
            409, "run " + std::to_string(id)
                + " predates this daemon process; its timeline was "
                  "not recorded");

    // Lane 0: the run's own lifecycle. Workers get lanes 1..N in
    // order of first cell start; HTTP requests share the last lane.
    std::vector<TraceSpan> spans;
    const std::uint64_t started_mark =
        entry.startedNs != 0 ? entry.startedNs : now;
    const std::uint64_t finished_mark =
        entry.finishedNs != 0 ? entry.finishedNs : now;

    {
        TraceSpan wait;
        wait.name = "queue-wait";
        wait.category = "queue";
        wait.lane = 0;
        wait.startNs = entry.submittedNs;
        wait.durationNs = started_mark > entry.submittedNs
            ? started_mark - entry.submittedNs : 0;
        wait.args.emplace_back("state", entry.state);
        spans.push_back(std::move(wait));
    }
    if (entry.startedNs != 0) {
        TraceSpan run;
        run.name = "run " + std::to_string(entry.id) + " ("
            + entry.name + ")";
        run.category = "run";
        run.lane = 0;
        run.startNs = entry.startedNs;
        run.durationNs = finished_mark > entry.startedNs
            ? finished_mark - entry.startedNs : 0;
        run.args.emplace_back("state", entry.state);
        run.args.emplace_back(
            "cells", std::to_string(entry.timings.size()));
        spans.push_back(std::move(run));
    }

    std::vector<const CellTiming *> cells;
    cells.reserve(entry.timings.size());
    for (const CellTiming &cell : entry.timings)
        cells.push_back(&cell);
    std::sort(cells.begin(), cells.end(),
              [](const CellTiming *a, const CellTiming *b) {
                  return a->startNs < b->startNs;
              });
    std::map<std::uint64_t, unsigned> lanes;
    for (const CellTiming *cell : cells)
        if (!lanes.contains(cell->threadTag))
            lanes.emplace(cell->threadTag,
                          static_cast<unsigned>(lanes.size() + 1));
    for (const CellTiming *cell : cells) {
        TraceSpan span;
        span.name = cell->scheme + "/" + cell->traceName;
        span.category = "cell";
        span.lane = lanes.at(cell->threadTag);
        span.startNs = cell->startNs;
        span.durationNs = static_cast<std::uint64_t>(
            cell->wallSeconds * 1e9);
        span.args.emplace_back("refs", std::to_string(cell->refs));
        span.args.emplace_back("cache_hit",
                               cell->cacheHit ? "true" : "false");
        spans.push_back(std::move(span));
    }

    const unsigned http_lane =
        static_cast<unsigned>(lanes.size() + 1);
    for (const TraceSpan &request : httpSpans) {
        // Keep requests overlapping the run's window; the submitting
        // POST itself starts a hair before submittedNs is stamped,
        // so the window is judged by each request's end.
        if (request.startNs + request.durationNs < entry.submittedNs
            || (entry.finishedNs != 0
                && request.startNs > entry.finishedNs))
            continue;
        TraceSpan span = request;
        span.lane = http_lane;
        spans.push_back(std::move(span));
    }

    std::vector<std::string> lane_names;
    lane_names.push_back("run");
    for (unsigned lane = 1; lane <= lanes.size(); ++lane)
        lane_names.push_back("worker " + std::to_string(lane));
    lane_names.push_back("http");

    std::ostringstream os;
    writeChromeSpans(os, spans, entry.submittedNs, lane_names);
    HttpResponse response;
    response.body = os.str();
    return response;
}

HttpResponse
SweepServer::handleArtifacts(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(stateMutex);
    const auto it = runs.find(id);
    if (it == runs.end())
        return errorResponse(404,
                             "unknown run " + std::to_string(id));
    const RunEntry &entry = *it->second;
    if (entry.state != "done")
        return errorResponse(409, "run " + std::to_string(id)
                                 + " has no artifacts (state "
                                 + entry.state + ")");
    HttpResponse response;
    response.contentType = "application/x-ndjson";
    response.body = entry.artifacts;
    return response;
}

HttpResponse
SweepServer::handleDiff(std::uint64_t a, std::uint64_t b)
{
    std::string artifacts_a;
    std::string artifacts_b;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        for (const std::uint64_t id : {a, b}) {
            const auto it = runs.find(id);
            if (it == runs.end())
                return errorResponse(
                    404, "unknown run " + std::to_string(id));
            if (it->second->state != "done")
                return errorResponse(
                    409, "run " + std::to_string(id)
                        + " has no artifacts (state "
                        + it->second->state + ")");
        }
        artifacts_a = runs.at(a)->artifacts;
        artifacts_b = runs.at(b)->artifacts;
    }

    std::istringstream stream_a(artifacts_a);
    std::istringstream stream_b(artifacts_b);
    const RunArtifacts loaded_a = loadArtifacts(stream_a);
    const RunArtifacts loaded_b = loadArtifacts(stream_b);
    const std::vector<MetricDelta> deltas =
        diffArtifacts(loaded_a, loaded_b);

    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("a").value(a)
        .key("b").value(b)
        .key("clean").value(deltas.empty())
        .key("deltas").beginArray();
    for (const MetricDelta &delta : deltas) {
        writer.beginObject()
            .key("cell").value(delta.cell)
            .key("metric").value(delta.metric)
            .key("a").value(delta.a)
            .key("b").value(delta.b)
            .endObject();
    }
    writer.endArray().endObject();
    HttpResponse response;
    response.body = os.str();
    return response;
}

HttpResponse
SweepServer::handleCancel(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(stateMutex);
    const auto it = runs.find(id);
    if (it == runs.end())
        return errorResponse(404,
                             "unknown run " + std::to_string(id));
    RunEntry &entry = *it->second;
    if (entry.state == "queued") {
        queue->remove(id);
        entry.state = "cancelled";
        entry.finishedNs = PhaseTimer::nowNs();
        entry.events.push_back("{\"kind\":\"state\",\"state\":"
                               "\"cancelled\"}");
        JournalEvent event;
        event.kind = "finished";
        event.runId = id;
        event.state = "cancelled";
        journalAppend(std::move(event));
        eventsCv.notify_all();
    } else if (entry.state == "running") {
        entry.cancel.store(true);
    }
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("id").value(id)
        .key("state").value(entry.state)
        .endObject();
    HttpResponse response;
    response.body = os.str();
    return response;
}

void
SweepServer::streamEvents(std::uint64_t id,
                          HttpConnection &connection)
{
    RunEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        const auto it = runs.find(id);
        if (it == runs.end()) {
            connection.sendResponse(errorResponse(
                404, "unknown run " + std::to_string(id)));
            return;
        }
        entry = it->second.get();
    }

    connection.beginStream(200);
    std::size_t sent = 0;
    std::unique_lock<std::mutex> lock(stateMutex);
    for (;;) {
        while (sent < entry->events.size()) {
            const std::string line = entry->events[sent++];
            lock.unlock();
            const bool alive = connection.sendLine(line);
            lock.lock();
            if (!alive)
                return; // peer went away
        }
        if (entry->finished() || stopping)
            return;
        eventsCv.wait(lock);
    }
}

void
SweepServer::appendEvent(RunEntry &entry, std::string line)
{
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        entry.events.push_back(std::move(line));
    }
    eventsCv.notify_all();
}

void
SweepServer::workerLoop()
{
    for (;;) {
        RunEntry *entry = nullptr;
        {
            std::unique_lock<std::mutex> lock(stateMutex);
            workCv.wait(lock, [&] {
                return stopping || (!holding && !queue->empty());
            });
            if (stopping)
                return;
            const std::optional<QueuedRun> next = queue->dequeue();
            if (!next)
                continue;
            entry = runs.at(next->id).get();
            entry->state = "running";
            entry->startedNs = PhaseTimer::nowNs();
            entry->events.push_back("{\"kind\":\"state\",\"state\":"
                                    "\"running\"}");
            activeRunId = entry->id;

            const std::uint64_t wait_ns =
                entry->startedNs > entry->submittedNs
                    ? entry->startedNs - entry->submittedNs : 0;
            queueWaitHist.add(latencyBucket(wait_ns));
            queueWaitSumSeconds +=
                static_cast<double>(wait_ns) / 1e9;

            JournalEvent event;
            event.kind = "started";
            event.runId = entry->id;
            journalAppend(std::move(event));
        }
        eventsCv.notify_all();
        logEvent(LogLevel::Info, "serve.run.started")
            .field("run", entry->id)
            .field("name", entry->name);
        executeRun(*entry);
        {
            std::lock_guard<std::mutex> lock(stateMutex);
            activeRunId = 0;
        }
    }
}

void
SweepServer::executeRun(RunEntry &entry)
{
    std::string final_state = "done";
    std::string error;
    std::string artifacts;
    std::size_t executed_cells = 0;
    SweepOutcome outcome;
    try {
        const SweepSpec spec = parseSweepSpec(entry.specText);
        const SweepPlan plan = expandSweep(spec);

        SweepOptions options;
        options.jobs = config.jobs;
        options.cache = config.cache;
        options.cancel = &entry.cancel;
        options.runLabel = "run " + std::to_string(entry.id);
        options.onProgress = [&](const GridProgress &progress) {
            std::ostringstream os;
            JsonWriter writer(os);
            writer.beginObject()
                .key("kind").value("progress")
                .key("completed").value(static_cast<std::uint64_t>(
                    progress.completedCells))
                .key("total").value(static_cast<std::uint64_t>(
                    progress.totalCells))
                .key("cell").value(progress.cell.traceName)
                .key("scheme").value(progress.cell.scheme)
                .key("refs").value(progress.cell.refs)
                .key("cache_hit").value(progress.cell.cacheHit)
                .endObject();
            appendEvent(entry, os.str());

            std::lock_guard<std::mutex> lock(stateMutex);
            JournalEvent event;
            event.kind = "cell";
            event.runId = entry.id;
            event.cellLabel = progress.cell.traceName;
            event.scheme = progress.cell.scheme;
            event.refs = progress.cell.refs;
            event.cacheHit = progress.cell.cacheHit;
            journalAppend(std::move(event));
        };

        outcome = runSweep(plan, options);
        executed_cells = outcome.records.size();
        if (outcome.completed) {
            std::ostringstream os;
            JsonlSink sink(os);
            writeSweepArtifacts(outcome, sink);
            artifacts = os.str();
        } else {
            final_state = "cancelled";
        }
    } catch (const SimulationError &failure) {
        final_state = "failed";
        error = failure.what();
    } catch (const std::exception &failure) {
        final_state = "failed";
        error = failure.what();
    }

    {
        std::lock_guard<std::mutex> lock(stateMutex);
        entry.state = final_state;
        entry.error = error;
        entry.artifacts = std::move(artifacts);
        entry.timings = std::move(outcome.timings);
        entry.finishedNs = PhaseTimer::nowNs();

        const std::uint64_t duration_ns =
            entry.finishedNs > entry.startedNs
                ? entry.finishedNs - entry.startedNs : 0;
        runDurationHist.add(latencyBucket(duration_ns));
        runDurationSumSeconds +=
            static_cast<double>(duration_ns) / 1e9;
        totalCacheHits += outcome.cacheHits;
        totalCacheMisses += outcome.cacheMisses;
        totalSimulatedRefs += outcome.simulatedRefs;
        totalCellsCompleted += executed_cells;
        totalRunWallSeconds += outcome.wallSeconds;
        sweepMetrics.merge(outcome.metrics);

        std::ostringstream os;
        JsonWriter writer(os);
        writer.beginObject()
            .key("kind").value("state")
            .key("state").value(final_state)
            .key("cells").value(
                static_cast<std::uint64_t>(executed_cells));
        if (!error.empty())
            writer.key("error").value(error);
        writer.endObject();
        entry.events.push_back(os.str());

        JournalEvent event;
        event.kind = "finished";
        event.runId = entry.id;
        event.state = final_state;
        event.error = error;
        event.cellsTotal = executed_cells;
        journalAppend(std::move(event));
    }
    eventsCv.notify_all();
    logEvent(LogLevel::Info, "serve.run.finished")
        .field("run", entry.id)
        .field("state", final_state)
        .field("cells",
               static_cast<std::uint64_t>(executed_cells))
        .field("cache_hits", outcome.cacheHits)
        .field("wall_seconds", outcome.wallSeconds);
}

} // namespace dirsim
