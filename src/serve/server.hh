/**
 * @file
 * SweepServer: the dirsim_serve daemon core.
 *
 * A loopback HTTP/1.1 service that accepts sweep specs over POST,
 * queues them under a pluggable service discipline (serve/
 * discipline.hh), executes them one at a time on the sweep engine
 * (sweep/run.hh), streams per-cell progress as JSONL, and serves
 * finished artifacts and artifact diffs. The HTTP surface
 * (docs/sweep.md, "The HTTP surface"):
 *
 *   GET  /                      service status + queue depth
 *   GET  /status                operational detail: active run,
 *                               uptime, journal path, run counts
 *   GET  /metrics               Prometheus text exposition
 *                               (obs/exposition.hh): daemon self-
 *                               metrics + merged sweep metrics
 *   POST /runs                  submit a spec (body = spec JSON);
 *                               202 {"id",...} | 400 | 429
 *   GET  /runs                  all runs, oldest first
 *   GET  /runs/{id}             one run's status
 *   GET  /runs/{id}/events      JSONL progress stream until the run
 *                               finishes (Connection: close framing)
 *   GET  /runs/{id}/artifacts   the finished results.jsonl
 *   GET  /runs/{id}/trace       Chrome trace_event timeline of the
 *                               run: queue wait, execution, per-cell
 *                               slices, HTTP requests
 *   GET  /runs/{id}/diff/{id2}  diffArtifacts() of two finished runs
 *   POST /runs/{id}/cancel      cancel (queued or running)
 *   POST /admin/release         release a --hold'ed worker
 *   POST /shutdown              stop the daemon
 *
 * With a journal directory configured (--journal /
 * DIRSIM_JOURNAL_DIR), every run state transition is appended to a
 * persistent JSONL journal (obs/journal.hh) and replayed on startup,
 * so a restarted daemon lists its predecessors' runs — runs that were
 * in flight when the process died come back as "interrupted", and
 * resubmitting their spec resumes from the cell cache.
 *
 * Degradation is graceful by construction: a malformed spec is a 400
 * with the parser's diagnostic, a full queue is a 429 (the submitter
 * retries later; the daemon keeps serving), a cancelled run stops at
 * the next cell boundary, a corrupt journal record is skipped with a
 * warning, and every handler failure is a response, never a crash.
 *
 * Identity for the round-robin discipline comes from the
 * X-Dirsim-Client request header (absent = one shared anonymous
 * identity).
 */

#ifndef DIRSIM_SERVE_SERVER_HH
#define DIRSIM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/histogram.hh"
#include "obs/journal.hh"
#include "obs/metrics.hh"
#include "serve/discipline.hh"
#include "serve/http.hh"
#include "sim/job.hh"
#include "sim/runner.hh"

namespace dirsim
{

/** SweepServer knobs (CLI flags / DIRSIM_SERVE_* environment). */
struct ServeConfig
{
    /** Listen port; 0 binds an ephemeral port (read it back via
     *  SweepServer::port()). */
    std::uint16_t port = 0;

    /** Queued-run bound; submissions past it get 429. */
    std::size_t queueCapacity = 8;

    /** Worker threads per sweep (SweepOptions::jobs; 0 = default). */
    unsigned jobs = 0;

    /** Service discipline: "fcfs" or "round-robin". */
    std::string discipline = "fcfs";

    /**
     * Start with the worker held: submissions queue but nothing
     * executes until POST /admin/release. Lets tests (and batch
     * operators) stage a backlog deterministically.
     */
    bool hold = false;

    /** Cell cache shared by every run; nullptr = simulate always. */
    std::shared_ptr<CellCache> cache;

    /** Journal directory (obs/journal.hh); empty = no persistence.
     *  Created on start when absent. */
    std::string journalDir;

    /** Apply DIRSIM_SERVE_{PORT,QUEUE,JOBS,DISCIPLINE} over the
     *  defaults, wire DIRSIM_CACHE_DIR as the cache, and
     *  DIRSIM_JOURNAL_DIR as the journal directory. */
    static ServeConfig fromEnvironment();
};

/** The daemon: listener + per-connection handlers + one sweep
 *  worker. */
class SweepServer
{
  public:
    explicit SweepServer(ServeConfig config_arg = {});
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Replay the journal (when configured), bind the port, and
     *  start the accept + worker threads.
     *  @throws UsageError when the port cannot be bound */
    void start();

    /** Stop accepting, cancel the running sweep, join every thread.
     *  Idempotent. */
    void stop();

    /** The bound port (valid after start()). */
    std::uint16_t port() const;

    /** Block until POST /shutdown (or stop()) — the daemon main's
     *  wait. */
    void waitForShutdown();

  private:
    /** One submitted run's full lifecycle. */
    struct RunEntry
    {
        std::uint64_t id = 0;
        std::string client;
        std::string specText;
        std::string name;  ///< the spec's campaign name
        std::string state = "queued"; ///< queued|running|done|failed|
                                      ///< cancelled|interrupted
        std::string error;
        std::string artifacts; ///< results.jsonl once done
        std::vector<std::string> events; ///< JSONL progress lines
        std::atomic<bool> cancel{false};

        std::uint64_t cellsTotal = 0;

        /** Lifecycle stamps on the PhaseTimer::nowNs() clock (0 =
         *  the transition never happened this process). */
        std::uint64_t submittedNs = 0;
        std::uint64_t startedNs = 0;
        std::uint64_t finishedNs = 0;

        /** Wall-clock layout of the executed cells, for
         *  GET /runs/{id}/trace. */
        std::vector<CellTiming> timings;

        /** True when this entry was reconstructed from the journal
         *  by a restarted daemon. */
        bool recovered = false;

        bool finished() const
        {
            return state != "queued" && state != "running";
        }
    };

    void acceptLoop();
    void handleConnection(int fd);
    void workerLoop();
    void executeRun(RunEntry &entry);
    void appendEvent(RunEntry &entry, std::string line);
    void replayJournalLocked();
    void journalAppend(JournalEvent event);
    void recordRequest(const std::string &pattern, int status,
                       std::uint64_t start_ns);

    HttpResponse handle(const HttpRequest &request,
                        HttpConnection &connection,
                        bool &responded);
    HttpResponse handleSubmit(const HttpRequest &request);
    HttpResponse handleStatus(std::uint64_t id);
    HttpResponse handleList();
    HttpResponse handleArtifacts(std::uint64_t id);
    HttpResponse handleDiff(std::uint64_t a, std::uint64_t b);
    HttpResponse handleCancel(std::uint64_t id);
    HttpResponse handleServiceStatus();
    HttpResponse handleMetrics();
    HttpResponse handleTrace(std::uint64_t id);
    void streamEvents(std::uint64_t id, HttpConnection &connection);

    ServeConfig config;

    std::unique_ptr<HttpListener> listener;
    std::thread acceptThread;
    std::thread workerThread;
    std::vector<std::thread> handlers; ///< guarded by stateMutex

    mutable std::mutex stateMutex;
    std::condition_variable workCv;   ///< worker: queue/stop changes
    std::condition_variable eventsCv; ///< streamers: event appends
    std::condition_variable stopCv;   ///< waitForShutdown
    std::unique_ptr<ServiceDiscipline> queue;
    std::map<std::uint64_t, std::unique_ptr<RunEntry>> runs;
    std::uint64_t nextId = 1;
    bool holding = false;
    bool stopping = false;
    bool started = false;

    // --- persistence + telemetry (all guarded by stateMutex) ---

    std::unique_ptr<RunJournal> journal;
    std::uint64_t serverStartNs = 0;
    std::uint64_t activeRunId = 0; ///< 0 = worker idle

    /** Request counters keyed by (endpoint pattern, status). */
    std::map<std::pair<std::string, std::string>, std::uint64_t>
        requestCounts;

    /** Queue-wait / run-duration distributions, log2-millisecond
     *  buckets (serve/server.cc latencyBucket()). */
    FixedHistogram queueWaitHist;
    FixedHistogram runDurationHist;
    double queueWaitSumSeconds = 0.0;
    double runDurationSumSeconds = 0.0;

    /** Aggregate sweep effort across finished runs. */
    std::uint64_t totalCacheHits = 0;
    std::uint64_t totalCacheMisses = 0;
    std::uint64_t totalSimulatedRefs = 0;
    std::uint64_t totalCellsCompleted = 0;
    double totalRunWallSeconds = 0.0;

    /** Per-run sweep metrics merged across finished runs. */
    MetricRegistry sweepMetrics;

    /** Recent HTTP request spans for GET /runs/{id}/trace (bounded
     *  ring, oldest dropped). */
    std::vector<TraceSpan> httpSpans;
};

} // namespace dirsim

#endif // DIRSIM_SERVE_SERVER_HH
