/**
 * @file
 * SweepServer: the dirsim_serve daemon core.
 *
 * A loopback HTTP/1.1 service that accepts sweep specs over POST,
 * queues them under a pluggable service discipline (serve/
 * discipline.hh), executes them one at a time on the sweep engine
 * (sweep/run.hh), streams per-cell progress as JSONL, and serves
 * finished artifacts and artifact diffs. The HTTP surface
 * (docs/sweep.md, "The HTTP surface"):
 *
 *   GET  /                      service status + queue depth
 *   POST /runs                  submit a spec (body = spec JSON);
 *                               202 {"id",...} | 400 | 429
 *   GET  /runs                  all runs, oldest first
 *   GET  /runs/{id}             one run's status
 *   GET  /runs/{id}/events      JSONL progress stream until the run
 *                               finishes (Connection: close framing)
 *   GET  /runs/{id}/artifacts   the finished results.jsonl
 *   GET  /runs/{id}/diff/{id2}  diffArtifacts() of two finished runs
 *   POST /runs/{id}/cancel      cancel (queued or running)
 *   POST /admin/release         release a --hold'ed worker
 *   POST /shutdown              stop the daemon
 *
 * Degradation is graceful by construction: a malformed spec is a 400
 * with the parser's diagnostic, a full queue is a 429 (the submitter
 * retries later; the daemon keeps serving), a cancelled run stops at
 * the next cell boundary, and every handler failure is a response,
 * never a crash.
 *
 * Identity for the round-robin discipline comes from the
 * X-Dirsim-Client request header (absent = one shared anonymous
 * identity).
 */

#ifndef DIRSIM_SERVE_SERVER_HH
#define DIRSIM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/discipline.hh"
#include "serve/http.hh"
#include "sim/job.hh"

namespace dirsim
{

/** SweepServer knobs (CLI flags / DIRSIM_SERVE_* environment). */
struct ServeConfig
{
    /** Listen port; 0 binds an ephemeral port (read it back via
     *  SweepServer::port()). */
    std::uint16_t port = 0;

    /** Queued-run bound; submissions past it get 429. */
    std::size_t queueCapacity = 8;

    /** Worker threads per sweep (SweepOptions::jobs; 0 = default). */
    unsigned jobs = 0;

    /** Service discipline: "fcfs" or "round-robin". */
    std::string discipline = "fcfs";

    /**
     * Start with the worker held: submissions queue but nothing
     * executes until POST /admin/release. Lets tests (and batch
     * operators) stage a backlog deterministically.
     */
    bool hold = false;

    /** Cell cache shared by every run; nullptr = simulate always. */
    std::shared_ptr<CellCache> cache;

    /** Apply DIRSIM_SERVE_{PORT,QUEUE,JOBS,DISCIPLINE} over the
     *  defaults, and wire DIRSIM_CACHE_DIR as the cache. */
    static ServeConfig fromEnvironment();
};

/** The daemon: listener + per-connection handlers + one sweep
 *  worker. */
class SweepServer
{
  public:
    explicit SweepServer(ServeConfig config_arg = {});
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Bind the port and start the accept + worker threads.
     *  @throws UsageError when the port cannot be bound */
    void start();

    /** Stop accepting, cancel the running sweep, join every thread.
     *  Idempotent. */
    void stop();

    /** The bound port (valid after start()). */
    std::uint16_t port() const;

    /** Block until POST /shutdown (or stop()) — the daemon main's
     *  wait. */
    void waitForShutdown();

  private:
    /** One submitted run's full lifecycle. */
    struct RunEntry
    {
        std::uint64_t id = 0;
        std::string client;
        std::string specText;
        std::string name;  ///< the spec's campaign name
        std::string state = "queued"; ///< queued|running|done|
                                      ///< failed|cancelled
        std::string error;
        std::string artifacts; ///< results.jsonl once done
        std::vector<std::string> events; ///< JSONL progress lines
        std::atomic<bool> cancel{false};

        bool finished() const
        {
            return state != "queued" && state != "running";
        }
    };

    void acceptLoop();
    void handleConnection(int fd);
    void workerLoop();
    void executeRun(RunEntry &entry);
    void appendEvent(RunEntry &entry, std::string line);

    HttpResponse handle(const HttpRequest &request,
                        HttpConnection &connection,
                        bool &responded);
    HttpResponse handleSubmit(const HttpRequest &request);
    HttpResponse handleStatus(std::uint64_t id);
    HttpResponse handleList();
    HttpResponse handleArtifacts(std::uint64_t id);
    HttpResponse handleDiff(std::uint64_t a, std::uint64_t b);
    HttpResponse handleCancel(std::uint64_t id);
    void streamEvents(std::uint64_t id, HttpConnection &connection);

    ServeConfig config;

    std::unique_ptr<HttpListener> listener;
    std::thread acceptThread;
    std::thread workerThread;
    std::vector<std::thread> handlers; ///< guarded by stateMutex

    mutable std::mutex stateMutex;
    std::condition_variable workCv;   ///< worker: queue/stop changes
    std::condition_variable eventsCv; ///< streamers: event appends
    std::condition_variable stopCv;   ///< waitForShutdown
    std::unique_ptr<ServiceDiscipline> queue;
    std::map<std::uint64_t, std::unique_ptr<RunEntry>> runs;
    std::uint64_t nextId = 1;
    bool holding = false;
    bool stopping = false;
    bool started = false;
};

} // namespace dirsim

#endif // DIRSIM_SERVE_SERVER_HH
