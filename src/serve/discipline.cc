#include "serve/discipline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dirsim
{

void
FcfsDiscipline::enqueue(const QueuedRun &run)
{
    queue.push_back(run);
}

std::optional<QueuedRun>
FcfsDiscipline::dequeue()
{
    if (queue.empty())
        return std::nullopt;
    QueuedRun run = queue.front();
    queue.pop_front();
    return run;
}

bool
FcfsDiscipline::remove(std::uint64_t id)
{
    const auto it = std::find_if(
        queue.begin(), queue.end(),
        [&](const QueuedRun &run) { return run.id == id; });
    if (it == queue.end())
        return false;
    queue.erase(it);
    return true;
}

void
RoundRobinDiscipline::enqueue(const QueuedRun &run)
{
    auto &queue = queues[run.client];
    if (queue.empty()
        && std::find(rotation.begin(), rotation.end(), run.client)
            == rotation.end())
        rotation.push_back(run.client);
    queue.push_back(run);
}

std::optional<QueuedRun>
RoundRobinDiscipline::dequeue()
{
    if (rotation.empty())
        return std::nullopt;
    const std::string client = rotation.front();
    rotation.pop_front();
    auto &queue = queues[client];
    QueuedRun run = queue.front();
    queue.pop_front();
    if (queue.empty())
        queues.erase(client);
    else
        rotation.push_back(client); // serve the others first
    return run;
}

bool
RoundRobinDiscipline::remove(std::uint64_t id)
{
    for (auto &[client, queue] : queues) {
        const auto it = std::find_if(
            queue.begin(), queue.end(),
            [&](const QueuedRun &run) { return run.id == id; });
        if (it == queue.end())
            continue;
        queue.erase(it);
        if (queue.empty()) {
            const std::string drained = client;
            const auto spot = std::find(rotation.begin(),
                                        rotation.end(), drained);
            if (spot != rotation.end())
                rotation.erase(spot);
            queues.erase(drained);
        }
        return true;
    }
    return false;
}

std::size_t
RoundRobinDiscipline::size() const
{
    std::size_t total = 0;
    for (const auto &[client, queue] : queues)
        total += queue.size();
    return total;
}

std::unique_ptr<ServiceDiscipline>
makeDiscipline(const std::string &name)
{
    if (name == "fcfs")
        return std::make_unique<FcfsDiscipline>();
    if (name == "round-robin" || name == "rr")
        return std::make_unique<RoundRobinDiscipline>();
    fatal("unknown service discipline '", name,
          "' (expected 'fcfs' or 'round-robin')");
}

} // namespace dirsim
