/**
 * @file
 * A minimal blocking HTTP/1.1 client for the dirsim_serve surface.
 *
 * Exists so the end-to-end tests (and the `dirsim_serve submit|wait|
 * get|cancel|shutdown` client subcommands) exercise the daemon with
 * repo-built code only — no curl dependency. Framing mirrors the
 * server: Content-Length responses are read to length; responses
 * without one (the JSONL event streams) are read line-by-line until
 * the server closes.
 */

#ifndef DIRSIM_SERVE_CLIENT_HH
#define DIRSIM_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace dirsim
{

/** One client-side response. */
struct HttpClientResponse
{
    int status = 0;
    /** Header (name, value) pairs; names lowercased. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
};

/**
 * Perform one request against 127.0.0.1:@p port and read the full
 * response.
 *
 * @throws UsageError when the daemon is unreachable or the response
 *         is malformed
 */
HttpClientResponse httpRequest(
    std::uint16_t port, const std::string &method,
    const std::string &target, const std::string &body = {},
    const std::vector<std::pair<std::string, std::string>> &headers =
        {});

/**
 * GET @p target and deliver the streamed body one line at a time
 * (trailing newline stripped). @p on_line returning false stops the
 * stream early (closing the connection).
 *
 * @return the response status
 * @throws UsageError when the daemon is unreachable or the response
 *         is malformed
 */
int httpStreamLines(
    std::uint16_t port, const std::string &target,
    const std::function<bool(const std::string &)> &on_line,
    const std::vector<std::pair<std::string, std::string>> &headers =
        {});

} // namespace dirsim

#endif // DIRSIM_SERVE_CLIENT_HH
