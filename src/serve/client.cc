#include "serve/client.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "serve/http.hh"

namespace dirsim
{

namespace
{

/** RAII client socket connected to 127.0.0.1:port. */
class ClientSocket
{
  public:
    explicit ClientSocket(std::uint16_t port)
    {
        sock = ::socket(AF_INET, SOCK_STREAM, 0);
        fatalIf(sock < 0, "cannot create client socket: ",
                std::strerror(errno));
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        address.sin_port = htons(port);
        if (::connect(sock,
                      reinterpret_cast<sockaddr *>(&address),
                      sizeof(address))
            != 0) {
            const std::string reason = std::strerror(errno);
            ::close(sock);
            sock = -1;
            fatal("cannot connect to 127.0.0.1:", port, ": ",
                  reason);
        }
    }

    ~ClientSocket()
    {
        if (sock >= 0)
            ::close(sock);
    }

    ClientSocket(const ClientSocket &) = delete;
    ClientSocket &operator=(const ClientSocket &) = delete;

    void
    sendAll(const std::string &wire)
    {
        const char *bytes = wire.data();
        std::size_t left = wire.size();
        while (left > 0) {
            const ssize_t sent =
                ::send(sock, bytes, left, MSG_NOSIGNAL);
            fatalIf(sent <= 0, "request send failed: ",
                    std::strerror(errno));
            bytes += sent;
            left -= static_cast<std::size_t>(sent);
        }
    }

    /** @return bytes read; 0 on EOF */
    std::size_t
    readSome(std::string &into)
    {
        char chunk[4096];
        const ssize_t got = ::recv(sock, chunk, sizeof(chunk), 0);
        if (got <= 0)
            return 0;
        into.append(chunk, static_cast<std::size_t>(got));
        return static_cast<std::size_t>(got);
    }

  private:
    int sock = -1;
};

std::string
requestWire(
    const std::string &method, const std::string &target,
    const std::string &body,
    const std::vector<std::pair<std::string, std::string>> &headers)
{
    std::ostringstream out;
    out << method << ' ' << target << " HTTP/1.1\r\n"
        << "Host: 127.0.0.1\r\n";
    for (const auto &[name, value] : headers)
        out << name << ": " << value << "\r\n";
    if (!body.empty() || method == "POST")
        out << "Content-Length: " << body.size() << "\r\n";
    out << "Connection: close\r\n\r\n" << body;
    return out.str();
}

/** Parse status line + headers out of @p head. */
int
parseHead(
    const std::string &head,
    std::vector<std::pair<std::string, std::string>> &headers)
{
    std::istringstream lines(head);
    std::string line;
    fatalIf(!std::getline(lines, line),
            "empty response from daemon");
    int status = 0;
    {
        std::istringstream status_line(line);
        std::string version;
        fatalIf(!(status_line >> version >> status),
                "malformed response status line '", line, "'");
    }
    while (std::getline(lines, line)) {
        while (!line.empty()
               && (line.back() == '\r' || line.back() == '\n'))
            line.pop_back();
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::string name = line.substr(0, colon);
        std::transform(name.begin(), name.end(), name.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(
                               std::tolower(c));
                       });
        std::size_t value_start = colon + 1;
        while (value_start < line.size()
               && line[value_start] == ' ')
            ++value_start;
        headers.emplace_back(std::move(name),
                             line.substr(value_start));
    }
    return status;
}

/** Read until the header/body separator; body bytes already read
 *  land in @p body. */
int
readHead(ClientSocket &sock,
         std::vector<std::pair<std::string, std::string>> &headers,
         std::string &body)
{
    std::string data;
    std::size_t head_end;
    while ((head_end = data.find("\r\n\r\n")) == std::string::npos) {
        fatalIf(data.size() > httpMaxHeaderBytes,
                "response headers exceed ", httpMaxHeaderBytes,
                " bytes");
        fatalIf(sock.readSome(data) == 0,
                "daemon closed the connection mid-response");
    }
    const int status = parseHead(data.substr(0, head_end), headers);
    body = data.substr(head_end + 4);
    return status;
}

const std::string *
findHeader(
    const std::vector<std::pair<std::string, std::string>> &headers,
    std::string_view name)
{
    for (const auto &[key, value] : headers) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

} // namespace

HttpClientResponse
httpRequest(
    std::uint16_t port, const std::string &method,
    const std::string &target, const std::string &body,
    const std::vector<std::pair<std::string, std::string>> &headers)
{
    ClientSocket sock(port);
    sock.sendAll(requestWire(method, target, body, headers));

    HttpClientResponse response;
    response.status =
        readHead(sock, response.headers, response.body);
    if (const std::string *length =
            findHeader(response.headers, "content-length")) {
        std::size_t expect = 0;
        try {
            expect = std::stoull(*length);
        } catch (const std::exception &) {
            fatal("malformed Content-Length '", *length, "'");
        }
        fatalIf(expect > httpMaxBodyBytes,
                "response body exceeds ", httpMaxBodyBytes,
                " bytes");
        while (response.body.size() < expect) {
            fatalIf(sock.readSome(response.body) == 0,
                    "daemon closed the connection mid-body");
        }
        response.body.resize(expect);
    } else {
        // No length: body runs until close.
        while (sock.readSome(response.body) != 0) {
            fatalIf(response.body.size() > httpMaxBodyBytes,
                    "response body exceeds ", httpMaxBodyBytes,
                    " bytes");
        }
    }
    return response;
}

int
httpStreamLines(
    std::uint16_t port, const std::string &target,
    const std::function<bool(const std::string &)> &on_line,
    const std::vector<std::pair<std::string, std::string>> &headers)
{
    ClientSocket sock(port);
    sock.sendAll(requestWire("GET", target, {}, headers));

    std::vector<std::pair<std::string, std::string>> response_headers;
    std::string pending;
    const int status = readHead(sock, response_headers, pending);

    bool more = true;
    const auto drain = [&]() {
        std::size_t newline;
        while (more
               && (newline = pending.find('\n'))
                   != std::string::npos) {
            std::string line = pending.substr(0, newline);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            pending.erase(0, newline + 1);
            more = on_line(line);
        }
    };
    drain();
    while (more && sock.readSome(pending) != 0)
        drain();
    // A final unterminated fragment still counts as a line.
    if (more && !pending.empty())
        on_line(pending);
    return status;
}

} // namespace dirsim
