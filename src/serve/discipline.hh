/**
 * @file
 * Service disciplines: the order the daemon's worker drains queued
 * sweeps.
 *
 * The worker ThreadPool is a shared resource exactly like the bus in
 * the service-discipline literature: with plain FCFS, one client
 * submitting a giant sweep makes every later client wait the whole
 * campaign out. The round-robin discipline arbitrates *across
 * clients* (one queue per X-Dirsim-Client identity, drained in
 * rotation), so interactive one-cell sweeps interleave with batch
 * campaigns regardless of arrival order.
 *
 * Disciplines order queued runs only — they are plain data
 * structures, not thread-safe; the server serializes access under
 * its state mutex (and tests drive them directly).
 */

#ifndef DIRSIM_SERVE_DISCIPLINE_HH
#define DIRSIM_SERVE_DISCIPLINE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

namespace dirsim
{

/** One queued sweep awaiting the worker. */
struct QueuedRun
{
    std::uint64_t id = 0;
    /** Submitting client's identity (X-Dirsim-Client; "" =
     *  anonymous — all anonymous submissions share one identity). */
    std::string client;

    bool operator==(const QueuedRun &) const = default;
};

/** The queue-drain policy interface. */
class ServiceDiscipline
{
  public:
    virtual ~ServiceDiscipline() = default;

    /** Policy name ("fcfs", "round-robin"). */
    virtual const char *name() const = 0;

    /** Add a run to the queue. */
    virtual void enqueue(const QueuedRun &run) = 0;

    /** Remove and return the next run to serve; nullopt when empty. */
    virtual std::optional<QueuedRun> dequeue() = 0;

    /** Drop a queued run (cancellation).
     *  @return true when it was queued */
    virtual bool remove(std::uint64_t id) = 0;

    virtual std::size_t size() const = 0;

    bool empty() const { return size() == 0; }
};

/** First come, first served: one global arrival-order queue. */
class FcfsDiscipline : public ServiceDiscipline
{
  public:
    const char *name() const override { return "fcfs"; }
    void enqueue(const QueuedRun &run) override;
    std::optional<QueuedRun> dequeue() override;
    bool remove(std::uint64_t id) override;
    std::size_t size() const override { return queue.size(); }

  private:
    std::deque<QueuedRun> queue;
};

/**
 * Round-robin across clients: per-client FIFO queues drained in a
 * fixed rotation, continuing after the last-served client. A client
 * with ten queued sweeps yields after each one to every other
 * waiting client.
 */
class RoundRobinDiscipline : public ServiceDiscipline
{
  public:
    const char *name() const override { return "round-robin"; }
    void enqueue(const QueuedRun &run) override;
    std::optional<QueuedRun> dequeue() override;
    bool remove(std::uint64_t id) override;
    std::size_t size() const override;

  private:
    /** Client rotation in first-appearance order; clients whose
     *  queues drain are removed and re-enter at the back when they
     *  submit again. */
    std::deque<std::string> rotation;
    std::map<std::string, std::deque<QueuedRun>> queues;
};

/** Build a discipline by name. @throws UsageError on unknown names */
std::unique_ptr<ServiceDiscipline> makeDiscipline(
    const std::string &name);

} // namespace dirsim

#endif // DIRSIM_SERVE_DISCIPLINE_HH
