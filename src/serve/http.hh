/**
 * @file
 * A dependency-free blocking HTTP/1.1 transport for dirsim_serve.
 *
 * Scope is deliberately minimal: loopback-only listening sockets,
 * one request per connection (every response carries
 * "Connection: close"), Content-Length framed bodies, and a
 * line-streaming mode for JSONL event feeds (headers without a
 * Content-Length, then one line per write until the handler closes —
 * the HTTP/1.0-style "body until close" framing, which curl, Python
 * and the bundled client all consume naturally).
 *
 * Nothing here knows about sweeps; src/serve/server.hh composes
 * these pieces into the daemon. Limits (header/body byte caps)
 * protect the parser from hostile peers: oversized input fails the
 * read with a diagnostic instead of growing unbounded buffers.
 */

#ifndef DIRSIM_SERVE_HTTP_HH
#define DIRSIM_SERVE_HTTP_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dirsim
{

/** One parsed request. */
struct HttpRequest
{
    std::string method;  ///< e.g. "GET" (uppercase as sent)
    std::string target;  ///< the raw request target, incl. query
    std::string version; ///< "HTTP/1.1"
    /** Header (name, value) pairs; names are lowercased. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** First header value for @p name (lowercase); nullptr when
     *  absent. */
    const std::string *header(std::string_view name) const;

    /** The target's path component (before any '?'). */
    std::string path() const;

    /** Value of query parameter @p key; "" when absent. */
    std::string query(std::string_view key) const;
};

/** One response to send. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Extra headers beyond the generated ones. */
    std::vector<std::pair<std::string, std::string>> headers;
};

/** Canonical reason phrase ("OK", "Too Many Requests", ...). */
const char *httpStatusText(int status);

/**
 * An accepted connection (owns the socket). Move-only; the
 * destructor closes.
 */
class HttpConnection
{
  public:
    explicit HttpConnection(int fd_arg) : sock(fd_arg) {}
    ~HttpConnection() { close(); }

    HttpConnection(HttpConnection &&other) noexcept
        : sock(other.sock), buffer(std::move(other.buffer))
    {
        other.sock = -1;
    }
    HttpConnection &operator=(HttpConnection &&) = delete;
    HttpConnection(const HttpConnection &) = delete;
    HttpConnection &operator=(const HttpConnection &) = delete;

    /**
     * Read and parse one request.
     *
     * @return true on success; false on clean EOF before any bytes
     *         (@p error empty) or on a malformed/oversized request
     *         (@p error holds the diagnostic — send a 400 and close)
     */
    bool readRequest(HttpRequest &out, std::string &error);

    /** Send a complete Content-Length framed response. */
    void sendResponse(const HttpResponse &response);

    /**
     * Begin a streaming response: status line + headers with no
     * Content-Length ("Connection: close" framing). Follow with
     * sendLine() calls; closing the connection ends the body.
     */
    void beginStream(int status,
                     const std::string &content_type = "application/"
                                                       "x-ndjson");

    /** Write one line (plus '\n') of a streaming body.
     *  @return false when the peer is gone (stop streaming) */
    bool sendLine(const std::string &line);

    void close();
    bool valid() const { return sock >= 0; }

  private:
    bool sendAll(const void *data, std::size_t size);

    int sock = -1;
    std::string buffer; ///< bytes read past the previous request
};

/**
 * A loopback (127.0.0.1) listening socket. Port 0 binds an ephemeral
 * port; port() reports the one actually bound.
 */
class HttpListener
{
  public:
    /** Bind + listen. @throws UsageError when the port is taken or
     *  the socket cannot be created */
    explicit HttpListener(std::uint16_t port_arg);
    ~HttpListener();

    HttpListener(const HttpListener &) = delete;
    HttpListener &operator=(const HttpListener &) = delete;

    std::uint16_t port() const { return boundPort; }

    /**
     * Block for the next connection.
     * @return the accepted connection fd, or -1 once shutdown() has
     *         closed the listener
     */
    int acceptConnection();

    /** Unblock acceptConnection() and close the listening socket.
     *  Safe to call from another thread, and more than once. */
    void shutdown();

  private:
    /** Atomic so shutdown() (another thread) and the accept loop
     *  agree on whether the listener is still open. */
    std::atomic<int> sock{-1};
    std::uint16_t boundPort = 0;
};

/** Parser limits (shared with the bundled client). */
inline constexpr std::size_t httpMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t httpMaxBodyBytes = 16 * 1024 * 1024;

} // namespace dirsim

#endif // DIRSIM_SERVE_HTTP_HH
