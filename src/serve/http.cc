#include "serve/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace dirsim
{

namespace
{

std::string
toLower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return text;
}

std::string
trimmed(const std::string &text)
{
    const std::size_t first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return {};
    const std::size_t last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

} // namespace

const std::string *
HttpRequest::header(std::string_view name) const
{
    for (const auto &[key, value] : headers) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

std::string
HttpRequest::path() const
{
    const std::size_t mark = target.find('?');
    return mark == std::string::npos ? target : target.substr(0, mark);
}

std::string
HttpRequest::query(std::string_view key) const
{
    const std::size_t mark = target.find('?');
    if (mark == std::string::npos)
        return {};
    std::istringstream params(target.substr(mark + 1));
    std::string pair;
    while (std::getline(params, pair, '&')) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            continue;
        if (pair.compare(0, eq, key) == 0)
            return pair.substr(eq + 1);
    }
    return {};
}

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default:  return "Unknown";
    }
}

bool
HttpConnection::readRequest(HttpRequest &out, std::string &error)
{
    error.clear();
    // Accumulate until the blank line ending the header block.
    std::size_t header_end;
    while ((header_end = buffer.find("\r\n\r\n"))
           == std::string::npos) {
        if (buffer.size() > httpMaxHeaderBytes) {
            error = "request headers exceed "
                + std::to_string(httpMaxHeaderBytes) + " bytes";
            return false;
        }
        char chunk[4096];
        const ssize_t got = ::recv(sock, chunk, sizeof(chunk), 0);
        if (got <= 0) {
            if (!buffer.empty())
                error = "connection closed mid-request";
            return false;
        }
        buffer.append(chunk, static_cast<std::size_t>(got));
    }

    const std::string head = buffer.substr(0, header_end);
    buffer.erase(0, header_end + 4);

    std::istringstream lines(head);
    std::string line;
    if (!std::getline(lines, line)) {
        error = "empty request";
        return false;
    }
    {
        std::istringstream request_line(trimmed(line));
        if (!(request_line >> out.method >> out.target
              >> out.version)) {
            error = "malformed request line '" + trimmed(line) + "'";
            return false;
        }
    }
    out.headers.clear();
    out.body.clear();
    while (std::getline(lines, line)) {
        line = trimmed(line);
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            error = "malformed header '" + line + "'";
            return false;
        }
        out.headers.emplace_back(
            toLower(trimmed(line.substr(0, colon))),
            trimmed(line.substr(colon + 1)));
    }

    std::size_t content_length = 0;
    if (const std::string *value = out.header("content-length")) {
        try {
            content_length = std::stoull(*value);
        } catch (const std::exception &) {
            error = "malformed Content-Length '" + *value + "'";
            return false;
        }
    }
    if (content_length > httpMaxBodyBytes) {
        error = "request body exceeds "
            + std::to_string(httpMaxBodyBytes) + " bytes";
        return false;
    }
    while (buffer.size() < content_length) {
        char chunk[4096];
        const ssize_t got = ::recv(sock, chunk, sizeof(chunk), 0);
        if (got <= 0) {
            error = "connection closed mid-body";
            return false;
        }
        buffer.append(chunk, static_cast<std::size_t>(got));
    }
    out.body = buffer.substr(0, content_length);
    buffer.erase(0, content_length);
    return true;
}

bool
HttpConnection::sendAll(const void *data, std::size_t size)
{
    const char *bytes = static_cast<const char *>(data);
    while (size > 0) {
        const ssize_t sent =
            ::send(sock, bytes, size, MSG_NOSIGNAL);
        if (sent <= 0)
            return false;
        bytes += sent;
        size -= static_cast<std::size_t>(sent);
    }
    return true;
}

void
HttpConnection::sendResponse(const HttpResponse &response)
{
    std::ostringstream out;
    out << "HTTP/1.1 " << response.status << ' '
        << httpStatusText(response.status) << "\r\n"
        << "Content-Type: " << response.contentType << "\r\n"
        << "Content-Length: " << response.body.size() << "\r\n"
        << "Connection: close\r\n";
    for (const auto &[name, value] : response.headers)
        out << name << ": " << value << "\r\n";
    out << "\r\n" << response.body;
    const std::string wire = out.str();
    sendAll(wire.data(), wire.size());
}

void
HttpConnection::beginStream(int status,
                            const std::string &content_type)
{
    std::ostringstream out;
    out << "HTTP/1.1 " << status << ' ' << httpStatusText(status)
        << "\r\n"
        << "Content-Type: " << content_type << "\r\n"
        << "Connection: close\r\n\r\n";
    const std::string wire = out.str();
    sendAll(wire.data(), wire.size());
}

bool
HttpConnection::sendLine(const std::string &line)
{
    std::string wire = line;
    wire.push_back('\n');
    return sendAll(wire.data(), wire.size());
}

void
HttpConnection::close()
{
    if (sock >= 0) {
        ::close(sock);
        sock = -1;
    }
}

HttpListener::HttpListener(std::uint16_t port_arg)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd < 0, "cannot create listening socket: ",
            std::strerror(errno));
    const int enable = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(port_arg);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&address),
               sizeof(address))
        != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        fatal("cannot bind 127.0.0.1:", port_arg, ": ", reason);
    }
    if (::listen(fd, 64) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        fatal("cannot listen on 127.0.0.1:", port_arg, ": ", reason);
    }

    sockaddr_in bound{};
    socklen_t bound_size = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_size)
        == 0)
        boundPort = ntohs(bound.sin_port);
    else
        boundPort = port_arg;
    sock.store(fd, std::memory_order_release);
}

HttpListener::~HttpListener()
{
    shutdown();
}

int
HttpListener::acceptConnection()
{
    for (;;) {
        const int listen_fd = sock.load(std::memory_order_acquire);
        if (listen_fd < 0)
            return -1;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        return -1; // shut down (or unrecoverable)
    }
}

void
HttpListener::shutdown()
{
    // exchange() makes concurrent shutdown() calls idempotent: only
    // one caller sees the live fd. ::shutdown() wakes a blocked
    // ::accept() (close() alone does not, on Linux).
    const int fd = sock.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

} // namespace dirsim
