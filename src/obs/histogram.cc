#include "obs/histogram.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace dirsim
{

void
FixedHistogram::add(std::uint64_t value, std::uint64_t count)
{
    if (value < counts.size())
        counts[static_cast<std::size_t>(value)] += count;
    else
        overflowCount += count;
    total += count;
}

std::uint64_t
FixedHistogram::count(std::uint64_t value) const
{
    return value < counts.size()
        ? counts[static_cast<std::size_t>(value)]
        : 0;
}

double
FixedHistogram::fraction(std::uint64_t value) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(count(value))
        / static_cast<double>(total);
}

std::uint64_t
FixedHistogram::maxNonZero() const
{
    std::uint64_t max = 0;
    for (std::size_t v = 0; v < counts.size(); ++v) {
        if (counts[v] != 0)
            max = v;
    }
    return max;
}

void
FixedHistogram::merge(const FixedHistogram &other)
{
    fatalIf(counts.size() != other.counts.size(),
            "FixedHistogram::merge of mismatched shapes: ",
            counts.size(), " buckets vs ", other.counts.size());
    for (std::size_t v = 0; v < counts.size(); ++v)
        counts[v] += other.counts[v];
    overflowCount += other.overflowCount;
    total += other.total;
}

void
FixedHistogram::writeJson(JsonWriter &writer) const
{
    writer.beginObject();
    writer.key("buckets").beginArray();
    for (const std::uint64_t count : counts)
        writer.value(count);
    writer.endArray();
    writer.key("overflow").value(overflowCount);
    writer.key("samples").value(total);
    writer.endObject();
}

FixedHistogram
FixedHistogram::fromJson(const JsonValue &json)
{
    fatalIf(!json.isObject(), "histogram JSON is not an object");
    const JsonValue &buckets = json.at("buckets");
    fatalIf(!buckets.isArray(),
            "histogram 'buckets' is not an array");
    FixedHistogram histogram(buckets.size());
    std::uint64_t sum = 0;
    for (std::size_t v = 0; v < buckets.size(); ++v) {
        const std::uint64_t count = buckets.at(v).asU64();
        histogram.counts[v] = count;
        sum += count;
    }
    histogram.overflowCount = json.at("overflow").asU64();
    histogram.total = json.at("samples").asU64();
    fatalIf(sum + histogram.overflowCount != histogram.total,
            "histogram samples total ", histogram.total,
            " does not match its buckets (",
            sum + histogram.overflowCount, ")");
    return histogram;
}

} // namespace dirsim
