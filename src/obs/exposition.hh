/**
 * @file
 * Prometheus text exposition (format version 0.0.4) for dirsim
 * metrics.
 *
 * The daemon's GET /metrics endpoint renders two kinds of state:
 *
 *  - any MetricRegistry (obs/metrics.hh) via writePrometheus():
 *    counters and gauges map directly; timers render as a summary
 *    family (_count/_sum) plus _min/_max gauges. Dotted registry
 *    names are sanitized into the Prometheus grammar
 *    ("sim.pops.Dir0B.events.rd_hit" ->
 *    "sim_pops_Dir0B_events_rd_hit").
 *
 *  - hand-labelled service metrics via PromWriter: request counters
 *    by {endpoint, status}, per-discipline queue-wait and
 *    run-duration FixedHistograms with *cumulative* buckets — the
 *    waiting-time and service-time distributions the bus
 *    service-discipline literature asks for, not just means.
 *
 * lintPrometheusText() is the format gate the tests (and operators)
 * run over any exposition body: metric-name/label grammar, value
 * syntax, TYPE placement, family/sample name agreement, duplicate
 * samples, histogram bucket cumulativity and the +Inf == _count
 * invariant. An empty problem list means scrapers will accept the
 * body.
 */

#ifndef DIRSIM_OBS_EXPOSITION_HH
#define DIRSIM_OBS_EXPOSITION_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dirsim
{

class MetricRegistry;
class FixedHistogram;

/**
 * Sanitize an arbitrary dotted metric name into the Prometheus
 * grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every other character (dots
 * included) becomes '_', a leading digit gains a '_' prefix, and an
 * empty input becomes "_".
 */
std::string promMetricName(std::string_view name);

/** Escape a label value for "..." quoting: backslash, double quote,
 *  and newline get backslash escapes. */
std::string promEscapeLabelValue(std::string_view value);

/** One sample label. Names must already satisfy the label grammar
 *  [a-zA-Z_][a-zA-Z0-9_]*; values are escaped on output. */
struct PromLabel
{
    std::string name;
    std::string value;
};

/**
 * A streaming exposition-format writer. Callers group output by
 * family: one type() line, then that family's samples.
 */
class PromWriter
{
  public:
    explicit PromWriter(std::ostream &os_arg) : os(os_arg) {}

    /** "# HELP <name> <help>" (help is single-line escaped). */
    void help(const std::string &name, std::string_view text);

    /** "# TYPE <name> counter|gauge|histogram|summary|untyped". */
    void type(const std::string &name, const char *type_name);

    /** One sample line: name{labels} value. */
    void sample(const std::string &name,
                const std::vector<PromLabel> &labels, double value);
    void sample(const std::string &name,
                const std::vector<PromLabel> &labels,
                std::uint64_t value);

    /**
     * A full histogram family body (the TYPE line is the caller's):
     * cumulative <name>_bucket{le="..."} samples — one per regular
     * bucket, bucket i counting values at or below @p upper_bounds[i]
     * — a closing le="+Inf" bucket equal to the sample total, then
     * <name>_sum (@p sum, in the same unit as the bounds) and
     * <name>_count.
     *
     * @throws UsageError when @p upper_bounds does not match the
     *         histogram's bucket count or is not strictly increasing
     */
    void histogram(const std::string &name,
                   const std::vector<PromLabel> &labels,
                   const FixedHistogram &hist,
                   const std::vector<double> &upper_bounds,
                   double sum);

  private:
    std::ostream &os;
};

/**
 * Render a whole registry. Names are sanitized with
 * promMetricName(@p prefix + "." + name); a sanitized-name collision
 * (two dotted names mapping to one exposition family) keeps the
 * first family and skips later ones with a comment, so the output
 * always lints clean.
 */
void writePrometheus(std::ostream &os, const MetricRegistry &registry,
                     const std::string &prefix = {});

/**
 * Validate an exposition body. Returns one human-readable problem
 * per violated rule (line numbers included); empty means the text
 * parses as Prometheus text format 0.0.4.
 */
std::vector<std::string> lintPrometheusText(const std::string &text);

} // namespace dirsim

#endif // DIRSIM_OBS_EXPOSITION_HH
