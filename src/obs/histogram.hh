/**
 * @file
 * Fixed-bucket distribution histograms for the event tracer.
 *
 * Unlike the growable dense common/histogram.hh (which sizes itself
 * to the data and is subtractable for warm-up discard), a
 * FixedHistogram has a bucket count fixed at construction plus one
 * overflow bucket, so merging across grid cells and serializing to
 * the metric registry needs no renegotiation of shapes: two
 * histograms merge iff their bucket counts match (anything else is a
 * caller bug and throws).
 *
 * The tracer (obs/tracer.hh) keeps one of these per distribution —
 * invalidation count, sharer-set size, write-run length — per cell
 * session, and merges them into per-run totals.
 */

#ifndef DIRSIM_OBS_HISTOGRAM_HH
#define DIRSIM_OBS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace dirsim
{

class JsonWriter;
class JsonValue;

/** Default bucket count of the tracer's distributions: values
 *  0..63 resolve exactly, larger ones land in the overflow bucket. */
inline constexpr std::size_t traceDistBuckets = 64;

/** A histogram over [0, bucketCount) with an overflow bucket. */
class FixedHistogram
{
  public:
    /** @param num_buckets regular buckets (0 = overflow-only) */
    explicit FixedHistogram(std::size_t num_buckets = 0)
        : counts(num_buckets, 0)
    {}

    /** Record @p count samples of @p value (>= bucketCount()
     *  overflows). */
    void add(std::uint64_t value, std::uint64_t count = 1);

    /** Count in regular bucket @p value (0 when out of range). */
    std::uint64_t count(std::uint64_t value) const;

    /** Samples that exceeded the largest regular bucket. */
    std::uint64_t overflow() const { return overflowCount; }

    /** Total samples recorded (regular + overflow). */
    std::uint64_t samples() const { return total; }

    /** Number of regular buckets. */
    std::size_t bucketCount() const { return counts.size(); }

    bool empty() const { return total == 0; }

    /** Fraction of all samples in regular bucket @p value. */
    double fraction(std::uint64_t value) const;

    /** Largest regular bucket with a nonzero count (0 when none). */
    std::uint64_t maxNonZero() const;

    /**
     * Accumulate another histogram.
     *
     * @throws UsageError when the bucket counts differ — the shapes
     *         were fixed at construction and silently widening one
     *         would misattribute overflow mass
     */
    void merge(const FixedHistogram &other);

    /**
     * Serialize as {"buckets": [...], "overflow": n, "samples": n}.
     * Empty histograms (zero buckets, zero samples) round-trip.
     */
    void writeJson(JsonWriter &writer) const;

    /** Rebuild from writeJson() output.
     *  @throws UsageError on malformed input or a samples total that
     *          does not match the buckets */
    static FixedHistogram fromJson(const JsonValue &json);

    bool operator==(const FixedHistogram &) const = default;

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t overflowCount = 0;
    std::uint64_t total = 0;
};

} // namespace dirsim

#endif // DIRSIM_OBS_HISTOGRAM_HH
