/**
 * @file
 * RunManifest: the provenance record captured once per experiment
 * run and written alongside the results.
 *
 * A results file without a manifest answers "what are these numbers"
 * but not "what produced them". The manifest pins down everything a
 * reader needs to reproduce or trust a run: the full SimConfig, the
 * scheme list, per-trace provenance (path, record count, cache
 * count, and a whole-file FNV-1a 64 checksum reusing the trace
 * format v2 hash), every DIRSIM_* environment override in effect,
 * the worker count, the host, and start/end timestamps.
 *
 * `dirsim_validate --manifest` cross-checks the recorded trace
 * checksums against the files on disk; `dirsim_report` prints the
 * manifest next to the re-rendered tables.
 */

#ifndef DIRSIM_OBS_MANIFEST_HH
#define DIRSIM_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hh"

namespace dirsim
{

class JsonWriter;
class JsonValue;

/** Where one input trace came from. */
struct TraceProvenance
{
    std::string name; ///< workload name from the trace header
    std::string path; ///< file path; empty for in-memory traces
    /** "file" for on-disk traces, "memory" for generated ones. */
    std::string source = "file";
    std::uint64_t records = 0;
    /** Caches the trace needs under the run's sharing model. */
    unsigned caches = 0;
    /** Whole-file FNV-1a 64 (trace/format.hh); file sources only. */
    std::uint64_t checksum = 0;
    bool hasChecksum = false;
};

/** Everything known about a run before/after it executes. */
struct RunManifest
{
    /** Schema version of the results file itself. */
    static constexpr unsigned schemaVersion = 1;

    std::string startedAt;  ///< ISO 8601 UTC, captured at run start
    std::string finishedAt; ///< ISO 8601 UTC, captured at run end
    std::string host;       ///< hostname ("" when unavailable)
    unsigned jobs = 1;      ///< worker threads the grid used

    // SimConfig, flattened into stable serializable fields.
    unsigned blockBytes = 0;
    std::string sharing; ///< "process" or "processor"
    std::uint64_t warmupRefs = 0;
    std::uint64_t invariantCheckPeriod = 0;
    bool hasFiniteCache = false;
    std::uint64_t finiteCapacityBytes = 0;
    unsigned finiteWays = 0;

    std::vector<std::string> schemes;
    std::vector<TraceProvenance> traces;
    /** DIRSIM_* environment overrides in effect, name-sorted. */
    std::vector<std::pair<std::string, std::string>> env;

    /** Capture config/env/host; timestamps via stamp*(). */
    static RunManifest capture(const std::vector<SchemeSpec> &schemes,
                               const SimConfig &config);

    void stampStart();
    void stampFinish();

    /** Rebuild the SimConfig the run used. */
    SimConfig toSimConfig() const;

    /** Serialize as one JSON object (kind "manifest"). */
    void writeJson(JsonWriter &writer) const;

    /** @throws UsageError on missing fields or a newer schema */
    static RunManifest fromJson(const JsonValue &json);
};

/**
 * FNV-1a 64 over a file's entire contents (streamed, bounded
 * memory) — the same hash trace format v2 embeds, applied uniformly
 * to binary and text traces.
 *
 * @throws UsageError when the file cannot be read
 */
std::uint64_t fileChecksumFnv64(const std::string &path);

/** All DIRSIM_*-prefixed environment variables, name-sorted. */
std::vector<std::pair<std::string, std::string>>
dirsimEnvironment();

/** Current time as ISO 8601 UTC ("2026-08-06T12:34:56Z"). */
std::string utcTimestamp();

} // namespace dirsim

#endif // DIRSIM_OBS_MANIFEST_HH
