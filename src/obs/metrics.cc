#include "obs/metrics.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace dirsim
{

const char *
toString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Timer:
        return "timer";
    }
    panic("unknown MetricKind ", static_cast<unsigned>(kind));
}

void
TimerStats::observe(std::uint64_t sample)
{
    if (count == 0 || sample < min)
        min = sample;
    if (sample > max)
        max = sample;
    ++count;
    sum += sample;
}

void
TimerStats::merge(const TimerStats &other)
{
    if (other.count == 0)
        return;
    if (count == 0 || other.min < min)
        min = other.min;
    if (other.max > max)
        max = other.max;
    count += other.count;
    sum += other.sum;
}

void
MetricRegistry::checkName(const std::string &name)
{
    fatalIf(name.empty(), "metric name is empty");
    bool segment_empty = true;
    for (const char c : name) {
        if (c == '.') {
            fatalIf(segment_empty, "metric name '", name,
                    "' has an empty segment");
            segment_empty = true;
            continue;
        }
        const bool ok = (c >= 'a' && c <= 'z')
            || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
            || c == '_' || c == '-';
        fatalIf(!ok, "metric name '", name,
                "' contains an invalid character '", c, "'");
        segment_empty = false;
    }
    fatalIf(segment_empty, "metric name '", name,
            "' has an empty segment");
}

std::string
MetricRegistry::escapeSegment(std::string_view text)
{
    if (text.empty())
        return "_";
    std::string segment(text);
    for (char &c : segment) {
        const bool ok = (c >= 'a' && c <= 'z')
            || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
            || c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    return segment;
}

Metric &
MetricRegistry::entry(const std::string &name, MetricKind kind)
{
    const auto it = entries.find(name);
    if (it == entries.end()) {
        checkName(name);
        Metric metric;
        metric.kind = kind;
        return entries.emplace(name, metric).first->second;
    }
    fatalIf(it->second.kind != kind, "metric '", name, "' is a ",
            toString(it->second.kind), ", not a ", toString(kind));
    return it->second;
}

const Metric *
MetricRegistry::lookup(const std::string &name, MetricKind kind) const
{
    const auto it = entries.find(name);
    if (it == entries.end())
        return nullptr;
    fatalIf(it->second.kind != kind, "metric '", name, "' is a ",
            toString(it->second.kind), ", not a ", toString(kind));
    return &it->second;
}

void
MetricRegistry::add(const std::string &name, std::uint64_t delta)
{
    entry(name, MetricKind::Counter).counter += delta;
}

void
MetricRegistry::set(const std::string &name, double value)
{
    entry(name, MetricKind::Gauge).gauge = value;
}

void
MetricRegistry::observe(const std::string &name, std::uint64_t sample)
{
    entry(name, MetricKind::Timer).timer.observe(sample);
}

std::uint64_t
MetricRegistry::counter(const std::string &name) const
{
    const Metric *metric = lookup(name, MetricKind::Counter);
    return metric ? metric->counter : 0;
}

double
MetricRegistry::gauge(const std::string &name) const
{
    const Metric *metric = lookup(name, MetricKind::Gauge);
    return metric ? metric->gauge : 0.0;
}

TimerStats
MetricRegistry::timer(const std::string &name) const
{
    const Metric *metric = lookup(name, MetricKind::Timer);
    return metric ? metric->timer : TimerStats{};
}

bool
MetricRegistry::has(const std::string &name) const
{
    return entries.find(name) != entries.end();
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    if (&other == this)
        return;
    for (const auto &[name, metric] : other.entries) {
        Metric &mine = entry(name, metric.kind);
        switch (metric.kind) {
          case MetricKind::Counter:
            mine.counter += metric.counter;
            break;
          case MetricKind::Gauge:
            mine.gauge = metric.gauge;
            break;
          case MetricKind::Timer:
            mine.timer.merge(metric.timer);
            break;
        }
    }
}

void
MetricRegistry::importCounters(const std::string &prefix,
                               const CounterSet &counters)
{
    for (const auto &[name, value] : counters)
        add(prefix + "." + name, value);
}

void
MetricRegistry::importHistogram(const std::string &prefix,
                                const Histogram &histogram)
{
    add(prefix + ".samples", histogram.samples());
    const auto &buckets = histogram.buckets();
    for (std::size_t v = 0; v < buckets.size(); ++v) {
        if (buckets[v] != 0)
            add(prefix + "." + std::to_string(v), buckets[v]);
    }
}

void
MetricRegistry::writeJson(JsonWriter &writer) const
{
    writer.beginObject();
    for (const auto &[name, metric] : entries) {
        writer.key(name).beginObject();
        writer.key("kind").value(toString(metric.kind));
        switch (metric.kind) {
          case MetricKind::Counter:
            writer.key("value").value(metric.counter);
            break;
          case MetricKind::Gauge:
            writer.key("value").value(metric.gauge);
            break;
          case MetricKind::Timer:
            writer.key("count").value(metric.timer.count);
            writer.key("sum").value(metric.timer.sum);
            writer.key("min").value(metric.timer.min);
            writer.key("max").value(metric.timer.max);
            break;
        }
        writer.endObject();
    }
    writer.endObject();
}

MetricRegistry
MetricRegistry::fromJson(const JsonValue &json)
{
    fatalIf(!json.isObject(), "metrics JSON is not an object");
    MetricRegistry registry;
    for (const auto &[name, value] : json.members()) {
        const std::string &kind = value.at("kind").asString();
        if (kind == "counter") {
            registry.add(name, value.at("value").asU64());
        } else if (kind == "gauge") {
            registry.set(name, value.at("value").asDouble());
        } else if (kind == "timer") {
            Metric &metric =
                registry.entry(name, MetricKind::Timer);
            metric.timer.count = value.at("count").asU64();
            metric.timer.sum = value.at("sum").asU64();
            metric.timer.min = value.at("min").asU64();
            metric.timer.max = value.at("max").asU64();
        } else {
            fatal("metric '", name, "' has unknown kind '", kind,
                  "'");
        }
    }
    return registry;
}

} // namespace dirsim
