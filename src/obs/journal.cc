#include "obs/journal.hh"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/json.hh"
#include "common/log.hh"
#include "common/logging.hh"
#include "obs/phase.hh"

namespace dirsim
{

std::string
JournalEvent::toJson() const
{
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("kind").value(kind)
        .key("run").value(runId)
        .key("ts").value(wallTs)
        .key("mono_ns").value(monoNs);
    if (kind == "submitted") {
        writer.key("name").value(name);
        if (!client.empty())
            writer.key("client").value(client);
        writer.key("cells").value(cellsTotal);
        writer.key("spec").value(spec);
    } else if (kind == "cell") {
        writer.key("cell").value(cellLabel)
            .key("scheme").value(scheme)
            .key("refs").value(refs)
            .key("cache_hit").value(cacheHit);
    } else if (kind == "finished") {
        writer.key("state").value(state)
            .key("cells").value(cellsTotal);
        if (!error.empty())
            writer.key("error").value(error);
    }
    writer.endObject();
    return os.str();
}

JournalEvent
JournalEvent::fromJson(const std::string &line)
{
    const JsonValue json = JsonValue::parse(line);
    fatalIf(!json.isObject(), "journal record is not an object");
    JournalEvent event;
    event.kind = json.at("kind").asString();
    event.runId = json.at("run").asU64();
    fatalIf(event.runId == 0, "journal record has run id 0");
    event.wallTs = json.at("ts").asString();
    event.monoNs = json.at("mono_ns").asU64();
    if (event.kind == "submitted") {
        event.name = json.at("name").asString();
        if (const JsonValue *client = json.find("client"))
            event.client = client->asString();
        event.cellsTotal = json.at("cells").asU64();
        event.spec = json.at("spec").asString();
    } else if (event.kind == "cell") {
        event.cellLabel = json.at("cell").asString();
        event.scheme = json.at("scheme").asString();
        event.refs = json.at("refs").asU64();
        event.cacheHit = json.at("cache_hit").asBool();
    } else if (event.kind == "finished") {
        event.state = json.at("state").asString();
        event.cellsTotal = json.at("cells").asU64();
        if (const JsonValue *error = json.find("error"))
            event.error = error->asString();
    } else if (event.kind != "started") {
        fatal("journal record has unknown kind '", event.kind, "'");
    }
    return event;
}

RunJournal::RunJournal(std::string path_arg)
    : journalPath(std::move(path_arg))
{
    const std::filesystem::path parent =
        std::filesystem::path(journalPath).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    file = std::fopen(journalPath.c_str(), "ab");
    fatalIf(file == nullptr, "cannot open run journal '",
            journalPath, "' for append");
}

RunJournal::~RunJournal()
{
    if (file != nullptr)
        std::fclose(file);
}

void
RunJournal::append(JournalEvent event)
{
    if (event.wallTs.empty())
        event.wallTs = logTimestampUtc();
    if (event.monoNs == 0)
        event.monoNs = PhaseTimer::nowNs();
    const std::string line = event.toJson();
    // One fwrite per line: stdio appends of a single buffer are
    // atomic enough for our single-writer journal, and the flush
    // bounds crash loss to the line in flight.
    std::fwrite(line.data(), 1, line.size(), file);
    std::fputc('\n', file);
    std::fflush(file);
}

JournalReplay
replayJournal(const std::string &path)
{
    JournalReplay replay;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return replay; // fresh journal directory: nothing to replay

    // Read the whole file so we can tell a truncated final line (no
    // trailing newline — the writer died mid-record) from a corrupt
    // mid-file record.
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::map<std::uint64_t, JournalRun> runs;
    std::size_t offset = 0;
    std::size_t line_number = 0;
    while (offset < text.size()) {
        const std::size_t newline = text.find('\n', offset);
        const bool has_newline = newline != std::string::npos;
        const std::string line = text.substr(
            offset, has_newline ? newline - offset : std::string::npos);
        offset = has_newline ? newline + 1 : text.size();
        ++line_number;
        if (line.empty())
            continue;

        JournalEvent event;
        try {
            event = JournalEvent::fromJson(line);
        } catch (const SimulationError &problem) {
            if (!has_newline) {
                // The final line never finished being written: the
                // expected crash artifact, not corruption.
                replay.truncatedTail = true;
                break;
            }
            ++replay.corruptLines;
            logEvent(LogLevel::Warn, "journal.corrupt_record")
                .field("path", path)
                .field("line", static_cast<std::uint64_t>(line_number))
                .field("error", problem.what());
            continue;
        }

        JournalRun &run = runs[event.runId];
        run.id = event.runId;
        replay.maxRunId = std::max(replay.maxRunId, event.runId);
        if (event.kind == "submitted") {
            run.name = event.name;
            run.client = event.client;
            run.spec = event.spec;
            run.cellsTotal = event.cellsTotal;
            run.submittedNs = event.monoNs;
            run.submittedAt = event.wallTs;
        } else if (event.kind == "started") {
            run.started = true;
            run.startedNs = event.monoNs;
        } else if (event.kind == "cell") {
            ++run.cellsDone;
        } else if (event.kind == "finished") {
            run.state = event.state;
            run.error = event.error;
            run.finishedNs = event.monoNs;
        }
    }

    replay.runs.reserve(runs.size());
    for (auto &[id, run] : runs)
        replay.runs.push_back(std::move(run));
    return replay;
}

std::string
journalPathInDir(const std::string &dir)
{
    fatalIf(dir.empty(), "journal directory is empty");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    fatalIf(static_cast<bool>(ec)
                && !std::filesystem::is_directory(dir),
            "cannot create journal directory '", dir, "': ",
            ec.message());
    return (std::filesystem::path(dir) / RunJournal::fileName)
        .string();
}

} // namespace dirsim
