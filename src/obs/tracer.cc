#include "obs/tracer.hh"

#include <algorithm>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"

namespace dirsim
{

TracerConfig
TracerConfig::fromEnvironment()
{
    TracerConfig config;
    config.samplePeriod =
        envUnsigned("DIRSIM_TRACE_SAMPLE", config.samplePeriod);
    config.ringCapacity = static_cast<std::size_t>(
        envU64("DIRSIM_TRACE_RING", config.ringCapacity));
    return config;
}

EventTracer::EventTracer(TracerConfig config_arg)
    : tracerConfig(config_arg)
{}

EventTracer::~EventTracer() = default;

std::unique_ptr<EventTracer::Session>
EventTracer::session(std::string scheme, std::string trace,
                     std::optional<BlockNum> block_filter)
{
    return std::unique_ptr<Session>(new Session(
        this, std::move(scheme), std::move(trace), block_filter));
}

void
EventTracer::absorb(Session &session)
{
    // Unroll the ring into emission order: once it has wrapped, the
    // oldest surviving event sits at the head cursor.
    std::vector<ProtocolTraceEvent> events;
    events.reserve(session.ring.size());
    if (session.ring.size() < tracerConfig.ringCapacity
        || session.ringHead == 0) {
        events = std::move(session.ring);
    } else {
        events.insert(events.end(),
                      session.ring.begin()
                          + static_cast<std::ptrdiff_t>(
                              session.ringHead),
                      session.ring.end());
        events.insert(events.end(), session.ring.begin(),
                      session.ring.begin()
                          + static_cast<std::ptrdiff_t>(
                              session.ringHead));
    }

    std::lock_guard<std::mutex> lock(mutex);
    invalHist.merge(session.invalHist);
    sharerHist.merge(session.sharerHist);
    runHist.merge(session.runHist);
    emitted += session.ringSeen;
    droppedTotal += session.ringDropped;
    CellTimeline timeline;
    timeline.scheme = session.scheme;
    timeline.trace = session.trace;
    timeline.events = std::move(events);
    timeline.dropped = session.ringDropped;
    cellTimelines.push_back(std::move(timeline));
}

void
EventTracer::exportMetrics(MetricRegistry &metrics) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto exportHist = [&](const char *name,
                                const FixedHistogram &hist) {
        const std::string prefix =
            std::string("trace.dist.") + name;
        metrics.add(prefix + ".samples", hist.samples());
        if (hist.overflow() != 0)
            metrics.add(prefix + ".overflow", hist.overflow());
        for (std::uint64_t v = 0; v < hist.bucketCount(); ++v) {
            if (hist.count(v) != 0)
                metrics.add(prefix + "." + std::to_string(v),
                            hist.count(v));
        }
    };
    exportHist("inval_on_clean_write", invalHist);
    exportHist("sharer_set_size", sharerHist);
    exportHist("write_run_length", runHist);
    metrics.add("trace.events.emitted", emitted);
    metrics.add("trace.events.dropped", droppedTotal);
    metrics.set("trace.sample_period", tracerConfig.samplePeriod);
    metrics.set("trace.ring_capacity",
                static_cast<double>(tracerConfig.ringCapacity));
}

EventTracer::Session::Session(EventTracer *owner_arg,
                              std::string scheme_arg,
                              std::string trace_arg,
                              std::optional<BlockNum> filter_arg)
    : owner(owner_arg), scheme(std::move(scheme_arg)),
      trace(std::move(trace_arg)), blockFilter(filter_arg)
{
    ring.reserve(std::min<std::size_t>(
        owner->tracerConfig.ringCapacity, 1024));
}

EventTracer::Session::~Session()
{
    finish();
}

void
EventTracer::Session::emit(const ProtocolTraceEvent &event)
{
    if (blockFilter && event.block != *blockFilter)
        return;
    ++ringSeen;
    const std::size_t capacity = owner->tracerConfig.ringCapacity;
    if (capacity == 0) {
        ++ringDropped;
        return;
    }
    ProtocolTraceEvent stamped = event;
    stamped.tsNs = PhaseTimer::nowNs();
    if (ring.size() < capacity) {
        ring.push_back(stamped);
        return;
    }
    // Full: overwrite the oldest event in place.
    ring[ringHead] = stamped;
    ringHead = (ringHead + 1) % capacity;
    ++ringDropped;
}

void
EventTracer::Session::cleanWriteSample(unsigned num_others)
{
    invalHist.add(num_others);
    // The holder set at that write includes the writer itself.
    sharerHist.add(static_cast<std::uint64_t>(num_others) + 1);
}

void
EventTracer::Session::dataRef(BlockNum block, CacheId cache,
                              bool is_write)
{
    const auto it = openRuns.find(block);
    if (!is_write) {
        // Any read to the block ends the current write run.
        if (it != openRuns.end()) {
            runHist.add(it->second.length);
            openRuns.erase(it);
        }
        return;
    }
    if (it == openRuns.end()) {
        openRuns.emplace(block, WriteRun{cache, 1});
        return;
    }
    if (it->second.writer == cache) {
        ++it->second.length;
        return;
    }
    // A different cache took over writing: close and restart.
    runHist.add(it->second.length);
    it->second = WriteRun{cache, 1};
}

void
EventTracer::Session::finish()
{
    if (finished)
        return;
    finished = true;
    for (const auto &[block, run] : openRuns)
        runHist.add(run.length);
    openRuns.clear();
    owner->absorb(*this);
}

} // namespace dirsim
