/**
 * @file
 * ResultsSink: where structured run artifacts go.
 *
 * A sink receives the run manifest, one CellRecord per grid cell (in
 * grid order, so output is deterministic regardless of worker
 * scheduling), and optionally a MetricRegistry snapshot. Two
 * implementations ship:
 *
 *  - JsonlSink: one JSON object per line — a "manifest" line, then
 *    "cell" lines, then an optional "metrics" line. This is the
 *    machine-readable format `dirsim_report` consumes and the
 *    BENCH_*.json perf-trajectory files use.
 *  - CsvSink: a flat spreadsheet-friendly view — manifest as
 *    '#'-prefixed comment lines, then a header row and one row per
 *    cell (schema in CellRecord::csvHeader()).
 */

#ifndef DIRSIM_OBS_SINK_HH
#define DIRSIM_OBS_SINK_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/record.hh"

namespace dirsim
{

/** Consumer of one run's structured artifacts. */
class ResultsSink
{
  public:
    virtual ~ResultsSink() = default;

    /** Called once, before any cell, with the completed manifest. */
    virtual void writeManifest(const RunManifest &manifest) = 0;

    /** Called once per grid cell, in grid (scheme-major) order. */
    virtual void writeCell(const CellRecord &record) = 0;

    /** Optional registry snapshot; default implementation ignores. */
    virtual void writeMetrics(const MetricRegistry &metrics);

    /** Flush; further writes are a usage error. */
    virtual void finish() = 0;
};

/** Streams artifacts as JSON Lines. */
class JsonlSink : public ResultsSink
{
  public:
    /** Write to a caller-owned stream (tests, stdout). */
    explicit JsonlSink(std::ostream &os_arg);

    /** Write to @p path. @throws UsageError when unwritable */
    explicit JsonlSink(const std::string &path);

    void writeManifest(const RunManifest &manifest) override;
    void writeCell(const CellRecord &record) override;
    void writeMetrics(const MetricRegistry &metrics) override;
    void finish() override;

  private:
    std::ostream &stream();

    std::unique_ptr<std::ofstream> owned;
    std::ostream *os;
    std::string path; ///< for diagnostics; empty for stream sinks
    bool finished = false;
};

/** Streams cell records as CSV (manifest as '#' comments). */
class CsvSink : public ResultsSink
{
  public:
    explicit CsvSink(std::ostream &os_arg);

    /** @throws UsageError when @p path cannot be opened */
    explicit CsvSink(const std::string &path);

    void writeManifest(const RunManifest &manifest) override;
    void writeCell(const CellRecord &record) override;
    void finish() override;

  private:
    std::ostream &stream();
    void headerRowOnce();

    std::unique_ptr<std::ofstream> owned;
    std::ostream *os;
    std::string path;
    bool wroteHeader = false;
    bool finished = false;
};

/** Quote/escape one CSV field per RFC 4180 (only when needed). */
std::string csvField(const std::string &value);

} // namespace dirsim

#endif // DIRSIM_OBS_SINK_HH
