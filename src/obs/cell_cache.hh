/**
 * @file
 * The file-backed cell result cache.
 *
 * FileCellCache persists one CellRecord JSONL line per cache entry
 * under a directory, named by the entry's content-addressed key
 * (sim/job.hh cellCacheKey()) in hex. Because the engine schema
 * version is folded into the key, a stale entry from an older engine
 * simply never gets looked up; a corrupted or truncated entry is
 * treated as a miss and overwritten by the store that follows.
 *
 * Writes go through a temp file + rename, so concurrent grid workers
 * (and concurrent processes sharing one cache directory) never
 * observe a half-written entry. Set DIRSIM_CACHE_DIR to enable the
 * cache in the bench binaries and examples; the paper grid replays
 * from a warm cache with zero simulated references
 * (tests/cell_cache_test.cmake).
 */

#ifndef DIRSIM_OBS_CELL_CACHE_HH
#define DIRSIM_OBS_CELL_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/job.hh"

namespace dirsim
{

/** CellCache backed by one JSONL file per entry. */
class FileCellCache : public CellCache
{
  public:
    /** @param dir_arg cache directory; created if absent */
    explicit FileCellCache(std::string dir_arg);

    /**
     * The DIRSIM_CACHE_DIR cache, or nullptr when the variable is
     * unset or empty.
     */
    static std::shared_ptr<FileCellCache> fromEnvironment();

    bool lookup(std::uint64_t key, SimResult &out) override;
    void store(std::uint64_t key, const SimResult &result,
               double wall_seconds) override;

    const std::string &directory() const { return dir; }

    /** Process-lifetime counters (thread-safe). */
    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }
    std::uint64_t stores() const { return storeCount.load(); }

  private:
    std::string entryPath(std::uint64_t key) const;

    std::string dir;
    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
    std::atomic<std::uint64_t> storeCount{0};
};

} // namespace dirsim

#endif // DIRSIM_OBS_CELL_CACHE_HH
