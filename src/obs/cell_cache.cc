#include "obs/cell_cache.hh"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/record.hh"

namespace dirsim
{

FileCellCache::FileCellCache(std::string dir_arg)
    : dir(std::move(dir_arg))
{
    fatalIf(dir.empty(), "cell cache directory must not be empty");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    fatalIf(ec.value() != 0, "cannot create cache directory '", dir,
            "': ", ec.message());
}

std::shared_ptr<FileCellCache>
FileCellCache::fromEnvironment()
{
    const auto dir = envString("DIRSIM_CACHE_DIR");
    if (!dir || dir->empty())
        return nullptr;
    return std::make_shared<FileCellCache>(*dir);
}

std::string
FileCellCache::entryPath(std::uint64_t key) const
{
    std::ostringstream name;
    name << std::hex;
    name.width(16);
    name.fill('0');
    name << key;
    return dir + "/" + name.str() + ".cell.json";
}

bool
FileCellCache::lookup(std::uint64_t key, SimResult &out)
{
    std::ifstream in(entryPath(key));
    if (!in) {
        ++missCount;
        return false;
    }
    std::string line;
    if (!std::getline(in, line) || line.empty()) {
        ++missCount;
        return false;
    }
    try {
        const JsonValue json = JsonValue::parse(line);
        out = CellRecord::fromJson(json).toSimResult();
    } catch (const SimulationError &) {
        // Corrupted or truncated entry: a miss; the store() that
        // follows the re-simulation rewrites it whole.
        ++missCount;
        return false;
    }
    ++hitCount;
    return true;
}

void
FileCellCache::store(std::uint64_t key, const SimResult &result,
                     double wall_seconds)
{
    CellTiming timing;
    timing.scheme = result.scheme;
    timing.traceName = result.traceName;
    timing.refs = result.totalRefs;
    timing.wallSeconds = wall_seconds;

    std::ostringstream line;
    JsonWriter writer(line);
    CellRecord::fromCell(result, timing).writeJson(writer);

    const std::string path = entryPath(key);
    // Unique temp name per store() call — pid for cross-process
    // uniqueness, a process-wide counter for cross-thread uniqueness
    // (thread-id hashes can collide) — then an atomic rename, so
    // concurrent workers (or processes) never expose a partial entry.
    static std::atomic<std::uint64_t> storeSerial{0};
    std::ostringstream tmp;
    tmp << path << ".tmp." << ::getpid() << "."
        << storeSerial.fetch_add(1);
    {
        std::ofstream outfile(tmp.str(),
                              std::ios::binary | std::ios::trunc);
        fatalIf(!outfile, "cannot write cache entry '", tmp.str(), "'");
        outfile << line.str() << '\n';
        outfile.flush();
        fatalIf(!outfile, "I/O error writing cache entry '", tmp.str(),
                "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp.str(), path, ec);
    fatalIf(ec.value() != 0, "cannot publish cache entry '", path,
            "': ", ec.message());
    ++storeCount;
}

} // namespace dirsim
