/**
 * @file
 * Live grid progress on stderr.
 *
 * ProgressHud turns the runner's per-cell GridProgress callbacks into
 * a single self-rewriting status line: cells done, the cell that just
 * finished, aggregate refs/s, and an ETA from the planned-vs-completed
 * reference counts. It is opt-in (DIRSIM_PROGRESS=1) and writes only
 * to stderr, so machine-readable stdout (JSONL, CSV, report text)
 * stays clean.
 *
 * @code
 *   ProgressHud hud;
 *   RunnerConfig config = RunnerConfig::fromEnvironment();
 *   if (ProgressHud::enabledFromEnvironment())
 *       config.onCellComplete = hud.callback();
 *   GridResult grid = ExperimentRunner(config).run(schemes, traces);
 *   hud.finish(); // newline-terminate the status line, if any
 * @endcode
 *
 * The callback the HUD hands out is safe under the runner's progress
 * serialization guarantee (calls never overlap), and finish() is
 * idempotent.
 */

#ifndef DIRSIM_OBS_PROGRESS_HH
#define DIRSIM_OBS_PROGRESS_HH

#include <string>

#include "sim/runner.hh"

namespace dirsim
{

/** One-line stderr HUD over runner progress callbacks. */
class ProgressHud
{
  public:
    ProgressHud() = default;
    ~ProgressHud() { finish(); }

    ProgressHud(const ProgressHud &) = delete;
    ProgressHud &operator=(const ProgressHud &) = delete;

    /** True when DIRSIM_PROGRESS is set to a non-zero value. */
    static bool enabledFromEnvironment();

    /**
     * A ProgressCallback that rewrites this HUD's status line. The
     * HUD must outlive any runner using the callback.
     */
    ProgressCallback callback();

    /**
     * Terminate the status line with a newline so later stderr
     * output starts clean. No-op when nothing was drawn.
     */
    void finish();

    /** The status line for @p progress (exposed for tests). */
    static std::string renderLine(const GridProgress &progress);

  private:
    void draw(const GridProgress &progress);

    /** Width of the longest line drawn, for blank-padding rewrites. */
    std::size_t drawnWidth = 0;
    bool drawn = false;
};

} // namespace dirsim

#endif // DIRSIM_OBS_PROGRESS_HH
