#include "obs/artifacts.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace dirsim
{

namespace
{

/** Emit manifest + cells (+ metrics) for a finished grid. */
void
emitArtifacts(RunManifest manifest, const GridResult &grid,
              const std::vector<std::string> &tracePaths,
              ResultsSink &sink, const ExtraMetricsFn &extra_metrics)
{
    manifest.jobs = grid.jobs;
    sink.writeManifest(manifest);
    const std::size_t num_traces =
        grid.schemes.empty() ? 0 : grid.schemes[0].perTrace.size();
    for (std::size_t s = 0; s < grid.schemes.size(); ++s) {
        for (std::size_t t = 0; t < num_traces; ++t) {
            const std::size_t index = s * num_traces + t;
            sink.writeCell(CellRecord::fromCell(
                grid.schemes[s].perTrace[t], grid.cells[index],
                t < tracePaths.size() ? tracePaths[t]
                                      : std::string()));
        }
    }
    MetricRegistry metrics = gridMetrics(grid);
    if (extra_metrics)
        extra_metrics(metrics);
    sink.writeMetrics(metrics);
    sink.finish();
}

} // namespace

GridResult
runFilesWithArtifacts(const ExperimentRunner &runner,
                      const std::vector<SchemeSpec> &schemes,
                      const std::vector<std::string> &tracePaths,
                      const SimConfig &sim, ResultsSink &sink,
                      const ExtraMetricsFn &extraMetrics)
{
    RunManifest manifest = RunManifest::capture(schemes, sim);
    manifest.stampStart();

    GridResult grid = runner.runFiles(schemes, tracePaths, sim);
    manifest.stampFinish();

    // File provenance: name/records/caches from the grid's own cell
    // data, plus a whole-file checksum (trace-format-v2 FNV-1a).
    const std::size_t num_traces = tracePaths.size();
    for (std::size_t t = 0; t < num_traces; ++t) {
        TraceProvenance trace;
        trace.path = tracePaths[t];
        trace.source = "file";
        const SimResult &first = grid.schemes[0].perTrace[t];
        trace.name = first.traceName;
        trace.records = grid.cells[t].refs;
        trace.caches = first.numCaches;
        trace.checksum = fileChecksumFnv64(tracePaths[t]);
        trace.hasChecksum = true;
        manifest.traces.push_back(std::move(trace));
    }
    emitArtifacts(std::move(manifest), grid, tracePaths, sink,
                  extraMetrics);
    return grid;
}

GridResult
runFilesWithArtifacts(const ExperimentRunner &runner,
                      const std::vector<std::string> &schemes,
                      const std::vector<std::string> &tracePaths,
                      const SimConfig &sim, ResultsSink &sink,
                      const ExtraMetricsFn &extraMetrics)
{
    std::vector<SchemeSpec> specs;
    specs.reserve(schemes.size());
    for (const std::string &name : schemes)
        specs.push_back(parseScheme(name));
    return runFilesWithArtifacts(runner, specs, tracePaths, sim,
                                 sink, extraMetrics);
}

GridResult
runWithArtifacts(const ExperimentRunner &runner,
                 const std::vector<SchemeSpec> &schemes,
                 const std::vector<Trace> &traces,
                 const SimConfig &sim, ResultsSink &sink,
                 const ExtraMetricsFn &extraMetrics)
{
    RunManifest manifest = RunManifest::capture(schemes, sim);
    manifest.stampStart();

    GridResult grid = runner.run(schemes, traces, sim);
    manifest.stampFinish();

    for (const Trace &trace : traces) {
        TraceProvenance provenance;
        provenance.name = trace.name();
        provenance.source = "memory";
        provenance.records = trace.size();
        provenance.caches = cachesNeeded(trace, sim.sharing);
        manifest.traces.push_back(std::move(provenance));
    }
    emitArtifacts(std::move(manifest), grid, {}, sink, extraMetrics);
    return grid;
}

GridResult
runWithArtifacts(const ExperimentRunner &runner,
                 const std::vector<std::string> &schemes,
                 const std::vector<Trace> &traces,
                 const SimConfig &sim, ResultsSink &sink,
                 const ExtraMetricsFn &extraMetrics)
{
    std::vector<SchemeSpec> specs;
    specs.reserve(schemes.size());
    for (const std::string &name : schemes)
        specs.push_back(parseScheme(name));
    return runWithArtifacts(runner, specs, traces, sim, sink,
                            extraMetrics);
}

RunArtifacts
loadArtifacts(std::istream &in)
{
    RunArtifacts artifacts;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()
            || line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        try {
            const JsonValue json = JsonValue::parse(line);
            const std::string &kind = json.at("kind").asString();
            if (kind == "manifest") {
                if (!artifacts.hasManifest) {
                    artifacts.manifest = RunManifest::fromJson(json);
                    artifacts.hasManifest = true;
                }
            } else if (kind == "cell") {
                artifacts.cells.push_back(CellRecord::fromJson(json));
            } else if (kind == "metrics") {
                if (!artifacts.hasMetrics) {
                    artifacts.metrics = MetricRegistry::fromJson(
                        json.at("metrics"));
                    artifacts.hasMetrics = true;
                }
            }
            // Unknown kinds are skipped: forward compatibility.
        } catch (const SimulationError &error) {
            fatal("results line ", line_number, ": ", error.what());
        }
    }
    fatalIf(artifacts.cells.empty() && !artifacts.hasManifest,
            "results stream holds no manifest and no cell records");
    return artifacts;
}

RunArtifacts
loadArtifacts(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open results file '", path, "'");
    try {
        return loadArtifacts(in);
    } catch (const UsageError &error) {
        fatal("'", path, "': ", error.what());
    }
}

MetricRegistry
gridMetrics(const GridResult &grid)
{
    MetricRegistry metrics;
    const std::size_t num_traces =
        grid.schemes.empty() ? 0 : grid.schemes[0].perTrace.size();
    for (std::size_t s = 0; s < grid.schemes.size(); ++s) {
        for (std::size_t t = 0; t < num_traces; ++t) {
            const SimResult &result = grid.schemes[s].perTrace[t];
            const CellTiming &cell =
                grid.cells[s * num_traces + t];
            // Trace and scheme names come from user input (file
            // stems may contain '.'), so each is escaped into a
            // single dotted-name segment.
            const std::string prefix = "sim."
                + MetricRegistry::escapeSegment(result.traceName)
                + "." + MetricRegistry::escapeSegment(result.scheme);
            metrics.add(prefix + ".refs", result.totalRefs);
            for (std::size_t e = 0; e < numEventTypes; ++e) {
                const auto event = static_cast<EventType>(e);
                const std::uint64_t count =
                    result.events.count(event);
                if (count != 0)
                    metrics.add(prefix + ".events."
                                    + eventKey(event),
                                count);
            }
            for (const auto &[name, member] : opFields()) {
                if (result.ops.*member != 0)
                    metrics.add(prefix + ".ops." + name,
                                result.ops.*member);
            }
            metrics.observe("runner.cell.wall_ms",
                            static_cast<std::uint64_t>(
                                cell.wallSeconds * 1e3));
            for (std::size_t p = 0; p < numPhases; ++p) {
                const auto phase = static_cast<Phase>(p);
                metrics.observe(std::string("runner.cell.phase.")
                                    + toString(phase) + "_ns",
                                result.phases.get(phase));
            }
        }
    }
    metrics.set("runner.grid.wall_seconds", grid.wallSeconds);
    metrics.set("runner.grid.refs_per_second",
                grid.refsPerSecond());
    metrics.set("runner.grid.jobs", grid.jobs);
    metrics.set("runner.grid.cells",
                static_cast<double>(grid.cells.size()));
    if (grid.cacheEnabled) {
        metrics.add("runner.cache.hits", grid.cacheHits());
        metrics.add("runner.cache.misses", grid.cacheMisses());
        metrics.add("runner.grid.simulated_refs",
                    grid.simulatedRefs());
    }
    return metrics;
}

namespace
{

/** Compare one named u64 metric across two cells. */
void
diffField(std::vector<MetricDelta> &deltas, const std::string &cell,
          const std::string &metric, std::uint64_t a,
          std::uint64_t b)
{
    if (a != b)
        deltas.push_back({cell, metric, std::to_string(a),
                          std::to_string(b)});
}

void
diffCosts(std::vector<MetricDelta> &deltas, const std::string &cell,
          const CellRecord &a, const CellRecord &b)
{
    const auto compare = [&](const char *bus,
                             const BusCosts &costs) {
        const CycleBreakdown ba = a.cost(costs);
        const CycleBreakdown bb = b.cost(costs);
        if (ba.total() != bb.total()
            || ba.transactions != bb.transactions) {
            deltas.push_back(
                {cell, std::string("costs.") + bus + ".total",
                 TextTable::fixed(ba.total(), 6),
                 TextTable::fixed(bb.total(), 6)});
        }
    };
    compare("pipelined", paperPipelinedCosts());
    compare("non_pipelined", paperNonPipelinedCosts());
}

void
diffCell(std::vector<MetricDelta> &deltas, const std::string &key,
         const CellRecord &a, const CellRecord &b)
{
    diffField(deltas, key, "total_refs", a.totalRefs, b.totalRefs);
    diffField(deltas, key, "caches", a.numCaches, b.numCaches);
    for (std::size_t e = 0; e < numEventTypes; ++e) {
        const auto event = static_cast<EventType>(e);
        diffField(deltas, key, "events." + eventKey(event),
                  a.events.count(event), b.events.count(event));
    }
    for (const auto &[name, member] : opFields())
        diffField(deltas, key, std::string("ops.") + name,
                  a.ops.*member, b.ops.*member);
    const std::uint64_t max_bucket =
        std::max(a.cleanWriteHolders.maxValue(),
                 b.cleanWriteHolders.maxValue());
    for (std::uint64_t v = 0; v <= max_bucket; ++v)
        diffField(deltas, key,
                  "clean_write_holders." + std::to_string(v),
                  a.cleanWriteHolders.count(v),
                  b.cleanWriteHolders.count(v));
    diffCosts(deltas, key, a, b);
}

} // namespace

std::vector<MetricDelta>
diffArtifacts(const RunArtifacts &a, const RunArtifacts &b)
{
    std::vector<MetricDelta> deltas;

    // Index run B's cells; preserve run A's cell order for output.
    std::map<std::string, const CellRecord *> b_cells;
    for (const CellRecord &record : b.cells)
        b_cells.emplace(record.scheme + "/" + record.trace, &record);

    for (const CellRecord &record : a.cells) {
        const std::string key = record.scheme + "/" + record.trace;
        const auto it = b_cells.find(key);
        if (it == b_cells.end()) {
            deltas.push_back({key, "present", "yes", "-"});
            continue;
        }
        diffCell(deltas, key, record, *it->second);
        b_cells.erase(it);
    }
    for (const auto &[key, record] : b_cells)
        deltas.push_back({key, "present", "-", "yes"});
    return deltas;
}

} // namespace dirsim
