#include "obs/manifest.hh"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>

#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "trace/format.hh"

extern char **environ;

namespace dirsim
{

namespace
{

/** Hex spelling of a checksum ("0x" free, zero-padded to 16). */
std::string
checksumHex(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::uint64_t
parseChecksumHex(const std::string &hex)
{
    fatalIf(hex.empty() || hex.size() > 16,
            "manifest checksum '", hex, "' is not a 64-bit hex value");
    std::uint64_t value = 0;
    for (const char c : hex) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            value |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            fatal("manifest checksum '", hex,
                  "' is not a 64-bit hex value");
    }
    return value;
}

const char *
toString(SharingModel sharing)
{
    return sharing == SharingModel::ByProcess ? "process"
                                              : "processor";
}

SharingModel
sharingFromString(const std::string &name)
{
    if (name == "process")
        return SharingModel::ByProcess;
    if (name == "processor")
        return SharingModel::ByProcessor;
    fatal("manifest sharing '", name,
          "' is neither 'process' nor 'processor'");
}

} // namespace

// fileChecksumFnv64() moved to sim/job.cc (the cell cache keys need
// it below the obs layer); the declaration in manifest.hh remains
// valid for existing callers.

std::vector<std::pair<std::string, std::string>>
dirsimEnvironment()
{
    std::vector<std::pair<std::string, std::string>> vars;
    for (char **entry = environ; entry != nullptr && *entry != nullptr;
         ++entry) {
        const std::string_view var(*entry);
        if (var.rfind("DIRSIM_", 0) != 0)
            continue;
        const auto eq = var.find('=');
        if (eq == std::string_view::npos)
            continue;
        vars.emplace_back(std::string(var.substr(0, eq)),
                          std::string(var.substr(eq + 1)));
    }
    std::sort(vars.begin(), vars.end());
    return vars;
}

std::string
utcTimestamp()
{
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buf;
}

RunManifest
RunManifest::capture(const std::vector<SchemeSpec> &schemes,
                     const SimConfig &config)
{
    RunManifest manifest;
    char host[256] = {};
    if (gethostname(host, sizeof(host) - 1) == 0)
        manifest.host = host;
    manifest.blockBytes = config.blockBytes;
    manifest.sharing = toString(config.sharing);
    manifest.warmupRefs = config.warmupRefs;
    manifest.invariantCheckPeriod = config.invariantCheckPeriod;
    if (config.finiteCache) {
        manifest.hasFiniteCache = true;
        manifest.finiteCapacityBytes =
            config.finiteCache->capacityBytes;
        manifest.finiteWays = config.finiteCache->ways;
    }
    manifest.schemes.reserve(schemes.size());
    for (const SchemeSpec &scheme : schemes)
        manifest.schemes.push_back(scheme.name());
    manifest.env = dirsimEnvironment();
    return manifest;
}

void
RunManifest::stampStart()
{
    startedAt = utcTimestamp();
}

void
RunManifest::stampFinish()
{
    finishedAt = utcTimestamp();
}

SimConfig
RunManifest::toSimConfig() const
{
    SimConfig config;
    config.blockBytes = blockBytes;
    config.sharing = sharingFromString(sharing);
    config.warmupRefs = warmupRefs;
    config.invariantCheckPeriod = invariantCheckPeriod;
    if (hasFiniteCache) {
        FiniteCacheConfig cache;
        cache.capacityBytes = finiteCapacityBytes;
        cache.ways = finiteWays;
        cache.blockBytes = blockBytes;
        config.finiteCache = cache;
    }
    return config;
}

void
RunManifest::writeJson(JsonWriter &writer) const
{
    writer.beginObject();
    writer.key("kind").value("manifest");
    writer.key("schema_version").value(schemaVersion);
    writer.key("started_at").value(startedAt);
    writer.key("finished_at").value(finishedAt);
    writer.key("host").value(host);
    writer.key("jobs").value(jobs);

    writer.key("config").beginObject();
    writer.key("block_bytes").value(blockBytes);
    writer.key("sharing").value(sharing);
    writer.key("warmup_refs").value(warmupRefs);
    writer.key("invariant_check_period").value(invariantCheckPeriod);
    if (hasFiniteCache) {
        writer.key("finite_cache").beginObject();
        writer.key("capacity_bytes").value(finiteCapacityBytes);
        writer.key("ways").value(finiteWays);
        writer.endObject();
    } else {
        writer.key("finite_cache").null();
    }
    writer.endObject();

    writer.key("schemes").beginArray();
    for (const std::string &scheme : schemes)
        writer.value(scheme);
    writer.endArray();

    writer.key("traces").beginArray();
    for (const TraceProvenance &trace : traces) {
        writer.beginObject();
        writer.key("name").value(trace.name);
        if (trace.path.empty())
            writer.key("path").null();
        else
            writer.key("path").value(trace.path);
        writer.key("source").value(trace.source);
        writer.key("records").value(trace.records);
        writer.key("caches").value(trace.caches);
        if (trace.hasChecksum)
            writer.key("fnv64").value(checksumHex(trace.checksum));
        else
            writer.key("fnv64").null();
        writer.endObject();
    }
    writer.endArray();

    writer.key("env").beginObject();
    for (const auto &[name, value] : env)
        writer.key(name).value(value);
    writer.endObject();
    writer.endObject();
}

RunManifest
RunManifest::fromJson(const JsonValue &json)
{
    fatalIf(!json.isObject(), "manifest is not a JSON object");
    const std::uint64_t version =
        json.at("schema_version").asU64();
    fatalIf(version > schemaVersion, "results schema version ",
            version, " is newer than this binary understands (",
            schemaVersion, ")");

    RunManifest manifest;
    manifest.startedAt = json.at("started_at").asString();
    manifest.finishedAt = json.at("finished_at").asString();
    manifest.host = json.at("host").asString();
    manifest.jobs = static_cast<unsigned>(json.at("jobs").asU64());

    const JsonValue &config = json.at("config");
    manifest.blockBytes =
        static_cast<unsigned>(config.at("block_bytes").asU64());
    manifest.sharing = config.at("sharing").asString();
    sharingFromString(manifest.sharing); // validate early
    manifest.warmupRefs = config.at("warmup_refs").asU64();
    manifest.invariantCheckPeriod =
        config.at("invariant_check_period").asU64();
    const JsonValue &finite = config.at("finite_cache");
    if (!finite.isNull()) {
        manifest.hasFiniteCache = true;
        manifest.finiteCapacityBytes =
            finite.at("capacity_bytes").asU64();
        manifest.finiteWays =
            static_cast<unsigned>(finite.at("ways").asU64());
    }

    for (const JsonValue &scheme : json.at("schemes").elements())
        manifest.schemes.push_back(scheme.asString());

    for (const JsonValue &entry : json.at("traces").elements()) {
        TraceProvenance trace;
        trace.name = entry.at("name").asString();
        const JsonValue &path = entry.at("path");
        if (!path.isNull())
            trace.path = path.asString();
        trace.source = entry.at("source").asString();
        trace.records = entry.at("records").asU64();
        trace.caches =
            static_cast<unsigned>(entry.at("caches").asU64());
        const JsonValue &fnv = entry.at("fnv64");
        if (!fnv.isNull()) {
            trace.checksum = parseChecksumHex(fnv.asString());
            trace.hasChecksum = true;
        }
        manifest.traces.push_back(std::move(trace));
    }

    for (const auto &[name, value] : json.at("env").members())
        manifest.env.emplace_back(name, value.asString());
    return manifest;
}

} // namespace dirsim
