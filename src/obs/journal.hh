/**
 * @file
 * The daemon's persistent run journal.
 *
 * dirsim_serve historically kept run state only in memory: a restart
 * forgot every submitted sweep even though the finished cells
 * survived in the cell cache. RunJournal closes that gap with an
 * append-only JSONL file — one self-contained event per line, each
 * stamped with both wall-clock UTC ("ts") and the monotonic
 * PhaseTimer::nowNs() clock ("mono_ns") — recording every run state
 * transition:
 *
 *   {"kind":"submitted","run":3,"name":"e2e","client":"alice",
 *    "cells":4,"spec":"{...}","ts":...,"mono_ns":...}
 *   {"kind":"started","run":3,...}
 *   {"kind":"cell","run":3,"cell":"pops/Dir0B","scheme":"Dir0B",
 *    "refs":20000,"cache_hit":false,...}
 *   {"kind":"finished","run":3,"state":"done","cells":4,...}
 *
 * Appends are flushed per line, so a SIGKILL loses at most the line
 * being written. replayJournal() folds the surviving events back
 * into per-run states: runs with no terminal event were in flight
 * when the daemon died and come back as "interrupted" — resubmitting
 * the same spec replays their finished cells from the cell cache.
 *
 * Replay is deliberately forgiving (docs/journal.md): a truncated
 * final line (the kill landed mid-write) is dropped silently into
 * `truncatedTail`, and a corrupt mid-file record (disk fault, manual
 * edit) is skipped and counted — the daemon always starts, recovering
 * everything up to the last good record.
 */

#ifndef DIRSIM_OBS_JOURNAL_HH
#define DIRSIM_OBS_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dirsim
{

/** One journal line: a run state transition. */
struct JournalEvent
{
    /** "submitted", "started", "cell", or "finished". */
    std::string kind;

    std::uint64_t runId = 0;

    /** Wall-clock UTC (logTimestampUtc()); stamped by append() when
     *  empty. */
    std::string wallTs;

    /** PhaseTimer::nowNs(); stamped by append() when zero. */
    std::uint64_t monoNs = 0;

    // "submitted" payload.
    std::string name;   ///< the spec's campaign name
    std::string client; ///< X-Dirsim-Client identity ("" = anonymous)
    std::string spec;   ///< full spec text, so a restart can resubmit
    std::uint64_t cellsTotal = 0;

    // "cell" payload.
    std::string cellLabel;
    std::string scheme;
    std::uint64_t refs = 0;
    bool cacheHit = false;

    // "finished" payload.
    std::string state; ///< "done", "failed", or "cancelled"
    std::string error;

    /** Serialize as one JSON object (no trailing newline). */
    std::string toJson() const;

    /** Parse one journal line. @throws UsageError when malformed */
    static JournalEvent fromJson(const std::string &line);
};

/** Append-only writer over one journal file. */
class RunJournal
{
  public:
    /** Journal file name inside a journal directory. */
    static constexpr const char *fileName = "journal.jsonl";

    /**
     * Open @p path_arg for append (created, along with its parent
     * directory, when absent).
     *
     * @throws UsageError when the file cannot be opened
     */
    explicit RunJournal(std::string path_arg);
    ~RunJournal();

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /**
     * Append one event, stamping wallTs/monoNs when the caller left
     * them empty, and flush so a crash after return cannot lose it.
     */
    void append(JournalEvent event);

    const std::string &path() const { return journalPath; }

  private:
    std::string journalPath;
    std::FILE *file = nullptr;
};

/** One run reconstructed by replay. */
struct JournalRun
{
    std::uint64_t id = 0;
    std::string name;
    std::string client;
    std::string spec;
    /**
     * Final state: a terminal "finished" event's state, or
     * "interrupted" when the journal ends with the run still queued
     * or running (the daemon died mid-flight).
     */
    std::string state = "interrupted";
    std::string error;
    std::uint64_t cellsTotal = 0;
    std::uint64_t cellsDone = 0;
    bool started = false;

    /** Monotonic stamps (0 = the event never happened). */
    std::uint64_t submittedNs = 0;
    std::uint64_t startedNs = 0;
    std::uint64_t finishedNs = 0;
    std::string submittedAt; ///< wall-clock UTC of submission
};

/** Everything replayJournal() recovers. */
struct JournalReplay
{
    /** Replayed runs in id order. */
    std::vector<JournalRun> runs;

    /** Largest run id seen (0 when none) — the restarted daemon's id
     *  allocator starts past it. */
    std::uint64_t maxRunId = 0;

    /** Mid-file records skipped as corrupt (each logged). */
    std::size_t corruptLines = 0;

    /** True when the final line was truncated mid-write and
     *  dropped. */
    bool truncatedTail = false;
};

/**
 * Fold a journal file back into per-run states. A missing file is an
 * empty replay (a fresh journal directory), not an error; corrupt
 * records are skipped with a structured warning and never prevent
 * startup.
 */
JournalReplay replayJournal(const std::string &path);

/**
 * The journal path inside @p dir (creating @p dir when absent).
 * @throws UsageError when the directory cannot be created
 */
std::string journalPathInDir(const std::string &dir);

} // namespace dirsim

#endif // DIRSIM_OBS_JOURNAL_HH
