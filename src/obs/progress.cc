#include "obs/progress.hh"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/env.hh"

namespace dirsim
{

namespace
{

/** "1.85 Mrefs/s"-style human throughput. */
std::string
formatRate(double refs_per_second)
{
    char buffer[32];
    if (refs_per_second >= 1e6)
        std::snprintf(buffer, sizeof buffer, "%.2f Mrefs/s",
                      refs_per_second / 1e6);
    else if (refs_per_second >= 1e3)
        std::snprintf(buffer, sizeof buffer, "%.1f krefs/s",
                      refs_per_second / 1e3);
    else
        std::snprintf(buffer, sizeof buffer, "%.0f refs/s",
                      refs_per_second);
    return buffer;
}

/** "2m06s" / "12.3s" human duration. */
std::string
formatEta(double seconds)
{
    char buffer[32];
    if (seconds >= 60.0)
        std::snprintf(buffer, sizeof buffer, "%um%02us",
                      static_cast<unsigned>(seconds) / 60,
                      static_cast<unsigned>(seconds) % 60);
    else
        std::snprintf(buffer, sizeof buffer, "%.1fs", seconds);
    return buffer;
}

} // namespace

bool
ProgressHud::enabledFromEnvironment()
{
    return envUnsigned("DIRSIM_PROGRESS", 0) != 0;
}

std::string
ProgressHud::renderLine(const GridProgress &progress)
{
    std::ostringstream line;
    line << '[' << progress.completedCells << '/'
         << progress.totalCells << "] " << progress.cell.scheme << '/'
         << progress.cell.traceName;
    if (progress.cacheHits > 0)
        line << "  cache " << progress.cacheHits << '/'
             << progress.completedCells;
    const double rate = progress.refsPerSecond();
    if (rate > 0.0)
        line << "  " << formatRate(rate);
    if (progress.plannedRefs > 0) {
        const double done =
            static_cast<double>(progress.completedRefs)
            / static_cast<double>(progress.plannedRefs);
        char percent[16];
        std::snprintf(percent, sizeof percent, "  %3.0f%%",
                      100.0 * done);
        line << percent;
        const double eta = progress.etaSeconds();
        if (eta > 0.0)
            line << "  ETA " << formatEta(eta);
    }
    return line.str();
}

ProgressCallback
ProgressHud::callback()
{
    return [this](const GridProgress &progress) { draw(progress); };
}

void
ProgressHud::draw(const GridProgress &progress)
{
    std::string line = renderLine(progress);
    const std::size_t width = line.size();
    if (width < drawnWidth)
        line.append(drawnWidth - width, ' '); // blank the longer tail
    else
        drawnWidth = width;
    std::cerr << '\r' << line << std::flush;
    drawn = true;
}

void
ProgressHud::finish()
{
    if (!drawn)
        return;
    std::cerr << '\n' << std::flush;
    drawn = false;
    drawnWidth = 0;
}

} // namespace dirsim
