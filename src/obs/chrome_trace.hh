/**
 * @file
 * Chrome trace_event JSON export of a finished grid.
 *
 * writeChromeTrace() lays a GridResult out as a Chrome
 * trace_event-format document ({"traceEvents": [...]}) loadable in
 * chrome://tracing or Perfetto: one timeline lane per worker thread,
 * one complete ("X") slice per grid cell, nested slices for the
 * cell's phase breakdown (read/warmup/simulate/reduce, from the PR 3
 * phase timers), and — when an EventTracer ran alongside — instant
 * ("i") events for the sampled protocol transitions.
 *
 * Timestamps are microseconds relative to the grid start, taken from
 * the same PhaseTimer::nowNs() clock the cells and tracer sessions
 * stamp, so cells and protocol events line up on one axis. Phase
 * slices are laid out cumulatively inside their cell (phases do not
 * record their own start times), which matches reality because the
 * phases of a cell run back-to-back.
 */

#ifndef DIRSIM_OBS_CHROME_TRACE_HH
#define DIRSIM_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/runner.hh"

namespace dirsim
{

class EventTracer;

/**
 * One generic timeline slice for writeChromeSpans(): anything with a
 * start and a duration on the PhaseTimer::nowNs() clock. The daemon
 * uses these for its run-scoped traces (queue-wait, run execution,
 * per-cell slices, HTTP requests) without needing a GridResult.
 */
struct TraceSpan
{
    std::string name;
    std::string category;
    /** Timeline lane ("tid" in the trace viewer). */
    unsigned lane = 0;
    /** PhaseTimer::nowNs() stamps. */
    std::uint64_t startNs = 0;
    std::uint64_t durationNs = 0;
    /** Extra args rendered as strings under the slice. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Write free-form spans as a Chrome trace_event document.
 * Timestamps are emitted relative to @p origin_ns (a span starting
 * before the origin clamps to 0); @p lane_names labels lanes 0..N-1.
 */
void writeChromeSpans(
    std::ostream &os, const std::vector<TraceSpan> &spans,
    std::uint64_t origin_ns,
    const std::vector<std::string> &lane_names = {});

/**
 * Write @p grid (and, optionally, @p tracer's sampled timelines) as
 * a Chrome trace_event JSON document.
 */
void writeChromeTrace(std::ostream &os, const GridResult &grid,
                      const EventTracer *tracer = nullptr);

/** writeChromeTrace() to a file. @throws UsageError when unwritable */
void writeChromeTraceFile(const std::string &path,
                          const GridResult &grid,
                          const EventTracer *tracer = nullptr);

} // namespace dirsim

#endif // DIRSIM_OBS_CHROME_TRACE_HH
