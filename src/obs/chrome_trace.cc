#include "obs/chrome_trace.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/phase.hh"
#include "obs/tracer.hh"

namespace dirsim
{

namespace
{

/** Microseconds (Chrome's unit) from a nanosecond delta. */
double
usSince(std::uint64_t ns, std::uint64_t origin_ns)
{
    if (ns <= origin_ns)
        return 0.0;
    return static_cast<double>(ns - origin_ns) / 1e3;
}

/**
 * Map worker-thread tags to small stable lane ids, in order of each
 * worker's first cell start — lane 1 is the worker that started
 * first, giving deterministic lane layout for a sequential run.
 */
std::map<std::uint64_t, unsigned>
laneMap(const GridResult &grid)
{
    std::vector<const CellTiming *> cells;
    cells.reserve(grid.cells.size());
    for (const CellTiming &cell : grid.cells)
        cells.push_back(&cell);
    std::sort(cells.begin(), cells.end(),
              [](const CellTiming *a, const CellTiming *b) {
                  return a->startNs < b->startNs;
              });
    std::map<std::uint64_t, unsigned> lanes;
    for (const CellTiming *cell : cells) {
        if (!lanes.contains(cell->threadTag)) {
            const auto lane = static_cast<unsigned>(lanes.size() + 1);
            lanes.emplace(cell->threadTag, lane);
        }
    }
    return lanes;
}

/** One complete ("X") slice. */
void
writeSlice(JsonWriter &writer, const std::string &name,
           const char *category, unsigned tid, double ts_us,
           double dur_us)
{
    writer.beginObject();
    writer.key("name").value(name);
    writer.key("cat").value(category);
    writer.key("ph").value("X");
    writer.key("pid").value(1u);
    writer.key("tid").value(tid);
    writer.key("ts").value(ts_us);
    writer.key("dur").value(dur_us);
}

void
writeThreadName(JsonWriter &writer, unsigned tid,
                const std::string &name)
{
    writer.beginObject();
    writer.key("name").value("thread_name");
    writer.key("ph").value("M");
    writer.key("pid").value(1u);
    writer.key("tid").value(tid);
    writer.key("args").beginObject();
    writer.key("name").value(name);
    writer.endObject();
    writer.endObject();
}

} // namespace

void
writeChromeSpans(std::ostream &os,
                 const std::vector<TraceSpan> &spans,
                 std::uint64_t origin_ns,
                 const std::vector<std::string> &lane_names)
{
    JsonWriter writer(os);
    writer.beginObject();
    writer.key("displayTimeUnit").value("ms");
    writer.key("traceEvents").beginArray();

    for (std::size_t lane = 0; lane < lane_names.size(); ++lane)
        writeThreadName(writer, static_cast<unsigned>(lane),
                        lane_names[lane]);

    for (const TraceSpan &span : spans) {
        writeSlice(writer, span.name, span.category.c_str(),
                   span.lane, usSince(span.startNs, origin_ns),
                   static_cast<double>(span.durationNs) / 1e3);
        if (!span.args.empty()) {
            writer.key("args").beginObject();
            for (const auto &[key, value] : span.args)
                writer.key(key).value(value);
            writer.endObject();
        }
        writer.endObject();
    }

    writer.endArray();
    writer.endObject();
    os << '\n';
}

void
writeChromeTrace(std::ostream &os, const GridResult &grid,
                 const EventTracer *tracer)
{
    const std::map<std::uint64_t, unsigned> lanes = laneMap(grid);

    // Cell identity -> lane, for placing tracer timelines.
    std::map<std::string, unsigned> cell_lanes;
    const std::size_t num_traces =
        grid.schemes.empty() ? 0 : grid.schemes[0].perTrace.size();

    JsonWriter writer(os);
    writer.beginObject();
    writer.key("displayTimeUnit").value("ms");
    writer.key("traceEvents").beginArray();

    writeThreadName(writer, 0, "grid");
    for (const auto &[tag, lane] : lanes)
        writeThreadName(writer, lane,
                        "worker " + std::to_string(lane));

    // The grid itself, on its own lane.
    writeSlice(writer, "grid", "grid", 0, 0.0,
               grid.wallSeconds * 1e6);
    writer.key("args").beginObject();
    writer.key("jobs").value(grid.jobs);
    writer.key("cells").value(
        static_cast<std::uint64_t>(grid.cells.size()));
    writer.key("refs").value(grid.totalRefs());
    writer.endObject();
    writer.endObject();

    for (std::size_t s = 0; s < grid.schemes.size(); ++s) {
        for (std::size_t t = 0; t < num_traces; ++t) {
            const std::size_t index = s * num_traces + t;
            const CellTiming &cell = grid.cells[index];
            const SimResult &result = grid.schemes[s].perTrace[t];
            const unsigned lane = lanes.at(cell.threadTag);
            const std::string name =
                cell.scheme + "/" + cell.traceName;
            cell_lanes.emplace(name, lane);
            const double cell_ts =
                usSince(cell.startNs, grid.startNs);

            writeSlice(writer, name, "cell", lane, cell_ts,
                       cell.wallSeconds * 1e6);
            writer.key("args").beginObject();
            writer.key("refs").value(cell.refs);
            writer.key("refs_per_second")
                .value(cell.refsPerSecond());
            writer.endObject();
            writer.endObject();

            // Phase slices, laid out back-to-back inside the cell.
            double phase_ts = cell_ts;
            for (std::size_t p = 0; p < numPhases; ++p) {
                const auto phase = static_cast<Phase>(p);
                const double dur_us =
                    static_cast<double>(result.phases.get(phase))
                    / 1e3;
                if (dur_us <= 0.0)
                    continue;
                writeSlice(writer,
                           std::string("phase:") + toString(phase),
                           "phase", lane, phase_ts, dur_us);
                writer.endObject();
                phase_ts += dur_us;
            }
        }
    }

    if (tracer != nullptr) {
        for (const CellTimeline &timeline : tracer->timelines()) {
            const std::string cell_name =
                timeline.scheme + "/" + timeline.trace;
            const auto it = cell_lanes.find(cell_name);
            const unsigned lane =
                it != cell_lanes.end() ? it->second : 0;
            for (const ProtocolTraceEvent &event : timeline.events) {
                writer.beginObject();
                writer.key("name").value(toString(event.type));
                writer.key("cat").value("protocol");
                writer.key("ph").value("i");
                writer.key("s").value("t");
                writer.key("pid").value(1u);
                writer.key("tid").value(lane);
                writer.key("ts").value(
                    usSince(event.tsNs, grid.startNs));
                writer.key("args").beginObject();
                writer.key("cell").value(cell_name);
                writer.key("ref").value(event.ref);
                writer.key("block").value(event.block);
                writer.key("cache").value(event.cache);
                writer.key("state_before")
                    .value(static_cast<unsigned>(event.stateBefore));
                writer.key("state_after")
                    .value(static_cast<unsigned>(event.stateAfter));
                writer.key("others_before")
                    .value(event.othersBefore);
                writer.key("others_after").value(event.othersAfter);
                writer.endObject();
                writer.endObject();
            }
        }
    }

    writer.endArray();
    writer.endObject();
    os << '\n';
}

void
writeChromeTraceFile(const std::string &path, const GridResult &grid,
                     const EventTracer *tracer)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot open chrome trace file '", path,
            "' for writing");
    writeChromeTrace(out, grid, tracer);
    out.flush();
    fatalIf(!out, "failed writing chrome trace file '", path, "'");
}

} // namespace dirsim
