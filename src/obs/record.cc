#include "obs/record.hh"

#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace dirsim
{

namespace
{

/** Derive the snake_case key from the Table 4 legend string. */
std::string
sanitizeEventName(const char *legend)
{
    std::string key;
    for (const char *p = legend; *p != '\0'; ++p) {
        if (*p == '(')
            break; // drop the "(rm)" / "(wh)" / "(wm)" shorthands
        key += *p == '-' ? '_' : *p;
    }
    return key;
}

const std::vector<std::string> &
eventKeys()
{
    static const std::vector<std::string> keys = [] {
        std::vector<std::string> out;
        out.reserve(numEventTypes);
        for (std::size_t e = 0; e < numEventTypes; ++e)
            out.push_back(sanitizeEventName(
                toString(static_cast<EventType>(e))));
        return out;
    }();
    return keys;
}

/** Append both paper bus-model breakdowns under "costs". */
void
writeCosts(JsonWriter &writer, const CellRecord &record)
{
    const auto one = [&](const char *name, const BusCosts &costs) {
        const CycleBreakdown b = record.cost(costs);
        writer.key(name).beginObject();
        writer.key("dir_access").value(b.dirAccess);
        writer.key("invalidate").value(b.invalidate);
        writer.key("write_back").value(b.writeBack);
        writer.key("mem_access").value(b.memAccess);
        writer.key("wt_or_wup").value(b.writeThroughOrUpdate);
        writer.key("total").value(b.total());
        writer.key("transactions").value(b.transactions);
        writer.endObject();
    };
    writer.key("costs").beginObject();
    one("pipelined", paperPipelinedCosts());
    one("non_pipelined", paperNonPipelinedCosts());
    writer.endObject();
}

} // namespace

const std::string &
eventKey(EventType event)
{
    return eventKeys()[static_cast<std::size_t>(event)];
}

const std::vector<std::pair<const char *, std::uint64_t OpCounts::*>> &
opFields()
{
    static const std::vector<
        std::pair<const char *, std::uint64_t OpCounts::*>>
        fields = {
            {"mem_supplies", &OpCounts::memSupplies},
            {"cache_supplies", &OpCounts::cacheSupplies},
            {"dirty_supplies", &OpCounts::dirtySupplies},
            {"inval_msgs", &OpCounts::invalMsgs},
            {"broadcast_invals", &OpCounts::broadcastInvals},
            {"dir_checks", &OpCounts::dirChecks},
            {"write_throughs", &OpCounts::writeThroughs},
            {"write_updates", &OpCounts::writeUpdates},
            {"overflow_invals", &OpCounts::overflowInvals},
            {"eviction_write_backs", &OpCounts::evictionWriteBacks},
            {"bus_transactions", &OpCounts::busTransactions},
        };
    return fields;
}

CycleBreakdown
CellRecord::cost(const BusCosts &costs) const
{
    return costFromOps(ops, totalRefs, costs, {});
}

SimResult
CellRecord::toSimResult() const
{
    SimResult result;
    result.scheme = scheme;
    result.traceName = trace;
    result.numCaches = numCaches;
    result.totalRefs = totalRefs;
    result.events = events;
    result.ops = ops;
    result.cleanWriteHolders = cleanWriteHolders;
    result.phases = phases;
    return result;
}

CellRecord
CellRecord::fromCell(const SimResult &result, const CellTiming &timing,
                     std::string trace_path)
{
    CellRecord record;
    record.scheme = result.scheme;
    record.trace = result.traceName;
    record.tracePath = std::move(trace_path);
    record.numCaches = result.numCaches;
    record.totalRefs = result.totalRefs;
    record.events = result.events;
    record.ops = result.ops;
    record.cleanWriteHolders = result.cleanWriteHolders;
    record.wallSeconds = timing.wallSeconds;
    record.phases = result.phases;
    return record;
}

void
CellRecord::writeJson(JsonWriter &writer) const
{
    writer.beginObject();
    writer.key("kind").value("cell");
    writer.key("scheme").value(scheme);
    writer.key("trace").value(trace);
    if (tracePath.empty())
        writer.key("trace_path").null();
    else
        writer.key("trace_path").value(tracePath);
    writer.key("caches").value(numCaches);
    writer.key("total_refs").value(totalRefs);

    writer.key("events").beginObject();
    for (std::size_t e = 0; e < numEventTypes; ++e) {
        const auto event = static_cast<EventType>(e);
        writer.key(eventKey(event)).value(events.count(event));
    }
    writer.endObject();

    writer.key("ops").beginObject();
    for (const auto &[name, member] : opFields())
        writer.key(name).value(ops.*member);
    writer.endObject();

    writer.key("clean_write_holders").beginArray();
    for (const std::uint64_t count : cleanWriteHolders.buckets())
        writer.value(count);
    writer.endArray();

    writer.key("wall_seconds").value(wallSeconds);
    writer.key("refs_per_second").value(refsPerSecond());

    writer.key("phases_ns").beginObject();
    for (std::size_t p = 0; p < numPhases; ++p) {
        const auto phase = static_cast<Phase>(p);
        writer.key(toString(phase)).value(phases.get(phase));
    }
    writer.endObject();

    writeCosts(writer, *this);
    writer.endObject();
}

CellRecord
CellRecord::fromJson(const JsonValue &json)
{
    fatalIf(!json.isObject(), "cell record is not a JSON object");
    CellRecord record;
    record.scheme = json.at("scheme").asString();
    record.trace = json.at("trace").asString();
    const JsonValue &path = json.at("trace_path");
    if (!path.isNull())
        record.tracePath = path.asString();
    record.numCaches =
        static_cast<unsigned>(json.at("caches").asU64());
    record.totalRefs = json.at("total_refs").asU64();

    const JsonValue &events = json.at("events");
    for (std::size_t e = 0; e < numEventTypes; ++e) {
        const auto event = static_cast<EventType>(e);
        record.events.add(event,
                          events.at(eventKey(event)).asU64());
    }

    const JsonValue &ops = json.at("ops");
    for (const auto &[name, member] : opFields())
        record.ops.*member = ops.at(name).asU64();

    const JsonValue &holders = json.at("clean_write_holders");
    fatalIf(!holders.isArray(),
            "clean_write_holders is not an array");
    for (std::size_t v = 0; v < holders.size(); ++v)
        record.cleanWriteHolders.add(v, holders.at(v).asU64());

    record.wallSeconds = json.at("wall_seconds").asDouble();
    const JsonValue &phases = json.at("phases_ns");
    for (std::size_t p = 0; p < numPhases; ++p) {
        const auto phase = static_cast<Phase>(p);
        record.phases.add(phase,
                          phases.at(toString(phase)).asU64());
    }
    return record;
}

const std::vector<std::string> &
CellRecord::csvHeader()
{
    static const std::vector<std::string> header = [] {
        std::vector<std::string> out{"scheme", "trace", "trace_path",
                                     "caches", "total_refs"};
        for (std::size_t e = 0; e < numEventTypes; ++e)
            out.push_back(
                "events." + eventKey(static_cast<EventType>(e)));
        for (const auto &[name, member] : opFields())
            out.push_back(std::string("ops.") + name);
        out.push_back("clean_write_holders");
        out.push_back("wall_seconds");
        out.push_back("refs_per_second");
        for (std::size_t p = 0; p < numPhases; ++p)
            out.push_back(std::string("phase_ns.")
                          + toString(static_cast<Phase>(p)));
        out.push_back("pipelined_total");
        out.push_back("non_pipelined_total");
        out.push_back("transactions_per_ref");
        return out;
    }();
    return header;
}

std::vector<std::string>
CellRecord::csvRow() const
{
    std::vector<std::string> row{scheme, trace, tracePath,
                                 std::to_string(numCaches),
                                 std::to_string(totalRefs)};
    for (std::size_t e = 0; e < numEventTypes; ++e)
        row.push_back(std::to_string(
            events.count(static_cast<EventType>(e))));
    for (const auto &[name, member] : opFields())
        row.push_back(std::to_string(ops.*member));

    // Histogram buckets as "c0;c1;...", dense from zero.
    std::ostringstream holders;
    const auto &buckets = cleanWriteHolders.buckets();
    for (std::size_t v = 0; v < buckets.size(); ++v) {
        if (v > 0)
            holders << ';';
        holders << buckets[v];
    }
    row.push_back(holders.str());

    row.push_back(TextTable::fixed(wallSeconds, 6));
    row.push_back(TextTable::fixed(refsPerSecond(), 1));
    for (std::size_t p = 0; p < numPhases; ++p)
        row.push_back(
            std::to_string(phases.get(static_cast<Phase>(p))));
    const CycleBreakdown pipe = cost(paperPipelinedCosts());
    row.push_back(TextTable::fixed(pipe.total(), 6));
    row.push_back(
        TextTable::fixed(cost(paperNonPipelinedCosts()).total(), 6));
    row.push_back(TextTable::fixed(pipe.transactions, 6));
    return row;
}

std::vector<SchemeResults>
toSchemeResults(const std::vector<CellRecord> &records)
{
    std::vector<SchemeResults> grid;
    for (const CellRecord &record : records) {
        SchemeResults *slot = nullptr;
        for (auto &scheme : grid) {
            if (scheme.scheme == record.scheme) {
                slot = &scheme;
                break;
            }
        }
        if (slot == nullptr) {
            grid.emplace_back();
            slot = &grid.back();
            slot->scheme = record.scheme;
        }
        slot->perTrace.push_back(record.toSimResult());
    }
    return grid;
}

} // namespace dirsim
