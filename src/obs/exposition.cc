#include "obs/exposition.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "obs/histogram.hh"
#include "obs/metrics.hh"

namespace dirsim
{

namespace
{

bool
validNameStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || c == '_' || c == ':';
}

bool
validNameChar(char c)
{
    return validNameStart(c) || (c >= '0' && c <= '9');
}

bool
validLabelStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || c == '_';
}

bool
validLabelChar(char c)
{
    return validLabelStart(c) || (c >= '0' && c <= '9');
}

/** Shortest clean spelling of a sample value: integers verbatim,
 *  doubles via %g round-trip, infinities as +Inf/-Inf. */
std::string
formatValue(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    if (value == static_cast<double>(static_cast<std::int64_t>(value))
        && std::fabs(value) < 9.0e15) {
        return std::to_string(static_cast<std::int64_t>(value));
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

void
writeLabels(std::ostream &os, const std::vector<PromLabel> &labels)
{
    if (labels.empty())
        return;
    os << '{';
    bool first = true;
    for (const PromLabel &label : labels) {
        if (!first)
            os << ',';
        first = false;
        os << label.name << "=\"" << promEscapeLabelValue(label.value)
           << '"';
    }
    os << '}';
}

} // namespace

std::string
promMetricName(std::string_view name)
{
    if (name.empty())
        return "_";
    std::string sanitized;
    sanitized.reserve(name.size() + 1);
    for (const char c : name)
        sanitized.push_back(validNameChar(c) ? c : '_');
    // A leading digit survives the per-character pass (digits are
    // valid *continuation* characters) but cannot start a name.
    if (sanitized[0] >= '0' && sanitized[0] <= '9')
        sanitized.insert(sanitized.begin(), '_');
    return sanitized;
}

std::string
promEscapeLabelValue(std::string_view value)
{
    std::string escaped;
    escaped.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\':
            escaped += "\\\\";
            break;
          case '"':
            escaped += "\\\"";
            break;
          case '\n':
            escaped += "\\n";
            break;
          default:
            escaped.push_back(c);
        }
    }
    return escaped;
}

void
PromWriter::help(const std::string &name, std::string_view text)
{
    os << "# HELP " << name << ' ';
    for (const char c : text) {
        if (c == '\\')
            os << "\\\\";
        else if (c == '\n')
            os << "\\n";
        else
            os << c;
    }
    os << '\n';
}

void
PromWriter::type(const std::string &name, const char *type_name)
{
    os << "# TYPE " << name << ' ' << type_name << '\n';
}

void
PromWriter::sample(const std::string &name,
                   const std::vector<PromLabel> &labels, double value)
{
    os << name;
    writeLabels(os, labels);
    os << ' ' << formatValue(value) << '\n';
}

void
PromWriter::sample(const std::string &name,
                   const std::vector<PromLabel> &labels,
                   std::uint64_t value)
{
    os << name;
    writeLabels(os, labels);
    os << ' ' << value << '\n';
}

void
PromWriter::histogram(const std::string &name,
                      const std::vector<PromLabel> &labels,
                      const FixedHistogram &hist,
                      const std::vector<double> &upper_bounds,
                      double sum)
{
    fatalIf(upper_bounds.size() != hist.bucketCount(),
            "histogram '", name, "' has ", hist.bucketCount(),
            " buckets but ", upper_bounds.size(), " upper bounds");
    for (std::size_t i = 1; i < upper_bounds.size(); ++i)
        fatalIf(upper_bounds[i] <= upper_bounds[i - 1],
                "histogram '", name,
                "' upper bounds are not strictly increasing");

    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bucketCount(); ++i) {
        cumulative += hist.count(i);
        std::vector<PromLabel> bucket_labels = labels;
        bucket_labels.push_back(
            {"le", formatValue(upper_bounds[i])});
        sample(name + "_bucket", bucket_labels, cumulative);
    }
    std::vector<PromLabel> inf_labels = labels;
    inf_labels.push_back({"le", "+Inf"});
    sample(name + "_bucket", inf_labels, hist.samples());
    sample(name + "_sum", labels, sum);
    sample(name + "_count", labels, hist.samples());
}

void
writePrometheus(std::ostream &os, const MetricRegistry &registry,
                const std::string &prefix)
{
    PromWriter writer(os);
    std::set<std::string> families;

    for (const auto &[name, metric] : registry) {
        const std::string family = promMetricName(
            prefix.empty() ? name : prefix + "." + name);
        if (!families.insert(family).second) {
            // Two dotted names collapsed onto one exposition family;
            // keeping both would emit duplicate samples. Keep the
            // first, note the loss.
            os << "# skipped colliding metric " << family << '\n';
            continue;
        }
        switch (metric.kind) {
          case MetricKind::Counter:
            writer.type(family, "counter");
            writer.sample(family, {}, metric.counter);
            break;
          case MetricKind::Gauge:
            writer.type(family, "gauge");
            writer.sample(family, {}, metric.gauge);
            break;
          case MetricKind::Timer:
            writer.type(family, "summary");
            writer.sample(family + "_count", {}, metric.timer.count);
            writer.sample(family + "_sum", {}, metric.timer.sum);
            families.insert(family + "_min");
            families.insert(family + "_max");
            writer.type(family + "_min", "gauge");
            writer.sample(family + "_min", {}, metric.timer.min);
            writer.type(family + "_max", "gauge");
            writer.sample(family + "_max", {}, metric.timer.max);
            break;
        }
    }
}

namespace
{

/** Parsed pieces of one sample line. */
struct ParsedSample
{
    std::string name;
    std::vector<PromLabel> labels;
    double value = 0.0;
    bool ok = false;
};

/** Parse "name{k="v",...} value [ts]"; fills @p problems on error. */
ParsedSample
parseSampleLine(const std::string &line, std::size_t line_number,
                std::vector<std::string> &problems)
{
    const auto problem = [&](const std::string &what) {
        problems.push_back("line " + std::to_string(line_number)
                           + ": " + what);
        return ParsedSample{};
    };

    std::size_t pos = 0;
    ParsedSample sample;
    if (pos >= line.size() || !validNameStart(line[pos]))
        return problem("sample does not start with a metric name");
    while (pos < line.size() && validNameChar(line[pos]))
        sample.name.push_back(line[pos++]);

    if (pos < line.size() && line[pos] == '{') {
        ++pos;
        while (pos < line.size() && line[pos] != '}') {
            PromLabel label;
            if (!validLabelStart(line[pos]))
                return problem("bad label name start in '" + line
                               + "'");
            while (pos < line.size() && validLabelChar(line[pos]))
                label.name.push_back(line[pos++]);
            if (pos >= line.size() || line[pos] != '=')
                return problem("label missing '='");
            ++pos;
            if (pos >= line.size() || line[pos] != '"')
                return problem("label value is not quoted");
            ++pos;
            while (pos < line.size() && line[pos] != '"') {
                if (line[pos] == '\\') {
                    ++pos;
                    if (pos >= line.size())
                        return problem("dangling escape in label");
                    if (line[pos] != '\\' && line[pos] != '"'
                        && line[pos] != 'n')
                        return problem("bad escape '\\"
                                       + std::string(1, line[pos])
                                       + "' in label value");
                }
                label.value.push_back(line[pos++]);
            }
            if (pos >= line.size())
                return problem("unterminated label value");
            ++pos; // closing quote
            sample.labels.push_back(std::move(label));
            if (pos < line.size() && line[pos] == ',')
                ++pos;
            else if (pos < line.size() && line[pos] != '}')
                return problem("expected ',' or '}' in labels");
        }
        if (pos >= line.size())
            return problem("unterminated label set");
        ++pos; // '}'
    }

    if (pos >= line.size() || line[pos] != ' ')
        return problem("missing space before sample value");
    ++pos;
    const std::size_t value_end = line.find(' ', pos);
    const std::string value_text = line.substr(
        pos, value_end == std::string::npos ? std::string::npos
                                            : value_end - pos);
    if (value_text == "+Inf" || value_text == "Inf") {
        sample.value = std::numeric_limits<double>::infinity();
    } else if (value_text == "-Inf") {
        sample.value = -std::numeric_limits<double>::infinity();
    } else if (value_text == "NaN") {
        sample.value = std::numeric_limits<double>::quiet_NaN();
    } else {
        std::size_t consumed = 0;
        try {
            sample.value = std::stod(value_text, &consumed);
        } catch (const std::exception &) {
            return problem("unparseable sample value '" + value_text
                           + "'");
        }
        if (consumed != value_text.size())
            return problem("trailing junk in sample value '"
                           + value_text + "'");
    }
    if (value_end != std::string::npos) {
        // Optional timestamp: must be an integer.
        const std::string ts = line.substr(value_end + 1);
        if (ts.empty()
            || ts.find_first_not_of("-0123456789")
                != std::string::npos)
            return problem("bad sample timestamp '" + ts + "'");
    }
    sample.ok = true;
    return sample;
}

/** The family a sample belongs to, stripping a known suffix. */
std::string
familyOf(const std::string &sample_name,
         const std::set<std::string> &declared)
{
    if (declared.contains(sample_name))
        return sample_name;
    for (const char *suffix :
         {"_bucket", "_count", "_sum", "_total"}) {
        const std::string_view sv(suffix);
        if (sample_name.size() > sv.size()
            && sample_name.ends_with(sv)) {
            const std::string base = sample_name.substr(
                0, sample_name.size() - sv.size());
            if (declared.contains(base))
                return base;
        }
    }
    return {};
}

} // namespace

std::vector<std::string>
lintPrometheusText(const std::string &text)
{
    std::vector<std::string> problems;
    const auto problem = [&](std::size_t line_number,
                             const std::string &what) {
        problems.push_back("line " + std::to_string(line_number)
                           + ": " + what);
    };

    std::map<std::string, std::string> family_types;
    std::set<std::string> declared;
    std::set<std::string> families_with_samples;
    std::set<std::string> seen_samples; ///< name + rendered labels

    // Histogram bookkeeping: per family, the ordered (le, cumulative
    // count) buckets and the _count sample, checked at the end.
    struct HistState
    {
        std::vector<std::pair<double, double>> buckets;
        double count = 0.0;
        bool hasCount = false;
    };
    std::map<std::string, HistState> histograms;

    std::istringstream in(text);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream comment(line);
            std::string hash, keyword, name, rest;
            comment >> hash >> keyword;
            if (keyword != "TYPE" && keyword != "HELP")
                continue; // plain comment
            comment >> name;
            if (name.empty()) {
                problem(line_number,
                        "# " + keyword + " without a metric name");
                continue;
            }
            if (keyword == "TYPE") {
                std::string type_name;
                comment >> type_name;
                static const std::set<std::string> known{
                    "counter", "gauge", "histogram", "summary",
                    "untyped"};
                if (!known.contains(type_name)) {
                    problem(line_number, "unknown TYPE '" + type_name
                                             + "' for " + name);
                    continue;
                }
                if (family_types.contains(name)) {
                    problem(line_number,
                            "duplicate TYPE for family " + name);
                    continue;
                }
                if (families_with_samples.contains(name))
                    problem(line_number, "TYPE for " + name
                                             + " after its samples");
                family_types.emplace(name, type_name);
                declared.insert(name);
            }
            continue;
        }

        const ParsedSample sample =
            parseSampleLine(line, line_number, problems);
        if (!sample.ok)
            continue;

        for (std::size_t i = 0; i < sample.labels.size(); ++i) {
            for (std::size_t j = i + 1; j < sample.labels.size();
                 ++j) {
                if (sample.labels[i].name == sample.labels[j].name)
                    problem(line_number, "duplicate label '"
                                             + sample.labels[i].name
                                             + "'");
            }
        }

        std::string identity = sample.name;
        {
            // Label order must not distinguish samples.
            std::map<std::string, std::string> sorted;
            for (const PromLabel &label : sample.labels)
                sorted.emplace(label.name, label.value);
            for (const auto &[k, v] : sorted)
                identity += "|" + k + "=" + v;
        }
        if (!seen_samples.insert(identity).second)
            problem(line_number,
                    "duplicate sample " + sample.name);

        const std::string family = familyOf(sample.name, declared);
        if (!family.empty()) {
            families_with_samples.insert(family);
            // The suffix must fit the family's declared type:
            // "foo_sum" under a gauge family "foo" is a stray.
            const std::string suffix =
                sample.name.substr(family.size());
            const std::string &type_name = family_types.at(family);
            const bool suffix_ok = suffix.empty()
                || (type_name == "counter" && suffix == "_total")
                || (type_name == "histogram"
                    && (suffix == "_bucket" || suffix == "_sum"
                        || suffix == "_count"))
                || (type_name == "summary"
                    && (suffix == "_sum" || suffix == "_count"));
            if (!suffix_ok)
                problem(line_number, "sample " + sample.name
                                         + " has suffix '" + suffix
                                         + "' invalid for "
                                         + type_name + " family "
                                         + family);
        }

        if (!family.empty()
            && family_types.at(family) == "histogram") {
            HistState &hist = histograms[family];
            if (sample.name == family + "_bucket") {
                double le = 0.0;
                bool has_le = false;
                for (const PromLabel &label : sample.labels) {
                    if (label.name != "le")
                        continue;
                    has_le = true;
                    le = label.value == "+Inf"
                        ? std::numeric_limits<double>::infinity()
                        : std::strtod(label.value.c_str(), nullptr);
                }
                if (!has_le)
                    problem(line_number, "histogram bucket of "
                                             + family
                                             + " lacks an le label");
                else
                    hist.buckets.emplace_back(le, sample.value);
            } else if (sample.name == family + "_count") {
                hist.count = sample.value;
                hist.hasCount = true;
            }
        }
    }

    for (const auto &[family, hist] : histograms) {
        if (hist.buckets.empty()) {
            problems.push_back("histogram " + family
                               + " has no buckets");
            continue;
        }
        for (std::size_t i = 1; i < hist.buckets.size(); ++i) {
            if (hist.buckets[i].first <= hist.buckets[i - 1].first)
                problems.push_back("histogram " + family
                                   + " le bounds not increasing");
            if (hist.buckets[i].second < hist.buckets[i - 1].second)
                problems.push_back(
                    "histogram " + family
                    + " buckets are not cumulative (le="
                    + formatValue(hist.buckets[i].first) + ")");
        }
        const auto &last = hist.buckets.back();
        if (!std::isinf(last.first))
            problems.push_back("histogram " + family
                               + " lacks an le=\"+Inf\" bucket");
        else if (hist.hasCount && last.second != hist.count)
            problems.push_back("histogram " + family
                               + " +Inf bucket disagrees with _count");
        if (!hist.hasCount)
            problems.push_back("histogram " + family
                               + " lacks a _count sample");
    }

    return problems;
}

} // namespace dirsim
