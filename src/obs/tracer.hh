/**
 * @file
 * EventTracer: the production ProtocolTraceSink.
 *
 * A tracer owns the merged per-run view; each (scheme, trace) grid
 * cell gets its own CellTraceSession, which is what actually plugs
 * into the protocol (SimConfig::traceSink). A session is touched by
 * exactly one worker thread for the lifetime of its cell — it owns a
 * private bounded ring buffer and private distribution histograms,
 * so the simulation hot path takes no locks; the tracer's mutex is
 * taken only at session open and close (merge). That is what keeps
 * the per-thread ring buffers ThreadSanitizer-clean under the
 * parallel runner.
 *
 * Volume control is layered:
 *  - compile time: DIRSIM_NO_TRACER removes the protocol hook
 *    entirely (CMake option DIRSIM_TRACER=OFF);
 *  - run time: TracerConfig::samplePeriod (DIRSIM_TRACE_SAMPLE)
 *    thins the *timeline* — only every Nth reference produces a full
 *    ProtocolTraceEvent. The distribution histograms are fed from
 *    the unsampled callbacks, so they are exact at every sampling
 *    period whenever a session is attached at all;
 *  - space: the ring keeps the most recent ringCapacity events per
 *    cell (DIRSIM_TRACE_RING) and counts what it dropped.
 */

#ifndef DIRSIM_OBS_TRACER_HH
#define DIRSIM_OBS_TRACER_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/histogram.hh"
#include "protocols/events.hh"

namespace dirsim
{

class MetricRegistry;

/** Tracer knobs. */
struct TracerConfig
{
    /**
     * Timeline sampling period: 1 records every data reference, N
     * every Nth, 0 (the default) disables the tracer entirely — no
     * sessions should be created and no per-reference work happens.
     */
    unsigned samplePeriod = 0;

    /** Ring capacity: most-recent events kept per cell session. */
    std::size_t ringCapacity = 4096;

    /** True when tracing should be wired up at all. */
    bool enabled() const { return samplePeriod != 0; }

    /** Apply DIRSIM_TRACE_SAMPLE / DIRSIM_TRACE_RING overrides. */
    static TracerConfig fromEnvironment();
};

/** One cell's sampled timeline, as merged into the tracer. */
struct CellTimeline
{
    std::string scheme;
    std::string trace;
    /** Sampled events in emission order (ring survivors). */
    std::vector<ProtocolTraceEvent> events;
    /** Events the bounded ring had to discard (oldest first). */
    std::uint64_t dropped = 0;
};

/**
 * The per-run event tracer.
 *
 * Thread-safe for session() / close from concurrent workers; the
 * accessors are meant to be called after the grid (all sessions
 * closed).
 */
class EventTracer
{
  public:
    class Session;

    explicit EventTracer(TracerConfig config_arg = {});
    ~EventTracer();

    EventTracer(const EventTracer &) = delete;
    EventTracer &operator=(const EventTracer &) = delete;

    /**
     * Open a session for one grid cell. The returned session is the
     * ProtocolTraceSink to attach (SimConfig::traceSink); destroying
     * it (or calling finish()) merges its data into this tracer.
     *
     * @param block_filter when set, only timeline events touching
     *        this block are kept (histograms still see everything)
     */
    std::unique_ptr<Session> session(
        std::string scheme, std::string trace,
        std::optional<BlockNum> block_filter = std::nullopt);

    const TracerConfig &config() const { return tracerConfig; }

    /** Figure 1: other holders invalidated on clean-block writes. */
    const FixedHistogram &invalidations() const { return invalHist; }

    /** Holder-set size (writer included) at those same writes. */
    const FixedHistogram &sharerSetSizes() const { return sharerHist; }

    /** Lengths of uninterrupted single-writer runs per block. */
    const FixedHistogram &writeRunLengths() const { return runHist; }

    /** Timeline events emitted across all sessions (kept+dropped). */
    std::uint64_t emittedEvents() const { return emitted; }

    /** Timeline events discarded by the bounded rings. */
    std::uint64_t droppedEvents() const { return droppedTotal; }

    /** Per-cell timelines in session-close order. */
    const std::vector<CellTimeline> &timelines() const
    {
        return cellTimelines;
    }

    /**
     * Export the distributions and volume counters into @p metrics
     * under "trace.": trace.dist.<name>.{samples,overflow,<k>}
     * counters for each histogram plus trace.events.{emitted,kept,
     * dropped} — the shape dirsim_report re-renders Figure 1 from.
     */
    void exportMetrics(MetricRegistry &metrics) const;

  private:
    friend class Session;

    void absorb(Session &session);

    TracerConfig tracerConfig;
    mutable std::mutex mutex;
    FixedHistogram invalHist{traceDistBuckets};
    FixedHistogram sharerHist{traceDistBuckets};
    FixedHistogram runHist{traceDistBuckets};
    std::vector<CellTimeline> cellTimelines;
    std::uint64_t emitted = 0;
    std::uint64_t droppedTotal = 0;
};

/**
 * The per-cell sink (see EventTracer). Single-threaded by contract:
 * exactly one worker drives it between open and close.
 */
class EventTracer::Session : public ProtocolTraceSink
{
  public:
    ~Session() override;

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    unsigned samplePeriod() const override
    {
        return owner->tracerConfig.samplePeriod;
    }

    void emit(const ProtocolTraceEvent &event) override;
    void cleanWriteSample(unsigned num_others) override;
    void dataRef(BlockNum block, CacheId cache,
                 bool is_write) override;

    /** Merge into the tracer now (idempotent; destructor calls it). */
    void finish();

  private:
    friend class EventTracer;

    Session(EventTracer *owner_arg, std::string scheme_arg,
            std::string trace_arg,
            std::optional<BlockNum> filter_arg);

    /** An in-progress single-writer run on one block. */
    struct WriteRun
    {
        CacheId writer = invalidCacheId;
        std::uint64_t length = 0;
    };

    EventTracer *owner;
    std::string scheme;
    std::string trace;
    std::optional<BlockNum> blockFilter;

    /** Bounded ring: the most recent ringCapacity events. */
    std::vector<ProtocolTraceEvent> ring;
    std::size_t ringHead = 0;
    std::uint64_t ringSeen = 0;
    std::uint64_t ringDropped = 0;

    FixedHistogram invalHist{traceDistBuckets};
    FixedHistogram sharerHist{traceDistBuckets};
    FixedHistogram runHist{traceDistBuckets};
    std::unordered_map<BlockNum, WriteRun> openRuns;
    bool finished = false;
};

} // namespace dirsim

#endif // DIRSIM_OBS_TRACER_HH
