/**
 * @file
 * CellRecord: the structured artifact of one (scheme, trace) grid
 * cell.
 *
 * A record carries everything a SimResult holds — the full event
 * vector, the concrete operation counts, the Figure 1 histogram —
 * plus execution metadata (wall time, throughput, phase breakdown,
 * trace provenance path). Because the payload is the raw integer
 * counters rather than derived floats, a record round-trips through
 * JSON losslessly and every paper table can be re-rendered from it
 * bit-identically to the in-process report.hh output (asserted by
 * tests/sim/report_parity_test.cc).
 */

#ifndef DIRSIM_OBS_RECORD_HH
#define DIRSIM_OBS_RECORD_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/phase.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

namespace dirsim
{

class JsonWriter;
class JsonValue;

/**
 * Stable snake_case key for an event type, used in JSONL/CSV columns
 * and metric names (e.g. RdMiss -> "rd_miss", WmBlkCln ->
 * "wm_blk_cln").
 */
const std::string &eventKey(EventType event);

/** The OpCounts fields as (key, member pointer) pairs, in a fixed
 *  order shared by the JSON schema, the CSV columns, and the metric
 *  names. */
const std::vector<std::pair<const char *,
                            std::uint64_t OpCounts::*>> &
opFields();

/** One grid cell's results + execution metadata. */
struct CellRecord
{
    std::string scheme;
    std::string trace;
    /** Source file of the trace; empty for in-memory/generated. */
    std::string tracePath;
    unsigned numCaches = 0;
    std::uint64_t totalRefs = 0;

    EventCounts events;
    OpCounts ops;
    Histogram cleanWriteHolders;

    double wallSeconds = 0.0;
    PhaseBreakdown phases;

    double
    refsPerSecond() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(totalRefs) / wallSeconds
            : 0.0;
    }

    /** Ops-based cost under a bus model (same as SimResult::cost). */
    CycleBreakdown cost(const BusCosts &costs) const;

    /** Rebuild the SimResult this record was captured from. */
    SimResult toSimResult() const;

    /** Capture a cell from its result and timing. */
    static CellRecord fromCell(const SimResult &result,
                               const CellTiming &timing,
                               std::string trace_path = {});

    /**
     * Serialize as one JSON object (kind "cell"): identity, raw
     * counters, the Figure 1 histogram buckets, wall/phase times, and
     * — derived for human consumption — the cost breakdown under both
     * paper bus models.
     */
    void writeJson(JsonWriter &writer) const;

    /**
     * Rebuild from writeJson() output. Derived fields (costs,
     * refs/sec) are recomputed from the raw counters, never trusted
     * from the file.
     *
     * @throws UsageError on missing fields or malformed values
     */
    static CellRecord fromJson(const JsonValue &json);

    /** Column names of the CSV schema, in csvRow() order. */
    static const std::vector<std::string> &csvHeader();

    /** This record as one CSV row (same order as csvHeader()). */
    std::vector<std::string> csvRow() const;
};

/**
 * Regroup flat cell records into the per-scheme structure the
 * report.hh tables consume. Scheme order and per-scheme trace order
 * follow first appearance in @p records (which is grid order for
 * sink-written files).
 */
std::vector<SchemeResults> toSchemeResults(
    const std::vector<CellRecord> &records);

} // namespace dirsim

#endif // DIRSIM_OBS_RECORD_HH
