#include "obs/sink.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace dirsim
{

void
ResultsSink::writeMetrics(const MetricRegistry &)
{}

namespace
{

std::unique_ptr<std::ofstream>
openFile(const std::string &path)
{
    auto file = std::make_unique<std::ofstream>(
        path, std::ios::binary | std::ios::trunc);
    fatalIf(!*file, "cannot open '", path, "' for writing");
    return file;
}

} // namespace

JsonlSink::JsonlSink(std::ostream &os_arg) : os(&os_arg) {}

JsonlSink::JsonlSink(const std::string &path_arg)
    : owned(openFile(path_arg)), os(owned.get()), path(path_arg)
{}

std::ostream &
JsonlSink::stream()
{
    fatalIf(finished, "JsonlSink written to after finish()");
    return *os;
}

void
JsonlSink::writeManifest(const RunManifest &manifest)
{
    JsonWriter writer(stream());
    manifest.writeJson(writer);
    stream() << '\n';
}

void
JsonlSink::writeCell(const CellRecord &record)
{
    JsonWriter writer(stream());
    record.writeJson(writer);
    stream() << '\n';
}

void
JsonlSink::writeMetrics(const MetricRegistry &metrics)
{
    JsonWriter writer(stream());
    writer.beginObject();
    writer.key("kind").value("metrics");
    writer.key("metrics");
    metrics.writeJson(writer);
    writer.endObject();
    stream() << '\n';
}

void
JsonlSink::finish()
{
    fatalIf(finished, "JsonlSink::finish() called twice");
    finished = true;
    os->flush();
    fatalIf(os->fail(), "I/O error writing results",
            path.empty() ? std::string()
                         : (" to '" + path + "'"));
}

std::string
csvField(const std::string &value)
{
    const bool needs_quoting =
        value.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return value;
    std::string quoted = "\"";
    for (const char c : value) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

CsvSink::CsvSink(std::ostream &os_arg) : os(&os_arg) {}

CsvSink::CsvSink(const std::string &path_arg)
    : owned(openFile(path_arg)), os(owned.get()), path(path_arg)
{}

std::ostream &
CsvSink::stream()
{
    fatalIf(finished, "CsvSink written to after finish()");
    return *os;
}

void
CsvSink::writeManifest(const RunManifest &manifest)
{
    std::ostream &out = stream();
    out << "# dirsim results, schema " << RunManifest::schemaVersion
        << "\n";
    out << "# started " << manifest.startedAt << ", finished "
        << manifest.finishedAt << ", host " << manifest.host
        << ", jobs " << manifest.jobs << "\n";
    out << "# config: block_bytes=" << manifest.blockBytes
        << " sharing=" << manifest.sharing
        << " warmup_refs=" << manifest.warmupRefs << "\n";
    for (const TraceProvenance &trace : manifest.traces) {
        out << "# trace " << trace.name << ": source=" << trace.source
            << " records=" << trace.records
            << " caches=" << trace.caches;
        if (!trace.path.empty())
            out << " path=" << trace.path;
        if (trace.hasChecksum) {
            char buf[17];
            std::snprintf(buf, sizeof(buf), "%016llx",
                          static_cast<unsigned long long>(
                              trace.checksum));
            out << " fnv64=" << buf;
        }
        out << "\n";
    }
    for (const auto &[name, value] : manifest.env)
        out << "# env " << name << "=" << value << "\n";
}

void
CsvSink::headerRowOnce()
{
    if (wroteHeader)
        return;
    wroteHeader = true;
    std::ostream &out = stream();
    const auto &header = CellRecord::csvHeader();
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i > 0)
            out << ',';
        out << csvField(header[i]);
    }
    out << "\n";
}

void
CsvSink::writeCell(const CellRecord &record)
{
    headerRowOnce();
    std::ostream &out = stream();
    const auto row = record.csvRow();
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (i > 0)
            out << ',';
        out << csvField(row[i]);
    }
    out << "\n";
}

void
CsvSink::finish()
{
    fatalIf(finished, "CsvSink::finish() called twice");
    finished = true;
    os->flush();
    fatalIf(os->fail(), "I/O error writing results",
            path.empty() ? std::string()
                         : (" to '" + path + "'"));
}

} // namespace dirsim
