/**
 * @file
 * MetricRegistry: one hierarchical namespace for every number a run
 * produces.
 *
 * The simulator historically grew three ad-hoc stat containers — the
 * fixed-enum EventCounts/OpCounts, the free-form CounterSet
 * (src/common/stats.hh), and Histogram — each with its own merge and
 * output conventions. MetricRegistry unifies them under dotted
 * hierarchical names ("sim.pops.Dir0B.events.wm_blk_cln",
 * "runner.cell.wall_ms") with three metric types:
 *
 *  - counter: monotonically accumulated u64 (event/op counts)
 *  - gauge:   last-written double (wall seconds, refs/sec, jobs)
 *  - timer:   summary of u64 samples (count/sum/min/max), suitable
 *             for per-cell wall times without dense-histogram memory
 *
 * Metrics iterate in name order for stable output, merge across
 * registries (grid shards, repeated runs), and serialize to JSON for
 * the JSONL sinks (obs/sink.hh).
 */

#ifndef DIRSIM_OBS_METRICS_HH
#define DIRSIM_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/histogram.hh"
#include "common/stats.hh"

namespace dirsim
{

class JsonWriter;
class JsonValue;

/** What a registry entry measures. */
enum class MetricKind
{
    Counter,
    Gauge,
    Timer,
};

/** Human-readable metric kind ("counter", "gauge", "timer"). */
const char *toString(MetricKind kind);

/** Summary statistics of a timer metric's samples. */
struct TimerStats
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;

    double
    mean() const
    {
        return count == 0
            ? 0.0
            : static_cast<double>(sum) / static_cast<double>(count);
    }

    void observe(std::uint64_t sample);
    void merge(const TimerStats &other);

    bool operator==(const TimerStats &) const = default;
};

/** One named metric: its kind plus the kind's payload. */
struct Metric
{
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    TimerStats timer;

    bool operator==(const Metric &) const = default;
};

/**
 * An ordered registry of named metrics.
 *
 * Names are dotted hierarchies: non-empty segments of
 * [A-Za-z0-9_-] joined by '.', e.g. "sim.pops.Dir0B.events.rd_hit".
 * A name is bound to the kind of its first use; re-using it with a
 * different kind throws UsageError (catching, e.g., a counter and a
 * gauge colliding on one name).
 */
class MetricRegistry
{
  public:
    /** Add @p delta to counter @p name, creating it at zero. */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** Set gauge @p name to @p value. */
    void set(const std::string &name, double value);

    /** Record one sample into timer @p name. */
    void observe(const std::string &name, std::uint64_t sample);

    /** Counter value; 0 when absent. @throws UsageError on kind
     *  mismatch */
    std::uint64_t counter(const std::string &name) const;

    /** Gauge value; 0 when absent. @throws UsageError on kind
     *  mismatch */
    double gauge(const std::string &name) const;

    /** Timer summary; empty when absent. @throws UsageError on kind
     *  mismatch */
    TimerStats timer(const std::string &name) const;

    bool has(const std::string &name) const;

    /**
     * Merge another registry: counters add, gauges take the other's
     * value, timers combine their summaries. Merging a registry into
     * itself is a no-op (mirroring CounterSet::merge).
     *
     * @throws UsageError when a shared name has different kinds
     */
    void merge(const MetricRegistry &other);

    /** Import every counter of a CounterSet under @p prefix. */
    void importCounters(const std::string &prefix,
                        const CounterSet &counters);

    /**
     * Import a dense Histogram as counters
     * "<prefix>.<bucket>" (plus "<prefix>.samples").
     */
    void importHistogram(const std::string &prefix,
                         const Histogram &histogram);

    /** Name-ordered iteration. */
    auto begin() const { return entries.begin(); }
    auto end() const { return entries.end(); }
    std::size_t size() const { return entries.size(); }

    /**
     * Serialize as one JSON object: name -> {"kind": ..., value
     * fields}. Stable (name-ordered) output.
     */
    void writeJson(JsonWriter &writer) const;

    /** Rebuild a registry from writeJson() output. */
    static MetricRegistry fromJson(const JsonValue &json);

    /** @throws UsageError unless @p name is a valid metric name */
    static void checkName(const std::string &name);

    /**
     * Make an externally-sourced string (a trace file stem, a scheme
     * label) safe to embed as ONE dotted-name segment: every
     * character outside [A-Za-z0-9_-] — including '.' — becomes '_',
     * and an empty input becomes "_". Without this, a trace named
     * "app.bin" would split into two segments and collide with
     * genuinely nested names.
     */
    static std::string escapeSegment(std::string_view text);

  private:
    Metric &entry(const std::string &name, MetricKind kind);
    const Metric *lookup(const std::string &name,
                         MetricKind kind) const;

    std::map<std::string, Metric> entries;
};

} // namespace dirsim

#endif // DIRSIM_OBS_METRICS_HH
