/**
 * @file
 * Observed experiment runs: execute a grid and persist its structured
 * artifacts (manifest + per-cell records + metrics) to a ResultsSink,
 * and load such artifacts back for reporting, diffing, and
 * regression checks.
 *
 * Records are written after the grid completes, in grid
 * (scheme-major) order, so two runs of the same experiment produce
 * byte-comparable files apart from wall-clock fields. All
 * deterministic metrics (event/op counters, histograms, derived
 * costs) are guaranteed identical run-to-run; diffArtifacts()
 * compares exactly those.
 */

#ifndef DIRSIM_OBS_ARTIFACTS_HH
#define DIRSIM_OBS_ARTIFACTS_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/sink.hh"
#include "sim/runner.hh"

namespace dirsim
{

/**
 * Hook to contribute extra metrics (e.g. an EventTracer's trace.dist
 * histograms) to the run's metrics record. Invoked once, after the
 * grid completes and its own gridMetrics() are in the registry,
 * right before the registry is written to the sink.
 */
using ExtraMetricsFn = std::function<void(MetricRegistry &)>;

/**
 * Run every scheme on every trace *file* (streaming, bounded memory —
 * see ExperimentRunner::runFiles) and write the run's artifacts to
 * @p sink: a manifest with file provenance (record counts, cache
 * counts, whole-file FNV-1a checksums), one record per cell, and a
 * MetricRegistry snapshot.
 */
GridResult runFilesWithArtifacts(
    const ExperimentRunner &runner,
    const std::vector<SchemeSpec> &schemes,
    const std::vector<std::string> &tracePaths, const SimConfig &sim,
    ResultsSink &sink, const ExtraMetricsFn &extraMetrics = {});

/** Name-based convenience for runFilesWithArtifacts(). */
GridResult runFilesWithArtifacts(
    const ExperimentRunner &runner,
    const std::vector<std::string> &schemes,
    const std::vector<std::string> &tracePaths, const SimConfig &sim,
    ResultsSink &sink, const ExtraMetricsFn &extraMetrics = {});

/** In-memory variant: traces are recorded with source "memory" and
 *  no path/checksum provenance. */
GridResult runWithArtifacts(const ExperimentRunner &runner,
                            const std::vector<SchemeSpec> &schemes,
                            const std::vector<Trace> &traces,
                            const SimConfig &sim, ResultsSink &sink,
                            const ExtraMetricsFn &extraMetrics = {});

/** Name-based convenience for runWithArtifacts(). */
GridResult runWithArtifacts(const ExperimentRunner &runner,
                            const std::vector<std::string> &schemes,
                            const std::vector<Trace> &traces,
                            const SimConfig &sim, ResultsSink &sink,
                            const ExtraMetricsFn &extraMetrics = {});

/** A results file, loaded. */
struct RunArtifacts
{
    RunManifest manifest;
    bool hasManifest = false;
    std::vector<CellRecord> cells;
    MetricRegistry metrics;
    bool hasMetrics = false;
};

/**
 * Parse a JSONL results stream: "manifest", "cell", and "metrics"
 * lines in any order (unknown kinds are skipped so the schema can
 * grow). The first manifest/metrics line wins; every cell line is
 * kept.
 *
 * @throws UsageError on malformed JSON or records (message carries
 *         the line number)
 */
RunArtifacts loadArtifacts(std::istream &in);

/** loadArtifacts() from a file. @throws UsageError when unreadable */
RunArtifacts loadArtifacts(const std::string &path);

/**
 * Build the unified metric view of a finished grid:
 *   sim.<trace>.<scheme>.refs / .events.<event> / .ops.<op>  counters
 *   runner.cell.wall_ms                                      timer
 *   runner.cell.phase.<phase>_ns                             timers
 *   runner.grid.{wall_seconds,refs_per_second,jobs,cells}    gauges
 */
MetricRegistry gridMetrics(const GridResult &grid);

/** One deterministic-metric difference between two runs' cells. */
struct MetricDelta
{
    std::string cell;   ///< "<scheme>/<trace>", or "" for run-level
    std::string metric; ///< field name, e.g. "events.wm_blk_cln"
    std::string a;      ///< value in the first run ("-" if absent)
    std::string b;      ///< value in the second run ("-" if absent)
};

/**
 * Cell-by-cell comparison of two runs over their deterministic
 * metrics: cell presence, refs, cache counts, every event and op
 * counter, the Figure 1 histogram, and the derived costs under both
 * paper bus models. Wall-clock fields are ignored — two identical
 * runs always diff clean.
 */
std::vector<MetricDelta> diffArtifacts(const RunArtifacts &a,
                                       const RunArtifacts &b);

} // namespace dirsim

#endif // DIRSIM_OBS_ARTIFACTS_HH
