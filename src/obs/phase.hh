/**
 * @file
 * Cheap phase timers for the simulation pipeline.
 *
 * A run decomposes into four phases — Read (trace scanning/opening),
 * Warmup (references inside the measurement warm-up window), Simulate
 * (the measured simulation loop), Reduce (assembling the SimResult) —
 * and PhaseBreakdown accumulates nanoseconds per phase. Timing is
 * taken at phase *boundaries* only (a handful of clock reads per grid
 * cell, never per record), so the overhead is unmeasurable next to
 * the simulation itself; PhaseTimer additionally skips the clock
 * entirely when constructed with a null target.
 *
 * This header is intentionally header-only and free of dependencies
 * on the rest of src/obs: sim/simulator.hh embeds a PhaseBreakdown in
 * SimResult without linking the dirsim_obs library.
 */

#ifndef DIRSIM_OBS_PHASE_HH
#define DIRSIM_OBS_PHASE_HH

#include <array>
#include <chrono>
#include <cstdint>

namespace dirsim
{

/** Pipeline phases of one (scheme, trace) cell. */
enum class Phase : unsigned
{
    Read = 0, ///< trace-file scanning, opening, provenance work
    Warmup,   ///< references inside SimConfig::warmupRefs
    Simulate, ///< the measured simulation loop
    Reduce,   ///< result assembly (snapshots, subtraction)
};

inline constexpr std::size_t numPhases = 4;

/** Lower-case phase name ("read", "warmup", "simulate", "reduce"). */
inline const char *
toString(Phase phase)
{
    switch (phase) {
      case Phase::Read:
        return "read";
      case Phase::Warmup:
        return "warmup";
      case Phase::Simulate:
        return "simulate";
      case Phase::Reduce:
        return "reduce";
    }
    return "?";
}

/** Nanoseconds accumulated per phase. */
struct PhaseBreakdown
{
    std::array<std::uint64_t, numPhases> ns{};

    void
    add(Phase phase, std::uint64_t delta)
    {
        ns[static_cast<std::size_t>(phase)] += delta;
    }

    std::uint64_t
    get(Phase phase) const
    {
        return ns[static_cast<std::size_t>(phase)];
    }

    /** Sum over all phases. */
    std::uint64_t
    totalNs() const
    {
        std::uint64_t total = 0;
        for (const std::uint64_t v : ns)
            total += v;
        return total;
    }

    /** Accumulate another breakdown (per-phase sum). */
    void
    merge(const PhaseBreakdown &other)
    {
        for (std::size_t p = 0; p < numPhases; ++p)
            ns[p] += other.ns[p];
    }

    bool operator==(const PhaseBreakdown &) const = default;
};

/**
 * Scoped RAII phase timer.
 *
 * With a null target the constructor and destructor do nothing — not
 * even a clock read — so instrumented code paths cost nothing when
 * observability is off.
 */
class PhaseTimer
{
  public:
    /** Monotonic nanosecond clock used by all phase timing. */
    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** @param target_arg breakdown to charge; nullptr disables */
    PhaseTimer(PhaseBreakdown *target_arg, Phase phase_arg)
        : target(target_arg), phase(phase_arg)
    {
        if (target)
            startNs = nowNs();
    }

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

    ~PhaseTimer() { stop(); }

    /** Charge the elapsed time now (idempotent). */
    void
    stop()
    {
        if (!target)
            return;
        target->add(phase, nowNs() - startNs);
        target = nullptr;
    }

  private:
    PhaseBreakdown *target;
    Phase phase;
    std::uint64_t startNs = 0;
};

} // namespace dirsim

#endif // DIRSIM_OBS_PHASE_HH
