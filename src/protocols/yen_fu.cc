#include "protocols/yen_fu.hh"

#include "common/logging.hh"

namespace dirsim
{

YenFu::YenFu(unsigned num_caches_arg, const CacheFactory &factory)
    : CoherenceProtocol(num_caches_arg, factory), dir(num_caches_arg)
{
}

void
YenFu::invalidateOthers(CacheId keeper, BlockNum block, bool costed)
{
    CacheIdList victims;
    dir.appendSharers(block, victims);
    for (const CacheId victim : victims) {
        if (victim == keeper)
            continue;
        if (costed)
            ++opCounts.invalMsgs;
        invalidateIn(victim, block);
        dir.removeSharer(block, victim);
    }
}

void
YenFu::restoreSingleBit(BlockNum block, bool costed)
{
    if (holderCount(block) != 1)
        return;
    const CacheId survivor = firstHolder(block);
    if (cacheState(survivor, block) != stClean)
        return;
    // The maintenance signal the paper charges the scheme for.
    if (costed)
        ++opCounts.writeUpdates;
    setState(survivor, block, stCleanSingle);
}

void
YenFu::handleReadMiss(CacheId cache, BlockNum block,
                      const Others &others, bool first)
{
    if (others.anyDirty) {
        // Directed write-back request, as in Censier & Feautrier. The
        // owner's single bit is cleared by the same transaction.
        if (!first) {
            ++opCounts.invalMsgs;
            ++opCounts.dirtySupplies;
        }
        setState(others.dirtyOwner, block, stClean);
        dir.setDirty(block, false);
        install(cache, block, stClean);
    } else if (others.numOthers == 0) {
        if (!first)
            ++opCounts.memSupplies;
        install(cache, block, stCleanSingle);
    } else {
        if (!first)
            ++opCounts.memSupplies;
        // A second copy appears: the previous sole holder's single
        // bit must be cleared, costing a maintenance signal.
        if (others.numOthers == 1
            && cacheState(others.anyHolder, block) == stCleanSingle) {
            if (!first)
                ++opCounts.writeUpdates;
            setState(others.anyHolder, block, stClean);
        }
        install(cache, block, stClean);
    }
    if (!first)
        ++opCounts.busTransactions;
    dir.addSharer(block, cache);
}

void
YenFu::handleWriteHit(CacheId cache, BlockNum block,
                      CacheBlockState state)
{
    if (state == stDirty) {
        eventCounts.add(EventType::WhBlkDrty);
        return;
    }
    eventCounts.add(EventType::WhBlkCln);

    if (state == stCleanSingle) {
        // The Yen & Fu saving: the write proceeds immediately; only a
        // background notification updates the directory's dirty bit
        // (a bus access, but no directory wait).
        sampleCleanWrite(0);
        ++opCounts.writeUpdates;
        ++opCounts.busTransactions;
        setState(cache, block, stDirty);
        dir.setDirty(block, true);
        return;
    }

    // Shared clean copy: identical to Censier & Feautrier.
    const Others others = classifyOthers(cache, block);
    sampleCleanWrite(others.numOthers);
    ++opCounts.dirChecks;
    ++opCounts.busTransactions;
    invalidateOthers(cache, block, /* costed */ true);
    setState(cache, block, stDirty);
    dir.setDirty(block, true);
}

void
YenFu::handleWriteMiss(CacheId cache, BlockNum block,
                       const Others &others, bool first)
{
    if (others.anyDirty) {
        if (!first) {
            ++opCounts.dirtySupplies;
            ++opCounts.invalMsgs;
        }
        invalidateIn(others.dirtyOwner, block);
        dir.removeSharer(block, others.dirtyOwner);
    } else if (others.numOthers > 0) {
        if (!first)
            sampleCleanWrite(others.numOthers);
        invalidateOthers(cache, block, !first);
        if (!first)
            ++opCounts.memSupplies;
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first)
        ++opCounts.busTransactions;
    install(cache, block, stDirty);
    dir.addSharer(block, cache);
    dir.setDirty(block, true);
}

void
YenFu::onEviction(CacheId cache, BlockNum block, CacheBlockState state)
{
    dir.removeSharer(block, cache);
    if (isDirtyState(state))
        dir.setDirty(block, false);
    // If exactly one clean copy survives, its single bit is set.
    restoreSingleBit(block, /* costed */ true);
}

void
YenFu::checkInvariants(BlockNum block) const
{
    CoherenceProtocol::checkInvariants(block);
    const SharerSet sharers = holders(block);
    if (dir.tracked(block)) {
        panicIfNot(dir.sharerSnapshot(block) == sharers,
                   "YenFu: directory present bits disagree for block ",
                   block);
    } else {
        panicIfNot(sharers.empty(),
                   "YenFu: caches hold block ", block,
                   " the directory never saw");
    }
    // The single-bit semantics: set iff the sole copy.
    sharers.forEach([&](CacheId holder) {
        const CacheBlockState state = cacheState(holder, block);
        if (state == stCleanSingle || state == stDirty) {
            panicIfNot(sharers.count() == 1,
                       "YenFu: single/dirty block ", block, " has ",
                       sharers.count(), " holders");
        }
        if (sharers.count() == 1) {
            panicIfNot(state != stClean,
                       "YenFu: sole holder of block ", block,
                       " is missing its single bit");
        }
    });
}

void
YenFu::onReserveBlocks(std::uint32_t block_count)
{
    dir.reserveDense(block_count);
}

} // namespace dirsim
