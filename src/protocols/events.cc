#include "protocols/events.hh"

#include "common/logging.hh"
#include "common/stats.hh"

namespace dirsim
{

const char *
toString(EventType event)
{
    switch (event) {
      case EventType::Instr:
        return "instr";
      case EventType::Read:
        return "read";
      case EventType::RdHit:
        return "rd-hit";
      case EventType::RdMiss:
        return "rd-miss(rm)";
      case EventType::RmBlkCln:
        return "rm-blk-cln";
      case EventType::RmBlkDrty:
        return "rm-blk-drty";
      case EventType::RmFirstRef:
        return "rm-first-ref";
      case EventType::Write:
        return "write";
      case EventType::WrtHit:
        return "wrt-hit(wh)";
      case EventType::WhBlkCln:
        return "wh-blk-cln";
      case EventType::WhBlkDrty:
        return "wh-blk-drty";
      case EventType::WhDistrib:
        return "wh-distrib";
      case EventType::WhLocal:
        return "wh-local";
      case EventType::WrtMiss:
        return "wrt-miss(wm)";
      case EventType::WmBlkCln:
        return "wm-blk-cln";
      case EventType::WmBlkDrty:
        return "wm-blk-drty";
      case EventType::WmFirstRef:
        return "wm-first-ref";
      case EventType::NumEvents:
        break;
    }
    panic("unknown EventType ", static_cast<unsigned>(event));
}

std::uint64_t
EventCounts::totalRefs() const
{
    return count(EventType::Instr) + count(EventType::Read)
        + count(EventType::Write);
}

double
EventCounts::fraction(EventType event) const
{
    const auto total = totalRefs();
    if (total == 0)
        return 0.0;
    return static_cast<double>(count(event))
        / static_cast<double>(total);
}

double
EventCounts::percentOfRefs(EventType event) const
{
    return 100.0 * fraction(event);
}

void
EventCounts::merge(const EventCounts &other)
{
    for (std::size_t i = 0; i < numEventTypes; ++i)
        counts[i] += other.counts[i];
}

void
EventCounts::subtract(const EventCounts &other)
{
    for (std::size_t i = 0; i < numEventTypes; ++i) {
        panicIfNot(counts[i] >= other.counts[i],
                   "EventCounts::subtract underflow on ",
                   toString(static_cast<EventType>(i)));
        counts[i] -= other.counts[i];
    }
}

EventFreqs
EventFreqs::fromCounts(const EventCounts &counts)
{
    EventFreqs freqs;
    for (std::size_t i = 0; i < numEventTypes; ++i) {
        const auto event = static_cast<EventType>(i);
        freqs.set(event, counts.fraction(event));
    }
    return freqs;
}

EventFreqs
EventFreqs::average(const std::vector<EventFreqs> &sets)
{
    fatalIf(sets.empty(), "EventFreqs::average of an empty list");
    EventFreqs out;
    for (std::size_t i = 0; i < numEventTypes; ++i) {
        const auto event = static_cast<EventType>(i);
        double sum = 0.0;
        for (const auto &freqs : sets)
            sum += freqs.get(event);
        out.set(event, sum / static_cast<double>(sets.size()));
    }
    return out;
}

double
EventFreqs::readMissNoCopy() const
{
    const double none = get(EventType::RdMiss) - get(EventType::RmBlkCln)
        - get(EventType::RmBlkDrty);
    return none > 0.0 ? none : 0.0;
}

double
EventFreqs::writeMissNoCopy() const
{
    const double none = get(EventType::WrtMiss)
        - get(EventType::WmBlkCln) - get(EventType::WmBlkDrty);
    return none > 0.0 ? none : 0.0;
}

namespace
{

void
subtractField(std::uint64_t &field, std::uint64_t removed,
              const char *what)
{
    panicIfNot(field >= removed,
               "OpCounts::subtract underflow on ", what);
    field -= removed;
}

} // namespace

void
OpCounts::subtract(const OpCounts &other)
{
    subtractField(memSupplies, other.memSupplies, "memSupplies");
    subtractField(cacheSupplies, other.cacheSupplies, "cacheSupplies");
    subtractField(dirtySupplies, other.dirtySupplies, "dirtySupplies");
    subtractField(invalMsgs, other.invalMsgs, "invalMsgs");
    subtractField(broadcastInvals, other.broadcastInvals,
                  "broadcastInvals");
    subtractField(dirChecks, other.dirChecks, "dirChecks");
    subtractField(writeThroughs, other.writeThroughs, "writeThroughs");
    subtractField(writeUpdates, other.writeUpdates, "writeUpdates");
    subtractField(overflowInvals, other.overflowInvals,
                  "overflowInvals");
    subtractField(evictionWriteBacks, other.evictionWriteBacks,
                  "evictionWriteBacks");
    subtractField(busTransactions, other.busTransactions,
                  "busTransactions");
}

EventType
mostSpecificNewEvent(const EventCounts &before,
                     const EventCounts &after)
{
    // Most specific first: the sub-events a protocol handler records,
    // then the hit/miss classes, then the raw reference kinds.
    static constexpr EventType specificity[] = {
        EventType::RmBlkDrty,  EventType::RmBlkCln,
        EventType::WmBlkDrty,  EventType::WmBlkCln,
        EventType::WhBlkCln,   EventType::WhBlkDrty,
        EventType::WhDistrib,  EventType::WhLocal,
        EventType::RmFirstRef, EventType::WmFirstRef,
        EventType::RdHit,      EventType::RdMiss,
        EventType::WrtHit,     EventType::WrtMiss,
        EventType::Read,       EventType::Write,
        EventType::Instr,
    };
    for (const EventType event : specificity) {
        if (after.count(event) > before.count(event))
            return event;
    }
    panic("mostSpecificNewEvent: no event count advanced");
}

void
OpCounts::merge(const OpCounts &other)
{
    memSupplies += other.memSupplies;
    cacheSupplies += other.cacheSupplies;
    dirtySupplies += other.dirtySupplies;
    invalMsgs += other.invalMsgs;
    broadcastInvals += other.broadcastInvals;
    dirChecks += other.dirChecks;
    writeThroughs += other.writeThroughs;
    writeUpdates += other.writeUpdates;
    overflowInvals += other.overflowInvals;
    evictionWriteBacks += other.evictionWriteBacks;
    busTransactions += other.busTransactions;
}

} // namespace dirsim
