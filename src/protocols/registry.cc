#include "protocols/registry.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "protocols/berkeley.hh"
#include "protocols/dir0_b.hh"
#include "protocols/dir1_nb.hh"
#include "protocols/dir_cv.hh"
#include "protocols/dir_i_b.hh"
#include "protocols/dir_i_nb.hh"
#include "protocols/dir_n_nb.hh"
#include "protocols/dragon.hh"
#include "protocols/wti.hh"
#include "protocols/yen_fu.hh"

namespace dirsim
{

namespace
{

std::string
lower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

/**
 * Parse "dir<i>b" / "dir<i>nb" into (i, broadcast); returns false
 * when @p name is not of that shape.
 */
bool
parseDirFamily(const std::string &name, unsigned &pointers,
               bool &broadcast)
{
    if (name.rfind("dir", 0) != 0)
        return false;
    std::size_t pos = 3;
    std::size_t digits = 0;
    unsigned value = 0;
    while (pos < name.size() && std::isdigit(
               static_cast<unsigned char>(name[pos]))) {
        value = value * 10 + static_cast<unsigned>(name[pos] - '0');
        ++pos;
        ++digits;
    }
    if (digits == 0)
        return false;
    const std::string suffix = name.substr(pos);
    if (suffix == "b")
        broadcast = true;
    else if (suffix == "nb")
        broadcast = false;
    else
        return false;
    pointers = value;
    return true;
}

} // namespace

std::unique_ptr<CoherenceProtocol>
makeProtocol(const std::string &name, unsigned num_caches,
             const CacheFactory &factory)
{
    const std::string key = lower(name);
    if (key == "dir1nb")
        return std::make_unique<Dir1NB>(num_caches, factory);
    if (key == "dirnnb")
        return std::make_unique<DirNNB>(num_caches, factory);
    if (key == "dir0b")
        return std::make_unique<Dir0B>(num_caches, factory);
    if (key == "wti")
        return std::make_unique<WTI>(num_caches, factory);
    if (key == "dragon")
        return std::make_unique<Dragon>(num_caches, factory);
    if (key == "berkeley")
        return std::make_unique<Berkeley>(num_caches, factory);
    if (key == "yenfu")
        return std::make_unique<YenFu>(num_caches, factory);
    if (key == "dircv")
        return std::make_unique<DirCV>(num_caches, factory);

    unsigned pointers = 0;
    bool broadcast = false;
    if (parseDirFamily(key, pointers, broadcast)) {
        fatalIf(pointers == 0 && !broadcast,
                "Dir0NB cannot grant exclusive access (see the paper)");
        fatalIf(pointers == 0, "Dir0B is a named scheme; use 'Dir0B'");
        if (broadcast)
            return std::make_unique<DirIB>(num_caches, pointers,
                                           factory);
        return std::make_unique<DirINB>(num_caches, pointers, factory);
    }
    fatal("unknown coherence scheme '", name, "'");
}

const std::vector<std::string> &
paperSchemes()
{
    static const std::vector<std::string> names = {
        "Dir1NB", "WTI", "Dir0B", "Dragon",
    };
    return names;
}

const std::vector<std::string> &
allSchemes()
{
    static const std::vector<std::string> names = {
        "Dir1NB", "WTI", "Dir0B", "Dragon", "DirNNB", "Berkeley",
        "YenFu", "DirCV",
    };
    return names;
}

} // namespace dirsim
