#include "protocols/registry.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "protocols/berkeley.hh"
#include "protocols/dir0_b.hh"
#include "protocols/dir1_nb.hh"
#include "protocols/dir_cv.hh"
#include "protocols/dir_i_b.hh"
#include "protocols/dir_i_nb.hh"
#include "protocols/dir_n_nb.hh"
#include "protocols/dragon.hh"
#include "protocols/wti.hh"
#include "protocols/yen_fu.hh"

namespace dirsim
{

namespace
{

std::string
lower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

/**
 * Parse "dir<i>b" / "dir<i>nb" into (i, broadcast); returns false
 * when @p name is not of that shape.
 */
bool
parseDirFamily(const std::string &name, unsigned &pointers,
               bool &broadcast)
{
    if (name.rfind("dir", 0) != 0)
        return false;
    std::size_t pos = 3;
    std::size_t digits = 0;
    unsigned value = 0;
    while (pos < name.size() && std::isdigit(
               static_cast<unsigned char>(name[pos]))) {
        value = value * 10 + static_cast<unsigned>(name[pos] - '0');
        ++pos;
        ++digits;
    }
    if (digits == 0)
        return false;
    const std::string suffix = name.substr(pos);
    if (suffix == "b")
        broadcast = true;
    else if (suffix == "nb")
        broadcast = false;
    else
        return false;
    pointers = value;
    return true;
}

SchemeSpec
named(SchemeFamily family, unsigned pointers = 0)
{
    SchemeSpec spec;
    spec.family = family;
    spec.pointers = pointers;
    return spec;
}

} // namespace

bool
SchemeSpec::broadcast() const
{
    switch (family) {
      case SchemeFamily::Dir0B:
      case SchemeFamily::DirIB:
      case SchemeFamily::DirCV:
      case SchemeFamily::WTI:
      case SchemeFamily::Dragon:
      case SchemeFamily::Berkeley:
        return true;
      case SchemeFamily::Dir1NB:
      case SchemeFamily::DirNNB:
      case SchemeFamily::YenFu:
      case SchemeFamily::DirINB:
        return false;
    }
    panic("SchemeSpec with invalid family");
}

bool
SchemeSpec::snoopy() const
{
    return family == SchemeFamily::WTI
        || family == SchemeFamily::Dragon
        || family == SchemeFamily::Berkeley;
}

std::string
SchemeSpec::name() const
{
    switch (family) {
      case SchemeFamily::Dir1NB:
        return "Dir1NB";
      case SchemeFamily::DirNNB:
        return "DirNNB";
      case SchemeFamily::Dir0B:
        return "Dir0B";
      case SchemeFamily::WTI:
        return "WTI";
      case SchemeFamily::Dragon:
        return "Dragon";
      case SchemeFamily::Berkeley:
        return "Berkeley";
      case SchemeFamily::YenFu:
        return "YenFu";
      case SchemeFamily::DirCV:
        return pointers == 0 ? "DirCV"
                             : "DirCVr" + std::to_string(pointers);
      case SchemeFamily::DirIB:
        return "Dir" + std::to_string(pointers) + "B";
      case SchemeFamily::DirINB:
        return "Dir" + std::to_string(pointers) + "NB";
    }
    panic("SchemeSpec with invalid family");
}

SchemeSpec
parseScheme(const std::string &name)
{
    const std::string key = lower(name);
    if (key == "dir1nb")
        return named(SchemeFamily::Dir1NB, 1);
    if (key == "dirnnb")
        return named(SchemeFamily::DirNNB);
    if (key == "dir0b")
        return named(SchemeFamily::Dir0B, 0);
    if (key == "wti")
        return named(SchemeFamily::WTI);
    if (key == "dragon")
        return named(SchemeFamily::Dragon);
    if (key == "berkeley")
        return named(SchemeFamily::Berkeley);
    if (key == "yenfu")
        return named(SchemeFamily::YenFu);
    if (key == "dircv")
        return named(SchemeFamily::DirCV);
    if (key.rfind("dircvr", 0) == 0) {
        const std::string digits = key.substr(6);
        fatalIf(digits.empty()
                    || digits.find_first_not_of("0123456789")
                           != std::string::npos,
                "DirCVr<K> needs an integer region granularity, got '",
                name, "'");
        const unsigned long region = std::stoul(digits);
        fatalIf(region == 0,
                "DirCVr0 is not a scheme; use 'DirCV' for the ternary "
                "code");
        fatalIf(region > 65535, "DirCVr region granularity ", region,
                " exceeds the largest cache domain (65535)");
        return named(SchemeFamily::DirCV,
                     static_cast<unsigned>(region));
    }

    unsigned pointers = 0;
    bool broadcast = false;
    if (parseDirFamily(key, pointers, broadcast)) {
        fatalIf(pointers == 0 && !broadcast,
                "Dir0NB cannot grant exclusive access (see the paper)");
        fatalIf(pointers == 0, "Dir0B is a named scheme; use 'Dir0B'");
        return named(broadcast ? SchemeFamily::DirIB
                               : SchemeFamily::DirINB,
                     pointers);
    }
    fatal("unknown coherence scheme '", name, "'; valid schemes: ",
          validSchemesText());
}

std::unique_ptr<CoherenceProtocol>
makeProtocol(const SchemeSpec &spec, unsigned num_caches,
             const CacheFactory &factory)
{
    switch (spec.family) {
      case SchemeFamily::Dir1NB:
        return std::make_unique<Dir1NB>(num_caches, factory);
      case SchemeFamily::DirNNB:
        return std::make_unique<DirNNB>(num_caches, factory);
      case SchemeFamily::Dir0B:
        return std::make_unique<Dir0B>(num_caches, factory);
      case SchemeFamily::WTI:
        return std::make_unique<WTI>(num_caches, factory);
      case SchemeFamily::Dragon:
        return std::make_unique<Dragon>(num_caches, factory);
      case SchemeFamily::Berkeley:
        return std::make_unique<Berkeley>(num_caches, factory);
      case SchemeFamily::YenFu:
        return std::make_unique<YenFu>(num_caches, factory);
      case SchemeFamily::DirCV:
        return std::make_unique<DirCV>(num_caches, spec.pointers,
                                       factory);
      case SchemeFamily::DirIB:
        fatalIf(spec.pointers == 0,
                "Dir<i>B needs at least one pointer");
        return std::make_unique<DirIB>(num_caches, spec.pointers,
                                       factory);
      case SchemeFamily::DirINB:
        fatalIf(spec.pointers == 0,
                "Dir0NB cannot grant exclusive access (see the paper)");
        return std::make_unique<DirINB>(num_caches, spec.pointers,
                                        factory);
    }
    panic("SchemeSpec with invalid family");
}

std::unique_ptr<CoherenceProtocol>
makeProtocol(const std::string &name, unsigned num_caches,
             const CacheFactory &factory)
{
    return makeProtocol(parseScheme(name), num_caches, factory);
}

const std::vector<std::string> &
paperSchemes()
{
    static const std::vector<std::string> names = {
        "Dir1NB", "WTI", "Dir0B", "Dragon",
    };
    return names;
}

const std::vector<std::string> &
allSchemes()
{
    static const std::vector<std::string> names = {
        "Dir1NB", "WTI", "Dir0B", "Dragon", "DirNNB", "Berkeley",
        "YenFu", "DirCV",
    };
    return names;
}

const std::string &
validSchemesText()
{
    static const std::string text = [] {
        std::string out;
        for (const auto &name : allSchemes()) {
            if (!out.empty())
                out += ", ";
            out += name;
        }
        out += ", and the parameterized families Dir<i>B / Dir<i>NB "
               "(any integer i >= 1, e.g. Dir2B, Dir4NB) and "
               "DirCVr<K> (region-vector coarse code, any region "
               "granularity K >= 1, e.g. DirCVr16)";
        return out;
    }();
    return text;
}

} // namespace dirsim
