/**
 * @file
 * Berkeley Ownership: the snoopy invalidation protocol of Katz et
 * al., which the paper estimates analytically (Section 5) by zeroing
 * Dir0B's directory-probe cost. We implement the protocol itself as
 * well: ownership states let a cache supply a dirty block directly
 * (without updating memory) and let a writer skip the directory probe
 * because the need to invalidate is known from the local block state.
 */

#ifndef DIRSIM_PROTOCOLS_BERKELEY_HH
#define DIRSIM_PROTOCOLS_BERKELEY_HH

#include "protocols/protocol.hh"

namespace dirsim
{

/** See file comment. */
class Berkeley : public CoherenceProtocol
{
  public:
    /** Clean-ish copy, not owned (memory or another cache owns). */
    static constexpr CacheBlockState stValid = 1;
    /** Owned and possibly shared (memory stale). */
    static constexpr CacheBlockState stOwnedShared = 2;
    /** Owned exclusively (memory stale); writes are free. */
    static constexpr CacheBlockState stOwnedExcl = 3;

    explicit Berkeley(unsigned num_caches_arg,
                      const CacheFactory &factory = {});

    std::string name() const override { return "Berkeley"; }
    bool isDirtyState(CacheBlockState state) const override
    {
        return state == stOwnedShared || state == stOwnedExcl;
    }
    void checkInvariants(BlockNum block) const override;

  protected:
    void handleReadMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first) override;
    void handleWriteHit(CacheId cache, BlockNum block,
                        CacheBlockState state) override;
    void handleWriteMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first) override;

  private:
    /** Bus invalidation observed by snoopers (1 broadcast). */
    void snoopInvalidate(CacheId writer, BlockNum block);
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_BERKELEY_HH
