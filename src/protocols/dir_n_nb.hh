/**
 * @file
 * DirN NB: the Censier & Feautrier full-map directory with sequential
 * (directed) invalidations — one present bit per cache and a dirty
 * bit per memory block, so every copy's location is known and no
 * broadcast is ever needed.
 *
 * Section 6 of the paper evaluates exactly this scheme: the bus
 * cycles per reference rise only from 0.0491 (Dir0B, broadcast) to
 * 0.0499 (sequential invalidates) because over 85% of writes to
 * previously-clean blocks invalidate at most one other copy.
 */

#ifndef DIRSIM_PROTOCOLS_DIR_N_NB_HH
#define DIRSIM_PROTOCOLS_DIR_N_NB_HH

#include "directory/full_map.hh"
#include "protocols/protocol.hh"

namespace dirsim
{

/** See file comment. */
class DirNNB : public CoherenceProtocol
{
  public:
    static constexpr CacheBlockState stClean = 1;
    static constexpr CacheBlockState stDirty = 2;

    explicit DirNNB(unsigned num_caches_arg,
                    const CacheFactory &factory = {});

    std::string name() const override { return "DirNNB"; }
    bool isDirtyState(CacheBlockState state) const override
    {
        return state == stDirty;
    }
    std::optional<OracleStates> oracleStates() const override
    {
        return OracleStates{stClean, stDirty};
    }
    void checkInvariants(BlockNum block) const override;

  protected:
    void onEviction(CacheId cache, BlockNum block,
                    CacheBlockState state) override;
    void onReserveBlocks(std::uint32_t block_count) override;

  public:
    /** The full-map directory (exposed for tests). */
    const FullMapDirectory &directory() const { return dir; }

  protected:
    void handleReadMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first) override;
    void handleWriteHit(CacheId cache, BlockNum block,
                        CacheBlockState state) override;
    void handleWriteMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first) override;

  private:
    /**
     * Send directed invalidations to every holder but @p keeper,
     * removing their copies and directory bits.
     *
     * @param costed false while handling uncosted first references
     * @param overflow unused here; see Dir_i NB for the distinction
     */
    void invalidateOthers(CacheId keeper, BlockNum block, bool costed);

    FullMapDirectory dir;
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_DIR_N_NB_HH
