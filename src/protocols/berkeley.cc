#include "protocols/berkeley.hh"

#include "common/logging.hh"

namespace dirsim
{

Berkeley::Berkeley(unsigned num_caches_arg, const CacheFactory &factory)
    : CoherenceProtocol(num_caches_arg, factory)
{
}

void
Berkeley::snoopInvalidate(CacheId writer, BlockNum block)
{
    CacheIdList sharers;
    snapshotHolders(block, sharers);
    for (const CacheId holder : sharers) {
        if (holder != writer)
            invalidateIn(holder, block);
    }
}

void
Berkeley::handleReadMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first)
{
    if (others.anyDirty) {
        // The owner supplies the block cache-to-cache; memory is NOT
        // updated and the owner keeps ownership in the shared state.
        if (!first)
            ++opCounts.cacheSupplies;
        setState(others.dirtyOwner, block, stOwnedShared);
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first)
        ++opCounts.busTransactions;
    install(cache, block, stValid);
}

void
Berkeley::handleWriteHit(CacheId cache, BlockNum block,
                         CacheBlockState state)
{
    if (state == stOwnedExcl) {
        // Exclusive ownership is known locally: no bus traffic and,
        // unlike Dir0B, no directory probe either.
        eventCounts.add(EventType::WhBlkDrty);
        return;
    }
    // Valid or owned-shared: a bus invalidation claims exclusivity.
    eventCounts.add(EventType::WhBlkCln);
    const Others others = classifyOthers(cache, block);
    sampleCleanWrite(others.numOthers);
    ++opCounts.broadcastInvals;
    ++opCounts.busTransactions;
    snoopInvalidate(cache, block);
    setState(cache, block, stOwnedExcl);
}

void
Berkeley::handleWriteMiss(CacheId cache, BlockNum block,
                          const Others &others, bool first)
{
    if (others.anyDirty) {
        // Owner supplies the block; the write-for-invalidation
        // transaction also removes every other copy.
        if (!first)
            ++opCounts.cacheSupplies;
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first) {
        ++opCounts.broadcastInvals;
        ++opCounts.busTransactions;
    }
    snoopInvalidate(cache, block);
    install(cache, block, stOwnedExcl);
}

void
Berkeley::checkInvariants(BlockNum block) const
{
    CoherenceProtocol::checkInvariants(block);
    const SharerSet sharers = holders(block);
    sharers.forEach([&](CacheId holder) {
        if (cacheState(holder, block) == stOwnedExcl) {
            panicIfNot(sharers.count() == 1,
                       "Berkeley: exclusively-owned block ", block,
                       " has ", sharers.count(), " holders");
        }
    });
}

} // namespace dirsim
