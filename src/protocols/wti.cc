#include "protocols/wti.hh"

#include "common/logging.hh"

namespace dirsim
{

WTI::WTI(unsigned num_caches_arg, const CacheFactory &factory)
    : CoherenceProtocol(num_caches_arg, factory)
{
}

void
WTI::snoopInvalidate(CacheId writer, BlockNum block)
{
    CacheIdList sharers;
    snapshotHolders(block, sharers);
    for (const CacheId holder : sharers) {
        if (holder != writer)
            invalidateIn(holder, block);
    }
}

void
WTI::handleReadMiss(CacheId cache, BlockNum block, const Others &,
                    bool first)
{
    // Memory is always current under write-through, so every miss is
    // served by main memory regardless of other copies.
    if (!first) {
        ++opCounts.memSupplies;
        ++opCounts.busTransactions;
    }
    install(cache, block, stValid);
}

void
WTI::handleWriteHit(CacheId cache, BlockNum block, CacheBlockState)
{
    // There is no dirty state; every write hit is a write to a
    // "clean" block and goes to memory on the bus.
    eventCounts.add(EventType::WhBlkCln);
    ++opCounts.writeThroughs;
    ++opCounts.busTransactions;
    snoopInvalidate(cache, block);
}

void
WTI::handleWriteMiss(CacheId cache, BlockNum block, const Others &,
                     bool first)
{
    // Write-allocate: fetch the block, then write through. Snoopers
    // invalidate on observing the write-through address. The
    // write-through itself is write-policy traffic, not a miss cost,
    // so it is charged even for (otherwise uncosted) first references.
    ++opCounts.writeThroughs;
    ++opCounts.busTransactions;
    if (!first) {
        ++opCounts.memSupplies;
        ++opCounts.busTransactions;
    }
    snoopInvalidate(cache, block);
    install(cache, block, stValid);
}

void
WTI::checkInvariants(BlockNum block) const
{
    CoherenceProtocol::checkInvariants(block);
    holders(block).forEach([&](CacheId holder) {
        panicIfNot(cacheState(holder, block) == stValid,
                   "WTI: non-valid state for block ", block);
    });
}

} // namespace dirsim
