/**
 * @file
 * Dragon: the Xerox PARC update-based snoopy protocol, the paper's
 * high-end comparison point. Stale copies are never invalidated;
 * writes to shared blocks broadcast the new word on the bus and every
 * holder updates in place. A "shared" bus line tells the writer
 * whether any other cache holds the block. With infinite caches a
 * block, once loaded, stays resident forever, so the miss rate is the
 * native (sharing-free) miss rate and the dominant cost is the write
 * updates ("wh-distrib" events).
 */

#ifndef DIRSIM_PROTOCOLS_DRAGON_HH
#define DIRSIM_PROTOCOLS_DRAGON_HH

#include "protocols/protocol.hh"

namespace dirsim
{

/** See file comment. */
class Dragon : public CoherenceProtocol
{
  public:
    /** Clean, only copy in the system. */
    static constexpr CacheBlockState stExclusive = 1;
    /** Possibly shared, memory current or owned elsewhere. */
    static constexpr CacheBlockState stSharedClean = 2;
    /** Possibly shared, this cache owns the (stale-in-memory) data. */
    static constexpr CacheBlockState stSharedDirty = 3;
    /** Modified, only copy in the system. */
    static constexpr CacheBlockState stDirty = 4;

    explicit Dragon(unsigned num_caches_arg,
                    const CacheFactory &factory = {});

    std::string name() const override { return "Dragon"; }
    bool isDirtyState(CacheBlockState state) const override
    {
        return state == stSharedDirty || state == stDirty;
    }
    void checkInvariants(BlockNum block) const override;

  protected:
    void handleReadMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first) override;
    void handleWriteHit(CacheId cache, BlockNum block,
                        CacheBlockState state) override;
    void handleWriteMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first) override;

  private:
    /**
     * A write by @p writer was observed by all other holders: they
     * update their copies and any previous owner demotes to
     * shared-clean (the writer becomes the owner).
     */
    void applyUpdate(CacheId writer, BlockNum block);

    /** Exclusive holders observed a new sharer: demote to shared. */
    void demoteToShared(CacheId requester, BlockNum block);
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_DRAGON_HH
