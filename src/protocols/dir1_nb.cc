#include "protocols/dir1_nb.hh"

#include "common/logging.hh"

namespace dirsim
{

Dir1NB::Dir1NB(unsigned num_caches_arg, const CacheFactory &factory)
    : CoherenceProtocol(num_caches_arg, factory),
      dir(1, /* allow_broadcast */ false)
{
}

void
Dir1NB::onEviction(CacheId cache, BlockNum block, CacheBlockState)
{
    LimitedEntry &entry = dir.entry(block);
    entry.removeSharer(cache);
    entry.dirty = false;
}

void
Dir1NB::displace(BlockNum block, const Others &others, bool first)
{
    if (others.numOthers == 0)
        return;
    panicIfNot(others.numOthers == 1,
               "Dir1NB found ", others.numOthers, " holders of block ",
               block);
    const CacheId holder =
        others.anyDirty ? others.dirtyOwner : others.anyHolder;
    if (!first) {
        ++opCounts.invalMsgs;
        if (others.anyDirty)
            ++opCounts.dirtySupplies; // write-back supplies the data
    }
    invalidateIn(holder, block);
    dir.entry(block).removeSharer(holder);
}

void
Dir1NB::takeOwnership(CacheId cache, BlockNum block, bool dirty)
{
    LimitedEntry &entry = dir.entry(block);
    const auto outcome = entry.addSharer(cache);
    panicIfNot(outcome == LimitedAddOutcome::Recorded,
               "Dir1NB directory pointer was not free");
    entry.dirty = dirty;
}

void
Dir1NB::handleReadMiss(CacheId cache, BlockNum block,
                       const Others &others, bool first)
{
    displace(block, others, first);
    if (!first) {
        // A clean remote copy (or no copy) is supplied by memory; a
        // dirty copy arrives via the displacing write-back.
        if (!others.anyDirty)
            ++opCounts.memSupplies;
        ++opCounts.busTransactions;
    }
    install(cache, block, stClean);
    takeOwnership(cache, block, /* dirty */ false);
}

void
Dir1NB::handleWriteHit(CacheId cache, BlockNum block,
                       CacheBlockState state)
{
    // The sole holder writes: no directory interaction is needed since
    // the cache itself tracks dirtiness (the dirty data is found via
    // the directory pointer on a later miss).
    if (state == stDirty) {
        eventCounts.add(EventType::WhBlkDrty);
        return;
    }
    eventCounts.add(EventType::WhBlkCln);
    setState(cache, block, stDirty);
    dir.entry(block).dirty = true;
}

void
Dir1NB::handleWriteMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first)
{
    displace(block, others, first);
    if (!first) {
        if (!others.anyDirty)
            ++opCounts.memSupplies;
        ++opCounts.busTransactions;
    }
    install(cache, block, stDirty);
    takeOwnership(cache, block, /* dirty */ true);
}

void
Dir1NB::checkInvariants(BlockNum block) const
{
    CoherenceProtocol::checkInvariants(block);
    const SharerSet sharers = holders(block);
    panicIfNot(sharers.count() <= 1,
               "Dir1NB: block ", block, " resides in ", sharers.count(),
               " caches");
    const LimitedEntry *entry = dir.find(block);
    if (sharers.count() == 1) {
        panicIfNot(entry != nullptr && entry->pointsTo(sharers.first()),
                   "Dir1NB: directory pointer disagrees with the caches "
                   "for block ", block);
        panicIfNot(entry->dirty
                       == isDirtyState(cacheState(sharers.first(), block)),
                   "Dir1NB: directory dirty bit stale for block ", block);
    } else if (entry != nullptr) {
        panicIfNot(entry->pointerCount() == 0,
                   "Dir1NB: dangling directory pointer for block ", block);
    }
}

void
Dir1NB::onReserveBlocks(std::uint32_t block_count)
{
    dir.reserveDense(block_count);
}

} // namespace dirsim
