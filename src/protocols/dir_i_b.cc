#include "protocols/dir_i_b.hh"

#include "common/logging.hh"

namespace dirsim
{

DirIB::DirIB(unsigned num_caches_arg, unsigned num_pointers_arg,
             const CacheFactory &factory)
    : CoherenceProtocol(num_caches_arg, factory),
      dir(num_pointers_arg, /* allow_broadcast */ true)
{
}

void
DirIB::onEviction(CacheId cache, BlockNum block, CacheBlockState state)
{
    // Replacement hint: while the entry is exact the freed pointer is
    // reclaimed. In broadcast mode there is nothing to update.
    LimitedEntry &entry = dir.entry(block);
    entry.removeSharer(cache);
    if (isDirtyState(state))
        entry.dirty = false;
}

std::string
DirIB::name() const
{
    return "Dir" + std::to_string(dir.pointerBudget()) + "B";
}

void
DirIB::recordSharer(BlockNum block, CacheId cache)
{
    const auto outcome = dir.entry(block).addSharer(cache);
    panicIfNot(outcome != LimitedAddOutcome::EvictionRequired,
               "DirIB entries never require eviction");
}

void
DirIB::invalidateOthers(CacheId keeper, BlockNum block, bool costed)
{
    LimitedEntry &entry = dir.entry(block);
    CacheIdList sharers;
    snapshotHolders(block, sharers);
    const bool broadcast = entry.broadcastRequired();
    if (broadcast && costed)
        ++opCounts.broadcastInvals;
    for (const CacheId holder : sharers) {
        if (holder == keeper)
            continue;
        if (costed && !broadcast)
            ++opCounts.invalMsgs;
        invalidateIn(holder, block);
    }
    // After the invalidation the keeper is the only (known) sharer.
    entry.reset();
    if (keeper != invalidCacheId)
        recordSharer(block, keeper);
}

void
DirIB::handleReadMiss(CacheId cache, BlockNum block,
                      const Others &others, bool first)
{
    if (others.anyDirty) {
        // Dirty implies a single, pointed-to owner: a directed
        // write-back request; the flush supplies the requester.
        if (!first) {
            ++opCounts.invalMsgs;
            ++opCounts.dirtySupplies;
        }
        setState(others.dirtyOwner, block, stClean);
        dir.entry(block).dirty = false;
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first)
        ++opCounts.busTransactions;
    install(cache, block, stClean);
    recordSharer(block, cache);
}

void
DirIB::handleWriteHit(CacheId cache, BlockNum block,
                      CacheBlockState state)
{
    if (state == stDirty) {
        eventCounts.add(EventType::WhBlkDrty);
        return;
    }
    eventCounts.add(EventType::WhBlkCln);
    const Others others = classifyOthers(cache, block);
    sampleCleanWrite(others.numOthers);
    ++opCounts.dirChecks;
    ++opCounts.busTransactions;
    invalidateOthers(cache, block, /* costed */ true);
    setState(cache, block, stDirty);
    dir.entry(block).dirty = true;
}

void
DirIB::handleWriteMiss(CacheId cache, BlockNum block,
                       const Others &others, bool first)
{
    if (others.anyDirty) {
        if (!first) {
            ++opCounts.invalMsgs;
            ++opCounts.dirtySupplies;
        }
        invalidateIn(others.dirtyOwner, block);
        dir.entry(block).reset();
    } else if (others.numOthers > 0) {
        if (!first)
            sampleCleanWrite(others.numOthers);
        invalidateOthers(invalidCacheId, block, !first);
        if (!first)
            ++opCounts.memSupplies;
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first)
        ++opCounts.busTransactions;
    install(cache, block, stDirty);
    recordSharer(block, cache);
    dir.entry(block).dirty = true;
}

void
DirIB::checkInvariants(BlockNum block) const
{
    CoherenceProtocol::checkInvariants(block);
    const SharerSet sharers = holders(block);
    const LimitedEntry *entry = dir.find(block);
    if (entry == nullptr) {
        panicIfNot(sharers.empty(),
                   "DirIB: caches hold block ", block,
                   " the directory never saw");
        return;
    }
    if (!entry->broadcastRequired()) {
        // Exact mode: pointers must equal the true sharer set.
        panicIfNot(entry->pointerCount() == sharers.count(),
                   name(), ": pointer count disagrees for block ", block);
        for (const CacheId cache : entry->pointerList())
            panicIfNot(sharers.contains(cache),
                       name(), ": stale pointer for block ", block);
    }
    if (entry->dirty)
        panicIfNot(sharers.count() == 1,
                   name(), ": dirty block ", block, " has ",
                   sharers.count(), " sharers");
}

void
DirIB::onReserveBlocks(std::uint32_t block_count)
{
    dir.reserveDense(block_count);
}

} // namespace dirsim
