/**
 * @file
 * The reference-event taxonomy of the paper's Table 4, plus the
 * abstract bus-operation counts the cost models consume.
 *
 * The paper's methodology computes, per consistency scheme, the
 * frequency of each event type as a fraction of all references; bus
 * models then weight those frequencies by per-event cycle costs. We
 * additionally tally the concrete bus operations each protocol issues
 * (OpCounts), which yields identical costs for the standard schemes
 * (asserted by test) and exact costs for the generalized Dir_i
 * schemes whose behaviour depends on run-time pointer state.
 */

#ifndef DIRSIM_PROTOCOLS_EVENTS_HH
#define DIRSIM_PROTOCOLS_EVENTS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_if.hh"
#include "common/types.hh"

namespace dirsim
{

/**
 * Reference events, named after the Table 4 legend.
 *
 * Structural identities (asserted in tests):
 *   Read  = RdHit + RdMiss + RmFirstRef
 *   RdMiss = RmBlkCln + RmBlkDrty + (misses finding no other copy)
 *   Write = WrtHit + WrtMiss + WmFirstRef
 *   WrtHit = WhBlkCln + WhBlkDrty (invalidation protocols)
 *          = WhDistrib + WhLocal  (Dragon)
 *
 * First references to a block are counted separately and never
 * costed, per the paper's Section 4 methodology.
 */
enum class EventType : unsigned
{
    Instr = 0,   ///< instruction fetch
    Read,        ///< data read
    RdHit,       ///< read hit
    RdMiss,      ///< read miss (excluding first references)
    RmBlkCln,    ///< read miss, block clean in another cache
    RmBlkDrty,   ///< read miss, block dirty in another cache
    RmFirstRef,  ///< read miss, first reference to the block
    Write,       ///< data write
    WrtHit,      ///< write hit
    WhBlkCln,    ///< write hit, block clean in the writing cache
    WhBlkDrty,   ///< write hit, block dirty in the writing cache
    WhDistrib,   ///< write hit, block also in another cache (Dragon)
    WhLocal,     ///< write hit, block in no other cache (Dragon)
    WrtMiss,     ///< write miss (excluding first references)
    WmBlkCln,    ///< write miss, block clean in another cache
    WmBlkDrty,   ///< write miss, block dirty in another cache
    WmFirstRef,  ///< write miss, first reference to the block
    NumEvents,
};

inline constexpr std::size_t numEventTypes =
    static_cast<std::size_t>(EventType::NumEvents);

/** Table 4 legend string for an event ("rm-blk-cln", ...). */
const char *toString(EventType event);

/** Counters for every event type over one simulation run. */
class EventCounts
{
  public:
    EventCounts() { counts.fill(0); }

    void add(EventType event, std::uint64_t n = 1)
    {
        counts[static_cast<std::size_t>(event)] += n;
    }

    std::uint64_t count(EventType event) const
    {
        return counts[static_cast<std::size_t>(event)];
    }

    /** Total references = Instr + Read + Write. */
    std::uint64_t totalRefs() const;

    /** Event count as a fraction of all references (0 when empty). */
    double fraction(EventType event) const;

    /** Event count as a percentage of all references. */
    double percentOfRefs(EventType event) const;

    /** Aggregate another run's counts into this one. */
    void merge(const EventCounts &other);

    /**
     * Remove a snapshot previously accumulated into this object
     * (used to discard warm-up events); panics on underflow.
     */
    void subtract(const EventCounts &other);

    void clear() { counts.fill(0); }

    /** Exact per-event equality (parallel-vs-sequential checks). */
    bool operator==(const EventCounts &) const = default;

  private:
    std::array<std::uint64_t, numEventTypes> counts;
};

/**
 * Event frequencies as fractions of all references.
 *
 * This is the scheme- and trace-independent summary the cost models
 * consume; it can come from a simulation (EventCounts::fraction), an
 * average over traces, or the paper's published Table 4 (used by the
 * golden-number tests).
 */
class EventFreqs
{
  public:
    EventFreqs() { fracs.fill(0.0); }

    /** Extract fractions from raw counts. */
    static EventFreqs fromCounts(const EventCounts &counts);

    /** Arithmetic mean of several frequency sets (paper's Table 4). */
    static EventFreqs average(const std::vector<EventFreqs> &sets);

    double get(EventType event) const
    {
        return fracs[static_cast<std::size_t>(event)];
    }

    void set(EventType event, double fraction)
    {
        fracs[static_cast<std::size_t>(event)] = fraction;
    }

    /** Read misses that found no copy in any other cache. */
    double readMissNoCopy() const;

    /** Write misses that found no copy in any other cache. */
    double writeMissNoCopy() const;

    /** All misses served by a dirty remote copy. */
    double dirtyMisses() const
    {
        return get(EventType::RmBlkDrty) + get(EventType::WmBlkDrty);
    }

  private:
    std::array<double, numEventTypes> fracs;
};

/**
 * Concrete bus operations issued by a protocol over a run.
 *
 * Only operations triggered by costed events are tallied (first
 * references are excluded, matching the event counters).
 */
struct OpCounts
{
    /** Block supplied by main memory (full memory access). */
    std::uint64_t memSupplies = 0;
    /** Block supplied cache-to-cache without memory update (Dragon,
     *  Berkeley owned blocks). */
    std::uint64_t cacheSupplies = 0;
    /** Block supplied via write-back: memory updated, requester
     *  snarfs the data (directory schemes). */
    std::uint64_t dirtySupplies = 0;
    /** Directed (sequential) invalidation messages sent. */
    std::uint64_t invalMsgs = 0;
    /** Broadcast invalidations issued. */
    std::uint64_t broadcastInvals = 0;
    /** Directory probes that cannot overlap a memory access. */
    std::uint64_t dirChecks = 0;
    /** Single-word write-throughs to memory (WTI). */
    std::uint64_t writeThroughs = 0;
    /** Single-word write updates to other caches (Dragon). */
    std::uint64_t writeUpdates = 0;
    /** Directed invalidations caused by Dir_i NB pointer overflow. */
    std::uint64_t overflowInvals = 0;
    /** Write-backs of dirty blocks evicted by finite-cache
     *  replacement (capacity/conflict traffic, not coherence). */
    std::uint64_t evictionWriteBacks = 0;
    /** Bus transactions (for the Figure 5 / Section 5.1 metrics). */
    std::uint64_t busTransactions = 0;

    void merge(const OpCounts &other);

    /** Remove a previously accumulated snapshot (warm-up discard). */
    void subtract(const OpCounts &other);

    /** Exact per-operation equality. */
    bool operator==(const OpCounts &) const = default;
};

/**
 * One traced protocol state transition.
 *
 * Captured by CoherenceProtocol around a sampled data reference and
 * handed to the attached ProtocolTraceSink: the reference identity,
 * the most specific Table 4 event it classified as, the issuing
 * cache's block state before and after, the size of the rest of the
 * sharer set before and after, and the bus operations the reference
 * issued (an OpCounts delta, so per-event costs follow from the
 * ordinary cost models).
 *
 * tsNs is left zero by the protocol layer; timestamping is the
 * sink's job (obs/tracer.hh stamps PhaseTimer::nowNs()).
 */
struct ProtocolTraceEvent
{
    std::uint64_t ref = 0; ///< reference ordinal within the run
    BlockNum block = 0;
    CacheId cache = 0;
    EventType type = EventType::Read;
    bool firstRef = false;
    CacheBlockState stateBefore = stateNotPresent;
    CacheBlockState stateAfter = stateNotPresent;
    std::uint32_t othersBefore = 0; ///< other holders before
    std::uint32_t othersAfter = 0;  ///< other holders after
    OpCounts ops;                   ///< operations this reference issued
    std::uint64_t tsNs = 0;         ///< sink-stamped wall clock (ns)
};

/**
 * Where a protocol reports its per-reference activity.
 *
 * The interface lives here (not in src/obs) so the protocol layer
 * never depends on the observability library; obs/tracer.hh provides
 * the production implementation. Three channels with different
 * volumes:
 *
 *  - dataRef() / cleanWriteSample() fire on *every* data reference /
 *    clean-write while a sink is attached, so distribution histograms
 *    built from them are exact regardless of sampling.
 *  - emit() fires only for references selected by samplePeriod()
 *    (1 = every reference, N = every Nth, 0 = never) and carries the
 *    full before/after transition detail.
 */
class ProtocolTraceSink
{
  public:
    virtual ~ProtocolTraceSink() = default;

    /** Timeline sampling period (0 disables emit() entirely). */
    virtual unsigned samplePeriod() const { return 0; }

    /** A sampled reference's full transition record. */
    virtual void emit(const ProtocolTraceEvent &event) = 0;

    /** Figure 1 sample: other holders on a write to a clean block. */
    virtual void cleanWriteSample(unsigned num_others) = 0;

    /** Every data reference (feeds write-run-length tracking). */
    virtual void dataRef(BlockNum block, CacheId cache,
                         bool is_write) = 0;
};

/**
 * The most specific event @p after counts that @p before did not:
 * used to label a traced reference with its Table 4 classification
 * (sub-events like WmBlkCln win over Write/WrtMiss).
 */
EventType mostSpecificNewEvent(const EventCounts &before,
                               const EventCounts &after);

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_EVENTS_HH
