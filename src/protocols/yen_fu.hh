/**
 * @file
 * The Yen & Fu refinement of the Censier & Feautrier scheme
 * (Section 2 of the paper): the central directory is unchanged, but
 * each cache block additionally carries a "single bit" that is set
 * iff that cache is the only one in the system holding the block.
 *
 * A write hit on a single-bit block can proceed without completing a
 * central directory access (the latency win). The drawback the paper
 * calls out — "extra bus bandwidth is consumed to keep the single
 * bits updated ... the scheme saves central directory accesses, but
 * does not reduce the number of bus accesses" — is modelled
 * explicitly: single-bit maintenance signals and the background
 * dirty-notification are tallied as one-word update operations
 * (OpCounts::writeUpdates, the "wt or wup" cost row).
 */

#ifndef DIRSIM_PROTOCOLS_YEN_FU_HH
#define DIRSIM_PROTOCOLS_YEN_FU_HH

#include "directory/full_map.hh"
#include "protocols/protocol.hh"

namespace dirsim
{

/** See file comment. */
class YenFu : public CoherenceProtocol
{
  public:
    /** Clean, other copies may exist (single bit clear). */
    static constexpr CacheBlockState stClean = 1;
    /** Clean and the only copy in the system (single bit set). */
    static constexpr CacheBlockState stCleanSingle = 2;
    /** Modified; implies the only copy. */
    static constexpr CacheBlockState stDirty = 3;

    explicit YenFu(unsigned num_caches_arg,
                   const CacheFactory &factory = {});

    std::string name() const override { return "YenFu"; }
    bool isDirtyState(CacheBlockState state) const override
    {
        return state == stDirty;
    }
    void checkInvariants(BlockNum block) const override;

    /** The (unchanged) full-map directory. */
    const FullMapDirectory &directory() const { return dir; }

  protected:
    void handleReadMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first) override;
    void handleWriteHit(CacheId cache, BlockNum block,
                        CacheBlockState state) override;
    void handleWriteMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first) override;
    void onEviction(CacheId cache, BlockNum block,
                    CacheBlockState state) override;
    void onReserveBlocks(std::uint32_t block_count) override;

  private:
    /** Directed invalidations to every copy but @p keeper's. */
    void invalidateOthers(CacheId keeper, BlockNum block, bool costed);

    /**
     * A single remaining clean holder must have its single bit set
     * (one maintenance signal on the bus).
     */
    void restoreSingleBit(BlockNum block, bool costed);

    FullMapDirectory dir;
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_YEN_FU_HH
