#include "protocols/dir0_b.hh"

#include "common/logging.hh"

namespace dirsim
{

Dir0B::Dir0B(unsigned num_caches_arg, const CacheFactory &factory)
    : CoherenceProtocol(num_caches_arg, factory)
{
}

void
Dir0B::onEviction(CacheId, BlockNum block, CacheBlockState state)
{
    // The two-bit directory holds no per-cache information, so clean
    // evictions are silent (the directory may over-approximate the
    // sharer count afterwards, which only wastes broadcasts). A dirty
    // eviction is observed through its write-back.
    if (isDirtyState(state))
        dir.makeUncached(block);
}

void
Dir0B::broadcastInvalidate(CacheId keeper, BlockNum block, bool costed)
{
    if (costed)
        ++opCounts.broadcastInvals;
    CacheIdList sharers;
    snapshotHolders(block, sharers);
    for (const CacheId holder : sharers) {
        if (holder != keeper)
            invalidateIn(holder, block);
    }
}

void
Dir0B::handleReadMiss(CacheId cache, BlockNum block,
                      const Others &others, bool first)
{
    if (others.anyDirty) {
        // The directory knows only "dirty in exactly one cache": a
        // broadcast write-back request finds the owner, which flushes;
        // memory and the requester receive the data together.
        if (!first) {
            ++opCounts.broadcastInvals; // the flush request broadcast
            ++opCounts.dirtySupplies;
        }
        setState(others.dirtyOwner, block, stClean);
        install(cache, block, stClean);
        dir.setState(block, TwoBitState::CleanMany);
    } else {
        if (!first)
            ++opCounts.memSupplies;
        install(cache, block, stClean);
        dir.addCleanCopy(block);
    }
    if (!first)
        ++opCounts.busTransactions;
}

void
Dir0B::handleWriteHit(CacheId cache, BlockNum block,
                      CacheBlockState state)
{
    if (state == stDirty) {
        eventCounts.add(EventType::WhBlkDrty);
        return;
    }
    eventCounts.add(EventType::WhBlkCln);
    const Others others = classifyOthers(cache, block);
    sampleCleanWrite(others.numOthers);

    // The write to a clean block must query the directory; this probe
    // cannot overlap a memory access (Table 5's "dir access" row).
    ++opCounts.dirChecks;
    ++opCounts.busTransactions;
    if (dir.state(block) == TwoBitState::CleanMany) {
        broadcastInvalidate(cache, block, /* costed */ true);
    } else {
        panicIfNot(others.numOthers == 0,
                   "Dir0B: clean-one state with other holders");
    }
    setState(cache, block, stDirty);
    dir.makeDirty(block);
}

void
Dir0B::handleWriteMiss(CacheId cache, BlockNum block,
                       const Others &others, bool first)
{
    if (others.anyDirty) {
        // Broadcast flush-and-invalidate; the owner's write-back
        // supplies the requester.
        if (!first) {
            ++opCounts.broadcastInvals;
            ++opCounts.dirtySupplies;
        }
        invalidateIn(others.dirtyOwner, block);
    } else if (others.numOthers > 0) {
        if (!first)
            sampleCleanWrite(others.numOthers);
        broadcastInvalidate(cache, block, !first);
        if (!first)
            ++opCounts.memSupplies;
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first)
        ++opCounts.busTransactions;
    install(cache, block, stDirty);
    dir.makeDirty(block);
}

void
Dir0B::checkInvariants(BlockNum block) const
{
    CoherenceProtocol::checkInvariants(block);
    const SharerSet sharers = holders(block);
    unsigned dirty = 0;
    sharers.forEach([&](CacheId holder) {
        dirty += isDirtyState(cacheState(holder, block)) ? 1 : 0;
    });

    switch (dir.state(block)) {
      case TwoBitState::NotCached:
        panicIfNot(sharers.empty(),
                   "Dir0B: not-cached block ", block, " has holders");
        break;
      case TwoBitState::CleanOne:
        // Finite caches may have silently dropped the copy; the
        // directory is then a (correct) over-approximation.
        panicIfNot(sharers.count() <= 1 && dirty == 0,
                   "Dir0B: clean-one state wrong for block ", block);
        panicIfNot(finiteCaches() || sharers.count() == 1,
                   "Dir0B: clean-one block ", block, " has no holder");
        break;
      case TwoBitState::CleanMany:
        // "Unknown number of caches": must be >= 1 with infinite
        // caches, which never silently drop copies.
        panicIfNot(dirty == 0,
                   "Dir0B: clean-many state wrong for block ", block);
        panicIfNot(finiteCaches() || sharers.count() >= 1,
                   "Dir0B: clean-many block ", block, " has no holder");
        break;
      case TwoBitState::DirtyOne:
        panicIfNot(sharers.count() == 1 && dirty == 1,
                   "Dir0B: dirty-one state wrong for block ", block);
        break;
    }
}

void
Dir0B::onReserveBlocks(std::uint32_t block_count)
{
    dir.reserveDense(block_count);
}

} // namespace dirsim
