#include "protocols/dir_n_nb.hh"

#include "common/logging.hh"

namespace dirsim
{

DirNNB::DirNNB(unsigned num_caches_arg, const CacheFactory &factory)
    : CoherenceProtocol(num_caches_arg, factory), dir(num_caches_arg)
{
}

void
DirNNB::onEviction(CacheId cache, BlockNum block, CacheBlockState state)
{
    dir.removeSharer(block, cache);
    if (isDirtyState(state))
        dir.setDirty(block, false);
}

void
DirNNB::invalidateOthers(CacheId keeper, BlockNum block, bool costed)
{
    CacheIdList victims;
    dir.appendSharers(block, victims);
    for (const CacheId victim : victims) {
        if (victim == keeper)
            continue;
        if (costed)
            ++opCounts.invalMsgs; // one directed message per copy
        invalidateIn(victim, block);
        dir.removeSharer(block, victim);
    }
}

void
DirNNB::handleReadMiss(CacheId cache, BlockNum block,
                       const Others &others, bool first)
{
    if (others.anyDirty) {
        // A directed write-back request reaches the owner; memory and
        // the requester receive the data in the same transfer.
        if (!first) {
            ++opCounts.invalMsgs;
            ++opCounts.dirtySupplies;
        }
        setState(others.dirtyOwner, block, stClean);
        dir.setDirty(block, false);
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first)
        ++opCounts.busTransactions;
    install(cache, block, stClean);
    dir.addSharer(block, cache);
}

void
DirNNB::handleWriteHit(CacheId cache, BlockNum block,
                       CacheBlockState state)
{
    if (state == stDirty) {
        eventCounts.add(EventType::WhBlkDrty);
        return; // already exclusive; proceeds without bus traffic
    }
    eventCounts.add(EventType::WhBlkCln);
    const Others others = classifyOthers(cache, block);
    sampleCleanWrite(others.numOthers);
    // The cache must notify the directory, which invalidates the
    // other copies one by one.
    ++opCounts.dirChecks;
    ++opCounts.busTransactions;
    invalidateOthers(cache, block, /* costed */ true);
    setState(cache, block, stDirty);
    dir.setDirty(block, true);
}

void
DirNNB::handleWriteMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first)
{
    if (others.anyDirty) {
        // Flush the dirty copy to memory and invalidate it there.
        if (!first) {
            ++opCounts.dirtySupplies;
            ++opCounts.invalMsgs;
        }
        invalidateIn(others.dirtyOwner, block);
        dir.removeSharer(block, others.dirtyOwner);
    } else if (others.numOthers > 0) {
        if (!first)
            sampleCleanWrite(others.numOthers);
        invalidateOthers(cache, block, !first);
        if (!first)
            ++opCounts.memSupplies;
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first)
        ++opCounts.busTransactions;
    install(cache, block, stDirty);
    dir.addSharer(block, cache);
    dir.setDirty(block, true);
}

void
DirNNB::checkInvariants(BlockNum block) const
{
    CoherenceProtocol::checkInvariants(block);
    const SharerSet sharers = holders(block);
    if (!dir.tracked(block)) {
        panicIfNot(sharers.empty(),
                   "DirNNB: caches hold block ", block,
                   " the directory never saw");
        return;
    }
    panicIfNot(dir.sharerSnapshot(block) == sharers,
               "DirNNB: directory present bits disagree with the caches "
               "for block ", block);
    panicIfNot(!dir.dirty(block) || dir.sharerCount(block) <= 1,
               "DirNNB: dirty block ", block, " has multiple sharers");
    if (!sharers.empty()) {
        bool any_dirty = false;
        sharers.forEach([&](CacheId holder) {
            any_dirty |= isDirtyState(cacheState(holder, block));
        });
        panicIfNot(dir.dirty(block) == any_dirty,
                   "DirNNB: directory dirty bit stale for block ", block);
    }
}

void
DirNNB::onReserveBlocks(std::uint32_t block_count)
{
    dir.reserveDense(block_count);
}

} // namespace dirsim
