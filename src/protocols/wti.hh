/**
 * @file
 * WTI: Write-Through-With-Invalidate, the paper's low-end snoopy
 * comparison point. Every write is transmitted to main memory; other
 * caches snoop the bus and invalidate matching blocks for free, so
 * memory is always current and no dirty state exists. The write
 * traffic makes it "one of the lowest-performance snooping cache
 * consistency protocols".
 *
 * WTI shares its data state-change model with Dir0B (multiple clean
 * copies, one writer), so their event frequencies are identical on a
 * given trace — an identity Section 5 of the paper points out, and
 * which the test suite asserts.
 */

#ifndef DIRSIM_PROTOCOLS_WTI_HH
#define DIRSIM_PROTOCOLS_WTI_HH

#include "protocols/protocol.hh"

namespace dirsim
{

/** See file comment. */
class WTI : public CoherenceProtocol
{
  public:
    /** The only cache state: valid (memory is never stale). */
    static constexpr CacheBlockState stValid = 1;

    explicit WTI(unsigned num_caches_arg,
                 const CacheFactory &factory = {});

    std::string name() const override { return "WTI"; }
    bool isDirtyState(CacheBlockState) const override { return false; }
    void checkInvariants(BlockNum block) const override;

  protected:
    void handleReadMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first) override;
    void handleWriteHit(CacheId cache, BlockNum block,
                        CacheBlockState state) override;
    void handleWriteMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first) override;

  private:
    /** Snooping caches invalidate their copies at no bus cost. */
    void snoopInvalidate(CacheId writer, BlockNum block);
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_WTI_HH
