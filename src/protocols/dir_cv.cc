#include "protocols/dir_cv.hh"

#include "common/logging.hh"

namespace dirsim
{

DirCV::DirCV(unsigned num_caches_arg, unsigned region_size_arg,
             const CacheFactory &factory)
    : CoherenceProtocol(num_caches_arg, factory),
      dir(num_caches_arg, region_size_arg)
{
}

std::string
DirCV::name() const
{
    if (dir.regionSize() == 0)
        return "DirCV";
    return "DirCVr" + std::to_string(dir.regionSize());
}

unsigned
DirCV::dirtyProbeMsgs(const CoarseVectorDirectory::Entry &entry) const
{
    if (dir.regionSize() == 0)
        return 1;
    return entry.sharers.supersetSize();
}

void
DirCV::invalidateSuperset(CacheId keeper, BlockNum block, bool costed)
{
    CoarseVectorDirectory::Entry &entry = dir.entry(block);
    // One message per denoted cache: holders are invalidated, the
    // spurious members of the superset cost a wasted message each.
    entry.sharers.forEachMember([&](CacheId target) {
        if (target == keeper)
            return;
        if (costed)
            ++opCounts.invalMsgs;
        invalidateIn(target, block);
    });
    entry.sharers.clear();
    if (keeper != invalidCacheId)
        entry.sharers.add(keeper);
}

void
DirCV::handleReadMiss(CacheId cache, BlockNum block,
                      const Others &others, bool first)
{
    CoarseVectorDirectory::Entry &entry = dir.entry(block);
    if (others.anyDirty) {
        // Ternary: dirty implies the last write reset the code to
        // exactly the owner, so the write-back request is a single
        // message. Region mode only narrows the owner to its region,
        // so the request goes to every region member.
        if (!first) {
            opCounts.invalMsgs += dirtyProbeMsgs(entry);
            ++opCounts.dirtySupplies;
        }
        setState(others.dirtyOwner, block, stClean);
        entry.dirty = false;
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first)
        ++opCounts.busTransactions;
    install(cache, block, stClean);
    entry.sharers.add(cache);
}

void
DirCV::handleWriteHit(CacheId cache, BlockNum block,
                      CacheBlockState state)
{
    if (state == stDirty) {
        eventCounts.add(EventType::WhBlkDrty);
        return;
    }
    eventCounts.add(EventType::WhBlkCln);
    const Others others = classifyOthers(cache, block);
    sampleCleanWrite(others.numOthers);
    ++opCounts.dirChecks;
    ++opCounts.busTransactions;
    invalidateSuperset(cache, block, /* costed */ true);
    setState(cache, block, stDirty);
    dir.entry(block).dirty = true;
}

void
DirCV::handleWriteMiss(CacheId cache, BlockNum block,
                       const Others &others, bool first)
{
    CoarseVectorDirectory::Entry &entry = dir.entry(block);
    if (others.anyDirty) {
        if (!first) {
            opCounts.invalMsgs += dirtyProbeMsgs(entry);
            ++opCounts.dirtySupplies;
        }
        invalidateIn(others.dirtyOwner, block);
        entry.sharers.clear();
    } else if (others.numOthers > 0) {
        if (!first)
            sampleCleanWrite(others.numOthers);
        invalidateSuperset(invalidCacheId, block, !first);
        if (!first)
            ++opCounts.memSupplies;
    } else if (!first) {
        ++opCounts.memSupplies;
    }
    if (!first)
        ++opCounts.busTransactions;
    install(cache, block, stDirty);
    entry.sharers.clear();
    entry.sharers.add(cache);
    entry.dirty = true;
}

void
DirCV::onEviction(CacheId cache, BlockNum block, CacheBlockState state)
{
    // Neither code can subtract a member, so clean evictions leave
    // the (still correct) superset in place. A dirty eviction implies
    // the code denoted only {cache} (ternary) or its region; the
    // write-back resets it.
    if (isDirtyState(state)) {
        CoarseVectorDirectory::Entry &entry = dir.entry(block);
        entry.sharers.clear();
        entry.dirty = false;
    }
}

void
DirCV::checkInvariants(BlockNum block) const
{
    CoherenceProtocol::checkInvariants(block);
    const SharerSet sharers = holders(block);
    const CoarseVectorDirectory::Entry *entry = dir.find(block);
    if (entry == nullptr) {
        panicIfNot(sharers.empty(),
                   "DirCV: caches hold block ", block,
                   " the directory never saw");
        return;
    }
    // The defining property: the code always denotes a superset of
    // the true holders.
    panicIfNot(entry->sharers.decode().isSupersetOf(sharers),
               "DirCV: code is not a superset for block ", block);
    if (entry->dirty) {
        panicIfNot(sharers.count() == 1,
                   "DirCV: dirty block ", block, " has ",
                   sharers.count(), " sharers");
        if (dir.regionSize() == 0) {
            panicIfNot(
                entry->sharers.decode().isOnly(sharers.first()),
                "DirCV: dirty block ", block,
                " has an inexact code");
        } else {
            // Region mode cannot be exact: the tightest legal code
            // is the owner's region alone.
            panicIfNot(entry->sharers.flaggedRegions() == 1,
                       "DirCV: dirty block ", block, " flags ",
                       entry->sharers.flaggedRegions(), " regions");
        }
    }
}

void
DirCV::onReserveBlocks(std::uint32_t block_count)
{
    dir.reserveDense(block_count);
}

} // namespace dirsim
