/**
 * @file
 * The coherence-protocol engine interface.
 *
 * A protocol owns one infinite cache per process (the paper's model)
 * plus whatever directory organization it needs, processes the data
 * references of a trace in order, and tallies the Table 4 events, the
 * concrete bus operations, and the Figure 1 invalidation histogram.
 *
 * The engine deliberately separates a protocol's *state-change
 * specification* from its *cost*: protocols record what happened;
 * bus/cost_model.hh later weights the records by per-operation cycle
 * costs (Section 4.1 of the paper).
 */

#ifndef DIRSIM_PROTOCOLS_PROTOCOL_HH
#define DIRSIM_PROTOCOLS_PROTOCOL_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_if.hh"
#include "common/histogram.hh"
#include "directory/sharer_set.hh"
#include "protocols/events.hh"

namespace dirsim
{

/**
 * Base class for all coherence protocols.
 *
 * The public read()/write() entry points perform the hit/miss
 * classification and Table 4 event accounting shared by every scheme,
 * then delegate the protocol-specific state changes and bus-operation
 * tallies to the handle* hooks.
 */
class CoherenceProtocol
{
  public:
    /**
     * @param num_caches_arg caches in the coherence domain (>= 1)
     * @param factory cache factory; empty (the default) builds the
     *        paper's infinite caches. A factory producing finite
     *        caches enables true replacement simulation: evicted
     *        dirty blocks are written back (costed), evicted blocks
     *        leave the holder oracle, and each scheme updates its
     *        directory through onEviction().
     */
    explicit CoherenceProtocol(unsigned num_caches_arg,
                               const CacheFactory &factory = {});
    virtual ~CoherenceProtocol() = default;

    CoherenceProtocol(const CoherenceProtocol &) = delete;
    CoherenceProtocol &operator=(const CoherenceProtocol &) = delete;

    /** Scheme name in the paper's notation, e.g. "Dir0B". */
    virtual std::string name() const = 0;

    /**
     * Process one data read.
     *
     * @param cache issuing cache
     * @param block referenced block
     * @param first_ref true when this is the globally first reference
     *        to the block in the trace (excluded from cost metrics)
     */
    void read(CacheId cache, BlockNum block, bool first_ref);

    /** Process one data write; parameters as read(). */
    void write(CacheId cache, BlockNum block, bool first_ref);

    /** Count an instruction fetch (never causes coherence traffic). */
    void instruction() { eventCounts.add(EventType::Instr); }

    /**
     * Attach a per-reference trace sink (nullptr detaches).
     *
     * While attached, every data reference additionally reports to
     * the sink (ProtocolTraceSink in protocols/events.hh): dataRef()
     * and cleanWriteSample() always, emit() at the sink's sampling
     * period. Tracing never changes protocol state, event counts, or
     * operation tallies — a traced run's SimResult is bit-identical
     * to an untraced one (asserted by test). Compiled out entirely
     * (and ignored) when DIRSIM_NO_TRACER is defined.
     */
    void attachTracer(ProtocolTraceSink *sink);

    /** The currently attached trace sink (nullptr when none). */
    ProtocolTraceSink *tracer() const { return traceSink; }

    EventCounts &events() { return eventCounts; }
    const EventCounts &events() const { return eventCounts; }
    const OpCounts &ops() const { return opCounts; }

    /**
     * Figure 1 data: for each write to a previously-clean block, the
     * number of *other* caches that held (and had to give up) a copy.
     */
    const Histogram &cleanWriteHolders() const { return cleanWriteHist; }

    unsigned numCaches() const
    {
        return static_cast<unsigned>(caches.size());
    }

    /** True when the caches can evict (finite-cache simulation). */
    bool finiteCaches() const { return finiteMode; }

    /**
     * Switch the engine to dense block arenas: every future block key
     * is a densified index in [0, @p block_count) (sim/decoded.hh),
     * so the holder oracle becomes a flat SharerStore arena, each
     * InfiniteCache a flat state array, and each scheme's directory a
     * pre-materialized entry arena (via onReserveBlocks()). The
     * per-reference hot path is then hash-free: every probe is an
     * array load.
     *
     * Must be called on a fresh protocol (before any reference) and
     * only for infinite caches — a FiniteCache's set indexing depends
     * on real block numbers, so dense indices would change replacement
     * behavior (panics on both misuses).
     *
     * @param block_labels optional original block number per dense
     *        index (must outlive the protocol); used only to label
     *        trace-sink events with real block numbers. nullptr
     *        labels events with the dense indices themselves.
     */
    void reserveBlocks(std::uint32_t block_count,
                       const BlockNum *block_labels = nullptr);

    /** True once reserveBlocks() switched to dense arenas. */
    bool denseBlocks() const { return denseMode; }

    /** A two-state scheme's {clean, dirty} cache-state constants. */
    struct OracleStates
    {
        CacheBlockState clean;
        CacheBlockState dirty;
    };

    /**
     * Dense-mode fast-path opt-in for two-state schemes. A protocol
     * whose per-cache state is fully determined by the holder oracle
     * — resident means `clean` unless the cache is the tracked dirty
     * owner, in which case `dirty` — returns its state pair here. In
     * dense mode the engine then derives every cache-state query
     * from the oracle and maintains *no* per-cache block arenas: at
     * large N those arenas are numCaches × blockCount bytes of
     * working set whose every probe is a cache miss, while the
     * oracle entry is already hot from classifyOthers(). Sparse mode
     * and finite caches always keep real caches, so the
     * DIRSIM_DECODE=0 identity suites diff a wrong opt-in loudly.
     */
    virtual std::optional<OracleStates> oracleStates() const
    {
        return std::nullopt;
    }

    /** True when dense cache state is derived from the oracle. */
    bool oracleDerivedState() const { return oracleMode; }

    /** Protocol state of @p block in @p cache (stateNotPresent if out). */
    CacheBlockState cacheState(CacheId cache, BlockNum block) const;

    /** Exact set of caches holding @p block (ground truth). */
    SharerSet holders(BlockNum block) const;

    /** Blocks currently resident in at least one cache. */
    std::vector<BlockNum> residentBlocks() const;

    /** True when @p state counts as modified relative to memory. */
    virtual bool isDirtyState(CacheBlockState state) const = 0;

    /**
     * Verify the protocol's coherence invariants for @p block,
     * throwing LogicError on violation. The base check enforces the
     * universal single-writer rule; subclasses add scheme-specific
     * checks (pointer budgets, directory agreement, ...).
     */
    virtual void checkInvariants(BlockNum block) const;

    /** checkInvariants() over every resident block. */
    void checkAllInvariants() const;

  protected:
    /** What the rest of the system holds when a cache misses/writes. */
    struct Others
    {
        unsigned numOthers = 0; ///< other caches holding the block
        bool anyDirty = false;  ///< one of them holds it dirty/owned
        CacheId dirtyOwner = invalidCacheId;
        CacheId anyHolder = invalidCacheId; ///< some other holder
    };

    /** Survey all caches except @p cache for @p block. */
    Others classifyOthers(CacheId cache, BlockNum block) const;

    /**
     * Replace @p out with the holders of @p block in ascending order.
     * The allocation-free holders(): invalidation loops iterate the
     * snapshot while invalidateIn() edits the live oracle.
     */
    void snapshotHolders(BlockNum block, CacheIdList &out) const;

    /** Number of caches holding @p block (0 when untracked). */
    unsigned holderCount(BlockNum block) const;

    /** Lowest-numbered holder of @p block; panics when none. */
    CacheId firstHolder(BlockNum block) const;

    /**
     * Apply a read miss.
     *
     * @param first true for globally-first references: install state
     *        but record no bus operations (uncosted by methodology)
     */
    virtual void handleReadMiss(CacheId cache, BlockNum block,
                                const Others &others, bool first) = 0;

    /**
     * Apply a write hit; the hook must also record the WrtHit
     * sub-event (WhBlkCln/WhBlkDrty or WhDistrib/WhLocal).
     */
    virtual void handleWriteHit(CacheId cache, BlockNum block,
                                CacheBlockState state) = 0;

    /** Apply a write miss (see handleReadMiss for @p first). */
    virtual void handleWriteMiss(CacheId cache, BlockNum block,
                                 const Others &others, bool first) = 0;

    /** Install @p block in @p cache (cache + holder oracle). */
    void install(CacheId cache, BlockNum block, CacheBlockState state);

    /** Change the state of a block the cache already holds. */
    void setState(CacheId cache, BlockNum block, CacheBlockState state);

    /** Remove @p block from @p cache (cache + holder oracle). */
    void invalidateIn(CacheId cache, BlockNum block);

    /**
     * Scheme-specific directory maintenance after a replacement
     * evicted @p block (with @p state) from @p cache. The base class
     * has already written the block back (if dirty) and removed it
     * from the holder oracle.
     */
    virtual void onEviction(CacheId cache, BlockNum block,
                            CacheBlockState state);

    /**
     * Scheme hook of reserveBlocks(): pre-size the scheme's directory
     * for @p block_count densified block indices (typically one
     * reserveDense() call). The base class has already sized the
     * holder oracle and the caches.
     */
    virtual void onReserveBlocks(std::uint32_t block_count);

    /** Record a Figure 1 sample. */
    void sampleCleanWrite(unsigned num_others)
    {
        cleanWriteHist.add(num_others);
#ifndef DIRSIM_NO_TRACER
        if (traceSink != nullptr)
            traceSink->cleanWriteSample(num_others);
#endif
    }

    EventCounts eventCounts;
    OpCounts opCounts;

  private:
    /** Replacement evicted a block: write back, update the oracle. */
    void handleEviction(CacheId cache, BlockNum block,
                        CacheBlockState state);

    /**
     * The pre-tracer read()/write() bodies, verbatim: the public
     * entry points dispatch straight here when no sink is attached,
     * so the untraced hot path is unchanged.
     */
    void processRead(CacheId cache, BlockNum block, bool first_ref);
    void processWrite(CacheId cache, BlockNum block, bool first_ref);

#ifndef DIRSIM_NO_TRACER
    /** The traced slow path: report, sample, capture, delegate. */
    void tracedRef(CacheId cache, BlockNum block, bool first_ref,
                   bool is_write);
#endif

    /** cacheState() body without the cache-id range check. */
    CacheBlockState stateOf(CacheId cache, BlockNum block) const;

    std::vector<std::unique_ptr<CacheModel>> caches;
    /** block -> exact holder set, kept in sync by the helpers. */
    std::unordered_map<BlockNum, SharerSet> holderMap;
    /**
     * Dense holder oracle (reserveBlocks()): the hybrid inline/spill
     * arena, one allocation for every block's sharer set.
     */
    SharerStore denseHolders;
    /**
     * Dense mode only: the cache holding each block dirty (or
     * invalidCacheId), maintained by install/setState/invalidateIn so
     * classifyOthers() needs no per-cache state survey.
     */
    std::vector<CacheId> denseDirtyOwner;
    /** Original block number per dense index (may be nullptr). */
    const BlockNum *blockLabels = nullptr;
    Histogram cleanWriteHist;
    bool finiteMode = false;
    bool denseMode = false;
    /** Dense + oracleStates(): cache state derived, no arenas. */
    bool oracleMode = false;
    CacheBlockState oracleClean = stateNotPresent;
    CacheBlockState oracleDirty = stateNotPresent;

    /** Attached trace sink; nullptr (the default) costs one branch. */
    ProtocolTraceSink *traceSink = nullptr;
    /** Cached sink->samplePeriod(); 0 = no timeline events. */
    unsigned tracePeriod = 0;
    /** References until the next emit() (counts down from period). */
    unsigned traceCountdown = 0;
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_PROTOCOL_HH
