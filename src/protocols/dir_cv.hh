/**
 * @file
 * The Section 6 "limited broadcast" directory: instead of n present
 * bits, each entry stores the 2*log2(n)-bit ternary code of
 * directory/coarse_vector.hh, which always denotes a superset of the
 * caches holding the block. Invalidations are sent (sequentially) to
 * every cache in the superset — more messages than the exact full
 * map, far fewer bits of storage, and never a full broadcast unless
 * the code has degenerated to one.
 *
 * A region granularity K > 0 selects the coarse-vector alternative
 * instead (DirCVr<K>): one presence bit per K-cache region, clipped
 * at the domain edge. The superset is then the union of the flagged
 * regions, and a dirty block's code denotes the owner's whole region,
 * so locating the owner costs one probe per region member.
 */

#ifndef DIRSIM_PROTOCOLS_DIR_CV_HH
#define DIRSIM_PROTOCOLS_DIR_CV_HH

#include "directory/coarse_vector.hh"
#include "protocols/protocol.hh"

namespace dirsim
{

/** See file comment. */
class DirCV : public CoherenceProtocol
{
  public:
    static constexpr CacheBlockState stClean = 1;
    static constexpr CacheBlockState stDirty = 2;

    /** @param region_size_arg 0 for the ternary code, else the
     *         region granularity K (see CoarseVector). */
    explicit DirCV(unsigned num_caches_arg,
                   unsigned region_size_arg = 0,
                   const CacheFactory &factory = {});

    std::string name() const override;
    bool isDirtyState(CacheBlockState state) const override
    {
        return state == stDirty;
    }
    std::optional<OracleStates> oracleStates() const override
    {
        return OracleStates{stClean, stDirty};
    }
    void checkInvariants(BlockNum block) const override;

    /** The coarse-vector directory (exposed for tests). */
    const CoarseVectorDirectory &directory() const { return dir; }

  protected:
    void handleReadMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first) override;
    void handleWriteHit(CacheId cache, BlockNum block,
                        CacheBlockState state) override;
    void handleWriteMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first) override;
    void onEviction(CacheId cache, BlockNum block,
                    CacheBlockState state) override;
    void onReserveBlocks(std::uint32_t block_count) override;

  private:
    /**
     * Sequential invalidations to the denoted superset (except
     * @p keeper), then reset the code to exactly {keeper}.
     */
    void invalidateSuperset(CacheId keeper, BlockNum block,
                            bool costed);

    /**
     * Messages needed to reach the dirty owner through the code: 1
     * in ternary mode (a dirty code is exactly the owner), the
     * denoted superset's size in region mode (the code only narrows
     * the owner down to its region).
     */
    unsigned dirtyProbeMsgs(const CoarseVectorDirectory::Entry &entry)
        const;

    CoarseVectorDirectory dir;
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_DIR_CV_HH
