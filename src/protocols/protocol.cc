#include "protocols/protocol.hh"

#include "cache/infinite_cache.hh"
#include "common/logging.hh"

namespace dirsim
{

CoherenceProtocol::CoherenceProtocol(unsigned num_caches_arg,
                                     const CacheFactory &factory)
    : finiteMode(static_cast<bool>(factory))
{
    fatalIf(num_caches_arg == 0,
            "a coherence domain needs at least one cache");
    caches.reserve(num_caches_arg);
    for (CacheId cache = 0; cache < num_caches_arg; ++cache) {
        if (factory)
            caches.push_back(factory());
        else
            caches.push_back(std::make_unique<InfiniteCache>());
        fatalIf(caches.back() == nullptr,
                "the cache factory returned a null cache");
        caches.back()->setEvictionHook(
            [this, cache](BlockNum block, CacheBlockState state) {
                handleEviction(cache, block, state);
            });
    }
}

void
CoherenceProtocol::reserveBlocks(std::uint32_t block_count,
                                 const BlockNum *block_labels)
{
    panicIfNot(!finiteMode,
               name(), ": reserveBlocks needs infinite caches; finite "
               "caches index their sets by real block numbers");
    panicIfNot(!denseMode, name(), ": reserveBlocks called twice");
    panicIfNot(holderMap.empty(),
               name(), ": reserveBlocks on a protocol that already "
               "processed references");
    denseHolders.reset(numCaches(), block_count);
    denseDirtyOwner.assign(block_count, invalidCacheId);
    blockLabels = block_labels;
    denseMode = true;
    if (const auto states = oracleStates()) {
        // Two-state scheme: cache state is derived from the oracle
        // from here on, so no per-cache arena is ever allocated (see
        // oracleStates() in the header).
        oracleMode = true;
        oracleClean = states->clean;
        oracleDirty = states->dirty;
    } else {
        for (const auto &cache : caches)
            cache->reserveBlocks(block_count);
    }
    onReserveBlocks(block_count);
}

void
CoherenceProtocol::onReserveBlocks(std::uint32_t)
{
}

void
CoherenceProtocol::handleEviction(CacheId cache, BlockNum block,
                                  CacheBlockState state)
{
    // The cache already dropped the line; mirror that in the oracle.
    if (denseMode) {
        if (block < denseHolders.blockCount()) {
            denseHolders.remove(block, cache);
            if (denseDirtyOwner[block] == cache)
                denseDirtyOwner[block] = invalidCacheId;
        }
    } else {
        const auto it = holderMap.find(block);
        if (it != holderMap.end())
            it->second.remove(cache);
    }
    // A modified victim must be written back to memory. This is
    // replacement (capacity/conflict) traffic, accounted in its own
    // operation counter so the coherence costs stay separable.
    if (isDirtyState(state)) {
        ++opCounts.evictionWriteBacks;
        ++opCounts.busTransactions;
    }
    onEviction(cache, block, state);
}

void
CoherenceProtocol::onEviction(CacheId, BlockNum, CacheBlockState)
{
}

void
CoherenceProtocol::attachTracer(ProtocolTraceSink *sink)
{
    traceSink = sink;
    tracePeriod = sink != nullptr ? sink->samplePeriod() : 0;
    traceCountdown = tracePeriod;
}

void
CoherenceProtocol::read(CacheId cache, BlockNum block, bool first_ref)
{
#ifndef DIRSIM_NO_TRACER
    if (traceSink != nullptr) {
        tracedRef(cache, block, first_ref, false);
        return;
    }
#endif
    processRead(cache, block, first_ref);
}

void
CoherenceProtocol::write(CacheId cache, BlockNum block, bool first_ref)
{
#ifndef DIRSIM_NO_TRACER
    if (traceSink != nullptr) {
        tracedRef(cache, block, first_ref, true);
        return;
    }
#endif
    processWrite(cache, block, first_ref);
}

#ifndef DIRSIM_NO_TRACER

void
CoherenceProtocol::tracedRef(CacheId cache, BlockNum block,
                             bool first_ref, bool is_write)
{
    panicIfNot(cache < caches.size(), "cache id out of range");
    // Dense runs key blocks by densified index; label sink events
    // with the original block numbers so traces stay meaningful.
    const BlockNum label =
        blockLabels != nullptr && block < denseHolders.blockCount()
            ? blockLabels[block]
            : block;
    traceSink->dataRef(label, cache, is_write);

    bool sampled = false;
    if (tracePeriod != 0 && --traceCountdown == 0) {
        traceCountdown = tracePeriod;
        sampled = true;
    }
    if (!sampled) {
        if (is_write)
            processWrite(cache, block, first_ref);
        else
            processRead(cache, block, first_ref);
        return;
    }

    // Capture the transition around the reference. The snapshots are
    // only taken on sampled references, so the cost scales with the
    // sampling rate, not the trace length.
    ProtocolTraceEvent event;
    event.block = label;
    event.cache = cache;
    event.firstRef = first_ref;
    event.stateBefore = stateOf(cache, block);
    event.othersBefore = classifyOthers(cache, block).numOthers;
    const EventCounts events_before = eventCounts;
    const OpCounts ops_before = opCounts;

    if (is_write)
        processWrite(cache, block, first_ref);
    else
        processRead(cache, block, first_ref);

    event.stateAfter = stateOf(cache, block);
    event.othersAfter = classifyOthers(cache, block).numOthers;
    event.type = mostSpecificNewEvent(events_before, eventCounts);
    event.ops = opCounts;
    event.ops.subtract(ops_before);
    event.ref = eventCounts.totalRefs();
    traceSink->emit(event);
}

#endif // DIRSIM_NO_TRACER

void
CoherenceProtocol::processRead(CacheId cache, BlockNum block,
                               bool first_ref)
{
    panicIfNot(cache < caches.size(), "cache id out of range");
    eventCounts.add(EventType::Read);

    if (oracleMode ? denseHolders.contains(block, cache)
                   : caches[cache]->contains(block)) {
        eventCounts.add(EventType::RdHit);
        if (!oracleMode)
            caches[cache]->touch(block);
        return;
    }

    if (first_ref) {
        eventCounts.add(EventType::RmFirstRef);
        handleReadMiss(cache, block, Others{}, true);
        return;
    }

    eventCounts.add(EventType::RdMiss);
    const Others others = classifyOthers(cache, block);
    if (others.anyDirty)
        eventCounts.add(EventType::RmBlkDrty);
    else if (others.numOthers > 0)
        eventCounts.add(EventType::RmBlkCln);
    handleReadMiss(cache, block, others, false);
}

void
CoherenceProtocol::processWrite(CacheId cache, BlockNum block,
                                bool first_ref)
{
    panicIfNot(cache < caches.size(), "cache id out of range");
    eventCounts.add(EventType::Write);

    const CacheBlockState state = stateOf(cache, block);
    if (state != stateNotPresent) {
        eventCounts.add(EventType::WrtHit);
        if (!oracleMode)
            caches[cache]->touch(block);
        handleWriteHit(cache, block, state);
        return;
    }

    if (first_ref) {
        eventCounts.add(EventType::WmFirstRef);
        handleWriteMiss(cache, block, Others{}, true);
        return;
    }

    eventCounts.add(EventType::WrtMiss);
    const Others others = classifyOthers(cache, block);
    if (others.anyDirty)
        eventCounts.add(EventType::WmBlkDrty);
    else if (others.numOthers > 0)
        eventCounts.add(EventType::WmBlkCln);
    handleWriteMiss(cache, block, others, false);
}

CacheBlockState
CoherenceProtocol::stateOf(CacheId cache, BlockNum block) const
{
    if (oracleMode) {
        if (block >= denseHolders.blockCount()
            || !denseHolders.contains(block, cache))
            return stateNotPresent;
        return denseDirtyOwner[block] == cache ? oracleDirty
                                               : oracleClean;
    }
    return caches[cache]->lookup(block);
}

CacheBlockState
CoherenceProtocol::cacheState(CacheId cache, BlockNum block) const
{
    panicIfNot(cache < caches.size(), "cache id out of range");
    return stateOf(cache, block);
}

SharerSet
CoherenceProtocol::holders(BlockNum block) const
{
    if (denseMode) {
        if (block < denseHolders.blockCount())
            return denseHolders.snapshot(block);
        return SharerSet(numCaches());
    }
    const auto it = holderMap.find(block);
    if (it == holderMap.end())
        return SharerSet(numCaches());
    return it->second;
}

void
CoherenceProtocol::snapshotHolders(BlockNum block, CacheIdList &out) const
{
    out.clear();
    if (denseMode) {
        if (block < denseHolders.blockCount())
            denseHolders.appendTo(block, out);
        return;
    }
    const auto it = holderMap.find(block);
    if (it != holderMap.end())
        it->second.forEach([&out](CacheId holder) { out.push(holder); });
}

unsigned
CoherenceProtocol::holderCount(BlockNum block) const
{
    if (denseMode) {
        return block < denseHolders.blockCount()
                   ? denseHolders.count(block)
                   : 0;
    }
    const auto it = holderMap.find(block);
    return it == holderMap.end() ? 0 : it->second.count();
}

CacheId
CoherenceProtocol::firstHolder(BlockNum block) const
{
    if (denseMode)
        return denseHolders.first(block);
    const auto it = holderMap.find(block);
    panicIfNot(it != holderMap.end(),
               name(), ": firstHolder on untracked block ", block);
    return it->second.first();
}

std::vector<BlockNum>
CoherenceProtocol::residentBlocks() const
{
    std::vector<BlockNum> blocks;
    if (denseMode) {
        for (BlockNum block = 0; block < denseHolders.blockCount();
             ++block) {
            if (!denseHolders.empty(block))
                blocks.push_back(block);
        }
        return blocks;
    }
    blocks.reserve(holderMap.size());
    for (const auto &[block, sharers] : holderMap) {
        if (!sharers.empty())
            blocks.push_back(block);
    }
    return blocks;
}

void
CoherenceProtocol::checkInvariants(BlockNum block) const
{
    const SharerSet sharers = holders(block);

    // The holder oracle and the per-cache stores must agree.
    unsigned holder_count = 0;
    unsigned dirty_count = 0;
    for (CacheId cache = 0; cache < caches.size(); ++cache) {
        const CacheBlockState state = stateOf(cache, block);
        const bool resident = state != stateNotPresent;
        panicIfNot(resident == sharers.contains(cache),
                   name(), ": holder oracle out of sync for block ",
                   block, " cache ", cache);
        if (resident) {
            ++holder_count;
            if (isDirtyState(state))
                ++dirty_count;
        }
    }
    panicIfNot(holder_count == sharers.count(),
               name(), ": holder count mismatch for block ", block);

    // Universal single-writer rule: at most one modified/owned copy.
    panicIfNot(dirty_count <= 1,
               name(), ": block ", block, " is dirty in ", dirty_count,
               " caches");

    // The dense dirty-owner shadow must agree with the cache states
    // it summarizes.
    if (denseMode && block < denseDirtyOwner.size()) {
        const CacheId owner = denseDirtyOwner[block];
        if (dirty_count == 0) {
            panicIfNot(owner == invalidCacheId,
                       name(), ": stale dirty owner ", owner,
                       " for clean block ", block);
        } else {
            panicIfNot(owner != invalidCacheId
                           && sharers.contains(owner)
                           && isDirtyState(stateOf(owner, block)),
                       name(), ": dirty owner out of sync for block ",
                       block);
        }
    }
}

void
CoherenceProtocol::checkAllInvariants() const
{
    if (denseMode) {
        // The arena covers every block the trace can touch, so check
        // all of it: absent blocks assert that no cache holds them.
        for (BlockNum block = 0; block < denseHolders.blockCount();
             ++block)
            checkInvariants(block);
        return;
    }
    for (const auto &[block, sharers] : holderMap)
        checkInvariants(block);
}

CoherenceProtocol::Others
CoherenceProtocol::classifyOthers(CacheId cache, BlockNum block) const
{
    Others others;
    if (denseMode) {
        if (block >= denseHolders.blockCount())
            return others;
        // The holder oracle answers directly: an O(1) count, a
        // reverse scan for a representative holder (the same cache
        // the legacy per-cache survey ends on), and the tracked
        // dirty owner instead of a state probe per holder.
        const unsigned num_others =
            denseHolders.countExcluding(block, cache);
        if (num_others == 0)
            return others;
        others.numOthers = num_others;
        others.anyHolder = denseHolders.lastExcluding(block, cache);
        const CacheId owner = denseDirtyOwner[block];
        if (owner != invalidCacheId && owner != cache) {
            others.anyDirty = true;
            others.dirtyOwner = owner;
        }
        return others;
    }
    const auto it = holderMap.find(block);
    if (it == holderMap.end())
        return others;
    it->second.forEach([&](CacheId holder) {
        if (holder == cache)
            return;
        ++others.numOthers;
        others.anyHolder = holder;
        const CacheBlockState state = caches[holder]->lookup(block);
        if (isDirtyState(state)) {
            others.anyDirty = true;
            others.dirtyOwner = holder;
        }
    });
    return others;
}

void
CoherenceProtocol::install(CacheId cache, BlockNum block,
                           CacheBlockState state)
{
    // Order matters with finite caches: the insertion may trigger an
    // eviction whose hook edits the holder oracle, so the oracle
    // entry for the new block is added afterwards. In oracle mode
    // the oracle *is* the cache state, so there is nothing else to
    // write.
    if (!oracleMode)
        caches[cache]->set(block, state);
    if (denseMode) {
        // Branch-then-panic: panicIfNot would build the message (a
        // name() string concatenation) on every install, and this
        // runs once per cache fill.
        if (block >= denseHolders.blockCount()) [[unlikely]]
            panic(name(), ": block ", block,
                  " outside the dense arena of ",
                  denseHolders.blockCount(), " blocks");
        denseHolders.add(block, cache);
        if (isDirtyState(state))
            denseDirtyOwner[block] = cache;
        else if (denseDirtyOwner[block] == cache)
            denseDirtyOwner[block] = invalidCacheId;
        return;
    }
    const auto it = holderMap.find(block);
    if (it == holderMap.end()) {
        SharerSet sharers(numCaches());
        sharers.add(cache);
        holderMap.emplace(block, std::move(sharers));
    } else {
        it->second.add(cache);
    }
}

void
CoherenceProtocol::setState(CacheId cache, BlockNum block,
                            CacheBlockState state)
{
    if (oracleMode) {
        if (!denseHolders.contains(block, cache)) [[unlikely]]
            panic(name(), ": setState for a block cache ", cache,
                  " does not hold");
    } else {
        if (!caches[cache]->contains(block)) [[unlikely]]
            panic(name(), ": setState for a block cache ", cache,
                  " does not hold");
        caches[cache]->set(block, state);
    }
    if (denseMode) {
        if (isDirtyState(state))
            denseDirtyOwner[block] = cache;
        else if (denseDirtyOwner[block] == cache)
            denseDirtyOwner[block] = invalidCacheId;
    }
}

void
CoherenceProtocol::invalidateIn(CacheId cache, BlockNum block)
{
    if (!oracleMode)
        caches[cache]->invalidate(block);
    if (denseMode) {
        if (block < denseHolders.blockCount()) {
            denseHolders.remove(block, cache);
            if (denseDirtyOwner[block] == cache)
                denseDirtyOwner[block] = invalidCacheId;
        }
        return;
    }
    const auto it = holderMap.find(block);
    if (it != holderMap.end())
        it->second.remove(cache);
}

} // namespace dirsim
