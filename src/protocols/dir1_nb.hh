/**
 * @file
 * Dir1NB: the single-pointer, no-broadcast directory scheme.
 *
 * A block may reside in at most one cache at a time, so no data
 * inconsistency can ever arise. The directory entry is one pointer to
 * the owning cache. Every miss that finds the block elsewhere
 * invalidates it there (with a write-back when dirty). Simple and
 * trivially scalable, but read sharing is punished hard — the paper
 * measures a ~6x bus-cycle penalty versus Dir0B, dominated by spin
 * locks bouncing between caches (Section 5.2).
 */

#ifndef DIRSIM_PROTOCOLS_DIR1_NB_HH
#define DIRSIM_PROTOCOLS_DIR1_NB_HH

#include "directory/limited.hh"
#include "protocols/protocol.hh"

namespace dirsim
{

/** See file comment. */
class Dir1NB : public CoherenceProtocol
{
  public:
    /** Cache block states. */
    static constexpr CacheBlockState stClean = 1;
    static constexpr CacheBlockState stDirty = 2;

    explicit Dir1NB(unsigned num_caches_arg,
                    const CacheFactory &factory = {});

    std::string name() const override { return "Dir1NB"; }
    bool isDirtyState(CacheBlockState state) const override
    {
        return state == stDirty;
    }
    std::optional<OracleStates> oracleStates() const override
    {
        return OracleStates{stClean, stDirty};
    }
    void checkInvariants(BlockNum block) const override;

  protected:
    void onEviction(CacheId cache, BlockNum block,
                    CacheBlockState state) override;
    void onReserveBlocks(std::uint32_t block_count) override;

  public:
    /** The single-pointer directory (exposed for tests). */
    const LimitedDirectory &directory() const { return dir; }

  protected:
    void handleReadMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first) override;
    void handleWriteHit(CacheId cache, BlockNum block,
                        CacheBlockState state) override;
    void handleWriteMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first) override;

  private:
    /** Evict the block from its current holder, write back if dirty. */
    void displace(BlockNum block, const Others &others, bool first);

    /** Record the new sole holder in the directory. */
    void takeOwnership(CacheId cache, BlockNum block, bool dirty);

    LimitedDirectory dir;
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_DIR1_NB_HH
