#include "protocols/dragon.hh"

#include "common/logging.hh"

namespace dirsim
{

Dragon::Dragon(unsigned num_caches_arg, const CacheFactory &factory)
    : CoherenceProtocol(num_caches_arg, factory)
{
}

void
Dragon::applyUpdate(CacheId writer, BlockNum block)
{
    CacheIdList sharers;
    snapshotHolders(block, sharers);
    for (const CacheId holder : sharers) {
        if (holder == writer)
            continue;
        // Copies are updated in place; a previous owner loses
        // ownership to the writer.
        setState(holder, block, stSharedClean);
    }
}

void
Dragon::demoteToShared(CacheId requester, BlockNum block)
{
    CacheIdList sharers;
    snapshotHolders(block, sharers);
    for (const CacheId holder : sharers) {
        if (holder == requester)
            continue;
        const CacheBlockState state = cacheState(holder, block);
        if (state == stExclusive)
            setState(holder, block, stSharedClean);
        else if (state == stDirty)
            setState(holder, block, stSharedDirty);
    }
}

void
Dragon::handleReadMiss(CacheId cache, BlockNum block,
                       const Others &others, bool first)
{
    if (others.numOthers > 0) {
        // The shared line is pulled; a holding cache supplies the
        // block (memory is not updated: a dirty owner keeps
        // ownership in the shared-dirty state).
        if (!first)
            ++opCounts.cacheSupplies;
        demoteToShared(cache, block);
        install(cache, block, stSharedClean);
    } else {
        if (!first)
            ++opCounts.memSupplies;
        install(cache, block, stExclusive);
    }
    if (!first)
        ++opCounts.busTransactions;
}

void
Dragon::handleWriteHit(CacheId cache, BlockNum block,
                       CacheBlockState state)
{
    const Others others = classifyOthers(cache, block);
    if (others.numOthers > 0) {
        // Broadcast the written word; all sharers update in place.
        eventCounts.add(EventType::WhDistrib);
        ++opCounts.writeUpdates;
        ++opCounts.busTransactions;
        applyUpdate(cache, block);
        setState(cache, block, stSharedDirty);
    } else {
        eventCounts.add(EventType::WhLocal);
        (void)state;
        setState(cache, block, stDirty);
    }
}

void
Dragon::handleWriteMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first)
{
    if (others.numOthers > 0) {
        // Fetch from a holding cache, then distribute the write.
        if (!first) {
            ++opCounts.cacheSupplies;
            ++opCounts.writeUpdates;
        }
        install(cache, block, stSharedDirty);
        applyUpdate(cache, block);
    } else {
        if (!first)
            ++opCounts.memSupplies;
        install(cache, block, stDirty);
    }
    if (!first)
        ++opCounts.busTransactions;
}

void
Dragon::checkInvariants(BlockNum block) const
{
    CoherenceProtocol::checkInvariants(block);
    const SharerSet sharers = holders(block);
    sharers.forEach([&](CacheId holder) {
        const CacheBlockState state = cacheState(holder, block);
        if (state == stExclusive || state == stDirty) {
            panicIfNot(sharers.count() == 1,
                       "Dragon: exclusive-state block ", block,
                       " has ", sharers.count(), " holders");
        }
    });
}

} // namespace dirsim
