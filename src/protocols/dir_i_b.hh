/**
 * @file
 * Dir_i B: i cache pointers plus a broadcast bit per directory entry
 * (Section 6 of the paper). While at most i caches share a block the
 * directory is exact and invalidations are directed; when the pointer
 * array overflows the broadcast bit is set and the next invalidation
 * must be broadcast. Dir1B is the paper's headline variant: since a
 * single invalidation is the common case, its cost model is
 * 0.0485 + 0.0006*b cycles per reference on their traces.
 */

#ifndef DIRSIM_PROTOCOLS_DIR_I_B_HH
#define DIRSIM_PROTOCOLS_DIR_I_B_HH

#include "directory/limited.hh"
#include "protocols/protocol.hh"

namespace dirsim
{

/** See file comment. */
class DirIB : public CoherenceProtocol
{
  public:
    static constexpr CacheBlockState stClean = 1;
    static constexpr CacheBlockState stDirty = 2;

    /**
     * @param num_caches_arg caches in the domain
     * @param num_pointers_arg i, the per-entry pointer budget (>= 1)
     */
    DirIB(unsigned num_caches_arg, unsigned num_pointers_arg,
          const CacheFactory &factory = {});

    std::string name() const override;
    bool isDirtyState(CacheBlockState state) const override
    {
        return state == stDirty;
    }
    std::optional<OracleStates> oracleStates() const override
    {
        return OracleStates{stClean, stDirty};
    }
    void checkInvariants(BlockNum block) const override;

    unsigned pointerBudget() const { return dir.pointerBudget(); }

  protected:
    void onEviction(CacheId cache, BlockNum block,
                    CacheBlockState state) override;
    void onReserveBlocks(std::uint32_t block_count) override;

  public:
    /** The limited-pointer directory (exposed for tests). */
    const LimitedDirectory &directory() const { return dir; }

  protected:
    void handleReadMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first) override;
    void handleWriteHit(CacheId cache, BlockNum block,
                        CacheBlockState state) override;
    void handleWriteMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first) override;

  private:
    /** Record a new sharer; overflow flips the entry to broadcast. */
    void recordSharer(BlockNum block, CacheId cache);

    /**
     * Invalidate all copies but @p keeper's: directed messages while
     * the directory is exact, one broadcast otherwise.
     */
    void invalidateOthers(CacheId keeper, BlockNum block, bool costed);

    LimitedDirectory dir;
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_DIR_I_B_HH
