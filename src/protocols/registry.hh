/**
 * @file
 * Protocol factory: build any scheme from its paper-notation name,
 * used by the example CLIs and the experiment layer.
 */

#ifndef DIRSIM_PROTOCOLS_REGISTRY_HH
#define DIRSIM_PROTOCOLS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "protocols/protocol.hh"

namespace dirsim
{

/**
 * Instantiate a protocol by name.
 *
 * Recognized names: "Dir1NB", "DirNNB", "Dir0B", "WTI", "Dragon",
 * "Berkeley", "YenFu", "DirCV", and the parameterized families
 * "Dir<i>B" / "Dir<i>NB" for any integer i >= 1 (e.g. "Dir2B",
 * "Dir4NB"). Matching is case-insensitive.
 *
 * @param name scheme name
 * @param num_caches caches in the coherence domain
 * @param factory cache factory; empty builds the paper's infinite
 *        caches, a FiniteCache factory enables replacement simulation
 * @throws UsageError for unknown names
 */
std::unique_ptr<CoherenceProtocol> makeProtocol(
    const std::string &name, unsigned num_caches,
    const CacheFactory &factory = {});

/** Names of the four schemes the paper's main evaluation compares. */
const std::vector<std::string> &paperSchemes();

/** Names of every named (non-parameterized) scheme we implement. */
const std::vector<std::string> &allSchemes();

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_REGISTRY_HH
