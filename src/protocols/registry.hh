/**
 * @file
 * Protocol factory: build any scheme from its paper-notation name or
 * from a structured SchemeSpec, used by the example CLIs and the
 * experiment layer.
 *
 * The structured path — parseScheme() into a SchemeSpec, then
 * makeProtocol(spec, ...) — is the primary API; the by-name
 * makeProtocol(name, ...) overload is a thin wrapper kept for
 * convenience. Specs carry the family, pointer budget, and broadcast
 * flag explicitly, so callers never re-parse "Dir<i>B" strings.
 */

#ifndef DIRSIM_PROTOCOLS_REGISTRY_HH
#define DIRSIM_PROTOCOLS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "protocols/protocol.hh"

namespace dirsim
{

/** Every protocol family dirsim implements. */
enum class SchemeFamily
{
    Dir1NB,   ///< one pointer, no broadcast (dedicated implementation)
    DirNNB,   ///< Censier & Feautrier full map
    Dir0B,    ///< Archibald & Baer two-bit states, broadcast
    WTI,      ///< snoopy write-through-with-invalidate
    Dragon,   ///< snoopy Xerox update protocol
    Berkeley, ///< snoopy ownership protocol
    YenFu,    ///< Yen & Fu single-bit full-map refinement
    DirCV,    ///< Section 6 coarse-vector code
    DirIB,    ///< parameterized Dir<i>B, i >= 1
    DirINB,   ///< parameterized Dir<i>NB, i >= 1
};

/**
 * A scheme identity in structured form.
 *
 * parseScheme() and name() round-trip: for every valid scheme name
 * `s`, parseScheme(s).name() is the canonical paper notation of `s`,
 * and parseScheme(spec.name()) == spec for every valid spec.
 */
struct SchemeSpec
{
    SchemeFamily family = SchemeFamily::Dir0B;

    /**
     * Directory pointers per entry: the `i` of the Dir<i>B / Dir<i>NB
     * families, 1 for Dir1NB, 0 for Dir0B. For DirCV it is overloaded
     * as the region granularity K of the DirCVr<K> region-vector code
     * (0 selects the ternary Section 6 code). Zero (and meaningless)
     * for the full-map and snoopy families.
     */
    unsigned pointers = 0;

    /** True for the parameterized Dir<i>B / Dir<i>NB families. */
    bool parameterized() const
    {
        return family == SchemeFamily::DirIB
            || family == SchemeFamily::DirINB;
    }

    /**
     * True when the scheme can resort to broadcast: the paper's `B`
     * directory suffix (Dir0B, Dir<i>B), the coarse-vector limited
     * broadcast, and the snoopy schemes (every bus transaction is
     * observed by all caches).
     */
    bool broadcast() const;

    /** True for the snoopy (non-directory) schemes. */
    bool snoopy() const;

    /** Canonical paper-notation name, e.g. "Dir0B" or "Dir4NB". */
    std::string name() const;

    bool operator==(const SchemeSpec &) const = default;
};

/**
 * Parse a scheme name into its structured spec.
 *
 * Recognized names: "Dir1NB", "DirNNB", "Dir0B", "WTI", "Dragon",
 * "Berkeley", "YenFu", "DirCV", and the parameterized families
 * "Dir<i>B" / "Dir<i>NB" for any integer i >= 1 (e.g. "Dir2B",
 * "Dir4NB") and "DirCVr<K>" for any region granularity K >= 1
 * (e.g. "DirCVr16"). Matching is case-insensitive.
 *
 * @throws UsageError for unknown names; the message names the
 *         offending input and lists every valid scheme
 */
SchemeSpec parseScheme(const std::string &name);

/**
 * Instantiate a protocol from its structured spec.
 *
 * @param spec scheme identity (see parseScheme())
 * @param num_caches caches in the coherence domain
 * @param factory cache factory; empty builds the paper's infinite
 *        caches, a FiniteCache factory enables replacement simulation
 */
std::unique_ptr<CoherenceProtocol> makeProtocol(
    const SchemeSpec &spec, unsigned num_caches,
    const CacheFactory &factory = {});

/**
 * Instantiate a protocol by name: parseScheme() + the spec overload.
 *
 * @throws UsageError for unknown names (see parseScheme())
 */
std::unique_ptr<CoherenceProtocol> makeProtocol(
    const std::string &name, unsigned num_caches,
    const CacheFactory &factory = {});

/** Names of the four schemes the paper's main evaluation compares. */
const std::vector<std::string> &paperSchemes();

/**
 * Names of every named (non-parameterized) scheme we implement. The
 * parameterized families "Dir<i>B" / "Dir<i>NB" (any i >= 1) are
 * additionally valid but not enumerable; CLI help should list them
 * alongside these names (see validSchemesText()).
 */
const std::vector<std::string> &allSchemes();

/**
 * One-line human-readable list of every valid scheme name, including
 * the parameterized families — for CLI usage strings and errors.
 */
const std::string &validSchemesText();

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_REGISTRY_HH
