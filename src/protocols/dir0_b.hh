/**
 * @file
 * Dir0B: the Archibald & Baer broadcast directory scheme.
 *
 * The directory keeps just two bits per memory block (not cached /
 * clean in exactly one cache / clean in an unknown number of caches /
 * dirty in exactly one cache) and no cache pointers, so invalidations
 * and write-back requests are bus broadcasts. The "clean in exactly
 * one cache" state lets the sole holder write without a broadcast.
 * This is one of the paper's two directory design points and the
 * baseline for its Section 6 scalability variants.
 */

#ifndef DIRSIM_PROTOCOLS_DIR0_B_HH
#define DIRSIM_PROTOCOLS_DIR0_B_HH

#include "directory/two_bit.hh"
#include "protocols/protocol.hh"

namespace dirsim
{

/** See file comment. */
class Dir0B : public CoherenceProtocol
{
  public:
    static constexpr CacheBlockState stClean = 1;
    static constexpr CacheBlockState stDirty = 2;

    explicit Dir0B(unsigned num_caches_arg,
                   const CacheFactory &factory = {});

    std::string name() const override { return "Dir0B"; }
    bool isDirtyState(CacheBlockState state) const override
    {
        return state == stDirty;
    }
    std::optional<OracleStates> oracleStates() const override
    {
        return OracleStates{stClean, stDirty};
    }
    void checkInvariants(BlockNum block) const override;

  protected:
    void onEviction(CacheId cache, BlockNum block,
                    CacheBlockState state) override;
    void onReserveBlocks(std::uint32_t block_count) override;

  public:
    /** The two-bit directory (exposed for tests). */
    const TwoBitDirectory &directory() const { return dir; }

  protected:
    void handleReadMiss(CacheId cache, BlockNum block,
                        const Others &others, bool first) override;
    void handleWriteHit(CacheId cache, BlockNum block,
                        CacheBlockState state) override;
    void handleWriteMiss(CacheId cache, BlockNum block,
                         const Others &others, bool first) override;

  private:
    /** Invalidate every copy but @p keeper's (one bus broadcast). */
    void broadcastInvalidate(CacheId keeper, BlockNum block, bool costed);

    TwoBitDirectory dir;
};

} // namespace dirsim

#endif // DIRSIM_PROTOCOLS_DIR0_B_HH
